"""Legacy setup shim: enables editable installs where the `wheel` package
(and hence PEP 660 editable builds) is unavailable. All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
