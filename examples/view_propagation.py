"""Constraint propagation through views (Section 8 future work, built).

A downstream consumer sees only a *view* of the bank's data — say, the
Edinburgh checking accounts. Which of the source constraints still hold on
the view, and in what form? This script derives them:

* inherited CFDs (specialised against the view's selection conditions);
* new constant CFDs from the selection itself;
* source-side CINDs re-rooted at the view — including ψ6, which keeps
  catching the paper's t10 error *through the view*.

Run:  python examples/view_propagation.py
"""

from repro.core.parser import format_cfd, format_cind
from repro.datasets.bank import (
    bank_cfds,
    bank_cinds,
    bank_instance,
    bank_schema,
    clean_bank_instance,
)
from repro.views.spc import SPView, materialize, propagate_cfds, propagate_cinds


def main() -> None:
    schema = bank_schema()
    db = bank_instance(schema)
    cfds = bank_cfds(schema)
    cinds = bank_cinds(schema)

    view = SPView(
        name="edi_checking",
        base=schema.relation("checking"),
        keep=("an", "cn", "ab"),
        conditions={"ab": "EDI"},
    )
    print("=== The view ===")
    print(f"  {view.name} = π(an, cn, ab) σ(ab = 'EDI') (checking)")
    materialised = view.evaluate(db)
    for t in materialised:
        print(f"  {t!r}")

    print("\n=== Propagated CFDs ===")
    for cfd in propagate_cfds(view, cfds):
        for line in format_cfd(cfd):
            print(" ", line)

    print("\n=== Propagated CINDs (source side) ===")
    propagated_cinds = propagate_cinds(view, cinds)
    for cind in propagated_cinds:
        for line in format_cind(cind):
            print(" ", line)

    print("\n=== The t10 error is still caught through the view ===")
    extended = materialize(db, [view])
    for cind in propagated_cinds:
        status = "OK" if cind.satisfied_by(extended) else "VIOLATED"
        print(f"  {cind.name}: {status}")

    clean = materialize(clean_bank_instance(schema), [view])
    print("\nafter repairing the base data:")
    for cind in propagated_cinds:
        status = "OK" if cind.satisfied_by(clean) else "VIOLATED"
        print(f"  {cind.name}: {status}")


if __name__ == "__main__":
    main()
