"""Quickstart: the paper's bank example end to end, through `repro.api`.

Builds the Fig. 1 database, the CINDs of Fig. 2 and the CFDs of Fig. 4,
then (1) detects the two planted errors (tuples t10 and t12) via the
unified Session facade, (2) repairs them, and (3) checks the constraint
set itself for consistency.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.consistency.checking import checking
from repro.core.parser import format_cfd, format_cind
from repro.datasets.bank import bank_constraints, bank_instance, bank_schema


def main() -> None:
    schema = bank_schema()
    db = bank_instance(schema)
    sigma = bank_constraints(schema)

    print("=== The constraints (Figures 2 and 4 of the paper) ===")
    for cind in sigma.cinds:
        for line in format_cind(cind):
            print(" ", line)
    for cfd in sigma.cfds:
        for line in format_cfd(cfd):
            print(" ", line)

    print("\n=== 1. Error detection on the Fig. 1 instance ===")
    # One facade over every engine; backend="sql" / "naive" /
    # "incremental" (or workers=4) would print the identical report.
    session = api.connect(db, sigma)
    detection = session.detect()
    print(detection.summary())
    print(
        "\nAs in Examples 2.2 and 4.1: tuple t10 violates psi6 (no interest "
        "row with the 1.5% UK checking rate)\nand tuple t12 violates phi3 "
        "(10.5% instead of 1.5%). The traditional FDs/INDs see nothing."
    )

    print("\n=== 2. Repair ===")
    repaired = session.repair(cind_policy="insert")
    print(f"clean after repair: {repaired.clean} "
          f"({repaired.cost} edit(s), {repaired.rounds} round(s))")
    for edit in repaired.edits:
        print(" ", edit)

    print("\n=== 3. Consistency of the constraint set itself ===")
    decision = checking(schema, sigma)
    print(f"Sigma consistent: {decision.consistent} "
          f"(method: {decision.method})")
    if decision.witness is not None:
        print(f"witness database: {decision.witness!r}")


if __name__ == "__main__":
    main()
