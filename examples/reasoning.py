"""Reasoning about CINDs: derivations, implication, minimal covers.

Replays Section 3 of the paper:

* Example 3.4 — the seven-step I-proof that the bank CINDs entail
  `account_B[at] ⊆ interest[at]` when dom(at) = {saving, checking};
* the same implication decided semantically by the bounded chase
  (Theorems 3.4/3.5's decision problem);
* a minimal-cover computation removing redundant dependencies
  (the Section 8 "future work" item).

Run:  python examples/reasoning.py
"""

from repro.core.cind import CIND, standard_ind
from repro.core.cover import minimal_cover_cinds
from repro.core.implication import ImplicationStatus, implies
from repro.core.inference import Derivation, derives
from repro.core.normalize import normalize_cind
from repro.datasets.bank import bank_cinds, bank_schema
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _


def example_3_4_proof() -> None:
    print("=== Example 3.4: an I-proof, step by step ===")
    schema = bank_schema()
    cinds = {c.name: c for c in bank_cinds(schema)}
    account = schema.relation("account_EDI")
    interest = schema.relation("interest")

    proof = Derivation()
    p1 = proof.premise(cinds["psi1[EDI]"])
    p2 = proof.premise(cinds["psi2[EDI]"])
    p5 = proof.premise(normalize_cind(cinds["psi5"])[0])  # the EDI row
    p6 = proof.premise(normalize_cind(cinds["psi6"])[0])

    s1 = proof.apply("CIND2", [p1], indices=[])
    s2 = proof.apply("CIND2", [p2], indices=[])
    s3 = proof.apply("CIND6", [p5], keep_yp=["at"])
    s4 = proof.apply("CIND6", [p6], keep_yp=["at"])
    s5 = proof.apply("CIND3", [s1, s3])
    s6 = proof.apply("CIND3", [s2, s4])
    proof.apply("CIND8", [s5, s6], lhs_attribute="at", rhs_attribute="at")

    print(proof)
    goal = CIND(account, ("at",), (), interest, ("at",), (), [((_,), (_,))])
    print(f"\nderivation checked and concludes the goal: "
          f"{derives(proof, goal)}")
    print("(dom(at) = {saving, checking} is what lets CIND8 fire)\n")


def semantic_implication() -> None:
    print("=== The same implication, decided by the bounded chase ===")
    schema = bank_schema()
    cinds = bank_cinds(schema)
    account = schema.relation("account_EDI")
    interest = schema.relation("interest")
    goal = CIND(account, ("at",), (), interest, ("at",), (), [((_,), (_,))])
    result = implies(schema, cinds, goal, max_tuples=400)
    print(f"  Sigma |= psi ?  {result.status.value} "
          f"({result.branches_explored} chase branch(es))\n")


def counterexample_demo() -> None:
    print("=== A non-implication, with an explicit countermodel ===")
    r = RelationSchema("R", ["A", "B"])
    s = RelationSchema("S", ["C", "D"])
    schema = DatabaseSchema([r, s])
    sigma = [standard_ind(r, ("A",), s, ("C",), name="given")]
    goal = standard_ind(s, ("C",), r, ("A",), name="converse")
    result = implies(schema, sigma, goal)
    print(f"  status: {result.status.value}")
    print(f"  countermodel: {result.counterexample!r}")
    for inst in result.counterexample:
        for t in inst:
            print("   ", t)
    print()


def minimal_cover_demo() -> None:
    print("=== Minimal cover (Section 8 future work) ===")
    r = RelationSchema("R", ["A", "B"])
    s = RelationSchema("S", ["C", "D"])
    t = RelationSchema("T", ["E", "F"])
    schema = DatabaseSchema([r, s, t])
    sigma = [
        standard_ind(r, ("A",), s, ("C",), name="r->s"),
        standard_ind(s, ("C",), t, ("E",), name="s->t"),
        standard_ind(r, ("A",), t, ("E",), name="r->t (transitively redundant)"),
        standard_ind(r, ("A", "B"), s, ("C", "D"), name="wide r->s"),
    ]
    result = minimal_cover_cinds(schema, sigma)
    print(f"  input: {len(sigma)} CINDs")
    print(f"  cover: {[c.name for c in result.cover]}")
    print(f"  removed as redundant: {[c.name for c in result.removed]}")
    if result.undecided:
        print(f"  kept (redundancy undecided within budget): "
              f"{[c.name for c in result.undecided]}")


def main() -> None:
    example_3_4_proof()
    semantic_implication()
    counterexample_demo()
    minimal_cover_demo()


if __name__ == "__main__":
    main()
