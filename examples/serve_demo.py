"""Serving demo: the multi-tenant detection service over its TCP protocol.

Starts a :class:`repro.serve.DetectionServer` in-process (the same thing
``python -m repro serve`` hosts), then drives it as a *client* would —
two raw TCP connections speaking line-delimited JSON:

1. create a tenant from the paper's Fig. 1 bank instance (inline rows);
2. read it: ``check`` / ``is_clean`` find the two planted errors;
3. subscribe to the tenant's violation feed on a second connection;
4. apply a batch of DML and watch the commit's *delta* (which violation
   records appeared/disappeared, position-tagged) arrive on the
   subscriber connection;
5. replay the delta client-side over the subscription baseline and show
   it reconstructs the server's report exactly;
6. evict the tenant — the subscriber receives the close event.

Run:  PYTHONPATH=src python examples/serve_demo.py
"""

import asyncio
import json

from repro.datasets.bank import bank_constraints, bank_instance, bank_schema
from repro.serve import DetectionServer, DetectionService, ViolationDelta, replay


async def rpc(reader, writer, request):
    """One NDJSON request/response round trip."""
    writer.write(json.dumps(request).encode() + b"\n")
    await writer.drain()
    response = json.loads(await reader.readline())
    if not response.get("ok", True):
        raise RuntimeError(f"{response['kind']}: {response['error']}")
    return response


async def main() -> None:
    schema = bank_schema()
    sigma = bank_constraints(schema)
    db = bank_instance(schema)
    rows = {name: [list(t.values) for t in db[name]]
            for name in schema.relation_names}

    server = DetectionServer(DetectionService(), schema, sigma, port=0)
    await server.start()
    host, port = server.address
    print(f"server listening on {host}:{port} (NDJSON over TCP)\n")

    reader, writer = await asyncio.open_connection(host, port)

    print("=== 1. Create a tenant from the Fig. 1 instance ===")
    created = await rpc(reader, writer, {
        "op": "create", "tenant": "bank", "rows": rows,
    })
    print(f"  created: {created['result']}")

    print("\n=== 2. Read it ===")
    report = (await rpc(reader, writer, {"op": "check", "tenant": "bank"}))
    result = report["result"]
    print(f"  total violations: {result['total']} "
          f"(t10 vs psi6, t12 vs phi3); by constraint: "
          f"{ {k: v for k, v in result['by_constraint'].items() if v} }")

    print("\n=== 3. Subscribe on a second connection ===")
    sub_reader, sub_writer = await asyncio.open_connection(host, port)
    baseline_resp = await rpc(sub_reader, sub_writer, {
        "op": "subscribe", "tenant": "bank",
    })
    baseline = [tuple(_tuplify(r)) for r in baseline_resp["result"]["baseline"]]
    seq = baseline_resp["result"]["seq"]
    print(f"  baseline: seq={seq}, {len(baseline)} violation record(s)")

    print("\n=== 4. Apply a batch; the delta streams to the subscriber ===")
    applied = await rpc(reader, writer, {
        "op": "apply", "tenant": "bank",
        # one clean row and one rate that conflicts with existing
        # GLA interest rows -> new CFD violation records
        "inserts": [
            ["interest", ["EDI", "UK", "saving", "3.0%"]],
            ["interest", ["GLA", "UK", "checking", "9.9%"]],
        ],
    })
    print(f"  apply result: inserted={applied['result']['inserted']} "
          f"deleted={applied['result']['deleted']}")
    event = json.loads(await sub_reader.readline())
    assert event["event"] == "delta"
    print(f"  subscriber got delta seq={event['seq']}: "
          f"-{len(event['removed'])} +{len(event['added'])} record(s)")

    print("\n=== 5. Replay the delta over the baseline ===")
    delta = ViolationDelta(
        seq=event["seq"],
        removed=tuple((pos, _tuplify(rec)) for pos, rec in event["removed"]),
        added=tuple((pos, _tuplify(rec)) for pos, rec in event["added"]),
    )
    replayed = replay(tuple(baseline), delta)
    server_records = (await rpc(reader, writer, {
        "op": "check", "tenant": "bank",
    }))["result"]["records"]
    assert list(map(_tuplify, server_records)) == list(replayed)
    print(f"  baseline + delta == server report: True "
          f"({len(replayed)} record(s), bit-identical incl. order)")

    print("\n=== 6. Evict; the subscriber is told ===")
    await rpc(reader, writer, {"op": "evict", "tenant": "bank"})
    closed = json.loads(await sub_reader.readline())
    print(f"  subscriber got: {closed}")

    writer.close()
    sub_writer.close()
    await server.stop()


def _tuplify(value):
    """JSON arrays -> tuples, recursively (the wire inverse of the
    server's tuple -> list encoding, so records compare equal)."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


if __name__ == "__main__":
    asyncio.run(main())
