"""Contextual schema matching (Example 1.1 of the paper).

A bank integrates per-branch `account_B(an, cn, ca, cp, at)` relations into
a target schema `saving` / `checking` / `interest`. Plain INDs cannot
express the mapping — an account goes to `saving` *only if* at = 'saving',
and the target tuple must carry the branch constant. The CINDs ψ1/ψ2 do
exactly that; this script executes them as a data migration and verifies
the result against the full target constraint set.

Run:  python examples/schema_matching.py
"""

from repro.core.violations import check_database
from repro.datasets.bank import (
    bank_cinds,
    bank_constraints,
    bank_instance,
    bank_schema,
    clean_bank_instance,
)
from repro.matching.migrate import migrate, verify_migration
from repro.relational.instance import DatabaseInstance


def main() -> None:
    schema = bank_schema()
    full = bank_instance(schema)

    # Start from the source side only: the two account relations, plus the
    # interest reference table (with the *correct* rates).
    source = DatabaseInstance(schema)
    for name in ("account_NYC", "account_EDI"):
        for t in full[name]:
            source[name].add(t)
    for t in clean_bank_instance(schema)["interest"]:
        source["interest"].add(t)

    cinds = bank_cinds(schema)
    print("=== Source relations ===")
    for name in ("account_NYC", "account_EDI"):
        for t in source[name]:
            print(" ", t)

    print("\n=== Migrating along the CINDs psi1/psi2 (contextual matches) ===")
    result = migrate(source, cinds)
    for relation, count in sorted(result.inserted.items()):
        print(f"  inserted {count} tuple(s) into {relation}")
    print("\n  saving after migration:")
    for t in result.db["saving"]:
        print("   ", t)
    print("  checking after migration:")
    for t in result.db["checking"]:
        print("   ", t)

    print("\n=== Verification ===")
    print(f"  all mapping CINDs hold: {verify_migration(result, cinds)}")
    report = check_database(result.db, bank_constraints(schema))
    print(f"  full target constraint set: "
          f"{'clean' if report.is_clean else report.summary()}")
    if result.unmatched:
        print(f"  unmatched source tuples: {result.unmatched}")
    else:
        print("  every source account was routed to a target relation")


if __name__ == "__main__":
    main()
