"""Consistency analysis of CFDs + CINDs (Sections 3–5 of the paper).

Walks through the paper's own examples:

* Example 3.2 — four CFDs over a boolean attribute with no model;
* Theorem 3.2 — CINDs alone are *always* consistent (constructed witness);
* Example 4.2 — a CFD and a CIND, each fine alone, contradictory together;
* Examples 5.4–5.6 — the dependency-graph reduction (preProcessing) and
  the combined Checking algorithm on the five-relation Σ;
* a randomly generated consistent set, confirmed by Checking.

Run:  python examples/consistency_analysis.py
"""

import random

from repro.consistency.cfd_checking import cfd_checking
from repro.consistency.checking import checking
from repro.consistency.depgraph import build_dependency_graph, preprocess
from repro.consistency.random_checking import random_checking
from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.consistency import build_cind_witness
from repro.core.violations import ConstraintSet
from repro.datasets.bank import bank_cinds, bank_schema
from repro.generator.constraint_gen import consistent_constraints
from repro.generator.schema_gen import random_schema
from repro.relational.domains import BOOL
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _


def example_3_2() -> None:
    print("=== Example 3.2: inconsistent CFDs over a finite domain ===")
    r = RelationSchema("R", [Attribute("A", BOOL), Attribute("B")])
    cfds = [
        CFD(r, ("A",), ("B",), [((True,), ("b1",))], name="phi1"),
        CFD(r, ("A",), ("B",), [((False,), ("b2",))], name="phi2"),
        CFD(r, ("B",), ("A",), [(("b1",), (False,))], name="phi3"),
        CFD(r, ("B",), ("A",), [(("b2",), (True,))], name="phi4"),
    ]
    for backend in ("chase", "sat", "brute"):
        result = cfd_checking(r, cfds, backend=backend)
        print(f"  CFD_Checking[{backend:5}] -> consistent = {result.consistent}")
    print("  (any boolean value of A is forced to flip — no tuple exists)\n")


def theorem_3_2() -> None:
    print("=== Theorem 3.2: CINDs alone are always consistent ===")
    schema = bank_schema()
    cinds = bank_cinds(schema)
    witness = build_cind_witness(schema, cinds)
    ok = all(c.satisfied_by(witness) for c in cinds)
    print(f"  built cross-product witness: {witness!r}")
    print(f"  witness satisfies all {len(cinds)} bank CINDs: {ok}\n")


def example_4_2() -> None:
    print("=== Example 4.2: CFD + CIND jointly inconsistent ===")
    r = RelationSchema("R", [Attribute("A"), Attribute("B")])
    schema = DatabaseSchema([r])
    phi = CFD(r, ("A",), ("B",), [((_,), ("a",))], name="phi")
    psi = CIND(r, (), (), r, (), ("B",), [((), ("b",))], name="psi")
    for label, sigma in (
        ("phi alone", ConstraintSet(schema, cfds=[phi])),
        ("psi alone", ConstraintSet(schema, cinds=[psi])),
        ("phi + psi", ConstraintSet(schema, cfds=[phi], cinds=[psi])),
    ):
        decision = checking(schema, sigma, rng=random.Random(0))
        print(f"  {label:10} -> consistent = {decision.consistent}")
    print("  (phi forces B = a everywhere; psi demands a tuple with B = b)\n")


def build_example_5_4():
    """The five-relation Σ of Example 5.4, with ψ4' of Example 5.5."""
    from repro.relational.domains import enum_domain

    dom_h = enum_domain("H01", ("0", "1"))
    schema = DatabaseSchema(
        [
            RelationSchema("R1", [Attribute("E"), Attribute("F")]),
            RelationSchema("R2", [Attribute("G"), Attribute("H", dom_h)]),
            RelationSchema("R3", [Attribute("A"), Attribute("B")]),
            RelationSchema("R4", [Attribute("C"), Attribute("D")]),
            RelationSchema("R5", [Attribute("I"), Attribute("J")]),
        ]
    )
    r1, r2, r3, r4, r5 = (schema.relation(f"R{i}") for i in range(1, 6))
    sigma = ConstraintSet(
        schema,
        cfds=[
            CFD(r1, ("E",), ("F",), [((_,), (_,))], name="phi1"),
            CFD(r2, ("H",), ("G",), [((_,), ("c",))], name="phi2"),
            CFD(r3, ("A",), ("B",), [(("c",), (_,))], name="phi3"),
            CFD(r4, ("C",), ("D",), [((_,), ("a",))], name="phi4"),
            CFD(r4, ("C",), ("D",), [((_,), ("b",))], name="phi5"),
            CFD(r5, ("I",), ("J",), [((_,), ("c",))], name="phi6"),
        ],
        cinds=[
            CIND(r1, ("E",), (), r2, ("G",), (), [((_,), (_,))], name="psi1"),
            CIND(r2, (), ("H",), r1, (), ("F",), [(("0",), ("a",))], name="psi2"),
            CIND(r2, (), ("H",), r1, (), ("F",), [(("1",), ("b",))], name="psi3"),
            # ψ4' of Example 5.5: unconditional, cannot avoid triggering.
            CIND(r3, ("A",), (), r4, ("C",), (), [((_,), (_,))], name="psi4'"),
            CIND(r5, (), ("J",), r2, (), ("G",), [(("c",), ("d",))], name="psi5"),
        ],
    )
    return schema, sigma


def examples_5_4_to_5_6() -> None:
    print("=== Examples 5.4-5.6: dependency-graph preProcessing ===")
    schema, sigma = build_example_5_4()
    dep = build_dependency_graph(sigma)
    print(f"  G[Sigma]: nodes = {sorted(dep.graph.nodes)}, "
          f"edges = {sorted(dep.graph.edges())}")
    result = preprocess(dep, rng=random.Random(0))
    print(f"  preProcessing -> code = {result.code} "
          f"(1 = consistent, 0 = inconsistent, -1 = undecided)")
    print(f"  relations deleted (inconsistent CFDs): "
          f"{result.deleted_inconsistent}")
    print(f"  relations pruned (indegree 0): {result.pruned}")
    print(f"  reduced graph: {sorted(dep.graph.nodes)}")
    decision = checking(schema, sigma, rng=random.Random(3))
    print(f"  Checking -> consistent = {decision.consistent} "
          f"(method: {decision.method})\n")


def generated_consistent_set() -> None:
    print("=== A generated consistent set, confirmed by both algorithms ===")
    schema = random_schema(n_relations=8, seed=1, max_arity=8, finite_ratio=0.2)
    sigma, __witness = consistent_constraints(schema, 200, rng=random.Random(1))
    for label, fn in (
        ("RandomChecking", lambda: random_checking(schema, sigma, rng=random.Random(1))),
        ("Checking      ", lambda: checking(schema, sigma, rng=random.Random(1))),
    ):
        decision = fn()
        print(f"  {label} -> consistent = {decision.consistent} "
              f"(attempts: {decision.attempts})")


def main() -> None:
    example_3_2()
    theorem_3_2()
    example_4_2()
    examples_5_4_to_5_6()
    generated_consistent_set()


if __name__ == "__main__":
    main()
