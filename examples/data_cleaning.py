"""Data cleaning at scale (the Example 1.2 workflow, scaled up).

Generates a bank database with thousands of accounts and a controlled
error rate, then

1. detects violations with the in-memory engine *and* the SQL engine
   (pattern tableaux shipped as data tables, per [9]) and checks they
   agree;
2. shows what the *traditional* FDs/INDs would have caught (nothing);
3. repairs the database and re-checks.

Run:  python examples/data_cleaning.py [n_accounts] [error_rate]
"""

import sys
import time

from repro.cleaning.detect import (
    compare_with_traditional,
    detect_errors,
    detect_errors_sql,
)
from repro.cleaning.repair import repair
from repro.datasets.bank import bank_constraints, scaled_bank_instance


def main(n_accounts: int = 2000, error_rate: float = 0.05) -> None:
    sigma = bank_constraints()
    db = scaled_bank_instance(n_accounts, error_rate=error_rate, seed=7)
    print(f"database: {db!r}")
    print(f"constraints: {sigma!r}\n")

    print("=== 1. Detection (in-memory engine) ===")
    started = time.perf_counter()
    detection = detect_errors(db, sigma)
    elapsed = time.perf_counter() - started
    print(f"{detection.report.total} violation(s) in {elapsed * 1000:.1f} ms")
    for name, count in sorted(detection.report.by_constraint().items()):
        print(f"  {name}: {count}")

    print("\n=== 1b. Detection (SQL engine, sqlite3) ===")
    started = time.perf_counter()
    sql_report = detect_errors_sql(db, sigma)
    elapsed = time.perf_counter() - started
    sql_total = sum(len(rows) for rows in sql_report.values())
    print(f"{sql_total} violating row(s) in {elapsed * 1000:.1f} ms")
    agree = set(sql_report) == set(detection.report.by_constraint())
    print(f"engines agree on which constraints are violated: {agree}")

    print("\n=== 2. Conditional vs traditional dependencies ===")
    comparison = compare_with_traditional(db, sigma)
    for kind, stats in comparison.items():
        print(f"  {kind:>12}: {stats['constraints']} constraints, "
              f"{stats['violations']} violations detected")
    missed = (
        comparison["conditional"]["violations"]
        - comparison["traditional"]["violations"]
    )
    print(f"  the conditional dependencies catch {missed} error(s) the "
          f"traditional FD/IND core misses\n  (on the paper's Fig. 1 "
          f"instance the traditional core sees nothing at all — "
          f"Example 1.2)")

    print("\n=== 3. Repair ===")
    started = time.perf_counter()
    result = repair(db, sigma, cind_policy="insert", max_rounds=15)
    elapsed = time.perf_counter() - started
    print(f"clean: {result.clean}; {result.cost} edit(s) in "
          f"{elapsed * 1000:.1f} ms; rounds: {result.rounds}")
    post = detect_errors(result.db, sigma)
    print(f"violations after repair: {post.report.total}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    rate = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05
    main(n, rate)
