"""Data cleaning at scale (the Example 1.2 workflow, scaled up).

Generates a bank database with thousands of accounts and a controlled
error rate, then — all through the unified ``repro.api`` facade —

1. detects violations with the in-memory engine, the SQL backend
   (pattern tableaux shipped as data tables, per [9]) and the parallel
   scan-group dispatcher, and checks the three *reports* are identical
   (not just the totals: the SQL rows are mapped back to canonical
   tuples, so the reports are comparable object-for-object);
2. shows what the *traditional* FDs/INDs would have caught (nothing);
3. repairs the database and re-checks.

Run:  python examples/data_cleaning.py [n_accounts] [error_rate]
"""

import sys
import time

from repro import api
from repro.cleaning.detect import compare_with_traditional
from repro.datasets.bank import bank_constraints, scaled_bank_instance


def report_key(report):
    """A backend-independent fingerprint of a ViolationReport."""
    return (
        [
            (report.label_for(v.cfd), v.pattern_index, v.lhs_values,
             tuple(t.values for t in v.tuples), v.kind)
            for v in report.cfd_violations
        ],
        [
            (report.label_for(v.cind), v.pattern_index, v.tuple_.values)
            for v in report.cind_violations
        ],
    )


def main(n_accounts: int = 2000, error_rate: float = 0.05) -> None:
    sigma = bank_constraints()
    db = scaled_bank_instance(n_accounts, error_rate=error_rate, seed=7)
    print(f"database: {db!r}")
    print(f"constraints: {sigma!r}\n")

    print("=== 1. Detection (in-memory engine) ===")
    session = api.connect(db, sigma)
    started = time.perf_counter()
    report = session.check()
    elapsed = time.perf_counter() - started
    print(f"{report.total} violation(s) in {elapsed * 1000:.1f} ms")
    for name, count in sorted(report.by_constraint().items()):
        print(f"  {name}: {count}")

    print("\n=== 1b. Detection (SQL backend, sqlite3) ===")
    started = time.perf_counter()
    with api.connect(db, sigma, backend="sql") as sql_session:
        sql_report = sql_session.check()
    elapsed = time.perf_counter() - started
    print(f"{sql_report.total} violation(s) in {elapsed * 1000:.1f} ms")
    print(f"reports identical: {report_key(sql_report) == report_key(report)}")

    print("\n=== 1c. Detection (parallel scan-group dispatch) ===")
    started = time.perf_counter()
    par_report = api.connect(db, sigma, workers=4).check()
    elapsed = time.perf_counter() - started
    print(f"{par_report.total} violation(s) in {elapsed * 1000:.1f} ms "
          f"(4 workers)")
    print(f"reports identical: {report_key(par_report) == report_key(report)}")

    print("\n=== 2. Conditional vs traditional dependencies ===")
    comparison = compare_with_traditional(db, sigma)
    for kind, stats in comparison.items():
        print(f"  {kind:>12}: {stats['constraints']} constraints, "
              f"{stats['violations']} violations detected")
    missed = (
        comparison["conditional"]["violations"]
        - comparison["traditional"]["violations"]
    )
    print(f"  the conditional dependencies catch {missed} error(s) the "
          f"traditional FD/IND core misses\n  (on the paper's Fig. 1 "
          f"instance the traditional core sees nothing at all — "
          f"Example 1.2)")

    print("\n=== 3. Repair ===")
    started = time.perf_counter()
    result = session.repair(cind_policy="insert", max_rounds=15)
    elapsed = time.perf_counter() - started
    print(f"clean: {result.clean}; {result.cost} edit(s) in "
          f"{elapsed * 1000:.1f} ms; rounds: {result.rounds}")
    post = api.connect(result.db, sigma).count()
    print(f"violations after repair: {post.total}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    rate = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05
    main(n, rate)
