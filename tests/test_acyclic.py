"""Tests for acyclicity analysis and exact acyclic implication."""

import pytest

from repro.core.acyclic import (
    chase_size_bound,
    cind_graph,
    implies_acyclic,
    is_acyclic,
    longest_path_length,
)
from repro.core.cind import CIND, standard_ind
from repro.core.implication import ImplicationStatus
from repro.errors import ReproError
from repro.relational.domains import FiniteDomain
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _


@pytest.fixture
def chain():
    r = RelationSchema("R", ["A", "B"])
    s = RelationSchema("S", ["C", "D"])
    t = RelationSchema("T", ["E", "F"])
    schema = DatabaseSchema([r, s, t])
    sigma = [
        standard_ind(r, ("A",), s, ("C",)),
        standard_ind(s, ("C",), t, ("E",)),
    ]
    return schema, sigma, (r, s, t)


class TestAcyclicity:
    def test_chain_is_acyclic(self, chain):
        __, sigma, __rels = chain
        assert is_acyclic(sigma)

    def test_cycle_detected(self, chain):
        schema, sigma, (r, s, t) = chain
        sigma = sigma + [standard_ind(t, ("E",), r, ("A",))]
        assert not is_acyclic(sigma)

    def test_self_loop_detected(self, chain):
        __, __, (r, *_rest) = chain
        loop = CIND(r, ("A",), (), r, ("B",), (), [((_,), (_,))])
        assert not is_acyclic([loop])

    def test_empty_set_acyclic(self):
        assert is_acyclic([])

    def test_bank_cinds_cyclic_or_not(self, bank):
        # account -> saving/checking -> interest: a DAG.
        assert is_acyclic(bank.cinds)

    def test_longest_path(self, chain):
        __, sigma, __rels = chain
        assert longest_path_length(cind_graph(sigma)) == 2


class TestChaseSizeBound:
    def test_positive_and_monotone(self, chain):
        schema, sigma, __rels = chain
        small = chase_size_bound(schema, sigma[:1])
        large = chase_size_bound(schema, sigma)
        assert 1 <= small <= large

    def test_finite_fanout_counted(self):
        dom = FiniteDomain("d4", ("1", "2", "3", "4"))
        r = RelationSchema("R", ["A"])
        s = RelationSchema("S", ["C", Attribute("D", dom)])
        schema = DatabaseSchema([r, s])
        sigma = [standard_ind(r, ("A",), s, ("C",))]
        assert chase_size_bound(schema, sigma) >= 4

    def test_cyclic_rejected(self, chain):
        schema, sigma, (r, s, t) = chain
        sigma = sigma + [standard_ind(t, ("E",), r, ("A",))]
        with pytest.raises(ReproError):
            chase_size_bound(schema, sigma)


class TestImpliesAcyclic:
    def test_decides_transitivity(self, chain):
        schema, sigma, (r, __s, t) = chain
        goal = standard_ind(r, ("A",), t, ("E",))
        result = implies_acyclic(schema, sigma, goal)
        assert result.status is ImplicationStatus.IMPLIED

    def test_decides_non_implication(self, chain):
        schema, sigma, (r, __s, t) = chain
        goal = standard_ind(t, ("E",), r, ("A",))
        result = implies_acyclic(schema, sigma, goal)
        assert result.status is ImplicationStatus.NOT_IMPLIED

    def test_never_unknown(self, bank):
        # The bank CINDs are acyclic; any goal gets a definite answer.
        from repro.core.cind import CIND

        account = bank.schema.relation("account_EDI")
        interest = bank.schema.relation("interest")
        goal = CIND(account, ("at",), (), interest, ("at",), (), [((_,), (_,))])
        result = implies_acyclic(bank.schema, bank.cinds, goal)
        assert result.status in (
            ImplicationStatus.IMPLIED, ImplicationStatus.NOT_IMPLIED
        )
        assert result.status is ImplicationStatus.IMPLIED

    def test_cyclic_rejected(self, chain):
        schema, sigma, (r, s, t) = chain
        sigma = sigma + [standard_ind(t, ("E",), r, ("A",))]
        with pytest.raises(ReproError):
            implies_acyclic(schema, sigma, sigma[0])
