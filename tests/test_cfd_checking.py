"""Tests for CFD_Checking: chase vs SAT vs brute force, Example 3.2, K_CFD."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.cfd_checking import cfd_checking, cfd_checking_all
from repro.consistency.encode import encode_cfd_consistency, sat_cfd_consistency
from repro.core.cfd import CFD, standard_fd
from repro.errors import ConstraintError
from repro.relational.domains import BOOL, FiniteDomain
from repro.relational.instance import RelationInstance
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _

from tests.strategies import cfds as cfd_strategy
from tests.strategies import relation_schemas

BACKENDS = ("chase", "sat", "brute")


def witness_satisfies(relation, cfds, witness):
    singleton = RelationInstance(relation, [witness])
    return all(cfd.satisfied_by(singleton) for cfd in cfds)


class TestExample32:
    """The four CFDs of Example 3.2 are inconsistent (finite bool domain)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_inconsistent(self, ab_schema, example_3_2_cfds, backend):
        r = ab_schema.relation("R")
        result = cfd_checking(r, example_3_2_cfds, backend=backend)
        assert not result.consistent

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_consistent_with_infinite_domain(self, example_3_2_cfds, backend):
        # Example 3.2's remark: with infinite dom(A) a tuple dodging all
        # the constants exists.
        r = RelationSchema("R", ["A", "B"])
        cfds = [
            CFD(r, ("A",), ("B",), [(("true",), ("b1",))]),
            CFD(r, ("A",), ("B",), [(("false",), ("b2",))]),
            CFD(r, ("B",), ("A",), [(("b1",), ("false",))]),
            CFD(r, ("B",), ("A",), [(("b2",), ("true",))]),
        ]
        result = cfd_checking(r, cfds, backend=backend)
        assert result.consistent
        assert witness_satisfies(r, cfds, result.witness)


class TestBasicCases:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_set_consistent(self, backend):
        r = RelationSchema("R", ["A"])
        result = cfd_checking(r, [], backend=backend)
        assert result.consistent
        assert result.witness is not None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_standard_fds_always_consistent(self, backend):
        r = RelationSchema("R", ["A", "B"])
        result = cfd_checking(r, [standard_fd(r, ("A",), ("B",))], backend=backend)
        assert result.consistent

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_direct_constant_conflict(self, backend):
        # (nil -> A, a) and (nil -> A, b): no tuple can satisfy both.
        r = RelationSchema("R", ["A"])
        cfds = [
            CFD(r, (), ("A",), [((), ("a",))]),
            CFD(r, (), ("A",), [((), ("b",))]),
        ]
        assert not cfd_checking(r, cfds, backend=backend).consistent

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_propagation_chain(self, backend):
        # nil -> A = a; A=a -> B = b; B=b -> C = c : consistent, forced tuple.
        r = RelationSchema("R", ["A", "B", "C"])
        cfds = [
            CFD(r, (), ("A",), [((), ("a",))]),
            CFD(r, ("A",), ("B",), [(("a",), ("b",))]),
            CFD(r, ("B",), ("C",), [(("b",), ("c",))]),
        ]
        result = cfd_checking(r, cfds, backend=backend)
        assert result.consistent
        assert result.witness["A"] == "a"
        assert result.witness["B"] == "b"
        assert result.witness["C"] == "c"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_propagation_chain_conflict(self, backend):
        r = RelationSchema("R", ["A", "B"])
        cfds = [
            CFD(r, (), ("A",), [((), ("a",))]),
            CFD(r, ("A",), ("B",), [(("a",), ("b1",))]),
            CFD(r, ("A",), ("B",), [(("a",), ("b2",))]),
        ]
        assert not cfd_checking(r, cfds, backend=backend).consistent

    def test_wrong_relation_rejected(self):
        r = RelationSchema("R", ["A"])
        s = RelationSchema("S", ["A"])
        cfd = CFD(s, (), ("A",), [((), ("a",))])
        with pytest.raises(ConstraintError):
            cfd_checking(r, [cfd])

    def test_unknown_backend_rejected(self):
        r = RelationSchema("R", ["A"])
        with pytest.raises(ValueError):
            cfd_checking(r, [CFD(r, (), ("A",), [((), ("a",))])], backend="nope")


class TestFiniteDomainCases:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_finite_domain_fully_blocked(self, backend):
        dom = FiniteDomain("d2", ("x", "y"))
        r = RelationSchema("R", [Attribute("A", dom), "B"])
        # Each domain value of A forces a B conflict.
        cfds = [
            CFD(r, ("A",), ("B",), [(("x",), ("p",))]),
            CFD(r, ("A",), ("B",), [(("x",), ("q",))]),
            CFD(r, ("A",), ("B",), [(("y",), ("p",))]),
            CFD(r, ("A",), ("B",), [(("y",), ("q",))]),
        ]
        assert not cfd_checking(r, cfds, backend=backend).consistent

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_finite_domain_one_escape(self, backend):
        dom = FiniteDomain("d3", ("x", "y", "z"))
        r = RelationSchema("R", [Attribute("A", dom), "B"])
        cfds = [
            CFD(r, ("A",), ("B",), [(("x",), ("p",))]),
            CFD(r, ("A",), ("B",), [(("x",), ("q",))]),
            CFD(r, ("A",), ("B",), [(("y",), ("p",))]),
            CFD(r, ("A",), ("B",), [(("y",), ("q",))]),
        ]
        result = cfd_checking(r, cfds, backend=backend)
        assert result.consistent
        assert result.witness["A"] == "z"

    def test_k_cfd_limits_search(self):
        # With K_CFD = 1 the chase tries a single valuation of a 2^10 space;
        # on an inconsistent-looking-but-consistent set it may answer False.
        dom = FiniteDomain("d2", ("x", "y"))
        attrs = [Attribute(f"A{i}", dom) for i in range(10)] + [Attribute("B")]
        r = RelationSchema("R", attrs)
        # Consistent only when every Ai = y.
        cfds = []
        for i in range(10):
            cfds.append(
                CFD(r, (f"A{i}",), ("B",), [(("x",), ("p",))])
            )
            cfds.append(
                CFD(r, (f"A{i}",), ("B",), [(("x",), ("q",))])
            )
        exhaustive = cfd_checking(r, cfds, backend="chase", k_cfd=2**10)
        assert exhaustive.consistent
        limited = cfd_checking(r, cfds, backend="chase", k_cfd=1, rng=random.Random(0))
        assert limited.valuations_tried <= 1
        if not limited.consistent:
            assert not limited.exhaustive  # a negative under budget is tentative

    def test_chase_reports_exhaustive_small_space(self, ab_schema, example_3_2_cfds):
        r = ab_schema.relation("R")
        result = cfd_checking(r, example_3_2_cfds, backend="chase", k_cfd=100)
        assert not result.consistent
        assert result.exhaustive  # bool space of size 2 fully explored


class TestCheckingAll:
    def test_per_relation_results(self, ab_schema, example_3_2_cfds):
        r2 = RelationSchema("S", ["X"])
        schema = DatabaseSchema([ab_schema.relation("R"), r2])
        results = cfd_checking_all(schema, example_3_2_cfds)
        assert not results["R"].consistent
        assert results["S"].consistent  # no CFDs on S


class TestEncoding:
    def test_encoding_shape(self, ab_schema, example_3_2_cfds):
        r = ab_schema.relation("R")
        enc = encode_cfd_consistency(r, example_3_2_cfds)
        # A has domain {True, False}; B has constants {b1, b2} + 1 fresh.
        assert len(enc.candidates["A"]) == 2
        assert len(enc.candidates["B"]) == 3
        assert enc.solver.num_vars == 5

    def test_sat_witness_decoded(self):
        r = RelationSchema("R", ["A", "B"])
        cfds = [CFD(r, (), ("A",), [((), ("a",))])]
        consistent, witness, __ = sat_cfd_consistency(r, cfds)
        assert consistent
        assert witness["A"] == "a"
        assert witness_satisfies(r, cfds, witness)


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_backends_agree_on_random_cfds(data):
    """Chase (exhaustive K), SAT and brute force must agree; witnesses valid."""
    relation = data.draw(relation_schemas(name="R", max_arity=4))
    n = data.draw(st.integers(min_value=1, max_value=5))
    sigma = [data.draw(cfd_strategy(relation)) for __ in range(n)]
    chase = cfd_checking(relation, sigma, backend="chase", k_cfd=10_000)
    sat = cfd_checking(relation, sigma, backend="sat")
    brute = cfd_checking(relation, sigma, backend="brute")
    assert chase.consistent == sat.consistent == brute.consistent
    for result in (chase, sat, brute):
        if result.consistent:
            assert witness_satisfies(relation, sigma, result.witness)
