"""Tests for the ≍ order and pattern tableaux (Section 2 of the paper)."""

import pytest

from repro.core.patterns import PatternTableau, PatternTuple, matches, matches_all
from repro.errors import ConstraintError
from repro.relational.values import WILDCARD as _
from repro.relational.values import Variable


class TestMatchesOrder:
    """The ≍ order: η1 ≍ η2 iff η1 = η2 or η2 = '_'; v ≭ a; v ≍ '_'."""

    def test_equal_constants_match(self):
        assert matches("EDI", "EDI")
        assert matches(42, 42)

    def test_distinct_constants_do_not_match(self):
        assert not matches("4.5%", "10.5%")

    def test_everything_matches_wildcard(self):
        assert matches("EDI", _)
        assert matches(0, _)
        assert matches(Variable("A", 0), _)  # v ≍ '_' (Section 5.1)

    def test_variable_never_matches_constant(self):
        assert not matches(Variable("A", 0), "a")  # v ≭ a

    def test_variable_matches_itself_only(self):
        v = Variable("A", 0)
        assert matches(v, v)
        assert not matches(v, Variable("A", 1))

    def test_order_is_not_symmetric(self):
        # '_' on the left is not a value; constants only match '_' on the right.
        assert matches("a", _)
        # (matching a pattern against a value is never done; the API always
        # has the pattern on the right.)

    def test_paper_example_tuple_match(self):
        # (EDI, UK, 1.5%) ≍ (EDI, UK, _) but (EDI, UK, 4.5%) ≭ (EDI, UK, 10.5%)
        assert matches_all(("EDI", "UK", "1.5%"), ("EDI", "UK", _))
        assert not matches_all(("EDI", "UK", "4.5%"), ("EDI", "UK", "10.5%"))

    def test_matches_all_length_mismatch(self):
        with pytest.raises(ConstraintError):
            matches_all(("a",), ("a", "b"))


class TestPatternTuple:
    def test_construction_and_access(self):
        pt = PatternTuple({"A": _, "B": "b"}, {"C": "c"})
        assert pt.lhs_value("B") == "b"
        assert pt.rhs_value("C") == "c"
        assert pt.lhs_attributes == ("A", "B")

    def test_rejects_invalid_pattern_values(self):
        with pytest.raises(ConstraintError):
            PatternTuple({"A": Variable("A", 0)}, {})

    def test_unknown_attribute_access(self):
        pt = PatternTuple({"A": _}, {})
        with pytest.raises(ConstraintError):
            pt.lhs_value("Z")
        with pytest.raises(ConstraintError):
            pt.rhs_value("A")

    def test_projections(self):
        pt = PatternTuple({"A": "x", "B": _}, {"C": "y"})
        assert pt.lhs_projection(["B", "A"]) == (_, "x")
        assert pt.rhs_projection(["C"]) == ("y",)

    def test_constants_collection(self):
        pt = PatternTuple({"A": "x", "B": _}, {"C": "y"})
        assert pt.constants() == {"x", "y"}
        assert pt.lhs_constants() == {"A": "x"}
        assert pt.rhs_constants() == {"C": "y"}

    def test_equality_and_hash(self):
        a = PatternTuple({"A": "x"}, {"B": _})
        b = PatternTuple({"A": "x"}, {"B": _})
        c = PatternTuple({"A": "y"}, {"B": _})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_same_attribute_both_sides(self):
        # ψ5 of Fig. 2 has 'ab' on both sides with (potentially) different values.
        pt = PatternTuple({"ab": "EDI"}, {"ab": "EDI", "at": "saving"})
        assert pt.lhs_value("ab") == "EDI"
        assert pt.rhs_value("at") == "saving"


class TestPatternTableau:
    def test_row_coercion_from_sequences(self):
        t = PatternTableau(["A", "B"], ["C"], [(("x", _), ("y",))])
        assert len(t) == 1
        assert t[0].lhs_value("A") == "x"

    def test_row_coercion_from_mappings(self):
        t = PatternTableau(["A", "B"], ["C"], [({"A": "x"}, {"C": "y"})])
        # unmentioned attributes default to wildcard
        assert t[0].lhs_value("B") is _

    def test_row_arity_validation(self):
        t = PatternTableau(["A", "B"], ["C"])
        with pytest.raises(ConstraintError):
            t.add_row((("x",), ("y",)))
        with pytest.raises(ConstraintError):
            t.add_row((("x", "z"), ()))

    def test_row_attribute_validation(self):
        t = PatternTableau(["A"], ["B"])
        with pytest.raises(ConstraintError):
            t.add_row(PatternTuple({"Z": _}, {"B": _}))

    def test_duplicate_tableau_attributes_rejected(self):
        with pytest.raises(ConstraintError):
            PatternTableau(["A", "A"], ["B"])
        with pytest.raises(ConstraintError):
            PatternTableau(["A"], ["B", "B"])

    def test_bad_row_shape_rejected(self):
        t = PatternTableau(["A"], ["B"])
        with pytest.raises(ConstraintError):
            t.add_row("garbage-not-a-pair-of-sides-xx")

    def test_multi_row_iteration_order(self):
        t = PatternTableau(
            ["A"], ["B"], [(("1",), ("x",)), (("2",), ("y",))]
        )
        assert [row.lhs_value("A") for row in t] == ["1", "2"]

    def test_constants_union(self):
        t = PatternTableau(["A"], ["B"], [(("1",), (_,)), ((_,), ("y",))])
        assert t.constants() == {"1", "y"}

    def test_equality(self):
        t1 = PatternTableau(["A"], ["B"], [(("1",), ("x",))])
        t2 = PatternTableau(["A"], ["B"], [(("1",), ("x",))])
        t3 = PatternTableau(["A"], ["B"], [(("2",), ("x",))])
        assert t1 == t2
        assert t1 != t3
