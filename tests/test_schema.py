"""Tests for repro.relational.schema."""

import pytest

from repro.errors import SchemaError
from repro.relational.domains import BOOL, STRING
from repro.relational.schema import (
    Attribute,
    DatabaseSchema,
    RelationSchema,
    database,
    schema,
)


class TestAttribute:
    def test_default_domain_is_string(self):
        assert Attribute("A").domain is STRING

    def test_equality_requires_same_domain_object(self):
        assert Attribute("A") == Attribute("A")
        assert Attribute("A", BOOL) != Attribute("A")

    def test_is_finite(self):
        assert Attribute("A", BOOL).is_finite
        assert not Attribute("A").is_finite

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")


class TestRelationSchema:
    def test_string_specs_coerced(self):
        r = RelationSchema("R", ["A", "B"])
        assert r.attribute_names == ("A", "B")
        assert r.arity == 2

    def test_declaration_order_preserved(self):
        r = RelationSchema("R", ["C", "A", "B"])
        assert r.attribute_names == ("C", "A", "B")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["A", "A"])

    def test_empty_relation_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_attribute_lookup(self):
        r = RelationSchema("R", ["A", Attribute("B", BOOL)])
        assert r.attribute("B").domain is BOOL
        with pytest.raises(SchemaError):
            r.attribute("Z")

    def test_contains(self):
        r = RelationSchema("R", ["A"])
        assert "A" in r
        assert "Z" not in r

    def test_finite_attributes(self):
        r = RelationSchema("R", ["A", Attribute("B", BOOL)])
        assert [a.name for a in r.finite_attributes()] == ["B"]

    def test_check_attribute_list(self):
        r = RelationSchema("R", ["A", "B", "C"])
        assert r.check_attribute_list(["C", "A"]) == ("C", "A")
        with pytest.raises(SchemaError):
            r.check_attribute_list(["A", "A"])
        with pytest.raises(SchemaError):
            r.check_attribute_list(["A", "Z"])

    def test_equality(self):
        assert RelationSchema("R", ["A"]) == RelationSchema("R", ["A"])
        assert RelationSchema("R", ["A"]) != RelationSchema("R", ["B"])


class TestDatabaseSchema:
    def test_lookup_and_contains(self):
        db = DatabaseSchema([RelationSchema("R", ["A"]), RelationSchema("S", ["B"])])
        assert "R" in db and "S" in db
        assert db.relation("R").name == "R"
        assert len(db) == 2
        with pytest.raises(SchemaError):
            db.relation("T")

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationSchema("R", ["A"]), RelationSchema("R", ["B"])])

    def test_finite_attribute_summary(self):
        db = DatabaseSchema(
            [
                RelationSchema("R", ["A", Attribute("F", BOOL)]),
                RelationSchema("S", ["B"]),
            ]
        )
        summary = db.finite_attributes()
        assert set(summary) == {"R"}
        assert db.has_finite_attributes()

    def test_no_finite_attributes(self):
        db = DatabaseSchema([RelationSchema("R", ["A"])])
        assert not db.has_finite_attributes()
        assert db.finite_attributes() == {}


class TestConvenienceConstructors:
    def test_schema_helper(self):
        r = schema("R", "A", Attribute("B", BOOL))
        assert r.attribute_names == ("A", "B")

    def test_database_helper_with_mapping(self):
        db = database({"R": ["A", "B"], "S": ["C"]})
        assert set(db.relation_names) == {"R", "S"}

    def test_database_helper_mixed(self):
        db = database(schema("R", "A"), {"S": ["B"]})
        assert set(db.relation_names) == {"R", "S"}
