"""Tests for constraint propagation through selection-projection views.

The soundness property under test: whenever ``db |= Σ``, the materialised
view database satisfies every propagated constraint.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cfd import CFD, standard_fd
from repro.core.cind import CIND
from repro.errors import SchemaError
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _
from repro.views.spc import SPView, materialize, propagate_cfds, propagate_cinds

from tests.strategies import cfds as cfd_strategy
from tests.strategies import database_schemas, instances


@pytest.fixture
def edi_checking_view(bank):
    """The Edinburgh checking accounts, as a view."""
    return SPView(
        name="edi_checking",
        base=bank.schema.relation("checking"),
        keep=("an", "cn", "ab"),
        conditions={"ab": "EDI"},
    )


class TestViewBasics:
    def test_schema(self, edi_checking_view):
        schema = edi_checking_view.schema
        assert schema.name == "edi_checking"
        assert schema.attribute_names == ("an", "cn", "ab")

    def test_evaluate(self, bank, edi_checking_view):
        result = edi_checking_view.evaluate(bank.db)
        assert len(result) == 1  # only t10 is an EDI checking account
        assert result.tuples[0]["cn"] == "I. Stark"

    def test_materialize(self, bank, edi_checking_view):
        extended = materialize(bank.db, [edi_checking_view])
        assert "edi_checking" in extended.schema
        assert len(extended["checking"]) == len(bank.db["checking"])
        assert len(extended["edi_checking"]) == 1

    def test_validation(self, bank):
        checking = bank.schema.relation("checking")
        with pytest.raises(SchemaError):
            SPView("v", checking, ("nope",), {})
        with pytest.raises(SchemaError):
            SPView("v", checking, ("an",), {"nope": "x"})
        with pytest.raises(SchemaError):
            SPView("v", checking, (), {})

    def test_condition_constant_must_be_in_domain(self, bank):
        interest = bank.schema.relation("interest")
        with pytest.raises(SchemaError):
            SPView("v", interest, ("ab",), {"at": "not-a-type"})


class TestCFDPropagation:
    def test_inherited_fd(self, bank, edi_checking_view):
        # ϕ2's attributes cn ⊆ keep only partially (ca, cp dropped):
        # the (an, ab -> cn) part is expressible after normalisation.
        checking = bank.schema.relation("checking")
        fd = standard_fd(checking, ("an", "ab"), ("cn",), name="key")
        (propagated, *consts) = propagate_cfds(edi_checking_view, [fd])
        assert propagated.relation.name == "edi_checking"
        assert propagated.lhs == ("an", "ab")

    def test_selection_constant_cfd(self, bank, edi_checking_view):
        out = propagate_cfds(edi_checking_view, [])
        (sel,) = out
        assert sel.lhs == ()
        assert sel.pattern.rhs_value("ab") == "EDI"
        extended = materialize(bank.db, [edi_checking_view])
        assert sel.satisfied_by(extended["edi_checking"])

    def test_wildcard_specialised_to_condition(self, bank, edi_checking_view):
        checking = bank.schema.relation("checking")
        cfd = CFD(checking, ("ab",), ("cn",), [((_,), (_,))], name="g")
        propagated = propagate_cfds(edi_checking_view, [cfd])
        inherited = [c for c in propagated if c.name == "g@edi_checking"][0]
        assert inherited.pattern.lhs_value("ab") == "EDI"

    def test_contradicting_row_dropped(self, bank, edi_checking_view):
        checking = bank.schema.relation("checking")
        cfd = CFD(
            checking, ("ab",), ("cn",),
            [(("NYC",), ("x",)), (("EDI",), (_,))],
            name="two-rows",
        )
        propagated = propagate_cfds(edi_checking_view, [cfd])
        inherited = [c for c in propagated if c.name.startswith("two-rows")][0]
        assert len(inherited.tableau) == 1  # the NYC row is vacuous on V

    def test_non_kept_attributes_do_not_propagate(self, bank, edi_checking_view):
        checking = bank.schema.relation("checking")
        cfd = standard_fd(checking, ("cp",), ("cn",))  # cp not kept
        propagated = propagate_cfds(edi_checking_view, [cfd])
        assert all(c.name.startswith("sel(") for c in propagated)


class TestCINDPropagation:
    def test_source_side_propagates(self, bank, edi_checking_view):
        psi4 = bank.by_name["psi4"]  # checking[ab] ⊆ interest[ab]
        (propagated,) = propagate_cinds(edi_checking_view, [psi4])
        assert propagated.lhs_relation.name == "edi_checking"
        assert propagated.rhs_relation.name == "interest"
        extended = materialize(bank.db, [edi_checking_view])
        assert propagated.satisfied_by(extended)

    def test_violation_survives_propagation(self, bank, edi_checking_view):
        # ψ6 restricted to the EDI view still catches t10.
        psi6 = bank.by_name["psi6"]
        (propagated,) = propagate_cinds(edi_checking_view, [psi6])
        # Only the EDI row survives (the NYC row contradicts ab = 'EDI'...
        # actually ab is in Xp with pattern EDI/NYC; the NYC row is vacuous).
        assert len(propagated.tableau) == 1
        extended = materialize(bank.db, [edi_checking_view])
        assert not propagated.satisfied_by(extended)
        clean = materialize(bank.clean_db, [edi_checking_view])
        assert propagated.satisfied_by(clean)

    def test_non_kept_premise_blocks_propagation(self, bank):
        view = SPView(
            "v", bank.schema.relation("checking"), ("an", "cn"), {}
        )
        psi4 = bank.by_name["psi4"]  # needs ab, which is not kept
        assert propagate_cinds(view, [psi4]) == []


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_propagation_soundness_property(data):
    """db |= Σ implies materialised views satisfy every propagated CFD."""
    schema = data.draw(database_schemas(max_relations=1, allow_finite=False))
    base = list(schema)[0]
    n = data.draw(st.integers(min_value=1, max_value=3))
    sigma = [data.draw(cfd_strategy(base)) for __ in range(n)]
    db = data.draw(instances(schema, max_tuples=8))
    # Keep only instances satisfying Σ (discard rest).
    from hypothesis import assume

    assume(all(c.satisfied_by(db) for c in sigma))
    keep_size = data.draw(st.integers(min_value=1, max_value=base.arity))
    keep = base.attribute_names[:keep_size]
    cond_attr = data.draw(st.sampled_from(list(base.attribute_names)))
    conditions = (
        {cond_attr: data.draw(st.sampled_from(["a", "b", "c"]))}
        if data.draw(st.booleans())
        else {}
    )
    view = SPView("v", base, keep, conditions)
    extended = materialize(db, [view])
    for cfd in propagate_cfds(view, sigma):
        assert cfd.satisfied_by(extended["v"]), (cfd, view)
