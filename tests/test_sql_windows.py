"""The sqlfile window pipeline: rowid geometry, partition laws, fallback.

:mod:`repro.sql.windows` carries two independent claims, each pinned
here the same way :mod:`tests.test_shards` pins the in-memory shard
algebra:

* **partition equivalence** — scanning *any* contiguous rowid partition
  of a relation and merging the per-window partial states in window
  order yields exactly the single-window (serial) result, for all three
  scan kinds (CFD group states, witness key sets, CIND probe buckets).
  Hypothesis draws the cut points.
* **one-pass = legacy** — the window-function CFD path returns the
  legacy executor's hits bit-identically, stays bit-identical across
  interleaved DML (differential test), keeps its single-scan /
  covering-index query plans (EXPLAIN QUERY PLAN regression), and falls
  back to the legacy SQL automatically when the sqlite library has no
  window functions — with ``window_functions="require"`` the same
  condition is a loud typed error instead.

The end-to-end bar — a windowed parallel ``check()`` satisfies the full
backend contract bit-identically — lives in
``test_conformance.py::TestWindowedSQLFileContract``.
"""

from __future__ import annotations

import sqlite3
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.api.options import ExecutionOptions
from repro.datasets.bank import bank_constraints, scaled_bank_instance
from repro.engine import plan_detection
from repro.engine.cache import SQLScanCache
from repro.engine.shards import (
    cfd_finalize,
    cind_finalize,
    merge_cfd_states,
    merge_cind_states,
)
from repro.errors import SQLBackendError
from repro.sql.loader import connect_file, create_database_file, table_rowid_bounds
from repro.sql.windows import (
    MAX_REFINE_CANDIDATES,
    ReadonlyConnectionPool,
    RowidWindow,
    SeededWitnesses,
    cfd_candidate_sql,
    cfd_onepass_hits,
    cfd_window_state,
    cind_window_state,
    plan_rowid_windows,
    supports_window_functions,
    witness_window_set,
)


@pytest.fixture(scope="module")
def dirty_file(tmp_path_factory):
    """A dirty bank instance on disk plus its plan, shared per module.

    Every test here only *reads* the file (or patches module attributes),
    so module scope is safe and keeps the Hypothesis loops fast.
    """
    sigma = bank_constraints()
    db = scaled_bank_instance(12, error_rate=0.25, seed=11)
    path = create_database_file(
        tmp_path_factory.mktemp("windows") / "dirty.db", db
    )
    conn = connect_file(path, readonly=True)
    yield {
        "path": path,
        "sigma": sigma,
        "schema": sigma.schema,
        "plan": plan_detection(sigma),
        "conn": conn,
    }
    conn.close()


def _partition(relation, lo, hi, cuts):
    """Contiguous windows over [lo, hi] split at the (deduped) cut points."""
    windows = []
    start = lo
    for cut in sorted(set(cuts)):
        if start <= cut < hi:
            windows.append((start, cut))
            start = cut + 1
    windows.append((start, hi))
    return [
        RowidWindow(relation, i, a, b) for i, (a, b) in enumerate(windows)
    ]


# -- rowid window geometry ----------------------------------------------------


class TestPlanRowidWindows:
    def test_windows_cover_span_contiguously(self, dirty_file):
        conn = dirty_file["conn"]
        for rel in dirty_file["schema"].relation_names:
            lo, hi, n_rows = table_rowid_bounds(conn, rel)
            windows = plan_rowid_windows(
                conn, rel, workers=3, min_window_rows=1
            )
            assert windows[0].lo == lo and windows[-1].hi == hi
            for prev, nxt in zip(windows, windows[1:]):
                assert nxt.lo == prev.hi + 1          # contiguous, disjoint
            assert [w.index for w in windows] == list(range(len(windows)))
            if n_rows > 0:
                # Every rowid in exactly one window.
                counted = sum(
                    conn.execute(
                        f"SELECT COUNT(*) FROM {rel} t WHERE {w.predicate()}"
                    ).fetchone()[0]
                    for w in windows
                )
                assert counted == n_rows

    def test_explicit_shards_force_count(self, dirty_file):
        conn = dirty_file["conn"]
        rel = max(
            dirty_file["schema"].relation_names,
            key=lambda r: table_rowid_bounds(conn, r)[2],
        )
        __, __, n_rows = table_rowid_bounds(conn, rel)
        assert n_rows > 4
        windows = plan_rowid_windows(
            conn, rel, workers=2, min_window_rows=1, shards=4
        )
        assert len(windows) == 4

    def test_small_tables_stay_single_window(self, dirty_file):
        conn = dirty_file["conn"]
        windows = plan_rowid_windows(
            conn, "interest", workers=8, min_window_rows=10 ** 6
        )
        assert len(windows) == 1

    def test_empty_table_single_empty_window(self, dirty_file, tmp_path):
        other = sqlite3.connect(tmp_path / "empty.db")
        other.execute("CREATE TABLE e (a)")
        other.commit()
        windows = plan_rowid_windows(other, "e", workers=4, min_window_rows=1)
        assert len(windows) == 1
        assert other.execute(
            f"SELECT COUNT(*) FROM e t WHERE {windows[0].predicate()}"
        ).fetchone()[0] == 0
        other.close()


# -- partition equivalence (Hypothesis) ---------------------------------------


class TestPartitionEquivalence:
    """Merging any contiguous rowid partition == the single-window scan."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_cfd_states(self, dirty_file, data):
        conn = dirty_file["conn"]
        schema = dirty_file["schema"]
        groups = dirty_file["plan"].cfd_groups
        group = data.draw(st.sampled_from(groups))
        rel = schema.relation(group.relation)
        lo, hi, __ = table_rowid_bounds(conn, group.relation)
        cuts = data.draw(st.lists(st.integers(lo, max(lo, hi)), max_size=4))
        whole = RowidWindow(group.relation, 0, lo, hi)
        serial = cfd_window_state(conn, rel, group, whole)
        parts = [
            cfd_window_state(conn, rel, group, w)
            for w in _partition(group.relation, lo, hi, cuts)
        ]
        merged = merge_cfd_states(parts)
        # Finalize reads first-value maps (in first-occurrence order) and
        # disagree sets; hit-list equality is the currency that matters.
        assert cfd_finalize(group, merged) == cfd_finalize(group, serial)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_witness_sets(self, dirty_file, data):
        conn = dirty_file["conn"]
        schema = dirty_file["schema"]
        specs = [
            spec
            for spec_list in dirty_file["plan"].witness_specs.values()
            for spec in spec_list
        ]
        spec = data.draw(st.sampled_from(specs))
        rel = schema.relation(spec.rhs_relation)
        lo, hi, __ = table_rowid_bounds(conn, spec.rhs_relation)
        cuts = data.draw(st.lists(st.integers(lo, max(lo, hi)), max_size=4))
        whole = witness_window_set(
            conn, rel, spec, RowidWindow(spec.rhs_relation, 0, lo, hi)
        )
        union = set()
        for w in _partition(spec.rhs_relation, lo, hi, cuts):
            union |= witness_window_set(conn, rel, spec, w)
        assert union == whole

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_cind_states(self, dirty_file, data):
        schema = dirty_file["schema"]
        plan = dirty_file["plan"]
        relation = data.draw(st.sampled_from(sorted(plan.cind_scans)))
        tasks = plan.cind_scans[relation]
        rel = schema.relation(relation)
        # SeededWitnesses is per-run state (one instance per pool of
        # connections, both discarded together); a fresh connection per
        # example mirrors that lifetime.
        conn = connect_file(dirty_file["path"], readonly=True)
        try:
            merged_witnesses = {}
            for task in tasks:
                spec = task.witness
                if spec in merged_witnesses:
                    continue
                wrel = spec.rhs_relation
                wlo, whi, __ = table_rowid_bounds(conn, wrel)
                merged_witnesses[spec] = witness_window_set(
                    conn, schema.relation(wrel), spec,
                    RowidWindow(wrel, 0, wlo, whi),
                )
            tables = SeededWitnesses().ensure(conn, merged_witnesses)
            lo, hi, __ = table_rowid_bounds(conn, relation)
            cuts = data.draw(
                st.lists(st.integers(lo, max(lo, hi)), max_size=4)
            )
            whole = cind_window_state(
                conn, rel, tasks, RowidWindow(relation, 0, lo, hi), tables
            )
            parts = [
                cind_window_state(conn, rel, tasks, w, tables)
                for w in _partition(relation, lo, hi, cuts)
            ]
            merged = merge_cind_states(parts)

            def flat(state):
                return [
                    (id(task), payload.values)
                    for task, payload in cind_finalize(tasks, state)
                ]

            assert flat(merged) == flat(whole)
        finally:
            conn.close()


# -- one-pass window-function path vs legacy SQL ------------------------------


def _report_repr(path, sigma, **option_kwargs):
    with api.connect(path, sigma, backend="sqlfile", **option_kwargs) as s:
        return repr(s.check())


class TestOnePassVsLegacy:
    def test_reports_identical_on_dirty_file(self, dirty_file):
        path, sigma = dirty_file["path"], dirty_file["sigma"]
        assert _report_repr(path, sigma) == _report_repr(
            path, sigma, window_functions="off"
        )

    def test_onepass_hits_match_legacy_order(self, dirty_file):
        """Direct kernel comparison, group by group, against the legacy
        executor (window_functions='off') via its public hit API."""
        from repro.sql.violations import SQLPlanExecutor

        conn = connect_file(dirty_file["path"], readonly=True)
        try:
            plan = dirty_file["plan"]
            legacy = SQLPlanExecutor(conn, plan, window_functions="off")
            schema = dirty_file["schema"]
            for group in plan.cfd_groups:
                rel = schema.relation(group.relation)
                hits = cfd_onepass_hits(conn, rel, group)
                assert hits is not None
                assert hits == legacy.cfd_group_hits(group)
        finally:
            conn.close()

    def test_too_many_candidates_fall_back(self, dirty_file):
        """Past MAX_REFINE_CANDIDATES the kernel declines (None) and the
        executor must answer identically through the legacy SQL."""
        conn = dirty_file["conn"]
        schema = dirty_file["schema"]
        plan = dirty_file["plan"]
        declined = 0
        for group in plan.cfd_groups:
            rel = schema.relation(group.relation)
            full = cfd_onepass_hits(conn, rel, group)
            capped = cfd_onepass_hits(conn, rel, group, max_candidates=0)
            if capped is None:
                declined += 1
            else:
                # A group with zero candidates never reaches the cap.
                assert capped == full == []
        assert declined > 0  # the dirty fixture exercises the cap path
        assert MAX_REFINE_CANDIDATES > 0

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(min_value=0, max_value=10 ** 6),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    def test_differential_under_interleaved_dml(self, seed, ops):
        """Two live sessions over twin files — one-pass vs legacy SQL —
        fed the same interleaved inserts/deletes agree bit-identically
        after every step (caches, invalidation, and SQL all in the loop).
        """
        sigma = bank_constraints()
        db = scaled_bank_instance(5, error_rate=0.2, seed=seed)
        with tempfile.TemporaryDirectory() as tmp:
            self._differential(tmp, db, sigma, ops)

    @staticmethod
    def _differential(tmp, db, sigma, ops):
        base = Path(tmp)
        path_a = create_database_file(base / "win.db", db)
        path_b = create_database_file(base / "leg.db", db)
        relations = list(db.schema.relation_names)
        with api.connect(path_a, sigma, backend="sqlfile") as win, \
                api.connect(
                    path_b, sigma, backend="sqlfile", window_functions="off"
                ) as leg:
            assert repr(win.check()) == repr(leg.check())
            for op, op_seed in ops:
                relation = relations[op_seed % len(relations)]
                rel = db.schema.relation(relation)
                if op == "insert":
                    row = {}
                    for j, attr in enumerate(rel.attributes):
                        if attr.is_finite:
                            values = attr.domain.values
                            row[attr.name] = values[op_seed % len(values)]
                        else:
                            row[attr.name] = f"v{(op_seed + j) % 7}"
                    assert win.insert(relation, dict(row)) == leg.insert(
                        relation, dict(row)
                    )
                else:
                    tuples = db[relation].tuples
                    if not tuples:
                        continue
                    victim = tuples[op_seed % len(tuples)]
                    assert win.delete(relation, victim) == leg.delete(
                        relation, victim
                    )
                assert repr(win.check()) == repr(leg.check())


# -- EXPLAIN QUERY PLAN regressions -------------------------------------------


def _query_plan(conn, sql, params=()):
    return [
        row[-1]
        for row in conn.execute("EXPLAIN QUERY PLAN " + sql, params)
    ]


class TestQueryPlans:
    def test_candidate_prefilter_is_one_scan(self, dirty_file):
        """Stage 1's whole point is replacing N per-variant queries with
        one aggregate pass: its plan must touch the relation exactly once
        and never materialize a second scan of it."""
        conn = dirty_file["conn"]
        schema = dirty_file["schema"]
        checked = 0
        for group in dirty_file["plan"].cfd_groups:
            staged = cfd_candidate_sql(schema.relation(group.relation), group)
            if staged is None:
                continue
            details = _query_plan(conn, *staged)
            table_touches = [
                d for d in details if d.startswith(("SCAN", "SEARCH"))
            ]
            assert len(table_touches) == 1, details
            assert table_touches[0].startswith("SCAN"), details
            checked += 1
        assert checked > 0

    def test_witness_anti_join_keeps_covering_index(self, tmp_path):
        """The windowed CIND probe's NOT EXISTS must hit the seeded temp
        witness table through its covering index — losing it would turn
        every probed row into a full witness-table scan. Like
        ``test_sqlfile.TestWitnessProbePlan``, the witness is made wide
        (800 keys): on a two-row table sqlite *correctly* prefers a scan,
        which would say nothing about the index."""
        from repro.core.cind import CIND
        from repro.core.violations import ConstraintSet
        from repro.relational.instance import DatabaseInstance
        from repro.relational.schema import (
            Attribute,
            DatabaseSchema,
            RelationSchema,
        )
        from repro.relational.values import WILDCARD as _

        schema = DatabaseSchema(
            [
                RelationSchema("R1", [Attribute("a")]),
                RelationSchema("R2", [Attribute("b")]),
            ]
        )
        db = DatabaseInstance(schema)
        for i in range(800):
            db.add("R1", (f"v{i}",))
            db.add("R2", (f"v{i + 3}",))
        sigma = ConstraintSet(schema)
        sigma.add_cind(
            CIND(
                schema.relation("R1"), ("a",), (), schema.relation("R2"),
                ("b",), (), [((_,), (_,))], name="psi_big",
            )
        )
        path = create_database_file(tmp_path / "wide.db", db)
        plan = plan_detection(sigma)
        conn = connect_file(path, readonly=True)
        try:
            [task] = [
                t
                for tasks in plan.cind_scans.values()
                for t in tasks
                if t.x_positions
            ]
            spec = task.witness
            wlo, whi, __ = table_rowid_bounds(conn, spec.rhs_relation)
            merged = {
                spec: witness_window_set(
                    conn, schema.relation(spec.rhs_relation), spec,
                    RowidWindow(spec.rhs_relation, 0, wlo, whi),
                )
            }
            assert len(merged[spec]) == 800
            tables = SeededWitnesses().ensure(conn, merged)
            lo, hi, __ = table_rowid_bounds(conn, "R1")
            # A genuine sub-span window, as the parallel path issues them.
            window = RowidWindow("R1", 0, lo, (lo + hi) // 2)
            witness = tables[spec]
            sql = (
                'SELECT t1."a" FROM "R1" t1 '
                f"WHERE {window.predicate('t1')} AND NOT EXISTS "
                f'(SELECT 1 FROM "{witness}" w WHERE w."k0" = t1."a") '
                "ORDER BY t1.rowid"
            )
            details = " | ".join(_query_plan(conn, sql))
            assert "USING COVERING INDEX" in details, details
            assert "SCAN w" not in details, details
            # And the probe answers correctly through that plan: the
            # window's share of the 3 unmatched keys.
            rows = conn.execute(sql).fetchall()
            assert rows == [("v0",), ("v1",), ("v2",)]
        finally:
            conn.close()


# -- fallback and options -----------------------------------------------------


class TestFallback:
    def test_probe_detects_this_sqlite(self, dirty_file):
        # The dev/CI floor is sqlite >= 3.25; the probe must agree.
        assert supports_window_functions(dirty_file["conn"]) is True

    def test_auto_falls_back_identically(self, dirty_file, monkeypatch):
        """A library without window functions silently gets the legacy
        SQL — same report, no error."""
        reference = _report_repr(dirty_file["path"], dirty_file["sigma"])
        monkeypatch.setattr(
            "repro.sql.violations.supports_window_functions",
            lambda conn: False,
        )
        with api.connect(
            dirty_file["path"], dirty_file["sigma"], backend="sqlfile"
        ) as session:
            assert session.backend._executor.use_window_functions is False
            assert repr(session.check()) == reference

    def test_require_raises_without_support(self, dirty_file, monkeypatch):
        monkeypatch.setattr(
            "repro.sql.violations.supports_window_functions",
            lambda conn: False,
        )
        with pytest.raises(SQLBackendError, match="window_functions"):
            api.connect(
                dirty_file["path"], dirty_file["sigma"], backend="sqlfile",
                window_functions="require",
            )

    def test_off_disables_the_onepass_path(self, dirty_file):
        with api.connect(
            dirty_file["path"], dirty_file["sigma"], backend="sqlfile",
            window_functions="off",
        ) as session:
            assert session.backend._executor.use_window_functions is False

    def test_options_validation(self):
        assert ExecutionOptions(window_functions="auto").window_functions
        for bogus in ("on", "", "AUTO", None, True):
            with pytest.raises(ValueError):
                ExecutionOptions(window_functions=bogus)


class TestReadonlyPool:
    def test_bounded_borrow_and_close(self, dirty_file):
        pool = ReadonlyConnectionPool(dirty_file["path"], size=2)
        with pool.connection() as c1, pool.connection() as c2:
            assert c1 is not c2
            assert c1.execute("SELECT 1").fetchone() == (1,)
        with pool.connection() as c3:
            assert c3 in (c1, c2)              # recycled, not grown
        pool.close()

    def test_connections_are_readonly(self, dirty_file):
        pool = ReadonlyConnectionPool(dirty_file["path"], size=1)
        try:
            with pool.connection() as conn:
                with pytest.raises(sqlite3.OperationalError):
                    conn.execute("DELETE FROM interest")
        finally:
            pool.close()


class TestCachePeek:
    def test_peek_never_touches_counters(self):
        cache = SQLScanCache()
        cache.store("k", ("t",), [1, 2])
        hits, misses = cache.hits, cache.misses
        assert cache.peek("k") == [1, 2]
        assert cache.peek("nope") is None
        assert (cache.hits, cache.misses) == (hits, misses)
        # get() is the counted consumer path.
        assert cache.get("k") == [1, 2]
        assert cache.hits == hits + 1
