"""Tests for the directed-graph substrate."""

import pytest

from repro.graph.digraph import DiGraph


@pytest.fixture
def diamond():
    """A -> B, A -> C, B -> D, C -> D."""
    g = DiGraph()
    for src, dst in [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]:
        g.add_edge(src, dst)
    return g


@pytest.fixture
def fig6_graph():
    """The shape of Fig. 6: R1 <-> R2, R3 -> R4, R5 -> R2."""
    g = DiGraph()
    g.add_edge("R1", "R2")
    g.add_edge("R2", "R1")
    g.add_edge("R3", "R4")
    g.add_edge("R5", "R2")
    return g


class TestBasics:
    def test_add_and_query(self, diamond):
        assert len(diamond) == 4
        assert diamond.has_edge("A", "B")
        assert not diamond.has_edge("B", "A")
        assert diamond.successors("A") == {"B", "C"}
        assert diamond.predecessors("D") == {"B", "C"}
        assert diamond.out_degree("A") == 2
        assert diamond.in_degree("D") == 2

    def test_parallel_edges_collapse(self):
        g = DiGraph()
        g.add_edge("A", "B")
        g.add_edge("A", "B")
        assert g.out_degree("A") == 1

    def test_self_loop(self):
        g = DiGraph()
        g.add_edge("A", "A")
        assert g.in_degree("A") == 1
        assert g.has_edge("A", "A")

    def test_remove_node(self, diamond):
        diamond.remove_node("B")
        assert "B" not in diamond
        assert not diamond.has_edge("A", "B")
        assert diamond.predecessors("D") == {"C"}

    def test_remove_edge(self, diamond):
        diamond.remove_edge("A", "B")
        assert not diamond.has_edge("A", "B")
        assert "B" in diamond

    def test_copy_independent(self, diamond):
        clone = diamond.copy()
        clone.remove_node("A")
        assert "A" in diamond

    def test_edges_iteration(self, diamond):
        assert set(diamond.edges()) == {
            ("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")
        }


class TestSCC:
    def test_acyclic_components_are_singletons(self, diamond):
        comps = diamond.strongly_connected_components()
        assert sorted(len(c) for c in comps) == [1, 1, 1, 1]

    def test_cycle_detected(self, fig6_graph):
        comps = fig6_graph.strongly_connected_components()
        sizes = {frozenset(c) for c in comps}
        assert frozenset({"R1", "R2"}) in sizes

    def test_reverse_topological_order_of_condensation(self, diamond):
        comps = diamond.strongly_connected_components()
        position = {frozenset(c): i for i, c in enumerate(comps)}

        def pos(node):
            for comp, i in position.items():
                if node in comp:
                    return i
            raise AssertionError(node)

        # every edge goes from a later component to an earlier one
        for src, dst in diamond.edges():
            assert pos(dst) <= pos(src)

    def test_large_chain_no_recursion_error(self):
        g = DiGraph()
        for i in range(5000):
            g.add_edge(i, i + 1)
        comps = g.strongly_connected_components()
        assert len(comps) == 5001


class TestTopologicalOrder:
    def test_sinks_first(self, diamond):
        order = diamond.topological_order_sinks_first()
        pos = {n: i for i, n in enumerate(order)}
        for src, dst in diamond.edges():
            assert pos[dst] < pos[src]

    def test_cyclic_graph_still_totally_ordered(self, fig6_graph):
        order = fig6_graph.topological_order_sinks_first()
        assert sorted(order) == ["R1", "R2", "R3", "R4", "R5"]
        pos = {n: i for i, n in enumerate(order)}
        # acyclic edges still respect the order
        assert pos["R4"] < pos["R3"]
        assert pos["R2"] < pos["R5"]


class TestWeakComponents:
    def test_components(self, fig6_graph):
        comps = {frozenset(c) for c in fig6_graph.weakly_connected_components()}
        assert comps == {frozenset({"R1", "R2", "R5"}), frozenset({"R3", "R4"})}

    def test_isolated_node(self):
        g = DiGraph()
        g.add_node("X")
        assert g.weakly_connected_components() == [["X"]]


class TestPruning:
    def test_prune_zero_indegree_cascades(self, diamond):
        deleted = diamond.prune_zero_indegree()
        # A has indegree 0; deleting it exposes B and C; then D.
        assert set(deleted) == {"A", "B", "C", "D"}
        assert len(diamond) == 0

    def test_cycle_survives_pruning(self, fig6_graph):
        fig6_graph.prune_zero_indegree()
        # Example 5.5: R5, R3, R4 go; the R1 <-> R2 cycle stays.
        assert set(fig6_graph.nodes) == {"R1", "R2"}

    def test_self_loop_survives(self):
        g = DiGraph()
        g.add_edge("A", "A")
        g.prune_zero_indegree()
        assert "A" in g

    def test_subgraph(self, fig6_graph):
        sub = fig6_graph.subgraph({"R1", "R2"})
        assert set(sub.nodes) == {"R1", "R2"}
        assert sub.has_edge("R1", "R2")
        assert sub.has_edge("R2", "R1")
        assert not sub.has_edge("R5", "R2")
