"""Cross-validation of the shared-scan engine against the naive oracle.

The engine (:mod:`repro.engine`) must be observationally identical to the
per-constraint reference evaluation
(:func:`repro.core.violations.check_database_naive`):

* property-based (Hypothesis, over the generators of
  ``tests/strategies.py``): identical violation sets — and identical list
  *order* — on random schemas, constraint sets, and instances; count-only
  mode agrees on totals and per-constraint counts; the early-exit
  ``database_is_clean`` agrees on cleanliness;
* replay: over randomized insert/delete sequences on both ready-made
  datasets (bank and commerce), the engine, the naive iterators, and the
  :class:`~repro.cleaning.incremental.IncrementalChecker` state agree on
  the violation sets at every checkpoint.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cleaning.incremental import IncrementalChecker
from repro.core.violations import (
    ConstraintSet,
    check_database_naive,
)
from repro.datasets.bank import bank_constraints, scaled_bank_instance
from repro.datasets.commerce import commerce_constraints, commerce_instance
from repro.engine import (
    count_violations,
    database_is_clean,
    detect,
    execute_plan,
    plan_detection,
)
from repro.relational.domains import FiniteDomain

from tests.conformance import assert_reports_bit_identical
from tests.strategies import cfds as cfd_strategy
from tests.strategies import cinds as cind_strategy
from tests.strategies import database_schemas, instances


def assert_reports_identical(engine_report, naive_report):
    """Same violations, same order (the engine is a drop-in replacement)."""
    assert_reports_bit_identical(engine_report, naive_report)


@st.composite
def constraint_sets(draw, schema, max_cfds: int = 3, max_cinds: int = 3):
    rels = list(schema)
    sigma = ConstraintSet(schema)
    for __ in range(draw(st.integers(min_value=0, max_value=max_cfds))):
        sigma.add_cfd(draw(cfd_strategy(draw(st.sampled_from(rels)))))
    for __ in range(draw(st.integers(min_value=0, max_value=max_cinds))):
        src = draw(st.sampled_from(rels))
        dst = draw(st.sampled_from(rels))
        sigma.add_cind(draw(cind_strategy(src, dst)))
    return sigma


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
@given(data=st.data())
def test_engine_matches_naive_oracle(data):
    schema = data.draw(database_schemas(max_relations=3))
    sigma = data.draw(constraint_sets(schema))
    db = data.draw(instances(schema, max_tuples=10))

    naive = check_database_naive(db, sigma)
    engine = detect(db, sigma)
    assert_reports_identical(engine, naive)

    summary = count_violations(db, sigma)
    assert summary.total == naive.total
    assert summary.cfd_total == len(naive.cfd_violations)
    assert summary.cind_total == len(naive.cind_violations)
    assert summary.by_constraint() == naive.by_constraint()

    assert database_is_clean(db, sigma) == naive.is_clean


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
@given(data=st.data())
def test_plan_reuse_across_instances(data):
    """One plan, many databases — plans must hold no per-instance state."""
    schema = data.draw(database_schemas(max_relations=2))
    sigma = data.draw(constraint_sets(schema, max_cfds=2, max_cinds=2))
    plan = plan_detection(sigma)
    for __ in range(2):
        db = data.draw(instances(schema, max_tuples=8))
        assert_reports_identical(
            execute_plan(plan, db, mode="full"), check_database_naive(db, sigma)
        )


# -- replay agreement on the ready-made datasets ------------------------------


def _string_pool(sigma) -> list[str]:
    pool = sorted(v for v in sigma.all_constants() if isinstance(v, str))
    return pool + [f"x{i}" for i in range(4)]


def _random_row(rng: random.Random, relation, pool: list[str]) -> list[str]:
    row = []
    for attr in relation:
        if isinstance(attr.domain, FiniteDomain):
            row.append(rng.choice(list(attr.domain.values)))
        else:
            row.append(rng.choice(pool))
    return row


def _assert_three_way_agreement(checker: IncrementalChecker) -> None:
    naive = check_database_naive(checker.db, checker.sigma)
    engine = detect(checker.db, checker.sigma)
    assert_reports_identical(engine, naive)
    # The incremental state counts violated groups per normal-form CFD and
    # violating tuples per normal-form CIND — exactly one violation each in
    # the full reports, so the by-constraint dicts must agree verbatim.
    assert checker.violations() == engine.by_constraint()
    assert checker.is_clean == engine.is_clean
    assert checker.violating_cind_tuples() == {
        v.tuple_ for v in engine.cind_violations
    }


def _replay(db, sigma, seed: int, steps: int = 60) -> None:
    rng = random.Random(seed)
    checker = IncrementalChecker(db, sigma)  # normalizes Σ internally
    _assert_three_way_agreement(checker)
    pool = _string_pool(sigma)
    relations = [inst.schema for inst in db]
    for step in range(steps):
        relation = rng.choice(relations)
        instance = checker.db[relation.name]
        if instance.tuples and rng.random() < 0.45:
            checker.delete(relation.name, rng.choice(instance.tuples))
        else:
            checker.insert(relation.name, _random_row(rng, relation, pool))
        if step % 12 == 0:
            _assert_three_way_agreement(checker)
    _assert_three_way_agreement(checker)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_replay_agreement_bank(seed):
    db = scaled_bank_instance(25, error_rate=0.15, seed=seed)
    _replay(db, bank_constraints(), seed)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_replay_agreement_commerce(seed):
    db = commerce_instance(n_orders=40, error_rate=0.15, seed=seed)
    _replay(db, commerce_constraints(), seed)
