"""Tests pinning the bank dataset to the paper's Figures 1, 2 and 4."""

import pytest

from repro.core.violations import check_database
from repro.datasets.bank import (
    INTEREST_RATES,
    bank_constraints,
    bank_instance,
    bank_schema,
    clean_bank_instance,
    scaled_bank_instance,
)


class TestSchema:
    def test_relations(self, bank):
        assert set(bank.schema.relation_names) == {
            "account_NYC", "account_EDI", "saving", "checking", "interest"
        }

    def test_at_is_finite(self, bank):
        at = bank.schema.relation("interest").attribute("at")
        assert at.is_finite
        assert set(at.domain.values) == {"saving", "checking"}

    def test_custom_branches(self):
        schema = bank_schema(branches=("NYC", "EDI", "PAR"))
        assert "account_PAR" in schema


class TestInstance:
    def test_tuple_counts_match_fig1(self, bank):
        assert len(bank.db["account_NYC"]) == 3
        assert len(bank.db["account_EDI"]) == 2
        assert len(bank.db["saving"]) == 2
        assert len(bank.db["checking"]) == 3
        assert len(bank.db["interest"]) == 4

    def test_t12_is_dirty(self, bank):
        rates = {t["rt"] for t in bank.db["interest"]}
        assert "10.5%" in rates  # the planted error
        assert "1.5%" not in rates

    def test_clean_instance_fixed(self, bank):
        rates = {t["rt"] for t in bank.clean_db["interest"]}
        assert "1.5%" in rates
        assert "10.5%" not in rates


class TestConstraints:
    def test_full_report_matches_paper(self, bank):
        report = check_database(bank.db, bank.constraints)
        assert report.total == 2
        assert report.by_constraint() == {"phi3": 1, "psi6": 1}

    def test_clean_instance_is_clean(self, bank):
        report = check_database(bank.clean_db, bank.constraints)
        assert report.is_clean

    def test_summary_mentions_both(self, bank):
        text = check_database(bank.db, bank.constraints).summary()
        assert "phi3" in text and "psi6" in text


class TestScaledInstance:
    def test_clean_scaled_satisfies_constraints(self):
        db = scaled_bank_instance(60, error_rate=0.0, seed=7)
        sigma = bank_constraints()
        report = check_database(db, sigma)
        assert report.is_clean, report.summary()

    def test_dirty_scaled_has_violations(self):
        db = scaled_bank_instance(200, error_rate=0.3, seed=7)
        report = check_database(db, bank_constraints())
        assert report.total > 0

    def test_deterministic_by_seed(self):
        a = scaled_bank_instance(50, error_rate=0.2, seed=3)
        b = scaled_bank_instance(50, error_rate=0.2, seed=3)
        for rel in a.schema:
            assert {t.values for t in a[rel.name]} == {
                t.values for t in b[rel.name]
            }

    def test_error_rate_validation(self):
        with pytest.raises(ValueError):
            scaled_bank_instance(10, error_rate=1.5)

    def test_interest_table_correct(self):
        db = scaled_bank_instance(10, seed=1)
        for t in db["interest"]:
            assert t["rt"] == INTEREST_RATES[(t["ct"], t["at"])]
