"""Cross-backend conformance kit: the entry bar for detection backends.

The facade's contract is that choosing a backend is a *performance*
decision, never an API decision: every backend must produce the same
``ViolationReport`` — identical down to violation-list order — the same
summaries, the same verdicts, and the same mutation semantics. This
module turns the equivalence assertions that used to be scattered across
``test_api_backends.py`` / ``test_engine_cross.py`` / ``test_scan_cache.py``
into one reusable kit:

* :func:`report_key` / :func:`assert_reports_bit_identical` — the
  order-sensitive, identity-free fingerprints every suite compares on;
* :func:`assert_session_matches_reference` — one session held to the
  naive oracle across check/count/is_clean/stream;
* :func:`assert_all_backends_agree` — every registered backend plus the
  parallel dispatch path against the oracle (the historical
  ``test_api_backends`` helper, now shared);
* :class:`BackendContract` — a pytest suite a backend passes by
  registering **one** ``make_session`` fixture. New backends (``sqlfile``
  was the first customer) get report-order, summary, stream, is_clean,
  warm-recheck, and mutation-semantics coverage for free; see
  ``tests/test_conformance.py`` for the registrations.

``make_session(db, sigma)`` must return an open ``repro.api.Session``
over data *equivalent to* the in-memory instance ``db`` — in-memory
backends use ``db`` itself, file-backed backends materialize it (e.g.
into a sqlite file) first. Mutation tests always pass a private copy, so
factories may consume ``db`` destructively.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.core.violations import check_database_naive
from repro.datasets.commerce import commerce_constraints, commerce_instance
from repro.errors import SessionClosedError, UnknownTenantError
from repro.relational.instance import Tuple
from repro.serve import DetectionService, replay, report_records


def in_memory_backend_names() -> tuple[str, ...]:
    """Registered backends that take a ``DatabaseInstance`` directly
    (file-backed backends need a materialization step; see the contract
    registrations instead)."""
    return tuple(
        sorted(
            name
            for name, cls in api.BACKENDS.items()
            if not getattr(cls, "accepts_path", False)
        )
    )


def report_key(report):
    """Order-sensitive, identity-free fingerprint of a ViolationReport."""
    return (
        [
            (report.label_for(v.cfd), v.pattern_index, v.lhs_values,
             tuple(t.values for t in v.tuples), v.kind)
            for v in report.cfd_violations
        ],
        [
            (report.label_for(v.cind), v.pattern_index, v.tuple_.values)
            for v in report.cind_violations
        ],
    )


def assert_reports_bit_identical(actual, expected, context=""):
    """Same violations, same order — the backend is a drop-in replacement."""
    assert report_key(actual) == report_key(expected), context
    assert actual.by_constraint() == expected.by_constraint(), context


def assert_session_matches_reference(session, reference, context=""):
    """Hold one open session to the naive oracle's *reference* report."""
    expected = report_key(reference)
    report = session.check()
    assert report_key(report) == expected, context
    summary = session.count()
    assert summary.total == reference.total, context
    assert summary.by_constraint() == reference.by_constraint(), context
    assert session.is_clean() == reference.is_clean, context
    assert [type(v).__name__ for v in session.stream()] == [
        type(v).__name__
        for v in reference.cfd_violations + reference.cind_violations
    ], context


def assert_all_backends_agree(db, sigma, backends=None):
    """Every registered in-memory backend and the parallel path produce the
    reference report. (File-backed backends register through the
    :class:`BackendContract` instead — they need a materialization step.)
    """
    if backends is None:
        backends = in_memory_backend_names()
    reference = check_database_naive(db, sigma)
    for name in backends:
        with api.connect(db, sigma, backend=name) as session:
            assert_session_matches_reference(session, reference, name)
    # Parallel dispatch (thread pool: cheap, exercises the same task-graph
    # and merge code as the process pool) must match serial output exactly
    # — both at scan-group granularity and with row-range sharding forced
    # on (every unit split in two, so the shard merge paths always run).
    parallel = api.connect(db, sigma, workers=2, executor="thread")
    assert report_key(parallel.check()) == report_key(reference)
    assert parallel.count().by_constraint() == reference.by_constraint()
    sharded = api.connect(
        db, sigma, workers=2, executor="thread", shards=2, min_shard_rows=1
    )
    assert report_key(sharded.check()) == report_key(reference)
    assert sharded.count().by_constraint() == reference.by_constraint()
    return reference


class BackendContract:
    """Conformance suite: subclass, register ``make_session``, done.

    The fixture is the whole registration::

        class TestSQLFileContract(BackendContract):
            @pytest.fixture
            def make_session(self, tmp_path):
                def factory(db, sigma):
                    path = create_database_file(tmp_path / "c.db", db)
                    return api.connect(path, sigma, backend="sqlfile")
                return factory
    """

    #: A UK checking interest row with the wrong rate: a single-tuple
    #: violation of ϕ3 (the tableau demands rt='1.5%').
    DIRTY_ROW = {"ab": "GLA", "ct": "UK", "at": "checking", "rt": "9.9%"}

    @pytest.fixture
    def make_session(self):
        raise NotImplementedError(
            "register a make_session(db, sigma) fixture for the backend"
        )

    # -- report equivalence (bit-identical, including order) ---------------

    def test_bank_report_bit_identical(self, bank, make_session):
        reference = check_database_naive(bank.db, bank.constraints)
        assert reference.total == 2  # t10 and t12, as in the paper
        with make_session(bank.db, bank.constraints) as session:
            assert_reports_bit_identical(session.check(), reference)

    def test_commerce_report_bit_identical(self, make_session):
        db = commerce_instance(n_orders=120, error_rate=0.1, seed=11)
        sigma = commerce_constraints()
        reference = check_database_naive(db, sigma)
        assert not reference.is_clean  # the fixture plants errors
        with make_session(db, sigma) as session:
            assert_reports_bit_identical(session.check(), reference)

    def test_full_surface_matches_reference(self, bank, make_session):
        reference = check_database_naive(bank.db, bank.constraints)
        with make_session(bank.db, bank.constraints) as session:
            assert_session_matches_reference(session, reference)

    # -- summaries and verdicts --------------------------------------------

    def test_clean_database_reports_clean(self, bank, make_session):
        with make_session(bank.clean_db, bank.constraints) as session:
            assert session.is_clean() is True
            report = session.check()
            assert report.is_clean and report.total == 0
            assert session.count().total == 0

    def test_summary_matches_report(self, bank, make_session):
        with make_session(bank.db, bank.constraints) as session:
            report = session.check()
            summary = session.count()
            assert summary.total == report.total
            assert summary.by_constraint() == report.by_constraint()

    def test_is_clean_matches_report(self, bank, make_session):
        with make_session(bank.db, bank.constraints) as session:
            assert session.is_clean() is False
            assert session.is_clean() == session.check().is_clean

    def test_stream_yields_report_order(self, bank, make_session):
        with make_session(bank.db, bank.constraints) as session:
            report = session.check()
            streamed = list(session.stream())
            assert len(streamed) == report.total
            expected = report.cfd_violations + report.cind_violations
            for got, want in zip(streamed, expected):
                assert type(got) is type(want)
                assert report.label_for(
                    getattr(got, "cfd", None) or got.cind
                ) == report.label_for(getattr(want, "cfd", None) or want.cind)

    # -- stability ----------------------------------------------------------

    def test_warm_recheck_identical(self, bank, make_session):
        """A second check on the same session (cache warm) changes nothing."""
        with make_session(bank.db, bank.constraints) as session:
            first = session.check()
            assert report_key(session.check()) == report_key(first)
            assert session.count().total == first.total

    # -- mutation semantics -------------------------------------------------

    def test_insert_surfaces_new_violation(self, bank, make_session):
        with make_session(bank.clean_db.copy(), bank.constraints) as session:
            assert session.is_clean()
            assert session.insert("interest", dict(self.DIRTY_ROW)) is True
            assert session.insert("interest", dict(self.DIRTY_ROW)) is False
            assert not session.is_clean()
            assert "phi3" in session.check().by_constraint()

    def test_delete_restores_clean(self, bank, make_session):
        with make_session(bank.clean_db.copy(), bank.constraints) as session:
            session.insert("interest", dict(self.DIRTY_ROW))
            victim = Tuple(
                bank.schema.relation("interest"), dict(self.DIRTY_ROW)
            )
            assert session.delete("interest", victim) is True
            assert session.delete("interest", victim) is False
            assert session.is_clean()
            assert report_key(session.check()) == report_key(
                check_database_naive(bank.clean_db, bank.constraints)
            )

    def test_mutation_interleaving_matches_oracle(self, bank, make_session):
        """A fixed insert/check/delete/check script answers, at every
        observation point, exactly like a fresh naive oracle over a
        mirrored reference instance."""
        reference = bank.clean_db.copy()
        interest = bank.schema.relation("interest")
        rows = [
            dict(self.DIRTY_ROW),
            {"ab": "EDI", "ct": "UK", "at": "saving", "rt": "9.9%"},
            {"ab": "NYC", "ct": "US", "at": "checking", "rt": "0.0%"},
        ]
        with make_session(bank.clean_db.copy(), bank.constraints) as session:
            for row in rows:
                expected = reference["interest"].add(dict(row)) is not None
                assert session.insert("interest", dict(row)) == expected
                oracle = check_database_naive(reference, bank.constraints)
                assert report_key(session.check()) == report_key(oracle)
                assert session.is_clean() == oracle.is_clean
            for row in rows[:2]:
                victim = Tuple(interest, row)
                assert reference["interest"].discard(victim)
                assert session.delete("interest", victim) is True
                oracle = check_database_naive(reference, bank.constraints)
                assert report_key(session.check()) == report_key(oracle)
                assert session.count().by_constraint() == oracle.by_constraint()


#: Interest-relation rows drawn from small pools so batches collide with
#: the CFD/CIND patterns (and each other) frequently.
_INTEREST_ROW = st.fixed_dictionaries(
    {
        "ab": st.sampled_from(("GLA", "EDI", "NYC")),
        "ct": st.sampled_from(("UK", "US")),
        "at": st.sampled_from(("saving", "checking")),
        "rt": st.sampled_from(("1.5%", "9.9%", "0.0%")),
    }
)

#: One randomized apply batch: (inserts, deletes). Either side may be
#: empty; deletes may name absent rows (set-semantics no-ops).
_APPLY_BATCH = st.tuples(
    st.lists(_INTEREST_ROW, max_size=3), st.lists(_INTEREST_ROW, max_size=3)
)


class ServiceContract:
    """Serving-layer conformance: register one ``make_tenant`` fixture.

    ``make_tenant(service, name, db, sigma)`` is an *async* factory that
    opens a tenant on *service* over data equivalent to the in-memory
    instance ``db``, using the backend under test (file-backed backends
    materialize ``db`` into a sqlite file first; tests always pass a
    private copy, so factories may consume it). The suite then holds the
    service to the same bar the :class:`BackendContract` holds sessions
    to — reads and batch writes through :class:`repro.serve
    .DetectionService` agree bit-identically with direct sessions — plus
    the streaming contract: cumulative violation deltas replayed over a
    subscriber's baseline reconstruct every cold ``check()`` exactly,
    including order, under randomized batches (Hypothesis) and under
    concurrent readers/writers (the asyncio stress test).
    """

    DIRTY_ROW = BackendContract.DIRTY_ROW

    @pytest.fixture
    def make_tenant(self):
        raise NotImplementedError(
            "register an async make_tenant(service, name, db, sigma) "
            "fixture for the backend"
        )

    # -- reads through the service ------------------------------------------

    def test_reads_match_direct_session(self, bank, make_tenant):
        async def scenario():
            async with DetectionService() as service:
                await make_tenant(
                    service, "t", bank.db.copy(), bank.constraints
                )
                return (
                    await service.check("t"),
                    await service.count("t"),
                    await service.is_clean("t"),
                )

        report, summary, clean = asyncio.run(scenario())
        reference = check_database_naive(bank.db, bank.constraints)
        assert report_key(report) == report_key(reference)
        assert summary.by_constraint() == reference.by_constraint()
        assert clean == reference.is_clean

    def test_concurrent_reads_agree(self, bank, make_tenant):
        async def scenario():
            async with DetectionService(max_workers=4) as service:
                await make_tenant(
                    service, "t", bank.db.copy(), bank.constraints
                )
                reports = await asyncio.gather(
                    *(service.check("t") for __ in range(4))
                )
                return reports

        reports = asyncio.run(scenario())
        keys = {str(report_key(r)) for r in reports}
        assert len(keys) == 1
        reference = check_database_naive(bank.db, bank.constraints)
        assert report_key(reports[0]) == report_key(reference)

    # -- batch writes through the service -----------------------------------

    def test_apply_matches_direct_session(self, bank, make_tenant):
        extra = {"ab": "EDI", "ct": "US", "at": "saving", "rt": "0.0%"}

        async def scenario():
            async with DetectionService() as service:
                await make_tenant(
                    service, "t", bank.clean_db.copy(), bank.constraints
                )
                result, delta = await service.apply(
                    "t",
                    inserts=[
                        ("interest", dict(self.DIRTY_ROW)),
                        ("interest", dict(extra)),
                        ("interest", dict(extra)),  # duplicate: no-op
                    ],
                )
                return result, delta, await service.check("t")

        result, delta, report = asyncio.run(scenario())
        assert (result.inserted, result.deleted) == (2, 0)
        assert delta.seq == 1
        mirror = bank.clean_db.copy()
        mirror["interest"].add(dict(self.DIRTY_ROW))
        mirror["interest"].add(dict(extra))
        oracle = check_database_naive(mirror, bank.constraints)
        assert report_key(report) == report_key(oracle)
        assert report_records(report) == replay(
            report_records(check_database_naive(bank.clean_db, bank.constraints)),
            delta,
        )

    # -- the delta-replay gate (randomized, per ISSUE acceptance) ------------

    @settings(
        max_examples=8,
        deadline=None,
        # function_scoped_fixture: every example builds a fresh service
        # from factory fixtures, so examples never share state.
        # differing_executors: the one contract method deliberately runs
        # under each registered subclass (that is the whole pattern).
        suppress_health_check=[
            HealthCheck.function_scoped_fixture,
            HealthCheck.differing_executors,
        ],
    )
    @given(batches=st.lists(_APPLY_BATCH, min_size=1, max_size=4))
    def test_delta_replay_bit_identical(self, bank, make_tenant, batches):
        """After every randomized batch, baseline + streamed deltas ==
        a cold check() — bit-identical, including order."""

        async def scenario():
            async with DetectionService() as service:
                await make_tenant(
                    service, "t", bank.db.copy(), bank.constraints
                )
                sub = await service.subscribe("t")
                records = sub.baseline
                assert records == report_records(await service.check("t"))
                for inserts, deletes in batches:
                    await service.apply(
                        "t",
                        inserts=[("interest", dict(r)) for r in inserts],
                        deletes=[("interest", dict(r)) for r in deletes],
                    )
                    delta = await sub.__anext__()
                    records = replay(records, delta)
                    cold = report_records(await service.check("t"))
                    assert records == cold

        asyncio.run(scenario())

    # -- the asyncio stress test ---------------------------------------------

    def test_stream_exact_under_concurrency(self, bank, make_tenant):
        """Interleave apply batches, concurrent reads, and a delta
        subscriber; cross-validate the stream against full re-check
        reports recorded after each commit."""
        pool = [
            {"ab": ab, "ct": ct, "at": "checking", "rt": rt}
            for ab in ("GLA", "EDI", "NYC")
            for ct, rt in (("UK", "1.5%"), ("UK", "9.9%"), ("US", "0.0%"))
        ]

        async def scenario():
            async with DetectionService(max_workers=4) as service:
                await make_tenant(
                    service, "t", bank.db.copy(), bank.constraints
                )
                sub = await service.subscribe("t")
                truth = {}

                async def writer():
                    for i in range(6):
                        inserts = [("interest", dict(pool[i % len(pool)]))]
                        deletes = (
                            [("interest", dict(pool[(i * 2) % len(pool)]))]
                            if i % 2
                            else []
                        )
                        __, delta = await service.apply(
                            "t", inserts=inserts, deletes=deletes
                        )
                        # Single writer: no commit can slip between this
                        # apply and the check, so the report is seq's truth.
                        truth[delta.seq] = report_records(
                            await service.check("t")
                        )

                async def reader():
                    for __ in range(8):
                        summary = await service.count("t")
                        assert summary.total >= 0
                        await service.is_clean("t")

                replayed = []

                async def consumer():
                    records = sub.baseline
                    async for delta in sub:
                        records = replay(records, delta)
                        replayed.append((delta.seq, records))

                consumer_task = asyncio.create_task(consumer())
                await asyncio.gather(writer(), reader(), reader())
                service.unsubscribe("t", sub)
                await consumer_task
                return truth, replayed

        truth, replayed = asyncio.run(scenario())
        assert [seq for seq, __ in replayed] == sorted(truth)
        for seq, records in replayed:
            assert records == truth[seq], f"stream diverged at seq {seq}"

    # -- eviction and the close-path contract --------------------------------

    def test_evicted_tenant_raises(self, bank, make_tenant):
        async def scenario():
            async with DetectionService() as service:
                handle = await make_tenant(
                    service, "t", bank.db.copy(), bank.constraints
                )
                sub = await service.subscribe("t")
                assert await service.evict("t") is True
                assert await service.evict("t") is False
                with pytest.raises(UnknownTenantError):
                    await service.check("t")
                # The evicted tenant's session is *closed*, not leaked:
                # direct use now fails loudly and predictably.
                assert handle.session.closed
                with pytest.raises(SessionClosedError):
                    handle.session.check()
                # ... and its subscriptions terminate cleanly.
                with pytest.raises(StopAsyncIteration):
                    await sub.__anext__()
                assert sub.reason == "closed"

        asyncio.run(scenario())
