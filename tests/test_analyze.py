"""Static analysis of Σ (`repro.analyze`): kernel, analyzer, diagnostics.

The consistency kernel is cross-validated against the monolithic SAT
reduction (`sat_cfd_consistency`) — the two must agree on every random
CFD set, including after incremental adds. Redundancy findings are
cross-validated against the cover/implication machinery they summarize.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.analyze import (
    RelationKernel,
    SigmaAnalyzer,
    SigmaReport,
    SigmaWarning,
    analyze_sigma,
    chain_findings,
    cind_graph,
    longest_chain,
)
from repro.analyze.redundancy import detection_prune_map, duplicate_maps
from repro.consistency import cfd_implies, sat_cfd_consistency
from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.cover import minimal_cover_cfds
from repro.core.violations import ConstraintSet, constraint_labels
from repro.errors import ConstraintError
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _
from tests.strategies import cfds as cfds_strategy
from tests.strategies import relation_schemas


def two_attr_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [RelationSchema("R", [Attribute("A"), Attribute("B")])]
    )


class TestRelationKernel:
    def test_empty_kernel_is_consistent(self):
        relation = two_attr_schema().relation("R")
        kernel = RelationKernel(relation)
        assert kernel.consistent() is True
        assert kernel.diagnose().consistent is True

    def test_rejects_foreign_relation(self):
        schema = DatabaseSchema([
            RelationSchema("R", [Attribute("A"), Attribute("B")]),
            RelationSchema("S", [Attribute("A"), Attribute("B")]),
        ])
        kernel = RelationKernel(schema.relation("R"))
        foreign = CFD(
            schema.relation("S"), ("A",), ("B",), [((_,), ("x",))]
        )
        with pytest.raises(ConstraintError):
            kernel.add(foreign)

    def test_unsat_single_is_named(self):
        relation = two_attr_schema().relation("R")
        # Two wildcard-premise rows forcing different constants: *every*
        # tuple must have B='b1' and B='b2' — unsatisfiable on its own.
        broken = CFD(
            relation, ("A",), ("B",),
            [((_,), ("b1",)), ((_,), ("b2",))],
        )
        kernel = RelationKernel(relation)
        kernel.add(broken)
        diagnosis = kernel.diagnose()
        assert diagnosis.consistent is False
        assert diagnosis.unsat_singles == (0,)
        assert diagnosis.conflict_core == ()

    def test_wildcard_conflict_core_and_pairs(self):
        relation = two_attr_schema().relation("R")
        # Each is satisfiable alone; jointly they force B = w0 and B = w1
        # on *every* tuple — the genuine (wildcard-premise) inconsistency.
        left = CFD(relation, ("A",), ("B",), [((_,), ("w0",))], name="L")
        right = CFD(relation, ("A",), ("B",), [((_,), ("w1",))], name="R")
        bystander = CFD(
            relation, ("A",), ("B",), [(("a",), ("w0",))], name="ok"
        )
        kernel = RelationKernel(relation)
        for cfd in (left, right, bystander):
            kernel.add(cfd)
        diagnosis = kernel.diagnose()
        assert diagnosis.consistent is False
        assert diagnosis.unsat_singles == ()
        assert set(diagnosis.conflict_core) == {0, 1}  # minimal: no bystander
        assert diagnosis.conflict_pairs == ((0, 1),)

    def test_example_3_2_is_inconsistent(self, ab_schema, example_3_2_cfds):
        kernel = RelationKernel(ab_schema.relation("R"))
        for cfd in example_3_2_cfds:
            kernel.add(cfd)
        diagnosis = kernel.diagnose()
        assert diagnosis.consistent is False
        # The paper's four CFDs conflict jointly (A=true ⇒ B=b1 ⇒ A=false);
        # each is satisfiable alone.
        assert diagnosis.unsat_singles == ()
        assert len(diagnosis.conflict_core) >= 2

    def test_pooled_constant_add_is_incremental(self):
        relation = two_attr_schema().relation("R")
        kernel = RelationKernel(relation)
        base = CFD(relation, ("A",), ("B",), [(("a",), ("b",))], name="base")
        kernel.add(base)
        assert kernel.consistent()  # forces the first encoding
        rebuilds = kernel.rebuilds
        copy = CFD(relation, ("A",), ("B",), [(("a",), ("b",))], name="copy")
        kernel.add(copy)
        assert kernel.consistent()
        assert kernel.rebuilds == rebuilds
        assert kernel.incremental_adds == 1

    def test_new_constant_forces_rebuild(self):
        relation = two_attr_schema().relation("R")
        kernel = RelationKernel(relation)
        kernel.add(
            CFD(relation, ("A",), ("B",), [(("a",), ("b",))], name="base")
        )
        assert kernel.consistent()
        rebuilds = kernel.rebuilds
        kernel.add(
            CFD(relation, ("A",), ("B",), [(("ZZ",), ("b",))], name="fresh")
        )
        assert kernel.consistent()
        assert kernel.rebuilds == rebuilds + 1
        assert kernel.incremental_adds == 0

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_kernel_matches_monolithic_sat(self, data):
        """Kernel verdict == `sat_cfd_consistency` at every prefix, with the
        adds arriving one at a time (the incremental code path)."""
        relation = data.draw(relation_schemas(max_arity=3))
        n = data.draw(st.integers(min_value=1, max_value=5))
        constraints = [
            data.draw(cfds_strategy(relation, max_rows=2)) for __ in range(n)
        ]
        kernel = RelationKernel(relation)
        for size, cfd in enumerate(constraints, start=1):
            kernel.add(cfd)
            expected, __, __ = sat_cfd_consistency(
                relation, constraints[:size]
            )
            assert kernel.consistent() == expected, (
                f"kernel diverged from sat_cfd_consistency at |Σ|={size}"
            )
        # The diagnosis verdict agrees too, and on UNSAT every reported
        # single really is unsatisfiable alone.
        diagnosis = kernel.diagnose()
        expected, __, __ = sat_cfd_consistency(relation, constraints)
        assert diagnosis.consistent == expected
        for index in diagnosis.unsat_singles:
            solo, __, __ = sat_cfd_consistency(
                relation, [constraints[index]]
            )
            assert solo is False
        if diagnosis.conflict_core:
            core = [constraints[i] for i in diagnosis.conflict_core]
            joint, __, __ = sat_cfd_consistency(relation, core)
            assert joint is False  # the core really conflicts
            for skip in range(len(core)):
                trial = core[:skip] + core[skip + 1:]
                if trial:
                    sat, __, __ = sat_cfd_consistency(relation, trial)
                    assert sat is True  # and it is minimal


class TestSigmaAnalyzer:
    def test_consistent_sigma_reports_ok(self, bank):
        report = analyze_sigma(bank.constraints)
        assert report.cfds_consistent is True
        assert report.ok is True
        assert report.n_cfds == len(bank.constraints.cfds)
        assert report.n_cinds == len(bank.constraints.cinds)

    def test_wildcard_conflict_surfaces_as_error(self):
        schema = two_attr_schema()
        relation = schema.relation("R")
        sigma = ConstraintSet(schema, cfds=[
            CFD(relation, ("A",), ("B",), [((_,), ("w0",))], name="L"),
            CFD(relation, ("A",), ("B",), [((_,), ("w1",))], name="R"),
        ])
        report = analyze_sigma(sigma)
        assert report.cfds_consistent is False
        assert not report.ok
        (finding,) = report.errors
        assert finding.code == "cfd-conflict"
        assert set(finding.constraints) == {"L", "R"}
        assert "L vs R" in finding.message

    def test_constant_premise_conflict_is_consistent(self):
        """Conflicting RHS under a *constant* premise: tuples can avoid the
        premise, so Σ stays consistent (the paper's satisfiability notion)."""
        schema = two_attr_schema()
        relation = schema.relation("R")
        sigma = ConstraintSet(schema, cfds=[
            CFD(relation, ("A",), ("B",), [(("a",), ("w0",))], name="L"),
            CFD(relation, ("A",), ("B",), [(("a",), ("w1",))], name="R"),
        ])
        report = analyze_sigma(sigma)
        # Inconsistent *pair under the premise* but Σ admits tuples with
        # A != 'a' — kernel must report consistent.
        assert report.cfds_consistent is True

    def test_duplicate_cfd_finding_names_donor(self):
        schema = two_attr_schema()
        relation = schema.relation("R")
        sigma = ConstraintSet(schema, cfds=[
            CFD(relation, ("A",), ("B",), [(("a",), ("b",))], name="orig"),
            CFD(relation, ("A",), ("B",), [(("a",), ("b",))], name="copy"),
        ])
        report = analyze_sigma(sigma)
        assert report.duplicate_cfds == {1: 0}
        (finding,) = [f for f in report.infos if f.code == "duplicate-cfd"]
        assert finding.constraints == ("copy",)
        assert finding.implicants == ("orig",)

    def test_duplicate_cind_finding(self, bank):
        psi = bank.cinds[0]
        clone = CIND(
            psi.lhs_relation, psi.x, psi.xp,
            psi.rhs_relation, psi.y, psi.yp,
            psi.tableau,
            name="psi_clone",
        )
        sigma = ConstraintSet(
            bank.schema, cfds=bank.cfds, cinds=list(bank.cinds) + [clone]
        )
        report = analyze_sigma(sigma)
        assert report.duplicate_cinds == {len(bank.cinds): 0}
        (finding,) = [f for f in report.infos if f.code == "duplicate-cind"]
        assert finding.constraints == ("psi_clone",)
        assert finding.implicants == (psi.name,)

    def test_implied_cfd_finding_cross_validated(self):
        schema = two_attr_schema()
        relation = schema.relation("R")
        general = CFD(
            relation, ("A",), ("B",), [((_,), ("b",))], name="general"
        )
        special = CFD(
            relation, ("A",), ("B",), [(("a",), ("b",))], name="special"
        )
        sigma = ConstraintSet(schema, cfds=[general, special])
        report = analyze_sigma(sigma, implication=True)
        assert report.implication_checked is True
        (finding,) = [f for f in report.infos if f.code == "implied-cfd"]
        assert finding.constraints == ("special",)
        assert "general" in finding.implicants
        # ...and the exact two-tuple SAT test agrees with the finding.
        assert cfd_implies(relation, [general], special).implied is True
        assert cfd_implies(relation, [special], general).implied is False

    def test_implication_off_by_default(self):
        schema = two_attr_schema()
        relation = schema.relation("R")
        sigma = ConstraintSet(schema, cfds=[
            CFD(relation, ("A",), ("B",), [((_,), ("b",))], name="general"),
            CFD(relation, ("A",), ("B",), [(("a",), ("b",))], name="special"),
        ])
        report = analyze_sigma(sigma)
        assert report.implication_checked is False
        assert not [f for f in report.findings if f.code == "implied-cfd"]

    def test_incremental_add_matches_from_scratch(self, bank):
        analyzer = SigmaAnalyzer(bank.constraints)
        baseline = analyzer.report()
        extra = CFD(
            bank.schema.relation("interest"),
            ("ct",), ("rt",), [(("UK",), (_,))], name="phi_extra",
        )
        analyzer.add(extra)
        extended = ConstraintSet(
            bank.schema,
            cfds=list(bank.constraints.cfds) + [extra],
            cinds=list(bank.constraints.cinds),
        )
        assert analyzer.report() == SigmaAnalyzer(extended).report()
        assert analyzer.report() != baseline  # the add is visible
        assert analyzer.sigma.cfds[-1] is extra

    def test_incremental_labels_and_donors_match_batch(self, bank):
        """The analyzer's maintained label/donor state equals the batch
        recomputation at every step of a growing Σ."""
        analyzer = SigmaAnalyzer(
            ConstraintSet(bank.schema)
        )
        for constraint in list(bank.constraints) + [bank.cfds[0]]:
            analyzer.add(constraint)
            sigma = analyzer.sigma
            assert analyzer._labels() == constraint_labels(sigma)
            cfd_donors, cind_donors = duplicate_maps(sigma)
            prune = analyzer.prune_map()
            assert prune.cfd_donors == cfd_donors
            assert prune.cind_donors == cind_donors

    def test_prune_map_matches_module_function(self, bank):
        sigma = ConstraintSet(
            bank.schema,
            cfds=list(bank.cfds) + [bank.cfds[0]],
            cinds=bank.cinds,
        )
        analyzer = SigmaAnalyzer(sigma)
        expected = detection_prune_map(sigma)
        assert analyzer.prune_map().cfd_donors == expected.cfd_donors
        assert analyzer.prune_map().cind_donors == expected.cind_donors

    def test_rejects_unknown_constraint_type(self, bank):
        analyzer = SigmaAnalyzer(ConstraintSet(bank.schema))
        with pytest.raises(ConstraintError):
            analyzer.add("not a constraint")  # type: ignore[arg-type]

    def test_analyze_sigma_accepts_iterable_plus_schema(self, bank):
        via_set = analyze_sigma(bank.constraints)
        via_iter = analyze_sigma(
            list(bank.constraints), schema=bank.schema
        )
        assert via_iter == via_set
        with pytest.raises(ConstraintError):
            analyze_sigma(list(bank.constraints))  # schema required


class TestChainDiagnostics:
    def _cind(self, src, dst, name):
        return CIND(
            src, (src.attribute_names[0],), (),
            dst, (dst.attribute_names[0],), (),
            [((_,), (_,))], name=name,
        )

    def _schema(self, *names):
        return DatabaseSchema([
            RelationSchema(name, [Attribute("A"), Attribute("B")])
            for name in names
        ])

    def test_self_cycle_warning(self):
        schema = self._schema("R")
        r = schema.relation("R")
        sigma = ConstraintSet(
            schema, cinds=[self._cind(r, r, "loop")]
        )
        (finding,) = chain_findings(sigma)
        assert finding.code == "cind-self-cycle"
        assert finding.constraints == ("loop",)
        assert finding.relation == "R"

    def test_cycle_warning_lists_members(self):
        schema = self._schema("R", "S")
        r, s = schema.relation("R"), schema.relation("S")
        sigma = ConstraintSet(schema, cinds=[
            self._cind(r, s, "rs"), self._cind(s, r, "sr"),
        ])
        (finding,) = chain_findings(sigma)
        assert finding.code == "cind-cycle"
        assert set(finding.constraints) == {"rs", "sr"}

    def test_deep_chain_and_fanout_thresholds(self):
        schema = self._schema("R0", "R1", "R2", "R3")
        rels = [schema.relation(f"R{i}") for i in range(4)]
        chain = [
            self._cind(rels[i], rels[i + 1], f"hop{i}") for i in range(3)
        ]
        fan = [
            self._cind(rels[0], rels[i], f"fan{i}") for i in (2, 3)
        ]
        sigma = ConstraintSet(schema, cinds=chain + fan)
        graph = cind_graph(sigma.cinds)
        depth, path = longest_chain(graph)
        assert depth == 3
        assert path == ("R0", "R1", "R2", "R3")
        # Defaults (8/8): quiet.
        assert chain_findings(sigma) == []
        findings = chain_findings(sigma, max_chain=2, max_fanout=2)
        codes = sorted(f.code for f in findings)
        assert codes == ["deep-cind-chain", "high-cind-fanout"]
        fanout = [f for f in findings if f.code == "high-cind-fanout"][0]
        assert fanout.relation == "R0"

    def test_cycle_collapses_in_chain_length(self):
        schema = self._schema("R", "S", "T")
        r, s, t = (schema.relation(n) for n in ("R", "S", "T"))
        sigma = ConstraintSet(schema, cinds=[
            self._cind(r, s, "rs"), self._cind(s, r, "sr"),
            self._cind(s, t, "st"),
        ])
        depth, __ = longest_chain(cind_graph(sigma.cinds))
        assert depth == 1  # {R,S} condenses to one node; one hop to T


class TestSessionIntegration:
    def test_session_analyze_memoizes(self, bank):
        with api.connect(bank.db, bank.constraints) as session:
            first = session.analyze()
            assert isinstance(first, SigmaReport)
            assert session.analyze() is first
            with_implication = session.analyze(implication=True)
            assert with_implication.implication_checked is True
            assert session.analyze(implication=True) is with_implication

    def test_validate_warns_on_inconsistent_sigma(self):
        schema = two_attr_schema()
        relation = schema.relation("R")
        from repro.relational.instance import DatabaseInstance

        sigma = ConstraintSet(schema, cfds=[
            CFD(relation, ("A",), ("B",), [((_,), ("w0",))], name="L"),
            CFD(relation, ("A",), ("B",), [((_,), ("w1",))], name="R"),
        ])
        with pytest.warns(SigmaWarning, match="statically inconsistent"):
            session = api.connect(
                DatabaseInstance(schema), sigma, validate=True
            )
        # Never blocks: the session is open and usable.
        assert session.is_clean() is True

    def test_validate_quiet_on_consistent_sigma(self, bank):
        with warnings.catch_warnings():
            warnings.simplefilter("error", SigmaWarning)
            with api.connect(
                bank.db, bank.constraints, validate=True
            ) as session:
                assert session.analyze().ok


class TestCoverJustification:
    def test_cover_orders_and_implicants(self):
        schema = two_attr_schema()
        relation = schema.relation("R")
        general = CFD(
            relation, ("A",), ("B",), [((_,), ("b",))], name="general"
        )
        special = CFD(
            relation, ("A",), ("B",), [(("a",), ("b",))], name="special"
        )
        for order in ("forward", "reverse"):
            result = minimal_cover_cfds(
                relation, [general, special], order=order
            )
            assert result.cover == [general]
            assert result.removed == [special]
            (removal,) = result.removals
            assert removal.candidate is special
            assert removal.singleton
            assert removal.implicants == (general,)
            # The justification is real: the implicants alone entail the
            # candidate.
            assert cfd_implies(
                relation, list(removal.implicants), removal.candidate
            ).implied

    def test_cover_rejects_unknown_order(self):
        schema = two_attr_schema()
        relation = schema.relation("R")
        with pytest.raises(ConstraintError):
            minimal_cover_cfds(relation, [], order="sideways")
