"""Tests for the SQL backend, incl. cross-validation against the in-memory
violation engine on the bank data and on random schemas/instances."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.violations import ConstraintSet
from repro.errors import SQLBackendError
from repro.relational.domains import INTEGER
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import Variable
from repro.sql.ddl import create_table_sql, insert_sql, quote_identifier, sql_type
from repro.sql.loader import connect_memory, load_database
from repro.sql.violations import SQLViolationDetector, sql_check_database

from tests.strategies import cfds, cinds, database_schemas, instances


class TestDDL:
    def test_quote_identifier(self):
        assert quote_identifier("A") == '"A"'
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_sql_types(self):
        assert sql_type(INTEGER) == "INTEGER"
        r = RelationSchema("R", ["A"])
        assert sql_type(r.attribute("A").domain) == "TEXT"

    def test_create_table(self):
        r = RelationSchema("R", ["A", Attribute("N", INTEGER)])
        sql = create_table_sql(r)
        assert sql == 'CREATE TABLE "R" ("A" TEXT, "N" INTEGER)'

    def test_insert_placeholders(self):
        r = RelationSchema("R", ["A", "B"])
        assert insert_sql(r) == 'INSERT INTO "R" VALUES (?, ?)'


class TestLoader:
    def test_round_trip(self, bank):
        conn = connect_memory()
        load_database(conn, bank.db)
        (count,) = conn.execute('SELECT COUNT(*) FROM "interest"').fetchone()
        assert count == 4
        rows = set(conn.execute('SELECT * FROM "saving"').fetchall())
        assert ("01", "J. Smith", "NYC, 19087", "212-5820844", "NYC") in rows

    def test_template_rejected(self):
        schema = DatabaseSchema([RelationSchema("R", ["A"])])
        db = DatabaseInstance(schema, {"R": [(Variable("A", 0),)]})
        with pytest.raises(SQLBackendError):
            load_database(connect_memory(), db)


class TestDetectorConstruction:
    def test_requires_exactly_one_source(self, bank):
        with pytest.raises(SQLBackendError):
            SQLViolationDetector()
        with pytest.raises(SQLBackendError):
            SQLViolationDetector(db=bank.db, conn=connect_memory())

    def test_context_manager(self, bank):
        with SQLViolationDetector(db=bank.db) as detector:
            assert detector.conn is not None


def _temp_table_count(conn) -> int:
    (n,) = conn.execute(
        "SELECT COUNT(*) FROM sqlite_temp_master "
        "WHERE name LIKE '__tableau%'"
    ).fetchall()[0]
    return n


class TestConnectionOwnership:
    """close() must only close connections the detector created itself."""

    def test_owned_connection_closed(self, bank):
        detector = SQLViolationDetector(db=bank.db)
        detector.close()
        with pytest.raises(Exception):
            detector.conn.execute("SELECT 1")

    def test_attached_connection_left_open(self, bank):
        conn = connect_memory()
        load_database(conn, bank.db)
        detector = SQLViolationDetector(conn=conn)
        detector.check(bank.constraints)
        detector.close()
        # The caller's connection survives close() and still works...
        (count,) = conn.execute('SELECT COUNT(*) FROM "interest"').fetchall()[0]
        assert count == 4
        # ...and the detector's temp tables were cleaned up behind it.
        assert _temp_table_count(conn) == 0
        conn.close()


class TestTableauTempTables:
    """Repeated checks must not leak one __tableau_N per CFD per call."""

    def test_repeated_checks_reuse_tableaux(self, bank):
        conn = connect_memory()
        load_database(conn, bank.db)
        with SQLViolationDetector(conn=conn) as detector:
            detector.check(bank.constraints)
            after_first = _temp_table_count(conn)
            assert after_first == len(bank.cfds)
            for __ in range(3):
                detector.check(bank.constraints)
            assert _temp_table_count(conn) == after_first
        conn.close()

    def test_equal_content_cfds_share_one_table(self, bank):
        from repro.core.cfd import CFD

        rel = bank.schema.relation("interest")
        twin_a = CFD(rel, ("ct",), ("rt",), [(("UK",), ("1.5%",))], name="a")
        twin_b = CFD(rel, ("ct",), ("rt",), [(("UK",), ("1.5%",))], name="b")
        with SQLViolationDetector(db=bank.db) as detector:
            detector.cfd_violating_rows(twin_a)
            detector.cfd_violating_rows(twin_b)
            assert _temp_table_count(detector.conn) == 1


class TestBankCrossValidation:
    """SQL and in-memory engines must agree tuple-for-tuple on Fig. 1."""

    def test_cfd_agreement(self, bank):
        with SQLViolationDetector(db=bank.db) as detector:
            for cfd in bank.cfds:
                sql_rows = detector.cfd_violating_rows(cfd)
                mem_rows = {t.values for t in cfd.violating_tuples(bank.db)}
                assert sql_rows == mem_rows, cfd.name

    def test_cind_agreement(self, bank):
        with SQLViolationDetector(db=bank.db) as detector:
            for cind in bank.cinds:
                sql_rows = detector.cind_violating_rows(cind)
                mem_rows = {t.values for t in cind.violating_tuples(bank.db)}
                assert sql_rows == mem_rows, cind.name

    def test_check_summary(self, bank):
        report = sql_check_database(bank.db, bank.constraints)
        assert set(report) == {"phi3", "psi6"}
        assert len(report["psi6"]) == 1

    def test_clean_instance_clean(self, bank):
        with SQLViolationDetector(db=bank.clean_db) as detector:
            assert detector.is_clean(bank.constraints)

    def test_scaled_dirty_agreement(self):
        from repro.datasets.bank import bank_constraints, scaled_bank_instance

        db = scaled_bank_instance(150, error_rate=0.2, seed=13)
        sigma = bank_constraints()
        with SQLViolationDetector(db=db) as detector:
            for cind in sigma.cinds:
                sql_rows = detector.cind_violating_rows(cind)
                mem_rows = {t.values for t in cind.violating_tuples(db)}
                assert sql_rows == mem_rows, cind.name


class TestEdgeCases:
    def test_empty_lhs_cfd(self):
        schema = DatabaseSchema([RelationSchema("R", ["A", "B"])])
        from repro.core.cfd import CFD

        cfd = CFD(
            schema.relation("R"), (), ("B",), [((), ("only",))], name="c"
        )
        db = DatabaseInstance(schema, {"R": [("1", "only"), ("2", "nope")]})
        with SQLViolationDetector(db=db) as detector:
            sql_rows = detector.cfd_violating_rows(cfd)
            mem_rows = {t.values for t in cfd.violating_tuples(db)}
            assert sql_rows == mem_rows

    def test_empty_x_cind(self):
        schema = DatabaseSchema(
            [RelationSchema("R", ["A"]), RelationSchema("S", ["B"])]
        )
        from repro.core.cind import CIND

        cind = CIND(
            schema.relation("R"), (), ("A",), schema.relation("S"), (), ("B",),
            [(("k",), ("w",))],
        )
        db = DatabaseInstance(schema, {"R": [("k",)], "S": [("other",)]})
        with SQLViolationDetector(db=db) as detector:
            assert len(detector.cind_violating_rows(cind)) == 1
            db2 = DatabaseInstance(schema, {"R": [("k",)], "S": [("w",)]})
        with SQLViolationDetector(db=db2) as detector:
            assert len(detector.cind_violating_rows(cind)) == 0

    def test_quoted_identifier_robustness(self):
        # Attribute values containing quotes must survive parameter binding.
        schema = DatabaseSchema([RelationSchema("R", ["A", "B"])])
        from repro.core.cfd import CFD

        cfd = CFD(
            schema.relation("R"), ("A",), ("B",), [(("o'brien",), ("x",))]
        )
        db = DatabaseInstance(schema, {"R": [("o'brien", "y")]})
        with SQLViolationDetector(db=db) as detector:
            assert len(detector.cfd_violating_rows(cfd)) == 1


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_sql_matches_memory_on_random_cfds(data):
    schema = data.draw(database_schemas(max_relations=1))
    rel = list(schema)[0]
    cfd = data.draw(cfds(rel))
    db = data.draw(instances(schema, max_tuples=10))
    with SQLViolationDetector(db=db) as detector:
        sql_rows = detector.cfd_violating_rows(cfd)
    mem_rows = {t.values for t in cfd.violating_tuples(db)}
    assert sql_rows == mem_rows


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_sql_matches_memory_on_random_cinds(data):
    schema = data.draw(database_schemas(max_relations=2))
    rels = list(schema)
    cind = data.draw(cinds(rels[0], rels[-1]))
    db = data.draw(instances(schema, max_tuples=10))
    with SQLViolationDetector(db=db) as detector:
        sql_rows = detector.cind_violating_rows(cind)
    mem_rows = {t.values for t in cind.violating_tuples(db)}
    assert sql_rows == mem_rows
