"""`prune_implied=True` is bit-identical across every backend.

The planner prunes only structural duplicates (violation-equivalent by
construction) and replays the donor's buckets into the pruned
constraint's report slots, so a pruned run must be indistinguishable —
violations, order, labels, summaries — from the unpruned one and from
the naive oracle. This suite holds that across all five registered
backends (sqlfile goes through a real on-disk sqlite file) and on a
randomized generator workload with injected violations.
"""

from __future__ import annotations

import random

import pytest

from repro import api
from repro.analyze.redundancy import detection_prune_map
from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.violations import ConstraintSet, check_database_naive
from repro.engine import execute_plan, plan_detection
from repro.generator import (
    SchemaConfig,
    consistent_constraints,
    inject_cfd_violations,
    populate_clean,
    random_schema,
)
from repro.sql.loader import create_database_file
from tests.conformance import (
    assert_reports_bit_identical,
    in_memory_backend_names,
    report_key,
)


@pytest.fixture
def dup_sigma(bank):
    """Bank Σ plus a differently-named structural duplicate of each kind.

    phi3 is violated by the paper's dirty instance, so the duplicated CFD
    has real violations to replay — the pruning path is not exercised
    vacuously.
    """
    phi3 = bank.by_name["phi3"]
    cfd_copy = CFD(
        phi3.relation, phi3.lhs, phi3.rhs, phi3.tableau, name="phi3_copy"
    )
    psi = bank.cinds[0]
    cind_copy = CIND(
        psi.lhs_relation, psi.x, psi.xp,
        psi.rhs_relation, psi.y, psi.yp, psi.tableau,
        name=f"{psi.name}_copy",
    )
    return ConstraintSet(
        bank.schema,
        cfds=list(bank.cfds) + [cfd_copy],
        cinds=list(bank.cinds) + [cind_copy],
    )


class TestPlanLevel:
    def test_prune_map_is_nonempty_and_tasks_are_replayed(self, dup_sigma):
        analysis = detection_prune_map(dup_sigma)
        assert analysis  # the duplicates were found
        plan = plan_detection(dup_sigma, analysis=analysis)
        assert plan.pruned_cfd_donors == analysis.cfd_donors
        assert plan.pruned_cind_donors == analysis.cind_donors
        assert plan.task_donors  # pruned row tasks anchored to donors

    def test_pruned_plan_report_bit_identical(self, bank, dup_sigma):
        reference = check_database_naive(bank.db, dup_sigma)
        assert "phi3_copy" in reference.by_constraint()  # replay is real
        plan = plan_detection(
            dup_sigma, analysis=detection_prune_map(dup_sigma)
        )
        report = execute_plan(plan, bank.db)
        assert_reports_bit_identical(report, reference, "plan-level prune")


class TestAllBackendsBitIdentical:
    def test_in_memory_backends(self, bank, dup_sigma):
        reference = check_database_naive(bank.db, dup_sigma)
        for name in in_memory_backend_names():
            with api.connect(
                bank.db, dup_sigma, backend=name, prune_implied=True
            ) as session:
                context = f"backend={name} prune_implied=True"
                assert_reports_bit_identical(
                    session.check(), reference, context
                )
                assert session.count().by_constraint() == (
                    reference.by_constraint()
                ), context
                assert session.is_clean() == reference.is_clean, context

    def test_sqlfile_backend(self, bank, dup_sigma, tmp_path):
        reference = check_database_naive(bank.db, dup_sigma)
        path = create_database_file(tmp_path / "pruned.db", bank.db)
        with api.connect(
            path, dup_sigma, backend="sqlfile", prune_implied=True
        ) as session:
            assert_reports_bit_identical(
                session.check(), reference, "backend=sqlfile"
            )
            assert session.count().by_constraint() == (
                reference.by_constraint()
            )

    def test_pruned_equals_unpruned_session(self, bank, dup_sigma):
        with api.connect(bank.db, dup_sigma) as plain:
            baseline = plain.check()
        with api.connect(
            bank.db, dup_sigma, prune_implied=True
        ) as pruned:
            assert report_key(pruned.check()) == report_key(baseline)

    def test_prune_without_duplicates_is_a_noop(self, bank):
        reference = check_database_naive(bank.db, bank.constraints)
        with api.connect(
            bank.db, bank.constraints, prune_implied=True
        ) as session:
            assert_reports_bit_identical(session.check(), reference)


class TestGeneratorWorkload:
    def test_randomized_dirty_instance(self):
        """Generator Σ with appended duplicates + injected violations:
        pruned memory/incremental backends == naive oracle, bit for bit."""
        rng = random.Random(1907)
        schema = random_schema(SchemaConfig(
            seed=7, n_relations=4, max_arity=5, finite_domain_size=(2, 6)
        ))
        sigma, witness = consistent_constraints(schema, 24, rng=rng)
        duplicates = [
            CFD(c.relation, c.lhs, c.rhs, c.tableau, name=f"dup{i}")
            for i, c in enumerate(sigma.cfds[:3])
        ]
        extended = ConstraintSet(
            schema,
            cfds=list(sigma.cfds) + duplicates,
            cinds=sigma.cinds,
        )
        db = populate_clean(sigma, witness, tuples_per_relation=30, rng=rng)
        inject_cfd_violations(db, sigma, 10, rng=rng)
        reference = check_database_naive(db, extended)
        assert not reference.is_clean  # injections landed
        assert detection_prune_map(extended)  # duplicates detected
        for name in ("memory", "incremental"):
            with api.connect(
                db, extended, backend=name, prune_implied=True
            ) as session:
                assert_reports_bit_identical(
                    session.check(), reference, f"backend={name}"
                )
