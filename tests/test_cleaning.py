"""Tests for the data-cleaning layer (detection + repair)."""

import random

import pytest

from repro.cleaning.detect import (
    compare_with_traditional,
    detect_errors,
    detect_errors_sql,
)
from repro.cleaning.repair import repair
from repro.core.violations import ConstraintSet, check_database
from repro.datasets.bank import bank_constraints, scaled_bank_instance


class TestDetection:
    def test_bank_detection(self, bank):
        result = detect_errors(bank.db, bank.constraints)
        assert not result.is_clean
        assert result.report.total == 2
        # t10 and t12 are the dirty tuples of the paper's story.
        dirty_relations = {rel for (rel, __t) in result.dirty_tuples}
        assert dirty_relations == {"checking", "interest"}

    def test_dirty_tuple_attribution(self, bank):
        result = detect_errors(bank.db, bank.constraints)
        names = sorted(
            n for names in result.dirty_tuples.values() for n in names
        )
        assert names == ["phi3", "psi6"]

    def test_summary_readable(self, bank):
        text = detect_errors(bank.db, bank.constraints).summary()
        assert "psi6" in text and "dirty" in text

    def test_sql_detection_agrees(self, bank):
        mem = detect_errors(bank.db, bank.constraints)
        sql = detect_errors_sql(bank.db, bank.constraints)
        assert set(sql) == set(mem.report.by_constraint())

    def test_clean_database(self, bank):
        result = detect_errors(bank.clean_db, bank.constraints)
        assert result.is_clean
        assert result.dirty_count == 0

    def test_traditional_comparison(self, bank):
        # Example 1.2's punchline: the traditional FDs/INDs see nothing
        # wrong with the dirty instance; the conditional versions do.
        comparison = compare_with_traditional(bank.db, bank.constraints)
        assert comparison["traditional"]["violations"] == 0
        assert comparison["conditional"]["violations"] == 2


class TestRepair:
    def test_bank_repair_insert_policy(self, bank):
        result = repair(bank.db, bank.constraints, cind_policy="insert")
        assert result.clean
        assert check_database(result.db, bank.constraints).is_clean
        # ϕ3's single-tuple violation is repaired to the pattern constant.
        rates = {
            (t["ct"], t["at"]): t["rt"] for t in result.db["interest"]
        }
        assert rates[("UK", "checking")] == "1.5%"

    def test_bank_repair_delete_policy(self, bank):
        result = repair(bank.db, bank.constraints, cind_policy="delete")
        assert result.clean
        # The delete policy may remove t10 instead of inserting interest.
        assert check_database(result.db, bank.constraints).is_clean

    def test_original_untouched(self, bank):
        before = {t.values for t in bank.db["interest"]}
        repair(bank.db, bank.constraints)
        after = {t.values for t in bank.db["interest"]}
        assert before == after

    def test_edit_log(self, bank):
        result = repair(bank.db, bank.constraints, cind_policy="insert")
        kinds = {e.kind for e in result.edits}
        assert "modify" in kinds  # the t12 fix
        constraints = {e.constraint for e in result.edits}
        assert "phi3" in constraints

    def test_clean_input_zero_cost(self, bank):
        result = repair(bank.clean_db, bank.constraints)
        assert result.clean
        assert result.cost == 0

    def test_scaled_dirty_repair(self):
        db = scaled_bank_instance(120, error_rate=0.25, seed=17)
        sigma = bank_constraints()
        assert not check_database(db, sigma).is_clean
        result = repair(db, sigma, cind_policy="insert", max_rounds=15)
        assert result.clean, check_database(result.db, sigma).summary()
        assert result.cost > 0

    def test_pair_violation_majority_vote(self):
        from repro.core.cfd import standard_fd
        from repro.relational.instance import DatabaseInstance
        from repro.relational.schema import DatabaseSchema, RelationSchema

        # An ID column keeps the three tuples distinct under set semantics.
        r = RelationSchema("R", ["ID", "K", "V"])
        schema = DatabaseSchema([r])
        sigma = ConstraintSet(schema, cfds=[standard_fd(r, ("K",), ("V",))])
        db = DatabaseInstance(
            schema,
            {"R": [("1", "k", "good"), ("2", "k", "good2"), ("3", "k", "good2")]},
        )
        result = repair(db, sigma)
        assert result.clean
        values = {t["V"] for t in result.db["R"]}
        assert values == {"good2"}  # majority wins

    def test_bad_policy_rejected(self, bank):
        with pytest.raises(ValueError):
            repair(bank.db, bank.constraints, cind_policy="wat")


class TestRepairConvergence:
    def test_rounds_capped(self):
        # A CIND whose inserted witness re-triggers itself forever with the
        # chosen fill: R[A] ⊆ R[B] with fresh fills. Rounds must cap.
        from repro.core.cind import CIND
        from repro.relational.instance import DatabaseInstance
        from repro.relational.schema import DatabaseSchema, RelationSchema
        from repro.relational.values import WILDCARD as _

        r = RelationSchema("R", ["A", "B"])
        schema = DatabaseSchema([r])
        cind = CIND(r, ("A",), (), r, ("B",), (), [((_,), (_,))], name="loop")
        sigma = ConstraintSet(schema, cinds=[cind])
        db = DatabaseInstance(schema, {"R": [("a0", "b0")]})
        result = repair(db, sigma, cind_policy="insert", max_rounds=3)
        assert result.rounds == 3
        # Not necessarily clean — and that must be reported truthfully.
        assert result.clean == check_database(result.db, sigma).is_clean
