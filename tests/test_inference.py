"""Tests for the inference system I (Fig. 3), incl. the Example 3.4 proof
and hypothesis soundness properties (derived CINDs hold on models of Σ)."""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.cind import CIND
from repro.core.inference import (
    Derivation,
    cind1,
    cind2,
    cind3,
    cind4,
    cind5,
    cind6,
    cind7,
    cind8,
    derives,
)
from repro.core.normalize import normalize_cind
from repro.datasets.bank import ACCOUNT_TYPE
from repro.errors import InferenceError
from repro.relational.domains import FiniteDomain
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _

from tests.strategies import database_schemas, instances


@pytest.fixture
def abc():
    r = RelationSchema("Ra", ["A1", "A2", "P1", "P2"])
    s = RelationSchema("Rb", ["B1", "B2", "Q1"])
    t = RelationSchema("Rc", ["C1", "C2", "S1"])
    return DatabaseSchema([r, s, t]), r, s, t


@pytest.fixture
def psi_ab(abc):
    __, r, s, __t = abc
    return CIND(
        r, ("A1", "A2"), ("P1",), s, ("B1", "B2"), ("Q1",),
        [((_, _, "p"), (_, _, "q"))],
        name="psi_ab",
    )


class TestCIND1:
    def test_reflexivity(self, abc):
        __, r, *_ = abc
        psi = cind1(r, ("A1", "P1"))
        assert psi.lhs_relation is psi.rhs_relation
        assert psi.x == ("A1", "P1")
        assert psi.is_normal_form
        assert psi.is_standard_ind

    def test_empty_sequence_rejected(self, abc):
        __, r, *_ = abc
        with pytest.raises(InferenceError):
            cind1(r, ())


class TestCIND2:
    def test_projection(self, psi_ab):
        out = cind2(psi_ab, indices=[1])
        assert out.x == ("A2",)
        assert out.y == ("B2",)
        assert out.xp == ("P1",)
        assert out.pattern.lhs_value("P1") == "p"

    def test_permutation_of_ind(self, psi_ab):
        out = cind2(psi_ab, indices=[1, 0])
        assert out.x == ("A2", "A1")
        assert out.y == ("B2", "B1")

    def test_project_to_empty(self, psi_ab):
        out = cind2(psi_ab, indices=[])
        assert out.x == ()
        assert out.y == ()
        assert out.xp == ("P1",)

    def test_duplicate_indices_rejected(self, psi_ab):
        with pytest.raises(InferenceError):
            cind2(psi_ab, indices=[0, 0])

    def test_out_of_range_rejected(self, psi_ab):
        with pytest.raises(InferenceError):
            cind2(psi_ab, indices=[5])

    def test_bad_pattern_permutation_rejected(self, psi_ab):
        with pytest.raises(InferenceError):
            cind2(psi_ab, indices=[0], xp_order=["P2"])

    def test_non_normal_premise_rejected(self, abc):
        __, r, s, __t = abc
        multi = CIND(
            r, (), ("P1",), s, (), (),
            [(("x",), ()), (("y",), ())],
        )
        with pytest.raises(InferenceError):
            cind2(multi, indices=[])


class TestCIND3:
    def test_transitivity(self, abc):
        __, r, s, t = abc
        psi1 = CIND(r, ("A1",), ("P1",), s, ("B1",), ("Q1",),
                    [((_, "p"), (_, "q"))])
        psi2 = CIND(s, ("B1",), ("Q1",), t, ("C1",), ("S1",),
                    [((_, "q"), (_, "s"))])
        out = cind3(psi1, psi2)
        assert out.lhs_relation.name == "Ra"
        assert out.rhs_relation.name == "Rc"
        assert out.x == ("A1",)
        assert out.pattern.lhs_value("P1") == "p"
        assert out.pattern.rhs_value("S1") == "s"

    def test_pattern_mismatch_rejected(self, abc):
        __, r, s, t = abc
        psi1 = CIND(r, ("A1",), (), s, ("B1",), ("Q1",), [((_,), (_, "q"))])
        psi2 = CIND(s, ("B1",), ("Q1",), t, ("C1",), (), [((_, "DIFFERENT"), (_,))])
        with pytest.raises(InferenceError):
            cind3(psi1, psi2)

    def test_list_mismatch_rejected(self, abc):
        __, r, s, t = abc
        psi1 = CIND(r, ("A1",), (), s, ("B1",), (), [((_,), (_,))])
        psi2 = CIND(s, ("B2",), (), t, ("C1",), (), [((_,), (_,))])
        with pytest.raises(InferenceError):
            cind3(psi1, psi2)

    def test_relation_mismatch_rejected(self, abc):
        __, r, s, t = abc
        psi1 = CIND(r, ("A1",), (), s, ("B1",), (), [((_,), (_,))])
        psi2 = CIND(t, ("C1",), (), r, ("A1",), (), [((_,), (_,))])
        with pytest.raises(InferenceError):
            cind3(psi1, psi2)


class TestCIND4:
    def test_instantiation(self, psi_ab):
        out = cind4(psi_ab, "A1", "k")
        assert out.x == ("A2",)
        assert out.y == ("B2",)
        assert out.xp == ("P1", "A1")
        assert out.yp == ("Q1", "B1")
        assert out.pattern.lhs_value("A1") == "k"
        assert out.pattern.rhs_value("B1") == "k"

    def test_attribute_not_in_x_rejected(self, psi_ab):
        with pytest.raises(InferenceError):
            cind4(psi_ab, "P1", "k")

    def test_constant_outside_domain_rejected(self, abc):
        __, r, s, __t = abc
        dom = FiniteDomain("d", ("only",))
        r2 = RelationSchema("Rf", [Attribute("A", dom)])
        s2 = RelationSchema("Sf", [Attribute("B", dom)])
        psi = CIND(r2, ("A",), (), s2, ("B",), (), [((_,), (_,))])
        with pytest.raises(InferenceError):
            cind4(psi, "A", "nope")


class TestCIND5:
    def test_augmentation(self, psi_ab):
        out = cind5(psi_ab, "P2", "extra")
        assert out.xp == ("P1", "P2")
        assert out.pattern.lhs_value("P2") == "extra"
        assert out.x == psi_ab.x

    def test_used_attribute_rejected(self, psi_ab):
        with pytest.raises(InferenceError):
            cind5(psi_ab, "A1", "v")
        with pytest.raises(InferenceError):
            cind5(psi_ab, "P1", "v")

    def test_unknown_attribute_rejected(self, psi_ab):
        with pytest.raises(InferenceError):
            cind5(psi_ab, "NOPE", "v")


class TestCIND6:
    def test_reduction(self, psi_ab):
        out = cind6(psi_ab, keep_yp=[])
        assert out.yp == ()
        assert out.x == psi_ab.x

    def test_keep_subset(self, abc):
        __, r, s, __t = abc
        psi = CIND(r, (), ("P1",), s, (), ("B1", "Q1"), [(("p",), ("b", "q"))])
        out = cind6(psi, keep_yp=["Q1"])
        assert out.yp == ("Q1",)
        assert out.pattern.rhs_value("Q1") == "q"

    def test_non_yp_attribute_rejected(self, psi_ab):
        with pytest.raises(InferenceError):
            cind6(psi_ab, keep_yp=["B1"])


@pytest.fixture
def finite_pair():
    dom = FiniteDomain("tri", ("u", "v", "w"))
    r = RelationSchema("Rf", [Attribute("A", dom), "X1", "P"])
    s = RelationSchema("Sf", [Attribute("B", dom), "Y1", "Q"])
    return DatabaseSchema([r, s]), r, s, dom


class TestCIND7:
    def test_merge_full_domain(self, finite_pair):
        __, r, s, dom = finite_pair
        premises = [
            CIND(r, ("X1",), ("A", "P"), s, ("Y1",), ("Q",),
                 [((_, value, "p"), (_, "q"))])
            for value in dom.values
        ]
        out = cind7(premises, "A")
        assert out.xp == ("P",)
        assert out.pattern.lhs_value("P") == "p"

    def test_partial_domain_rejected(self, finite_pair):
        __, r, s, dom = finite_pair
        premises = [
            CIND(r, ("X1",), ("A", "P"), s, ("Y1",), ("Q",),
                 [((_, value, "p"), (_, "q"))])
            for value in ("u", "v")  # missing "w"
        ]
        with pytest.raises(InferenceError):
            cind7(premises, "A")

    def test_infinite_attribute_rejected(self, finite_pair):
        __, r, s, __dom = finite_pair
        premises = [
            CIND(r, ("X1",), ("P",), s, ("Y1",), (), [((_, "p"), (_,))])
        ]
        with pytest.raises(InferenceError):
            cind7(premises, "P")

    def test_disagreeing_other_patterns_rejected(self, finite_pair):
        __, r, s, dom = finite_pair
        premises = [
            CIND(r, ("X1",), ("A", "P"), s, ("Y1",), (),
                 [((_, value, f"p{idx}"), (_,))])
            for idx, value in enumerate(dom.values)
        ]
        with pytest.raises(InferenceError):
            cind7(premises, "A")


class TestCIND8:
    def test_uninstantiation(self, finite_pair):
        __, r, s, dom = finite_pair
        premises = [
            CIND(r, ("X1",), ("A",), s, ("Y1",), ("B",),
                 [((_, value), (_, value))])
            for value in dom.values
        ]
        out = cind8(premises, "A", "B")
        assert out.x == ("X1", "A")
        assert out.y == ("Y1", "B")
        assert out.xp == ()
        assert out.yp == ()

    def test_value_mismatch_rejected(self, finite_pair):
        __, r, s, dom = finite_pair
        premises = [
            CIND(r, ("X1",), ("A",), s, ("Y1",), ("B",),
                 [((_, "u"), (_, "v"))])  # ti[A] != ti[B]
        ]
        with pytest.raises(InferenceError):
            cind8(premises, "A", "B")

    def test_partial_coverage_rejected(self, finite_pair):
        __, r, s, dom = finite_pair
        premises = [
            CIND(r, ("X1",), ("A",), s, ("Y1",), ("B",),
                 [((_, value), (_, value))])
            for value in ("u", "w")
        ]
        with pytest.raises(InferenceError):
            cind8(premises, "A", "B")


class TestExample34:
    """The seven-step proof of Example 3.4, replayed on the EDI branch."""

    def test_full_derivation(self, bank):
        account = bank.schema.relation("account_EDI")
        interest = bank.schema.relation("interest")
        psi1 = bank.by_name["psi1[EDI]"]
        psi2 = bank.by_name["psi2[EDI]"]
        # ψ5, ψ6 must first be normalised (they carry two pattern rows).
        psi5_edi = normalize_cind(bank.by_name["psi5"])[0]   # the EDI row
        psi6_edi = normalize_cind(bank.by_name["psi6"])[0]

        proof = Derivation()
        p_psi1 = proof.premise(psi1)
        p_psi2 = proof.premise(psi2)
        p_psi5 = proof.premise(psi5_edi)
        p_psi6 = proof.premise(psi6_edi)

        # (1) (account_EDI[nil; at] ⊆ saving[nil; ab], (saving || EDI))
        s1 = proof.apply("CIND2", [p_psi1], indices=[])
        # (2) likewise into checking
        s2 = proof.apply("CIND2", [p_psi2], indices=[])
        # (3) (saving[nil; ab] ⊆ interest[nil; at], (EDI || saving)).
        # The paper labels this step CIND2, but Yp shrinks from
        # (ab, at, ct, rt) to (at) — formally that is the RHS reduction
        # rule CIND6 (CIND2 only permutes the pattern lists).
        s3 = proof.apply("CIND6", [p_psi5], keep_yp=["at"])
        # (4) (checking[nil; ab] ⊆ interest[nil; at], (EDI || checking))
        s4 = proof.apply("CIND6", [p_psi6], keep_yp=["at"])
        # (5) transitivity: (account_EDI[nil; at] ⊆ interest[nil; at],
        #     (saving || saving))
        s5 = proof.apply("CIND3", [s1, s3])
        # (6) (account_EDI[nil; at] ⊆ interest[nil; at], (checking || checking))
        s6 = proof.apply("CIND3", [s2, s4])
        # (7) CIND8 merges over dom(at) = {saving, checking}:
        #     (account_EDI[at; nil] ⊆ interest[at; nil], (_ || _))
        s7 = proof.apply("CIND8", [s5, s6],
                         lhs_attribute="at", rhs_attribute="at")

        goal = CIND(
            account, ("at",), (), interest, ("at",), (), [((_,), (_,))]
        )
        assert derives(proof, goal)
        assert len(proof) == 11  # 4 premises + 7 derived steps
        assert "CIND8" in repr(proof)

    def test_cind3_step_needs_matching_patterns(self, bank):
        # Crossing saving->interest with the *checking* premise must fail:
        # (1)'s pattern B on ab matches, but the middle Yp values agree —
        # the type patterns differ at step (5)/(4) pairing.
        psi1 = bank.by_name["psi1[EDI]"]
        psi6_edi = normalize_cind(bank.by_name["psi6"])[0]
        s1 = cind2(psi1, indices=[])
        s4 = cind6(psi6_edi, keep_yp=["at"])
        # s1: account[nil; at] ⊆ saving[nil; ab], (saving || EDI)
        # s4: checking[nil; ab] ⊆ interest[nil; at], (EDI || checking)
        with pytest.raises(InferenceError):
            cind3(s1, s4)  # middle relation saving != checking


class TestDerivationChecking:
    def test_tampered_step_detected(self, abc, psi_ab):
        proof = Derivation()
        p = proof.premise(psi_ab)
        s = proof.apply("CIND2", [p], indices=[0])
        # Tamper with the recorded conclusion.
        proof.steps[s].cind = cind2(psi_ab, indices=[1])
        with pytest.raises(InferenceError):
            proof.check()

    def test_axiom_step(self, abc):
        __, r, *_ = abc
        proof = Derivation()
        proof.axiom_cind1(r, ("A1", "A2"))
        assert proof.check()
        assert proof.conclusion.is_standard_ind

    def test_non_normal_premise_rejected(self, abc):
        __, r, s, __t = abc
        multi = CIND(r, (), ("P1",), s, (), (), [(("x",), ()), (("y",), ())])
        proof = Derivation()
        with pytest.raises(InferenceError):
            proof.premise(multi)

    def test_empty_derivation_has_no_conclusion(self):
        with pytest.raises(InferenceError):
            Derivation().conclusion

    def test_wrong_premise_count(self, psi_ab):
        proof = Derivation()
        p = proof.premise(psi_ab)
        with pytest.raises(InferenceError):
            proof.apply("CIND3", [p])  # CIND3 needs two premises


# -- soundness properties -----------------------------------------------------
#
# For every rule: if D |= premises then D |= conclusion. We sample random
# instances over a fixed two-relation schema and discard draws where the
# premise fails (rare, since the premise is usually satisfiable by chance).


def _fixed_schema():
    r = RelationSchema("Ra", ["A1", "A2", "P1"])
    s = RelationSchema("Rb", ["B1", "B2", "Q1"])
    return DatabaseSchema([r, s]), r, s


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
@given(data=st.data())
def test_cind2_sound(data):
    schema, r, s = _fixed_schema()
    psi = CIND(r, ("A1", "A2"), ("P1",), s, ("B1", "B2"), ("Q1",),
               [((_, _, "a"), (_, _, "b"))])
    db = data.draw(instances(schema, max_tuples=6))
    assume(psi.satisfied_by(db))
    projected = cind2(psi, indices=[1])
    permuted = cind2(psi, indices=[1, 0])
    assert projected.satisfied_by(db)
    assert permuted.satisfied_by(db)


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
@given(data=st.data())
def test_cind4_cind5_cind6_sound(data):
    schema, r, s = _fixed_schema()
    psi = CIND(r, ("A1",), ("P1",), s, ("B1",), ("Q1",),
               [((_, "a"), (_, "b"))])
    db = data.draw(instances(schema, max_tuples=6))
    assume(psi.satisfied_by(db))
    assert cind4(psi, "A1", "a").satisfied_by(db)
    assert cind5(psi, "A2", "c").satisfied_by(db)
    assert cind6(psi, keep_yp=[]).satisfied_by(db)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_cind1_always_holds(data):
    schema, r, __s = _fixed_schema()
    db = data.draw(instances(schema, max_tuples=6))
    assert cind1(r, ("A1", "A2")).satisfied_by(db)
    assert cind1(r, ("A2",)).satisfied_by(db)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much],
)
@given(data=st.data())
def test_cind8_sound(data):
    dom = FiniteDomain("two8", ("u", "v"))
    r = RelationSchema("Ra", [Attribute("A", dom), "X1"])
    s = RelationSchema("Rb", [Attribute("B", dom), "Y1"])
    schema = DatabaseSchema([r, s])
    premises = [
        CIND(r, ("X1",), ("A",), s, ("Y1",), ("B",),
             [((_, value), (_, value))])
        for value in dom.values
    ]
    # Small instances: the joint premise is rarely satisfied by larger draws.
    db = data.draw(instances(schema, max_tuples=3))
    assume(all(p.satisfied_by(db) for p in premises))
    conclusion = cind8(premises, "A", "B")
    assert conclusion.satisfied_by(db)
