"""Tests for CSV import/export."""

import pytest

from repro.errors import SchemaError
from repro.relational.csvio import (
    read_database_csv,
    read_relation_csv,
    write_database_csv,
    write_relation_csv,
)
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import Variable


@pytest.fixture
def r():
    return RelationSchema("R", ["A", "B"])


class TestRelationRoundTrip:
    def test_round_trip(self, r, tmp_path):
        inst = RelationInstance(r, [("1", "x"), ("2", "y")])
        path = tmp_path / "r.csv"
        write_relation_csv(inst, path)
        loaded = read_relation_csv(r, path)
        assert {t.values for t in loaded} == {("1", "x"), ("2", "y")}

    def test_coercions(self, r, tmp_path):
        inst = RelationInstance(r, [("1", "x")])
        path = tmp_path / "r.csv"
        write_relation_csv(inst, path)
        loaded = read_relation_csv(r, path, coercions={"A": int})
        assert loaded.tuples[0]["A"] == 1

    def test_header_mismatch_rejected(self, r, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("A,Z\n1,2\n")
        with pytest.raises(SchemaError):
            read_relation_csv(r, path)

    def test_empty_file_rejected(self, r, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_relation_csv(r, path)

    def test_header_any_order(self, r, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("B,A\nx,1\n")
        loaded = read_relation_csv(r, path)
        assert loaded.tuples[0]["A"] == "1"

    def test_templates_not_serialisable(self, r, tmp_path):
        inst = RelationInstance(r, [(Variable("A", 0), "x")])
        with pytest.raises(SchemaError):
            write_relation_csv(inst, tmp_path / "r.csv")

    def test_blank_lines_skipped(self, r, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,B\n1,x\n\n2,y\n")
        loaded = read_relation_csv(r, path)
        assert len(loaded) == 2


class TestDatabaseRoundTrip:
    def test_round_trip(self, tmp_path):
        schema = DatabaseSchema(
            [RelationSchema("R", ["A"]), RelationSchema("S", ["B"])]
        )
        db = DatabaseInstance(schema, {"R": [("1",)], "S": [("x",)]})
        write_database_csv(db, tmp_path / "db")
        loaded = read_database_csv(schema, tmp_path / "db")
        assert loaded.total_tuples() == 2

    def test_missing_files_mean_empty_relations(self, tmp_path):
        schema = DatabaseSchema(
            [RelationSchema("R", ["A"]), RelationSchema("S", ["B"])]
        )
        (tmp_path / "db").mkdir()
        (tmp_path / "db" / "R.csv").write_text("A\n1\n")
        loaded = read_database_csv(schema, tmp_path / "db")
        assert len(loaded["R"]) == 1
        assert len(loaded["S"]) == 0

    def test_bank_round_trip(self, bank, tmp_path):
        write_database_csv(bank.db, tmp_path / "bank")
        loaded = read_database_csv(bank.schema, tmp_path / "bank")
        for rel in bank.schema:
            assert {t.values for t in loaded[rel.name]} == {
                t.values for t in bank.db[rel.name]
            }
