"""The out-of-core ``sqlfile`` backend: attach, detect, cache, mutate.

Beyond the :class:`tests.conformance.BackendContract` registration (see
``test_conformance.py``), this module covers what is specific to running
detection *inside a file*:

* attach/introspection errors (missing file, missing table, column
  mismatch) and the CSV→sqlite ingest bridge;
* the ``SQLScanCache``: warm re-checks issue no data SQL at all, the
  backend's own DML invalidates only the touched table, and writes
  committed by a *second* connection are caught via ``PRAGMA
  data_version`` + per-table fingerprints;
* a Hypothesis differential suite interleaving SQL-side ``insert`` /
  ``delete`` — session-owned and out-of-band — with ``check`` / ``count``
  / ``is_clean`` against a fresh naive oracle over a mirrored in-memory
  instance (the cache validates at every read, so each externally
  committed write is observed at the next call).
"""

from __future__ import annotations

import sqlite3
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.cleaning.detect import detect_errors_in_file
from repro.core.violations import check_database_naive
from repro.datasets.bank import (
    bank_constraints,
    bank_schema,
    clean_bank_instance,
    scaled_bank_instance,
)
from repro.errors import ReproError, SQLBackendError
from repro.relational.csvio import database_csv_to_sqlite, write_database_csv
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.sql.loader import (
    connect_file,
    create_database_file,
    data_version,
    introspect_schema,
    table_fingerprint,
)

from tests.conformance import report_key


@pytest.fixture
def bank_file(bank, tmp_path):
    """The Fig. 1 bank instance written out as a sqlite file."""
    return create_database_file(tmp_path / "bank.db", bank.db)


class TestAttachAndIntrospect:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SQLBackendError, match="cannot open"):
            connect_file(tmp_path / "nope.db")

    def test_connect_requires_sqlfile_path_not_instance(self, bank):
        with pytest.raises(SQLBackendError, match="pass its path"):
            api.connect(bank.db, bank.constraints, backend="sqlfile")

    def test_path_rejected_by_memory_backends(self, bank_file, bank):
        with pytest.raises(ReproError, match="in-memory DatabaseInstance"):
            api.connect(bank_file, bank.constraints, backend="memory")

    def test_missing_table_reported(self, tmp_path, bank):
        path = tmp_path / "partial.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE unrelated (x)")
        conn.close()
        with pytest.raises(SQLBackendError, match="no table"):
            api.connect(path, bank.constraints, backend="sqlfile")

    def test_column_mismatch_reported(self, tmp_path):
        schema = DatabaseSchema([RelationSchema("R", ["A", "B"])])
        path = tmp_path / "cols.db"
        conn = sqlite3.connect(path)
        conn.execute('CREATE TABLE "R" ("B" TEXT, "A" TEXT)')  # wrong order
        conn.close()
        conn = connect_file(path)
        with pytest.raises(SQLBackendError, match="expected"):
            introspect_schema(conn, schema)
        conn.close()

    def test_extra_tables_tolerated(self, bank_file, bank):
        conn = sqlite3.connect(bank_file)
        conn.execute("CREATE TABLE side_notes (t TEXT)")
        conn.commit()
        conn.close()
        with api.connect(bank_file, bank.constraints, backend="sqlfile") as s:
            assert s.check().total == 2

    def test_create_refuses_overwrite(self, bank_file, bank):
        with pytest.raises(SQLBackendError, match="refusing to overwrite"):
            create_database_file(bank_file, bank.db)
        create_database_file(bank_file, bank.clean_db, overwrite=True)
        with api.connect(bank_file, bank.constraints, backend="sqlfile") as s:
            assert s.is_clean()

    def test_repair_runs_out_of_core_on_file_sessions(self, bank_file, bank):
        before = bank_file.read_bytes()
        with api.connect(bank_file, bank.constraints, backend="sqlfile") as s:
            result = s.repair()
        assert result.clean
        assert result.backend == "sqlfile"
        # Repair stages a working copy; the attached file stays pristine.
        assert bank_file.read_bytes() == before


class TestValueRoundTrip:
    def test_integer_valued_finite_domain_round_trips(self, tmp_path):
        """Non-string constants must come back from the file by equality:
        an int-valued FiniteDomain maps to INTEGER affinity, so reports
        stay bit-identical to the memory backend (a TEXT column would
        round-trip 1 as '1')."""
        from repro.core.cfd import CFD
        from repro.core.violations import ConstraintSet
        from repro.relational.domains import enum_domain
        from repro.relational.schema import Attribute

        dom = enum_domain("level", (1, 2, 3))
        schema = DatabaseSchema(
            [RelationSchema("R", [Attribute("A", dom), Attribute("B")])]
        )
        rel = schema.relation("R")
        sigma = ConstraintSet(
            schema, cfds=[CFD(rel, ("A",), ("B",), [((1,), ("x",))])]
        )
        db = DatabaseInstance(
            schema, {"R": [(1, "x"), (1, "y"), (2, "z")]}
        )
        expected = report_key(api.connect(db, sigma).check())
        path = create_database_file(tmp_path / "ints.db", db)
        with api.connect(path, sigma, backend="sqlfile") as session:
            assert report_key(session.check()) == expected
            violation = session.check().cfd_violations[0]
            assert violation.lhs_values == (1,)  # int, not '1'


class TestReadonly:
    def test_readonly_blocks_mutations(self, bank_file, bank):
        with api.connect(
            bank_file, bank.constraints, backend="sqlfile", readonly=True
        ) as session:
            assert session.check().total == 2
            row = {"ab": "GLA", "ct": "UK", "at": "checking", "rt": "9.9%"}
            with pytest.raises(SQLBackendError, match="read-only"):
                session.insert("interest", row)
            victim = next(iter(bank.db["interest"]))
            with pytest.raises(SQLBackendError, match="read-only"):
                session.delete("interest", Tuple(victim.schema, victim.values))
        # the file is untouched
        with api.connect(bank_file, bank.constraints, backend="sqlfile") as s:
            assert s.check().total == 2


class TestCSVIngest:
    def test_csv_round_trip_matches_memory(self, bank, tmp_path):
        csv_dir = tmp_path / "csv"
        write_database_csv(bank.db, csv_dir)
        db_path = database_csv_to_sqlite(
            bank.schema, csv_dir, tmp_path / "ingested.db"
        )
        reference = check_database_naive(bank.db, bank.constraints)
        with api.connect(db_path, bank.constraints, backend="sqlfile") as s:
            assert report_key(s.check()) == report_key(reference)

    def test_ingest_respects_overwrite_flag(self, bank, tmp_path):
        csv_dir = tmp_path / "csv"
        write_database_csv(bank.db, csv_dir)
        target = tmp_path / "twice.db"
        database_csv_to_sqlite(bank.schema, csv_dir, target)
        with pytest.raises(SQLBackendError):
            database_csv_to_sqlite(bank.schema, csv_dir, target)
        database_csv_to_sqlite(bank.schema, csv_dir, target, overwrite=True)


class TestSQLScanCache:
    def test_warm_recheck_runs_no_data_sql(self, bank_file, bank):
        with api.connect(bank_file, bank.constraints, backend="sqlfile") as s:
            first = s.check()
            statements: list[str] = []
            s.backend.conn.set_trace_callback(statements.append)
            assert report_key(s.check()) == report_key(first)
            assert s.count().total == first.total
            assert s.is_clean() is False
            s.backend.conn.set_trace_callback(None)
            # One PRAGMA data_version per call; nothing touches the tables.
            assert statements, "trace callback saw no statements"
            assert all("data_version" in sql for sql in statements), statements

    def test_own_dml_invalidates_only_touched_table(self, tmp_path, bank):
        path = create_database_file(tmp_path / "c.db", bank.clean_db)
        with api.connect(path, bank.constraints, backend="sqlfile") as s:
            assert s.is_clean()
            cache = s.backend.cache
            warm_entries = len(cache)
            misses = cache.misses
            row = {"ab": "GLA", "ct": "UK", "at": "checking", "rt": "9.9%"}
            s.insert("interest", row)
            # Only entries computed from "interest" drop out.
            assert len(cache) < warm_entries
            assert not s.is_clean()
            recomputed = s.backend.cache.misses - misses
            assert 0 < recomputed < warm_entries

    def test_second_connection_insert_is_caught(self, tmp_path, bank):
        path = create_database_file(tmp_path / "x.db", bank.clean_db)
        ref = bank.clean_db.copy()
        with api.connect(path, bank.constraints, backend="sqlfile") as s:
            assert s.is_clean()
            other = sqlite3.connect(path)
            other.execute(
                'INSERT INTO "interest" VALUES (?, ?, ?, ?)',
                ("GLA", "UK", "checking", "9.9%"),
            )
            other.commit()
            other.close()
            ref["interest"].add(
                {"ab": "GLA", "ct": "UK", "at": "checking", "rt": "9.9%"}
            )
            assert s.is_clean() is False  # data_version caught it
            assert report_key(s.check()) == report_key(
                check_database_naive(ref, bank.constraints)
            )

    def test_second_connection_delete_is_caught(self, bank_file, bank):
        ref = bank.db.copy()
        with api.connect(bank_file, bank.constraints, backend="sqlfile") as s:
            assert s.check().total == 2
            victim = next(iter(ref["interest"]))
            other = sqlite3.connect(bank_file)
            other.execute(
                'DELETE FROM "interest" WHERE "ab"=? AND "ct"=? AND "at"=? '
                'AND "rt"=?',
                victim.values,
            )
            other.commit()
            other.close()
            ref["interest"].discard(victim)
            assert report_key(s.check()) == report_key(
                check_database_naive(ref, bank.constraints)
            )

    def test_fingerprints_scope_external_invalidation(self, bank_file, bank):
        """An external write to one table leaves the other tables' cache
        entries warm (per-table max-rowid/count fingerprints)."""
        with api.connect(bank_file, bank.constraints, backend="sqlfile") as s:
            s.check()
            entries_warm = len(s.backend.cache)
            other = sqlite3.connect(bank_file)
            other.execute(
                'INSERT INTO "saving" VALUES (?, ?, ?, ?, ?)',
                ("99", "X. Ternal", "nowhere", "555", "NYC"),
            )
            other.commit()
            other.close()
            misses = s.backend.cache.misses
            s.check()
            # Some entries survived the bump and some were recomputed.
            recomputed = s.backend.cache.misses - misses
            assert 0 < recomputed < entries_warm

    def test_fingerprint_helper_moves_on_writes(self, bank_file):
        conn = connect_file(bank_file)
        before = table_fingerprint(conn, "interest")
        dv = data_version(conn)
        other = sqlite3.connect(bank_file)
        other.execute(
            'INSERT INTO "interest" VALUES (?, ?, ?, ?)', ("a", "b", "c", "d")
        )
        other.commit()
        other.close()
        assert table_fingerprint(conn, "interest") != before
        assert data_version(conn) != dv
        conn.close()


class TestFileCLIAndCleaning:
    def test_detect_errors_in_file(self, bank_file, bank):
        result = detect_errors_in_file(bank_file, bank.constraints)
        assert not result.is_clean
        assert result.report.total == 2
        assert result.dirty_count == 2

    def test_cli_check_engine_sqlfile(self, bank_file, tmp_path, capsys):
        from repro.cli import main

        schema_file = tmp_path / "bank.schema"
        schema_file.write_text(
            "relation saving(an, cn, ca, cp, ab)\n"
            "relation checking(an, cn, ca, cp, ab)\n"
            "relation interest(ab, ct, at: enum[saving|checking], rt)\n"
        )
        rules = tmp_path / "bank.rules"
        rules.write_text(
            "[phi3-uk-check] interest: ct='UK', at='checking' -> rt='1.5%'\n"
        )
        code = main([
            "check",
            "--schema", str(schema_file),
            "--constraints", str(rules),
            "--data", str(bank_file),
            "--engine", "sqlfile",
        ])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "violation" in out

    def test_cli_sqlfile_rejects_csv_directory(self, tmp_path, capsys):
        from repro.cli import main

        schema_file = tmp_path / "s.schema"
        schema_file.write_text("relation R(A)\n")
        rules = tmp_path / "s.rules"
        rules.write_text("")
        data_dir = tmp_path / "csvs"
        data_dir.mkdir()
        code = main([
            "check",
            "--schema", str(schema_file),
            "--constraints", str(rules),
            "--data", str(data_dir),
            "--engine", "sqlfile",
        ])
        assert code == 2
        assert "sqlite database file" in capsys.readouterr().err


# -- Hypothesis differential suite --------------------------------------------


def _random_row(relation, seed: int) -> dict:
    """A row from a small value pool, so mutations collide with groups."""
    pool = ["NYC", "EDI", "GLA", "a", "b", str(seed % 5)]
    values = {}
    for i, attr in enumerate(relation.attributes):
        if attr.is_finite:
            values[attr.name] = attr.domain.values[seed % len(attr.domain.values)]
        else:
            values[attr.name] = pool[(seed + i) % len(pool)]
    return values


OPS = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "insert",
                "delete",
                "external_insert",
                "external_delete",
                "check",
                "count",
                "is_clean",
            ]
        ),
        st.integers(min_value=0, max_value=10 ** 9),
    ),
    min_size=1,
    max_size=12,
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_accounts=st.integers(min_value=3, max_value=10),
    error_rate=st.sampled_from([0.0, 0.2]),
    seed=st.integers(min_value=0, max_value=10_000),
    ops=OPS,
)
def test_sqlfile_differential_with_external_writers(
    n_accounts, error_rate, seed, ops
):
    """A persistent sqlfile session — its cache alive across mutations
    made both through the session (SQL DML) and by a *second* connection
    writing to the file out-of-band — answers every observation exactly
    like a fresh naive oracle over a mirrored in-memory instance.

    Every op is followed by an ``is_clean`` probe, so each externally
    committed write is observed at the next cache validation (the
    ``data_version`` + fingerprint guarantee under test)."""
    sigma = bank_constraints()
    reference = scaled_bank_instance(
        n_accounts, error_rate=error_rate, seed=seed
    )
    relation_names = list(reference.schema.relation_names)
    with tempfile.TemporaryDirectory() as tmp:
        path = create_database_file(Path(tmp) / "diff.db", reference)
        with api.connect(path, sigma, backend="sqlfile") as session:
            for op, op_seed in ops:
                relation = relation_names[op_seed % len(relation_names)]
                schema = reference.schema.relation(relation)
                if op == "insert":
                    row = _random_row(schema, op_seed)
                    expected = reference[relation].add(dict(row)) is not None
                    assert session.insert(relation, dict(row)) == expected
                elif op == "delete":
                    tuples = reference[relation].tuples
                    if not tuples:
                        continue
                    victim = tuples[op_seed % len(tuples)]
                    assert reference[relation].discard(victim)
                    assert session.delete(
                        relation, Tuple(schema, victim.values)
                    ) is True
                elif op == "external_insert":
                    row = Tuple(schema, _random_row(schema, op_seed))
                    if reference[relation].add(row) is None:
                        continue  # keep the file duplicate-free (set semantics)
                    other = sqlite3.connect(path)
                    placeholders = ", ".join("?" for __ in row.values)
                    other.execute(
                        f'INSERT INTO "{relation}" VALUES ({placeholders})',
                        row.values,
                    )
                    other.commit()
                    other.close()
                elif op == "external_delete":
                    tuples = reference[relation].tuples
                    if not tuples:
                        continue
                    victim = tuples[op_seed % len(tuples)]
                    reference[relation].discard(victim)
                    other = sqlite3.connect(path)
                    pred = " AND ".join(
                        f'"{a}" = ?' for a in schema.attribute_names
                    )
                    other.execute(
                        f'DELETE FROM "{relation}" WHERE {pred}', victim.values
                    )
                    other.commit()
                    other.close()
                elif op == "check":
                    assert report_key(session.check()) == report_key(
                        check_database_naive(reference, sigma)
                    )
                elif op == "count":
                    oracle = check_database_naive(reference, sigma)
                    summary = session.count()
                    assert summary.total == oracle.total
                    assert summary.by_constraint() == oracle.by_constraint()
                # Observe after every op: each external commit is validated
                # (and fingerprint-recorded) before the next one lands.
                assert session.is_clean() == check_database_naive(
                    reference, sigma
                ).is_clean


@settings(max_examples=10, deadline=None)
@given(
    n_accounts=st.integers(min_value=5, max_value=25),
    error_rate=st.sampled_from([0.0, 0.1, 0.3]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_sqlfile_cold_reports_match_memory(n_accounts, error_rate, seed):
    """File-backed reports are bit-identical to the memory backend's."""
    sigma = bank_constraints()
    db = scaled_bank_instance(n_accounts, error_rate=error_rate, seed=seed)
    expected = report_key(api.connect(db, sigma).check())
    with tempfile.TemporaryDirectory() as tmp:
        path = create_database_file(Path(tmp) / "cold.db", db)
        with api.connect(path, sigma, backend="sqlfile") as session:
            assert report_key(session.check()) == expected


class TestContentFingerprint:
    """``fingerprint="content"`` closes the delete+reinsert hole.

    The default ``(max rowid, COUNT(*))`` fingerprint is blind to a
    foreign writer that deletes the newest row and inserts a different
    one — sqlite hands the replacement the vacated max rowid, so both
    components come back unchanged and the cache keeps serving the stale
    result. The content mode sums per-row CRC32 hashes inside SQL and
    catches exactly that write.
    """

    DIRTY = ("GLA", "UK", "checking", "9.9%")

    def _swap_newest_interest_row(self, path):
        """Delete interest's max-rowid row, insert DIRTY reusing the rowid.

        Returns the replaced row's values. Asserts the write is invisible
        to the rowid fingerprint — the precondition of the whole test.
        """
        other = sqlite3.connect(path)
        try:
            before = table_fingerprint(other, "interest")
            [(victim_rowid,)] = other.execute(
                'SELECT MAX(rowid) FROM "interest"'
            ).fetchall()
            [victim] = other.execute(
                'SELECT * FROM "interest" WHERE rowid = ?', (victim_rowid,)
            ).fetchall()
            other.execute(
                'DELETE FROM "interest" WHERE rowid = ?', (victim_rowid,)
            )
            other.execute(
                'INSERT INTO "interest" VALUES (?, ?, ?, ?)', self.DIRTY
            )
            other.commit()
            assert table_fingerprint(other, "interest") == before
            return victim
        finally:
            other.close()

    def _mirror(self, bank, victim):
        ref = bank.clean_db.copy()
        interest = bank.schema.relation("interest")
        assert ref["interest"].discard(Tuple(interest, victim))
        ref["interest"].add(self.DIRTY)
        return ref

    def test_rowid_mode_misses_the_swap(self, tmp_path, bank):
        """Documents the hole: the heuristic serves the stale verdict."""
        path = create_database_file(tmp_path / "hole.db", bank.clean_db)
        with api.connect(path, bank.constraints, backend="sqlfile") as s:
            assert s.is_clean()
            self._swap_newest_interest_row(path)
            # data_version moved, fingerprints compared — and matched.
            assert s.is_clean() is True  # stale: the documented hole

    def test_content_mode_catches_the_swap(self, tmp_path, bank):
        path = create_database_file(tmp_path / "closed.db", bank.clean_db)
        with api.connect(
            path, bank.constraints, backend="sqlfile", fingerprint="content"
        ) as s:
            assert s.is_clean()
            victim = self._swap_newest_interest_row(path)
            ref = self._mirror(bank, victim)
            oracle = check_database_naive(ref, bank.constraints)
            assert s.is_clean() is False
            assert report_key(s.check()) == report_key(oracle)

    def test_content_mode_own_dml_still_exact(self, tmp_path, bank):
        path = create_database_file(tmp_path / "dml.db", bank.clean_db)
        with api.connect(
            path, bank.constraints, backend="sqlfile", fingerprint="content"
        ) as s:
            assert s.is_clean()
            s.insert("interest", dict(zip(("ab", "ct", "at", "rt"), self.DIRTY)))
            assert not s.is_clean()
            victim = Tuple(
                bank.schema.relation("interest"),
                dict(zip(("ab", "ct", "at", "rt"), self.DIRTY)),
            )
            assert s.delete("interest", victim)
            assert s.is_clean()

    def test_content_fingerprint_is_content_sensitive_and_stable(
        self, bank_file
    ):
        from repro.sql.loader import table_content_fingerprint

        conn = connect_file(bank_file)
        conn2 = connect_file(bank_file)
        fp = table_content_fingerprint(conn, "interest")
        assert fp[0] == "content"
        # Stable across connections/processes (CRC32, not salted hash()).
        assert table_content_fingerprint(conn2, "interest") == fp
        conn2.close()
        other = sqlite3.connect(bank_file)
        [(rid,)] = other.execute('SELECT MAX(rowid) FROM "interest"').fetchall()
        other.execute('DELETE FROM "interest" WHERE rowid = ?', (rid,))
        other.execute(
            'INSERT INTO "interest" VALUES (?, ?, ?, ?)',
            ("ZZZ", "ZZ", "zz", "0.0%"),
        )
        other.commit()
        assert table_fingerprint(other, "interest") == table_fingerprint(
            conn, "interest"
        )  # rowid heuristic: blind
        assert table_content_fingerprint(conn, "interest") != fp  # content: not
        other.close()
        conn.close()


class TestWitnessProbePlan:
    """The pushed-down CIND probe must anti-join via the witness index.

    The witness temp tables exist to turn each per-LHS-row ``NOT EXISTS``
    into an index seek on large files; the covering index is created
    before any probe compiles and ``ANALYZE`` publishes its stats so
    sqlite has real row counts to plan with. Asserted through
    ``EXPLAIN QUERY PLAN`` on a witness table big enough that a scan
    would genuinely hurt (on the tiny bank fixture sqlite may *correctly*
    scan a two-row witness table — that is the stats working, not the
    index failing).
    """

    @pytest.fixture
    def wide_cind_file(self, tmp_path):
        """R1[a] ⊆ R2[b] with an 800-key witness table."""
        from repro.core.cind import CIND
        from repro.core.violations import ConstraintSet
        from repro.relational.schema import (
            Attribute,
            DatabaseSchema,
            RelationSchema,
        )
        from repro.relational.values import WILDCARD as _

        schema = DatabaseSchema(
            [
                RelationSchema("R1", [Attribute("a")]),
                RelationSchema("R2", [Attribute("b")]),
            ]
        )
        db = DatabaseInstance(schema)
        for i in range(800):
            db.add("R1", (f"v{i}",))
            db.add("R2", (f"v{i + 3}",))
        sigma = ConstraintSet(schema)
        sigma.add_cind(
            CIND(
                schema.relation("R1"), ("a",), (), schema.relation("R2"),
                ("b",), (), [((_,), (_,))], name="psi_big",
            )
        )
        path = create_database_file(tmp_path / "wide.db", db)
        return path, sigma

    def test_probe_plan_uses_covering_index(self, wide_cind_file):
        from repro.engine import plan_detection
        from repro.sql.violations import SQLPlanExecutor

        path, sigma = wide_cind_file
        conn = connect_file(path)
        plan = plan_detection(sigma)
        executor = SQLPlanExecutor(conn, plan)
        try:
            [task] = [
                t
                for tasks in plan.cind_scans.values()
                for t in tasks
                if t.x_positions
            ]
            sql, params = executor._cind_sql(task, "t1.*")
            assert sql is not None
            detail = " | ".join(
                str(row[-1])
                for row in conn.execute(
                    "EXPLAIN QUERY PLAN " + sql, params
                ).fetchall()
            )
            assert "__witness_" in detail, detail
            assert "USING COVERING INDEX" in detail, detail
            assert "SCAN w" not in detail, detail
            # ANALYZE materialized stats for the witness table, with the
            # real row count sqlite plans from.
            [(tbl, __, stat)] = conn.execute(
                "SELECT * FROM temp.sqlite_stat1"
            ).fetchall()
            assert tbl.startswith("__witness_")
            assert stat.split()[0] == "800"
        finally:
            executor.close()
            conn.close()
