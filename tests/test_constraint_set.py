"""Tests for the ConstraintSet container and its indexes."""

import pytest

from repro.core.cfd import CFD, standard_fd
from repro.core.cind import CIND, standard_ind
from repro.core.violations import ConstraintSet
from repro.errors import ConstraintError
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _


@pytest.fixture
def setting():
    r = RelationSchema("R", ["A", "B"])
    s = RelationSchema("S", ["C", "D"])
    t = RelationSchema("T", ["E", "F"])
    schema = DatabaseSchema([r, s, t])
    sigma = ConstraintSet(
        schema,
        cfds=[
            standard_fd(r, ("A",), ("B",), name="fd_r"),
            CFD(s, ("C",), ("D",), [(("c1",), ("d1",))], name="cfd_s"),
        ],
        cinds=[
            standard_ind(r, ("A",), s, ("C",), name="r_to_s"),
            CIND(s, (), ("C",), t, (), ("E",), [(("c2",), ("e1",))], name="s_to_t"),
            standard_ind(r, ("B",), t, ("F",), name="r_to_t"),
        ],
    )
    return schema, sigma, (r, s, t)


class TestIndexes:
    def test_cfds_on(self, setting):
        __, sigma, __rels = setting
        assert [c.name for c in sigma.cfds_on("R")] == ["fd_r"]
        assert sigma.cfds_on("T") == []

    def test_cinds_from_into_between(self, setting):
        __, sigma, __rels = setting
        assert {c.name for c in sigma.cinds_from("R")} == {"r_to_s", "r_to_t"}
        assert {c.name for c in sigma.cinds_into("T")} == {"s_to_t", "r_to_t"}
        assert [c.name for c in sigma.cinds_between("S", "T")] == ["s_to_t"]
        assert sigma.cinds_between("T", "R") == []

    def test_relations_used(self, setting):
        __, sigma, __rels = setting
        assert sigma.relations_used() == {"R", "S", "T"}

    def test_len_and_iter(self, setting):
        __, sigma, __rels = setting
        assert len(sigma) == 5
        assert len(list(sigma)) == 5


class TestRestriction:
    def test_restricted_to_keeps_internal_constraints(self, setting):
        __, sigma, __rels = setting
        restricted = sigma.restricted_to({"R", "S"})
        names = {c.name for c in restricted}
        # r_to_t and s_to_t leave the component; fd_r, cfd_s, r_to_s stay.
        assert names == {"fd_r", "cfd_s", "r_to_s"}

    def test_restricted_to_single_relation(self, setting):
        __, sigma, __rels = setting
        restricted = sigma.restricted_to({"T"})
        assert len(restricted) == 0


class TestConstants:
    def test_constants_for(self, setting):
        __, sigma, __rels = setting
        assert sigma.constants_for("S", "C") == {"c1", "c2"}
        assert sigma.constants_for("S", "D") == {"d1"}
        assert sigma.constants_for("T", "E") == {"e1"}
        assert sigma.constants_for("R", "A") == set()

    def test_all_constants(self, setting):
        __, sigma, __rels = setting
        assert sigma.all_constants() == {"c1", "c2", "d1", "e1"}


class TestConstantsAllCINDPositions:
    """`constants_for` must see constants in every CIND attribute role."""

    @pytest.fixture
    def four_position_setting(self):
        r = RelationSchema("R", ["A", "B"])
        s = RelationSchema("S", ["C", "D"])
        schema = DatabaseSchema([r, s])
        # x=(A,), xp=(B,), y=(C,), yp=(D,); tp[X] = tp[Y] = "k" (a constant
        # in the X/Y role), "xp1" in Xp, "yp1" in Yp.
        cind = CIND(
            r, ("A",), ("B",), s, ("C",), ("D",),
            [(("k", "xp1"), ("k", "yp1"))],
            name="four",
        )
        return ConstraintSet(schema, cinds=[cind])

    def test_x_position(self, four_position_setting):
        assert four_position_setting.constants_for("R", "A") == {"k"}

    def test_xp_position(self, four_position_setting):
        assert four_position_setting.constants_for("R", "B") == {"xp1"}

    def test_y_position(self, four_position_setting):
        assert four_position_setting.constants_for("S", "C") == {"k"}

    def test_yp_position(self, four_position_setting):
        assert four_position_setting.constants_for("S", "D") == {"yp1"}

    def test_wrong_side_not_consulted(self):
        """Self-referencing CIND: each attribute only reads its own side."""
        r = RelationSchema("R", ["A", "B"])
        schema = DatabaseSchema([r])
        # LHS constrains B (xp), RHS constrains A (yp) — with different
        # constants, so a side mix-up would surface the wrong value.
        cind = CIND(
            r, ("A",), ("B",), r, ("B",), ("A",),
            [((_, "lhs_const"), (_, "rhs_const"))],
            name="self_ref",
        )
        sigma = ConstraintSet(schema, cinds=[cind])
        assert sigma.constants_for("R", "B") == {"lhs_const"}
        assert sigma.constants_for("R", "A") == {"rhs_const"}


class TestConstraintLabels:
    def test_unique_names_unchanged(self, setting):
        from repro.core.violations import constraint_labels

        __, sigma, __rels = setting
        labels = constraint_labels(sigma)
        assert sorted(labels.values()) == sorted(
            c.name for c in sigma
        )

    def test_equal_reprs_get_distinct_labels(self):
        from repro.core.violations import constraint_labels

        r = RelationSchema("R", ["A", "B"])
        schema = DatabaseSchema([r])
        # Two structurally identical, unnamed CFDs: equal reprs.
        one = standard_fd(r, ("A",), ("B",))
        two = standard_fd(r, ("A",), ("B",))
        assert repr(one) == repr(two)
        sigma = ConstraintSet(schema, cfds=[one, two])
        labels = constraint_labels(sigma)
        assert labels[id(one)] != labels[id(two)]
        assert labels[id(one)].startswith(repr(one))

    def test_by_constraint_does_not_merge_twins(self):
        from repro.core.violations import check_database
        from repro.relational.instance import DatabaseInstance

        r = RelationSchema("R", ["A", "B"])
        schema = DatabaseSchema([r])
        one = standard_fd(r, ("A",), ("B",))
        two = standard_fd(r, ("A",), ("B",))
        sigma = ConstraintSet(schema, cfds=[one, two])
        db = DatabaseInstance(schema, {"R": [("a", "b1"), ("a", "b2")]})
        report = check_database(db, sigma)
        counts = report.by_constraint()
        # Both twins violate once each; the counts must not collapse into
        # one repr-keyed entry.
        assert len(counts) == 2
        assert sorted(counts.values()) == [1, 1]
        assert report.total == 2


class TestValidation:
    def test_unknown_relation_rejected(self, setting):
        schema, sigma, (r, *_rest) = setting
        other = RelationSchema("X", ["Z"])
        with pytest.raises(ConstraintError):
            sigma.add_cfd(standard_fd(other, ("Z",), ("Z",)))
        with pytest.raises(ConstraintError):
            sigma.add_cind(standard_ind(other, ("Z",), r, ("A",)))


class TestNormalization:
    def test_normalized_set_equivalence(self, bank):
        normal = bank.constraints.normalized()
        assert all(c.is_normal_form for c in normal.cfds)
        assert all(c.is_normal_form for c in normal.cinds)
        # Same verdicts on the dirty and clean instances.
        assert normal.satisfied_by(bank.db) == bank.constraints.satisfied_by(bank.db)
        assert normal.satisfied_by(bank.clean_db)

    def test_satisfied_by(self, bank):
        assert not bank.constraints.satisfied_by(bank.db)
        assert bank.constraints.satisfied_by(bank.clean_db)
