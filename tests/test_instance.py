"""Tests for repro.relational.instance: tuples, relations, databases."""

import pytest

from repro.errors import DomainError, SchemaError
from repro.relational.domains import BOOL
from repro.relational.instance import DatabaseInstance, RelationInstance, Tuple
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import Variable


@pytest.fixture
def r_schema():
    return RelationSchema("R", ["A", "B", "C"])


@pytest.fixture
def db_schema(r_schema):
    return DatabaseSchema([r_schema, RelationSchema("S", ["X"])])


class TestTuple:
    def test_from_sequence(self, r_schema):
        t = Tuple(r_schema, ("1", "2", "3"))
        assert t["A"] == "1"
        assert t.values == ("1", "2", "3")

    def test_from_mapping(self, r_schema):
        t = Tuple(r_schema, {"B": "2", "A": "1", "C": "3"})
        assert t.values == ("1", "2", "3")

    def test_missing_attribute_rejected(self, r_schema):
        with pytest.raises(SchemaError):
            Tuple(r_schema, {"A": "1", "B": "2"})

    def test_extra_attribute_rejected(self, r_schema):
        with pytest.raises(SchemaError):
            Tuple(r_schema, {"A": "1", "B": "2", "C": "3", "D": "4"})

    def test_wrong_arity_rejected(self, r_schema):
        with pytest.raises(SchemaError):
            Tuple(r_schema, ("1", "2"))

    def test_unknown_attribute_access(self, r_schema):
        t = Tuple(r_schema, ("1", "2", "3"))
        with pytest.raises(SchemaError):
            t["Z"]

    def test_projection(self, r_schema):
        t = Tuple(r_schema, ("1", "2", "3"))
        assert t.project(["C", "A"]) == ("3", "1")
        assert t.project([]) == ()

    def test_equality_and_hash(self, r_schema):
        assert Tuple(r_schema, ("1", "2", "3")) == Tuple(r_schema, ("1", "2", "3"))
        assert Tuple(r_schema, ("1", "2", "3")) != Tuple(r_schema, ("1", "2", "4"))
        assert len({Tuple(r_schema, ("1", "2", "3")), Tuple(r_schema, ("1", "2", "3"))}) == 1

    def test_variables_and_groundness(self, r_schema):
        v = Variable("A", 0)
        t = Tuple(r_schema, (v, "2", "3"))
        assert t.has_variables()
        assert not t.is_ground()
        assert t.variables() == {v}
        assert Tuple(r_schema, ("1", "2", "3")).is_ground()

    def test_substitute(self, r_schema):
        v = Variable("A", 0)
        t = Tuple(r_schema, (v, v, "3"))
        s = t.substitute({v: "x"})
        assert s.values == ("x", "x", "3")

    def test_replace(self, r_schema):
        t = Tuple(r_schema, ("1", "2", "3"))
        assert t.replace(B="9").values == ("1", "9", "3")
        with pytest.raises(SchemaError):
            t.replace(Z="9")


class TestRelationInstance:
    def test_set_semantics(self, r_schema):
        inst = RelationInstance(r_schema)
        assert inst.add(("1", "2", "3"))
        assert not inst.add(("1", "2", "3"))
        assert len(inst) == 1

    def test_insertion_order_iteration(self, r_schema):
        inst = RelationInstance(r_schema, [("b", "b", "b"), ("a", "a", "a")])
        assert [t["A"] for t in inst] == ["b", "a"]

    def test_cross_schema_insert_rejected(self, r_schema):
        other = RelationSchema("S", ["A", "B", "C"])
        inst = RelationInstance(r_schema)
        with pytest.raises(SchemaError):
            inst.add(Tuple(other, ("1", "2", "3")))

    def test_lookup_via_index(self, r_schema):
        inst = RelationInstance(
            r_schema, [("1", "x", "p"), ("1", "y", "q"), ("2", "x", "r")]
        )
        assert len(inst.lookup(["A"], ("1",))) == 2
        assert len(inst.lookup(["A", "B"], ("1", "x"))) == 1
        assert inst.lookup(["A"], ("9",)) == []

    def test_lookup_empty_attribute_list_returns_all(self, r_schema):
        inst = RelationInstance(r_schema, [("1", "2", "3")])
        assert len(inst.lookup([], ())) == 1

    def test_index_maintained_on_insert(self, r_schema):
        inst = RelationInstance(r_schema, [("1", "x", "p")])
        inst.lookup(["A"], ("1",))  # force index creation
        inst.add(("1", "z", "w"))
        assert len(inst.lookup(["A"], ("1",))) == 2

    def test_index_unknown_attribute_rejected(self, r_schema):
        inst = RelationInstance(r_schema)
        with pytest.raises(SchemaError):
            inst.index_on(["Z"])

    def test_discard(self, r_schema):
        inst = RelationInstance(r_schema, [("1", "2", "3")])
        inst.lookup(["A"], ("1",))
        t = inst.tuples[0]
        assert inst.discard(t)
        assert not inst.discard(t)
        assert len(inst) == 0
        assert inst.lookup(["A"], ("1",)) == []

    def test_replace_value_rewrites_and_merges(self, r_schema):
        v = Variable("A", 0)
        inst = RelationInstance(r_schema, [(v, "2", "3"), ("1", "2", "3")])
        assert len(inst) == 2
        inst.replace_value(v, "1")
        assert len(inst) == 1  # merged under set semantics
        assert inst.tuples[0].values == ("1", "2", "3")

    def test_replace_value_invalidates_index(self, r_schema):
        v = Variable("A", 0)
        inst = RelationInstance(r_schema, [(v, "2", "3")])
        assert inst.lookup(["A"], ("1",)) == []
        inst.replace_value(v, "1")
        assert len(inst.lookup(["A"], ("1",))) == 1

    def test_validate_domains(self):
        r = RelationSchema("R", [Attribute("A", BOOL)])
        inst = RelationInstance(r, [(True,)])
        inst.validate_domains()
        inst.add(("oops",))
        with pytest.raises(DomainError):
            inst.validate_domains()

    def test_copy_is_independent(self, r_schema):
        inst = RelationInstance(r_schema, [("1", "2", "3")])
        clone = inst.copy()
        clone.add(("4", "5", "6"))
        assert len(inst) == 1
        assert len(clone) == 2


class TestDatabaseInstance:
    def test_all_relations_present(self, db_schema):
        db = DatabaseInstance(db_schema)
        assert len(db["R"]) == 0
        assert len(db["S"]) == 0
        with pytest.raises(SchemaError):
            db["T"]

    def test_bulk_construction(self, db_schema):
        db = DatabaseInstance(db_schema, {"R": [("1", "2", "3")], "S": [("x",)]})
        assert db.total_tuples() == 2
        assert not db.is_empty()

    def test_replace_value_across_relations(self, db_schema):
        v = Variable("A", 0)
        db = DatabaseInstance(db_schema, {"R": [(v, "2", "3")], "S": [(v,)]})
        db.replace_value(v, "k")
        assert db["R"].tuples[0]["A"] == "k"
        assert db["S"].tuples[0]["X"] == "k"
        assert db.is_ground()

    def test_variables_collected(self, db_schema):
        v1, v2 = Variable("A", 0), Variable("X", 1)
        db = DatabaseInstance(db_schema, {"R": [(v1, "2", "3")], "S": [(v2,)]})
        assert db.variables() == {v1, v2}

    def test_substitute_copies(self, db_schema):
        v = Variable("A", 0)
        db = DatabaseInstance(db_schema, {"R": [(v, "2", "3")]})
        ground = db.substitute({v: "z"})
        assert ground.is_ground()
        assert not db.is_ground()  # original untouched

    def test_copy_independent(self, db_schema):
        db = DatabaseInstance(db_schema, {"S": [("x",)]})
        clone = db.copy()
        clone.add("S", ("y",))
        assert len(db["S"]) == 1

    def test_map_values(self, db_schema):
        db = DatabaseInstance(db_schema, {"S": [("x",)]})
        upper = db.map_values(lambda rel, attr, v: v.upper())
        assert upper["S"].tuples[0]["X"] == "X"
