"""Tests for repro.relational.domains."""

import pytest

from repro.errors import DomainError
from repro.relational.domains import (
    BOOL,
    INTEGER,
    STRING,
    FiniteDomain,
    enum_domain,
    numbered_finite_domain,
)


class TestInfiniteDomains:
    def test_string_membership(self):
        assert STRING.contains("anything")
        assert not STRING.contains(5)
        assert not STRING.is_finite

    def test_integer_membership(self):
        assert INTEGER.contains(42)
        assert not INTEGER.contains("42")
        assert not INTEGER.contains(True)  # bool is not an integer value here

    def test_fresh_value_avoids_exclusions(self):
        taken = {STRING.fresh_value() for __ in range(1)}
        v = STRING.fresh_value(exclude=taken)
        assert v not in taken
        assert STRING.contains(v)

    def test_fresh_value_deterministic(self):
        assert STRING.fresh_value() == STRING.fresh_value()

    def test_fresh_values_bulk(self):
        vals = STRING.fresh_values(5, exclude={"v0", "v2"})
        assert len(vals) == 5
        assert len(set(vals)) == 5
        assert "v0" not in vals and "v2" not in vals

    def test_validate_raises_on_mismatch(self):
        with pytest.raises(DomainError):
            INTEGER.validate("nope")


class TestFiniteDomains:
    def test_bool_domain(self):
        assert BOOL.is_finite
        assert set(BOOL.values) == {True, False}
        assert BOOL.contains(True)
        assert not BOOL.contains("true")

    def test_dedup_preserves_order(self):
        d = FiniteDomain("d", ("x", "y", "x", "z"))
        assert d.values == ("x", "y", "z")
        assert len(d) == 3

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            FiniteDomain("empty", ())

    def test_fresh_value_exhaustion(self):
        d = enum_domain("two", ("p", "q"))
        assert d.fresh_value(exclude=("p",)) == "q"
        assert d.fresh_value(exclude=("p", "q")) is None

    def test_fresh_value_prefers_declaration_order(self):
        d = enum_domain("three", ("p", "q", "r"))
        assert d.fresh_value() == "p"
        assert d.fresh_value(exclude={"p"}) == "q"

    def test_iteration(self):
        d = enum_domain("abc", ("a", "b", "c"))
        assert list(d) == ["a", "b", "c"]

    def test_numbered_domain(self):
        d = numbered_finite_domain("D7", 4)
        assert len(d) == 4
        assert d.values[0] == "D7#0"
        assert d.contains("D7#3")
        assert not d.contains("D7#4")

    def test_numbered_domain_size_validation(self):
        with pytest.raises(DomainError):
            numbered_finite_domain("D", 0)
