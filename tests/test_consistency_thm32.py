"""Theorem 3.2: any set of CINDs is consistent; the witness construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import (
    WitnessTooLarge,
    active_domains,
    build_cind_witness,
    is_consistent_cinds,
)
from repro.core.cind import CIND
from repro.relational.domains import FiniteDomain
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _

from tests.strategies import cinds, database_schemas


@pytest.fixture
def rs():
    r = RelationSchema("R", ["A", "B"])
    s = RelationSchema("S", ["C", "D"])
    return DatabaseSchema([r, s]), r, s


class TestActiveDomains:
    def test_contains_sigma_constants_plus_fresh(self, rs):
        schema, r, s = rs
        cind = CIND(r, (), ("A",), s, (), ("C",), [(("k",), ("m",))], name="c")
        adom = active_domains(schema, [cind])
        assert "k" in adom[("R", "A")]
        assert "m" in adom[("S", "C")]
        # one fresh value beyond the constants
        assert len(adom[("R", "A")]) >= 2

    def test_finite_domain_not_exceeded(self):
        dom = FiniteDomain("two", ("x", "y"))
        r = RelationSchema("R", [Attribute("A", dom)])
        schema = DatabaseSchema([r])
        cind = CIND(r, (), ("A",), r, (), (), [(("x",), ())])
        adom = active_domains(schema, [cind])
        assert set(adom[("R", "A")]) <= {"x", "y"}

    def test_closure_propagates_along_embedded_ind(self, rs):
        schema, r, s = rs
        # constant 'k' flows from R.A into S.C's active domain via the IND.
        cind = CIND(r, ("A",), ("B",), s, ("C",), (), [((_, "k"), (_,))])
        adom = active_domains(schema, [cind])
        for v in adom[("R", "A")]:
            assert v in adom[("S", "C")]


class TestWitness:
    def test_witness_nonempty_and_satisfying(self, rs):
        schema, r, s = rs
        sigma = [
            CIND(r, ("A",), ("B",), s, ("C",), ("D",), [((_, "go"), (_, "tag"))]),
            CIND(s, ("C",), (), r, ("A",), (), [((_,), (_,))]),
        ]
        db = build_cind_witness(schema, sigma)
        assert not db.is_empty()
        for cind in sigma:
            assert cind.satisfied_by(db)

    def test_witness_for_bank_cinds(self, bank):
        db = build_cind_witness(bank.schema, bank.cinds)
        assert not db.is_empty()
        for cind in bank.cinds:
            assert cind.satisfied_by(db), cind.name

    def test_cyclic_cinds(self, rs):
        schema, r, s = rs
        sigma = [
            CIND(r, ("A",), (), s, ("C",), (), [((_,), (_,))]),
            CIND(s, ("C",), (), r, ("A",), (), [((_,), (_,))]),
        ]
        db = build_cind_witness(schema, sigma)
        for cind in sigma:
            assert cind.satisfied_by(db)

    def test_size_guard(self, rs):
        schema, r, s = rs
        cind = CIND(
            r, (), ("A",), s, (), (),
            [((f"k{i}",), ()) for i in range(40)],
        )
        with pytest.raises(WitnessTooLarge):
            build_cind_witness(schema, [cind], max_tuples_per_relation=30)

    def test_empty_sigma(self, rs):
        schema, *_ = rs
        db = build_cind_witness(schema, [])
        assert not db.is_empty()

    def test_finite_domain_exhausted_by_constants(self):
        dom = FiniteDomain("two", ("x", "y"))
        r = RelationSchema("R", [Attribute("A", dom), "B"])
        schema = DatabaseSchema([r])
        sigma = [
            CIND(r, (), ("A",), r, (), ("B",), [(("x",), ("px",))]),
            CIND(r, (), ("A",), r, (), ("B",), [(("y",), ("py",))]),
        ]
        db = build_cind_witness(schema, sigma)
        for cind in sigma:
            assert cind.satisfied_by(db)


class TestDecisionProcedure:
    def test_always_true_without_verification(self, bank):
        assert is_consistent_cinds(bank.schema, bank.cinds) is True

    def test_verified_on_bank(self, bank):
        assert is_consistent_cinds(bank.schema, bank.cinds, verify=True) is True


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_theorem_3_2_property(data):
    """Random CIND sets always admit a verified nonempty witness."""
    schema = data.draw(database_schemas(max_relations=2))
    rels = list(schema)
    n = data.draw(st.integers(min_value=0, max_value=4))
    sigma = []
    for __ in range(n):
        src = data.draw(st.sampled_from(rels))
        dst = data.draw(st.sampled_from(rels))
        sigma.append(data.draw(cinds(src, dst)))
    db = build_cind_witness(schema, sigma, max_tuples_per_relation=200_000)
    assert not db.is_empty()
    for cind in sigma:
        assert cind.satisfied_by(db)
