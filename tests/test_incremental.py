"""Tests for incremental violation detection.

The key property: after any sequence of inserts/deletes, the incremental
state agrees with a from-scratch `check_database` on (a) cleanliness,
(b) which constraints are violated, and (c) the violating CIND tuples.
"""

import random

import pytest

from repro.cleaning.incremental import IncrementalChecker
from repro.core.violations import check_database
from repro.datasets.bank import bank_constraints, bank_instance, scaled_bank_instance
from repro.relational.instance import DatabaseInstance


def assert_agrees_with_full_check(checker: IncrementalChecker) -> None:
    report = check_database(checker.db, checker.sigma)
    assert checker.is_clean == report.is_clean
    full_names = set(report.by_constraint())
    incremental_names = set(checker.violations())
    assert incremental_names == full_names
    full_cind_tuples = {v.tuple_ for v in report.cind_violations}
    assert checker.violating_cind_tuples() == full_cind_tuples


class TestInitialState:
    def test_dirty_bank(self, bank):
        checker = IncrementalChecker(bank.db.copy(), bank.constraints)
        assert not checker.is_clean
        assert_agrees_with_full_check(checker)

    def test_clean_bank(self, bank):
        checker = IncrementalChecker(bank.clean_db.copy(), bank.constraints)
        assert checker.is_clean

    def test_empty_database(self, bank):
        checker = IncrementalChecker(
            DatabaseInstance(bank.schema), bank.constraints
        )
        assert checker.is_clean


class TestSingleOperations:
    def test_insert_creating_cind_violation(self, bank):
        checker = IncrementalChecker(bank.clean_db.copy(), bank.constraints)
        # A checking account in EDI with no interest entry problem: the
        # correct interest rows exist, so this is clean...
        checker.insert(
            "checking", ("99", "New Guy", "EDI, EH1", "131-0000000", "EDI")
        )
        assert checker.is_clean
        # ... but a checking tuple with an unknown branch violates ψ4/ψ6.
        checker.insert(
            "checking", ("98", "Lost Guy", "???", "000", "MARS")
        )
        assert not checker.is_clean
        assert_agrees_with_full_check(checker)

    def test_insert_fixing_cind_violation(self, bank):
        checker = IncrementalChecker(bank.db.copy(), bank.constraints)
        assert any(n.startswith("psi6") for n in checker.violations())
        checker.insert("interest", ("EDI", "UK", "checking", "1.5%"))
        assert not any(n.startswith("psi6") for n in checker.violations())
        assert_agrees_with_full_check(checker)

    def test_delete_removing_cfd_violation(self, bank):
        checker = IncrementalChecker(bank.db.copy(), bank.constraints)
        (t12,) = [t for t in checker.db["interest"] if t["rt"] == "10.5%"]
        checker.delete("interest", t12)
        assert not any(n.startswith("phi3") for n in checker.violations())
        assert_agrees_with_full_check(checker)

    def test_delete_last_witness_creates_violations(self, bank):
        checker = IncrementalChecker(bank.clean_db.copy(), bank.constraints)
        (row,) = [
            t for t in checker.db["interest"]
            if t["ab"] == "NYC" and t["at"] == "saving"
        ]
        checker.delete("interest", row)
        assert not checker.is_clean
        assert_agrees_with_full_check(checker)

    def test_duplicate_insert_noop(self, bank):
        checker = IncrementalChecker(bank.clean_db.copy(), bank.constraints)
        existing = checker.db["interest"].tuples[0]
        assert not checker.insert("interest", existing)
        assert checker.is_clean

    def test_delete_absent_noop(self, bank):
        checker = IncrementalChecker(bank.clean_db.copy(), bank.constraints)
        from repro.relational.instance import Tuple

        ghost = Tuple(
            bank.schema.relation("interest"), ("X", "Y", "saving", "0%")
        )
        assert not checker.delete("interest", ghost)

    def test_cfd_pair_violation_by_insert(self, bank):
        checker = IncrementalChecker(bank.clean_db.copy(), bank.constraints)
        # Same (an, ab) key with a different name violates ϕ1.
        checker.insert(
            "saving", ("01", "Impostor", "NYC, 19087", "212-5820844", "NYC")
        )
        assert any(n.startswith("phi1") for n in checker.violations())
        assert_agrees_with_full_check(checker)


class TestRowShapes:
    """`insert` must account the canonical stored tuple for any row shape.

    Regression: the old implementation resolved non-`Tuple` rows as
    ``instance.tuples[-1]``, silently depending on `RelationInstance.add`
    appending at the tail; it now uses the Tuple returned by `add`.
    """

    def test_insert_mapping_shaped_row(self, bank):
        checker = IncrementalChecker(bank.clean_db.copy(), bank.constraints)
        assert checker.insert(
            "interest", {"ab": "LON", "ct": "UK", "at": "saving", "rt": "9%"}
        )
        # The mapping row lands in the CFD/CIND state: phi3's UK/saving row
        # demands 4.5%, so the 9% rate is a violation the state must see.
        assert not checker.is_clean
        assert_agrees_with_full_check(checker)

    def test_insert_sequence_shaped_row(self, bank):
        checker = IncrementalChecker(bank.clean_db.copy(), bank.constraints)
        assert checker.insert("interest", ("LON", "UK", "saving", "9%"))
        assert not checker.is_clean
        assert_agrees_with_full_check(checker)

    def test_insert_returns_canonical_tuple_semantics(self, bank):
        from repro.relational.instance import Tuple

        checker = IncrementalChecker(bank.clean_db.copy(), bank.constraints)
        row = {"ab": "NYC", "ct": "US", "at": "saving", "rt": "4%"}
        # Duplicate of an existing interest row: a no-op in any shape.
        assert not checker.insert("interest", row)
        assert checker.is_clean
        # The stored object for a fresh mapping insert must be a Tuple that
        # delete() can remove again.
        assert checker.insert(
            "interest", {"ab": "LON", "ct": "UK", "at": "saving", "rt": "4.5%"}
        )
        (stored,) = [t for t in checker.db["interest"] if t["ab"] == "LON"]
        assert isinstance(stored, Tuple)
        assert checker.delete("interest", stored)
        assert checker.is_clean
        assert_agrees_with_full_check(checker)


def test_violation_counts_do_not_merge_equal_reprs(bank):
    """Two structurally equal unnamed CFDs must keep separate count keys."""
    from repro.core.cfd import standard_fd
    from repro.core.violations import ConstraintSet

    schema = bank.schema
    interest = schema.relation("interest")
    twin_a = standard_fd(interest, ("ab", "ct"), ("rt",))
    twin_b = standard_fd(interest, ("ab", "ct"), ("rt",))
    assert repr(twin_a) == repr(twin_b)
    sigma = ConstraintSet(schema, cfds=[twin_a, twin_b])
    checker = IncrementalChecker(bank.db.copy(), sigma)
    # Both (ab, ct) groups disagree on rt — (EDI, UK) via t11/t12 and
    # (NYC, US) via t13/t14 — so each twin has two violated groups, and the
    # counts must not collapse into one repr-keyed entry.
    violations = checker.violations()
    assert len(violations) == 2
    assert sorted(violations.values()) == [2, 2]
    assert_agrees_with_full_check(checker)


@pytest.mark.parametrize("seed", [2, 8, 21])
def test_random_operation_sequences_agree(seed):
    """Fuzz: 120 random inserts/deletes, checking agreement throughout."""
    rng = random.Random(seed)
    sigma = bank_constraints()
    db = scaled_bank_instance(40, error_rate=0.1, seed=seed)
    checker = IncrementalChecker(db, sigma)
    assert_agrees_with_full_check(checker)

    relations = list(sigma.schema.relation_names)
    for step in range(120):
        relation = rng.choice(relations)
        instance = checker.db[relation]
        if instance.tuples and rng.random() < 0.45:
            victim = rng.choice(instance.tuples)
            checker.delete(relation, victim)
        else:
            arity = instance.schema.arity
            if relation.startswith("account") or relation in ("saving", "checking"):
                row = [f"v{rng.randint(0, 8)}" for __ in range(arity - 1)]
                if relation.startswith("account"):
                    row.append(rng.choice(("saving", "checking")))
                else:
                    row.append(rng.choice(("NYC", "EDI", "LON")))
            else:  # interest
                row = [
                    rng.choice(("NYC", "EDI", "LON")),
                    rng.choice(("US", "UK")),
                    rng.choice(("saving", "checking")),
                    rng.choice(("1%", "1.5%", "4%", "4.5%")),
                ]
            checker.insert(relation, row)
        if step % 10 == 0:
            assert_agrees_with_full_check(checker)
    assert_agrees_with_full_check(checker)
