"""Tests for exact CFD implication (the coNP cell of Tables 1/2).

Includes a brute-force cross-check on random inputs: Σ |= φ iff no 1- or
2-tuple instance over the candidate pools satisfies Σ and violates φ.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.cfd_implication import cfd_implies, _candidates
from repro.core.cfd import CFD, standard_fd
from repro.core.normalize import normalize_cfds
from repro.errors import ConstraintError
from repro.relational.domains import BOOL, FiniteDomain
from repro.relational.instance import RelationInstance, Tuple
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.values import WILDCARD as _

from tests.strategies import cfds as cfd_strategy
from tests.strategies import relation_schemas


@pytest.fixture
def r():
    return RelationSchema("R", ["A", "B", "C"])


class TestClassicalFDRules:
    def test_reflexivity(self, r):
        # A, B -> A is implied by nothing.
        phi = standard_fd(r, ("A", "B"), ("A",))
        assert cfd_implies(r, [], phi)

    def test_transitivity(self, r):
        sigma = [standard_fd(r, ("A",), ("B",)), standard_fd(r, ("B",), ("C",))]
        assert cfd_implies(r, sigma, standard_fd(r, ("A",), ("C",)))

    def test_augmentation(self, r):
        sigma = [standard_fd(r, ("A",), ("B",))]
        assert cfd_implies(r, sigma, standard_fd(r, ("A", "C"), ("B",)))

    def test_no_reverse(self, r):
        sigma = [standard_fd(r, ("A",), ("B",))]
        result = cfd_implies(r, sigma, standard_fd(r, ("B",), ("A",)))
        assert not result.implied
        ce = result.counterexample
        assert ce is not None and len(ce) == 2
        for cfd in sigma:
            assert cfd.satisfied_by(ce)
        assert not standard_fd(r, ("B",), ("A",)).satisfied_by(ce)

    def test_unrelated_not_implied(self, r):
        result = cfd_implies(r, [], standard_fd(r, ("A",), ("B",)))
        assert not result.implied


class TestConditionalRules:
    def test_pattern_weakening_implied(self, r):
        # (A -> B, (_ || _)) implies (A -> B, (a || _)).
        general = standard_fd(r, ("A",), ("B",))
        specific = CFD(r, ("A",), ("B",), [(("a",), (_,))])
        assert cfd_implies(r, [general], specific)
        assert not cfd_implies(r, [specific], general)

    def test_constant_propagation(self, r):
        # (nil -> A, a) and (A=a -> B, b) imply (nil -> B, b).
        sigma = [
            CFD(r, (), ("A",), [((), ("a",))]),
            CFD(r, ("A",), ("B",), [(("a",), ("b",))]),
        ]
        goal = CFD(r, (), ("B",), [((), ("b",))])
        assert cfd_implies(r, sigma, goal)

    def test_constant_mismatch_not_implied(self, r):
        sigma = [
            CFD(r, (), ("A",), [((), ("a",))]),
            CFD(r, ("A",), ("B",), [(("OTHER",), ("b",))]),
        ]
        goal = CFD(r, (), ("B",), [((), ("b",))])
        result = cfd_implies(r, sigma, goal)
        assert not result.implied
        assert len(result.counterexample) == 1  # single-tuple counterexample

    def test_finite_domain_case_split(self):
        # dom(A) = bool; both values force B = b => (nil -> B, b) follows,
        # the CFD analogue of the CIND7 reasoning.
        rel = RelationSchema("R", [Attribute("A", BOOL), "B"])
        sigma = [
            CFD(rel, ("A",), ("B",), [((True,), ("b",))]),
            CFD(rel, ("A",), ("B",), [((False,), ("b",))]),
        ]
        goal = CFD(rel, (), ("B",), [((), ("b",))])
        assert cfd_implies(rel, sigma, goal)

    def test_finite_domain_partial_split_fails(self):
        dom = FiniteDomain("tri", ("x", "y", "z"))
        rel = RelationSchema("R", [Attribute("A", dom), "B"])
        sigma = [
            CFD(rel, ("A",), ("B",), [(("x",), ("b",))]),
            CFD(rel, ("A",), ("B",), [(("y",), ("b",))]),
        ]
        goal = CFD(rel, (), ("B",), [((), ("b",))])
        result = cfd_implies(rel, sigma, goal)
        assert not result.implied
        assert any(t["A"] == "z" for t in result.counterexample)

    def test_inconsistent_sigma_implies_everything(self):
        rel = RelationSchema("R", [Attribute("A", BOOL), "B"])
        sigma = [
            CFD(rel, (), ("B",), [((), ("p",))]),
            CFD(rel, (), ("B",), [((), ("q",))]),
        ]
        goal = CFD(rel, (), ("B",), [((), ("anything",))])
        assert cfd_implies(rel, sigma, goal)

    def test_multi_row_goal(self, r):
        general = standard_fd(r, ("A",), ("B",))
        goal = CFD(r, ("A",), ("B",), [(("a1",), (_,)), (("a2",), (_,))])
        assert cfd_implies(r, [general], goal)

    def test_wrong_relation_rejected(self, r):
        other = RelationSchema("S", ["A", "B", "C"])
        with pytest.raises(ConstraintError):
            cfd_implies(r, [], standard_fd(other, ("A",), ("B",)))


def _brute_force_implies(relation, sigma, phi) -> bool:
    """Reference: search all 1- and 2-tuple instances over the pools."""
    sigma_nf = normalize_cfds(sigma)
    phi_nf = normalize_cfds([phi])
    pools = _candidates(relation, sigma_nf + phi_nf)
    names = list(pools)
    all_tuples = [
        Tuple(relation, dict(zip(names, combo)))
        for combo in itertools.product(*(pools[n] for n in names))
    ]
    for i, t1 in enumerate(all_tuples):
        for t2 in all_tuples[i:]:
            instance = RelationInstance(relation, [t1, t2])
            if not all(c.satisfied_by(instance) for c in sigma_nf):
                continue
            if not all(c.satisfied_by(instance) for c in phi_nf):
                return False
    return True


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_matches_brute_force_on_random_cfds(data):
    relation = data.draw(relation_schemas(name="R", max_arity=3))
    n = data.draw(st.integers(min_value=0, max_value=3))
    sigma = [data.draw(cfd_strategy(relation, max_rows=1)) for __ in range(n)]
    phi = data.draw(cfd_strategy(relation, max_rows=1))
    expected = _brute_force_implies(relation, sigma, phi)
    result = cfd_implies(relation, sigma, phi)
    assert result.implied == expected
    if not result.implied:
        ce = result.counterexample
        assert all(c.satisfied_by(ce) for c in normalize_cfds(sigma))
        assert not phi.satisfied_by(ce)
