"""Tests for CIND-driven schema matching / data migration (Example 1.1)."""

import pytest

from repro.core.violations import check_database
from repro.datasets.bank import bank_cinds, bank_constraints, bank_schema
from repro.matching.migrate import migrate, verify_migration
from repro.relational.instance import DatabaseInstance


@pytest.fixture
def source_only(bank):
    """The bank database with only the account_* relations populated."""
    db = DatabaseInstance(bank.schema)
    for name in ("account_NYC", "account_EDI"):
        for t in bank.db[name]:
            db[name].add(t)
    # interest is reference data the target side already has (clean rates).
    for t in bank.clean_db["interest"]:
        db["interest"].add(t)
    return db


class TestExample11Migration:
    def test_accounts_split_by_type(self, bank, source_only):
        # ψ1/ψ2 route saving accounts to saving, checking to checking —
        # the contextual matching ind1/ind2 of Example 1.1.
        psi12 = [c for c in bank.cinds if c.name.startswith(("psi1", "psi2"))]
        result = migrate(source_only, psi12)
        assert len(result.db["saving"]) == 2    # t1 (NYC), t4 (EDI)
        assert len(result.db["checking"]) == 3  # t2, t3 (NYC), t5 (EDI)
        assert verify_migration(result, psi12)

    def test_branch_constant_attached(self, bank, source_only):
        psi12 = [c for c in bank.cinds if c.name.startswith(("psi1", "psi2"))]
        result = migrate(source_only, psi12)
        for t in result.db["saving"]:
            assert t["ab"] in ("NYC", "EDI")
        edinburgh = [t for t in result.db["saving"] if t["ab"] == "EDI"]
        assert len(edinburgh) == 1
        assert edinburgh[0]["cn"] == "S. Bundy"

    def test_full_cind_set_migration_is_clean(self, bank, source_only):
        result = migrate(source_only, bank.cinds)
        assert verify_migration(result, bank.cinds)
        # The migrated database equals Fig. 1's target (modulo the planted
        # t12 error, which migration of course does not recreate).
        report = check_database(result.db, bank.constraints)
        assert report.is_clean, report.summary()

    def test_existing_witnesses_not_duplicated(self, bank):
        # Migrating the already-complete clean instance inserts nothing.
        result = migrate(bank.clean_db, bank.cinds)
        assert result.total_inserted == 0

    def test_unmatched_tuples_reported(self, bank, source_only):
        # With only ψ1 (saving routing), checking accounts match nothing.
        psi1 = [c for c in bank.cinds if c.name.startswith("psi1")]
        result = migrate(source_only, psi1)
        unmatched_names = {t["cn"] for t in result.unmatched}
        assert "G. King" in unmatched_names     # checking account t2
        assert "J. Smith" not in unmatched_names  # saving account t1

    def test_matched_counts(self, bank, source_only):
        psi12 = [c for c in bank.cinds if c.name.startswith(("psi1", "psi2"))]
        result = migrate(source_only, psi12)
        assert result.matched["psi1[NYC]"] == 1
        assert result.matched["psi2[NYC]"] == 2
        assert result.matched["psi1[EDI]"] == 1
        assert result.matched["psi2[EDI]"] == 1

    def test_input_untouched(self, bank, source_only):
        before = source_only.total_tuples()
        migrate(source_only, bank.cinds)
        assert source_only.total_tuples() == before


class TestFillPolicy:
    def test_custom_fill(self, bank, source_only):
        psi12 = [c for c in bank.cinds if c.name.startswith(("psi1", "psi2"))]

        def fill(relation, attribute, source):
            return f"FILL-{attribute}"

        # ψ1/ψ2 constrain every target column, so fill is never needed here;
        # drop 'cp' from the mapping to exercise it.
        from repro.core.cind import CIND
        from repro.relational.values import WILDCARD as _

        account = bank.schema.relation("account_NYC")
        saving = bank.schema.relation("saving")
        partial = CIND(
            account, ("an", "cn"), ("at",), saving, ("an", "cn"), ("ab",),
            [((_, _, "saving"), (_, _, "NYC"))],
            name="partial",
        )
        result = migrate(source_only, [partial], fill=fill)
        migrated = [t for t in result.db["saving"] if t["ab"] == "NYC"]
        assert migrated
        assert all(t["cp"] == "FILL-cp" for t in migrated)

    def test_default_fill_copies_same_named_columns(self, bank, source_only):
        from repro.core.cind import CIND
        from repro.relational.values import WILDCARD as _

        account = bank.schema.relation("account_NYC")
        saving = bank.schema.relation("saving")
        partial = CIND(
            account, ("an",), ("at",), saving, ("an",), ("ab",),
            [((_, "saving"), (_, "NYC"))],
            name="partial",
        )
        result = migrate(source_only, [partial])
        migrated = [t for t in result.db["saving"] if t["ab"] == "NYC"]
        # cn/ca/cp exist in both schemas: copied from the source tuple.
        assert any(t["cn"] == "J. Smith" for t in migrated)
