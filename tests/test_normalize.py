"""Tests for normal forms (Prop. 3.1), incl. semantic-equivalence properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cind import CIND
from repro.core.normalize import (
    is_normalized_cfd_set,
    is_normalized_cind_set,
    normalize_cfd,
    normalize_cfds,
    normalize_cind,
    normalize_cinds,
)
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _

from tests.strategies import cfds, cinds, database_schemas, instances


@pytest.fixture
def rs_schema():
    r = RelationSchema("R", ["A", "B", "C", "D"])
    s = RelationSchema("S", ["E", "F", "G"])
    return DatabaseSchema([r, s]), r, s


class TestNormalizeCINDExamples:
    def test_example_3_1_rewrite(self, rs_schema):
        """(R[A,B;C,D] ⊆ S[E,F;G], (_,h; i,_ ‖ _,h; o)) becomes
        (R[A;B,C] ⊆ S[E;F,G], (_; h,i ‖ _; h,o))."""
        __, r, s = rs_schema
        cind = CIND(
            r, ("A", "B"), ("C", "D"), s, ("E", "F"), ("G",),
            [((_, "h", "i", _), (_, "h", "o"))],
        )
        (nf,) = normalize_cind(cind)
        assert nf.is_normal_form
        assert nf.x == ("A",)
        assert set(nf.xp) == {"B", "C"}
        assert nf.y == ("E",)
        assert set(nf.yp) == {"F", "G"}
        assert nf.pattern.lhs_value("B") == "h"
        assert nf.pattern.lhs_value("C") == "i"
        assert nf.pattern.rhs_value("F") == "h"
        assert nf.pattern.rhs_value("G") == "o"

    def test_multi_row_splits(self, bank):
        psi5 = bank.by_name["psi5"]
        nf = normalize_cind(psi5)
        assert len(nf) == 2
        assert all(c.is_normal_form for c in nf)
        assert {c.pattern.lhs_value("ab") for c in nf} == {"EDI", "NYC"}

    def test_already_normal_is_stable(self, bank):
        psi1 = bank.by_name["psi1[NYC]"]
        assert psi1.is_normal_form
        (nf,) = normalize_cind(psi1)
        assert nf.x == psi1.x
        assert nf.xp == psi1.xp
        assert nf.tableau == psi1.tableau

    def test_wildcard_pattern_attributes_dropped(self, rs_schema):
        __, r, s = rs_schema
        cind = CIND(
            r, ("A",), ("B", "C"), s, ("E",), ("F",),
            [((_, "h", _), (_, _))],
        )
        (nf,) = normalize_cind(cind)
        assert nf.xp == ("B",)  # C dropped: tp[C] = '_' poses no constraint
        assert nf.yp == ()      # F dropped likewise

    def test_names_get_row_suffix(self, bank):
        psi6 = bank.by_name["psi6"]
        nf = normalize_cind(psi6)
        assert [c.name for c in nf] == ["psi6#0", "psi6#1"]

    def test_normalize_cinds_linear_size(self, bank):
        nf = normalize_cinds(bank.cinds)
        # ψ1..ψ4 variants stay single; ψ5, ψ6 split in two each.
        assert len(nf) == len(bank.cinds) + 2
        assert is_normalized_cind_set(nf)


class TestNormalizeCFDExamples:
    def test_split_rows_and_rhs(self, bank):
        phi3 = bank.by_name["phi3"]
        nf = normalize_cfd(phi3)
        assert len(nf) == 5  # 5 rows x 1 RHS attribute
        assert is_normalized_cfd_set(nf)

    def test_multi_rhs_split(self, bank):
        phi1 = bank.by_name["phi1"]
        nf = normalize_cfd(phi1)
        assert len(nf) == 3
        assert {c.rhs_attribute for c in nf} == {"cn", "ca", "cp"}

    def test_normalize_cfds_total(self, bank):
        nf = normalize_cfds(bank.cfds)
        assert len(nf) == 3 + 3 + 5


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_cind_normalization_preserves_semantics(data):
    """D |= ψ iff D |= normalize(ψ), on random schemas/instances/CINDs."""
    schema = data.draw(database_schemas(max_relations=2))
    rels = list(schema)
    lhs = rels[0]
    rhs = rels[-1]
    cind = data.draw(cinds(lhs, rhs))
    db = data.draw(instances(schema))
    original = cind.satisfied_by(db)
    normalized = all(nf.satisfied_by(db) for nf in normalize_cind(cind))
    assert original == normalized


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_cfd_normalization_preserves_semantics(data):
    """D |= φ iff D |= normalize(φ), on random schemas/instances/CFDs."""
    schema = data.draw(database_schemas(max_relations=1))
    rel = list(schema)[0]
    cfd = data.draw(cfds(rel))
    db = data.draw(instances(schema))
    original = cfd.satisfied_by(db)
    normalized = all(nf.satisfied_by(db) for nf in normalize_cfd(cfd))
    assert original == normalized


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_normalization_output_is_normal_form(data):
    schema = data.draw(database_schemas(max_relations=2))
    rels = list(schema)
    cind = data.draw(cinds(rels[0], rels[-1]))
    assert is_normalized_cind_set(normalize_cind(cind))
    cfd = data.draw(cfds(rels[0]))
    assert is_normalized_cfd_set(normalize_cfd(cfd))
