"""Tests for the e-commerce dataset: a second domain through the full stack."""

import random

import pytest

from repro.cleaning.detect import detect_errors
from repro.cleaning.repair import repair
from repro.consistency.checking import checking
from repro.core.violations import check_database
from repro.datasets.commerce import (
    commerce_constraints,
    commerce_instance,
    commerce_schema,
)
from repro.sql.violations import sql_check_database


@pytest.fixture(scope="module")
def setting():
    schema = commerce_schema()
    return schema, commerce_constraints(schema)


class TestCleanInstance:
    def test_clean_generation_satisfies_constraints(self, setting):
        schema, sigma = setting
        db = commerce_instance(150, error_rate=0.0, seed=4, schema=schema)
        report = check_database(db, sigma)
        assert report.is_clean, report.summary()

    def test_deterministic(self, setting):
        schema, __ = setting
        a = commerce_instance(50, seed=9, schema=schema)
        b = commerce_instance(50, seed=9, schema=schema)
        for rel in schema:
            assert {t.values for t in a[rel.name]} == {
                t.values for t in b[rel.name]
            }

    def test_quotes_may_drift_in_price(self, setting):
        # The conditional part: a quote with an off-catalog price is legal.
        schema, sigma = setting
        db = commerce_instance(30, error_rate=0.0, seed=1, schema=schema)
        db.add("orders", ("oX", "c0000", "UK", "sku0", "777", "quote"))
        assert check_database(db, sigma).is_clean
        # ... but the same price on a *paid* order is a violation.
        db.add("orders", ("oY", "c0000", "UK", "sku0", "777", "paid"))
        report = check_database(db, sigma)
        assert not report.is_clean
        assert any("paid_price" in n for n in report.by_constraint())


class TestDirtyInstance:
    def test_errors_detected(self, setting):
        schema, sigma = setting
        db = commerce_instance(300, error_rate=0.15, seed=4, schema=schema)
        detection = detect_errors(db, sigma)
        assert not detection.is_clean

    def test_sql_engine_agrees(self, setting):
        schema, sigma = setting
        db = commerce_instance(200, error_rate=0.15, seed=5, schema=schema)
        memory = detect_errors(db, sigma)
        sql = sql_check_database(db, sigma)
        assert set(sql) == set(memory.report.by_constraint())

    def test_repairable_with_delete_policy(self, setting):
        # Price-drifted paid orders cannot be fixed by inserting catalog
        # rows (that would break the catalog key); deleting the offending
        # orders converges.
        schema, sigma = setting
        db = commerce_instance(120, error_rate=0.1, seed=6, schema=schema)
        result = repair(db, sigma, cind_policy="delete", max_rounds=15)
        assert result.clean, check_database(result.db, sigma).summary()

    def test_insert_policy_reports_truthfully(self, setting):
        # The insert policy may oscillate on this error class (inserted
        # witnesses violate the catalog FD); whatever happens, the result
        # flag must match an independent recheck.
        schema, sigma = setting
        db = commerce_instance(120, error_rate=0.1, seed=6, schema=schema)
        result = repair(db, sigma, cind_policy="insert", max_rounds=5)
        assert result.clean == check_database(result.db, sigma).is_clean

    def test_error_rate_validation(self, setting):
        with pytest.raises(ValueError):
            commerce_instance(10, error_rate=-0.1)


class TestConstraintSetItself:
    def test_consistent(self, setting):
        schema, sigma = setting
        decision = checking(schema, sigma, rng=random.Random(2))
        assert decision.consistent
        assert sigma.satisfied_by(decision.witness)

    def test_constraint_counts(self, setting):
        __, sigma = setting
        assert len(sigma.cinds) == 6
        assert len(sigma.cfds) == 4
