"""End-to-end integration tests across modules.

Pipelines that chain generator → data → detection → repair → consistency,
on random seeds, asserting the cross-module invariants hold:

* consistent-by-construction Σ is accepted by Checking, and its witness
  verifies;
* clean data stays clean after population; injected errors are detected by
  both engines identically and removed by repair;
* normalization, SQL, and in-memory views of the same Σ agree everywhere.
"""

import random

import pytest

from repro.cleaning.detect import detect_errors
from repro.cleaning.repair import repair
from repro.consistency.checking import checking
from repro.consistency.random_checking import random_checking
from repro.core.violations import check_database
from repro.generator.constraint_gen import consistent_constraints
from repro.generator.data_gen import (
    inject_cfd_violations,
    inject_cind_violations,
    populate_clean,
)
from repro.generator.schema_gen import random_schema
from repro.sql.violations import sql_check_database


@pytest.mark.parametrize("seed", [3, 11, 27])
class TestGenerateCheckPipeline:
    def test_consistent_sigma_accepted_with_verified_witness(self, seed):
        schema = random_schema(n_relations=6, seed=seed, max_arity=8,
                               finite_ratio=0.25)
        sigma, witness = consistent_constraints(schema, 150, rng=random.Random(seed))
        decision = checking(schema, sigma, rng=random.Random(seed))
        assert decision.consistent
        assert sigma.satisfied_by(decision.witness)
        # The generator's own witness also verifies, independently.
        assert sigma.satisfied_by(witness)

    def test_normalized_sigma_same_verdict(self, seed):
        schema = random_schema(n_relations=5, seed=seed, max_arity=6,
                               finite_ratio=0.2)
        sigma, witness = consistent_constraints(schema, 80, rng=random.Random(seed))
        normal = sigma.normalized()
        assert normal.satisfied_by(witness)
        decision = checking(schema, normal, rng=random.Random(seed))
        assert decision.consistent


@pytest.mark.parametrize("seed", [5, 19])
class TestDirtyDataPipeline:
    def _setting(self, seed):
        schema = random_schema(n_relations=4, seed=seed, min_arity=6,
                               max_arity=9, finite_ratio=0.2)
        sigma, witness = consistent_constraints(schema, 25, rng=random.Random(seed))
        db = populate_clean(sigma, witness, 30, rng=random.Random(seed))
        return schema, sigma, db

    def test_clean_then_inject_then_detect_then_repair(self, seed):
        schema, sigma, db = self._setting(seed)
        assert check_database(db, sigma).is_clean

        rng = random.Random(seed)
        injected = inject_cfd_violations(db, sigma, 4, rng=rng)
        injected_cind = inject_cind_violations(db, sigma, 4, rng=rng)
        total_injected = injected.total + injected_cind.total
        if total_injected == 0:
            pytest.skip("seed produced no injectable violation sites")

        detection = detect_errors(db, sigma)
        assert not detection.is_clean

        result = repair(db, sigma, cind_policy="insert", max_rounds=20)
        final = check_database(result.db, sigma)
        assert result.clean == final.is_clean
        if result.clean:
            assert final.is_clean

    def test_sql_and_memory_engines_agree_on_dirty_data(self, seed):
        schema, sigma, db = self._setting(seed)
        rng = random.Random(seed + 1)
        inject_cfd_violations(db, sigma, 3, rng=rng)
        inject_cind_violations(db, sigma, 3, rng=rng)
        memory = detect_errors(db, sigma)
        sql = sql_check_database(db, sigma)
        assert set(sql) == set(memory.report.by_constraint())


class TestBankFullCycle:
    def test_detect_repair_recheck_consistency(self, bank):
        # 1. dirty instance detected
        detection = detect_errors(bank.db, bank.constraints)
        assert detection.report.total == 2
        # 2. repair to clean
        repaired = repair(bank.db, bank.constraints)
        assert repaired.clean
        # 3. Σ itself is consistent (both algorithms agree, witnesses verify)
        for algorithm in (checking, random_checking):
            decision = algorithm(bank.schema, bank.constraints,
                                 rng=random.Random(4))
            assert decision.consistent
            assert bank.constraints.satisfied_by(decision.witness)

    def test_parser_round_trip_preserves_detection(self, bank):
        # Formatting Σ to text, re-parsing, and re-checking must find the
        # same two violations.
        from repro.core.parser import format_cfd, format_cind, parse_constraints

        lines = []
        for cind in bank.cinds:
            lines.extend(format_cind(cind))
        for cfd in bank.cfds:
            lines.extend(format_cfd(cfd))
        sigma2 = parse_constraints("\n".join(lines), bank.schema)
        report = check_database(bank.db, sigma2)
        # ψ6/ϕ3 were split into one constraint per row by the round trip,
        # but the violating tuples are identical.
        assert report.total == 2
        assert check_database(bank.clean_db, sigma2).is_clean
