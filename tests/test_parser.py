"""Tests for the textual constraint syntax, incl. round-trips."""

import pytest

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.parser import (
    format_cfd,
    format_cind,
    parse_cfd,
    parse_cind,
    parse_constraint,
    parse_constraints,
)
from repro.errors import ParseError
from repro.relational.values import WILDCARD, is_wildcard


class TestParseCIND:
    def test_paper_ind6(self, bank):
        text = (
            "checking[nil ; ab='EDI'] <= "
            "interest[nil ; ab='EDI', at='checking', ct='UK', rt='1.5%']"
        )
        cind = parse_cind(text, bank.schema)
        assert cind.lhs_relation.name == "checking"
        assert cind.x == ()
        assert cind.xp == ("ab",)
        assert cind.yp == ("ab", "at", "ct", "rt")
        assert cind.pattern.rhs_value("rt") == "1.5%"

    def test_standard_ind(self, bank):
        cind = parse_cind("saving[ab ; nil] <= interest[ab ; nil]", bank.schema)
        assert cind.is_standard_ind

    def test_named(self, bank):
        cind = parse_cind(
            "[my-ind] saving[ab ; nil] <= interest[ab ; nil]", bank.schema
        )
        assert cind.name == "my-ind"

    def test_x_constant_mirrored_to_y(self, bank):
        cind = parse_cind(
            "saving[ab='EDI' ; nil] <= interest[ab ; nil]", bank.schema
        )
        assert cind.pattern.lhs_value("ab") == "EDI"
        assert cind.pattern.rhs_value("ab") == "EDI"

    def test_conflicting_x_y_constants_rejected(self, bank):
        with pytest.raises(ParseError):
            parse_cind(
                "saving[ab='EDI' ; nil] <= interest[ab='NYC' ; nil]", bank.schema
            )

    def test_arity_mismatch_rejected(self, bank):
        with pytest.raises(ParseError):
            parse_cind("saving[ab, an ; nil] <= interest[ab ; nil]", bank.schema)

    def test_unknown_relation_rejected(self, bank):
        with pytest.raises(ParseError):
            parse_cind("nope[ab ; nil] <= interest[ab ; nil]", bank.schema)

    def test_missing_semicolon_rejected(self, bank):
        with pytest.raises(ParseError):
            parse_cind("saving[ab] <= interest[ab ; nil]", bank.schema)

    def test_unicode_subset_accepted(self, bank):
        cind = parse_cind("saving[ab ; nil] ⊆ interest[ab ; nil]", bank.schema)
        assert cind.is_standard_ind

    def test_quoted_values_with_commas_and_spaces(self, bank):
        cind = parse_cind(
            "saving[nil ; ca='NYC, 19087'] <= interest[nil ; ct='US']",
            bank.schema,
        )
        assert cind.pattern.lhs_value("ca") == "NYC, 19087"


class TestParseCFD:
    def test_paper_phi3_row(self, bank):
        cfd = parse_cfd(
            "interest: ct='UK', at='checking' -> rt='1.5%'", bank.schema
        )
        assert cfd.relation.name == "interest"
        assert cfd.lhs == ("ct", "at")
        assert cfd.pattern.rhs_value("rt") == "1.5%"

    def test_standard_fd(self, bank):
        cfd = parse_cfd("saving: an, ab -> cn, ca, cp", bank.schema)
        assert cfd.is_standard_fd

    def test_empty_lhs(self, bank):
        cfd = parse_cfd("interest: nil -> ct='UK'", bank.schema)
        assert cfd.lhs == ()

    def test_named(self, bank):
        cfd = parse_cfd("[fd1] saving: an, ab -> cn", bank.schema)
        assert cfd.name == "fd1"

    def test_hyphenated_constant(self, bank):
        cfd = parse_cfd("saving: cp='212-5820844' -> ab='NYC'", bank.schema)
        assert cfd.pattern.lhs_value("cp") == "212-5820844"

    def test_missing_arrow_rejected(self, bank):
        with pytest.raises(ParseError):
            parse_cfd("saving: an, ab", bank.schema)

    def test_empty_rhs_rejected(self, bank):
        with pytest.raises(ParseError):
            parse_cfd("saving: an -> ", bank.schema)


class TestParseConstraintDispatch:
    def test_cind_detected(self, bank):
        out = parse_constraint("saving[ab ; nil] <= interest[ab ; nil]", bank.schema)
        assert isinstance(out, CIND)

    def test_cfd_detected(self, bank):
        out = parse_constraint("saving: an, ab -> cn", bank.schema)
        assert isinstance(out, CFD)


class TestParseConstraintsFile:
    def test_bank_constraint_file(self, bank):
        text = """
        # the dependencies of Examples 1.1/1.2
        [ind3] saving[ab ; nil] <= interest[ab ; nil]
        [ind6] checking[nil ; ab='EDI'] <= interest[nil ; ab='EDI', at='checking', ct='UK', rt='1.5%']
        [fd1]  saving: an, ab -> cn, ca, cp
        [fd3]  interest: ct, at -> rt
        """
        sigma = parse_constraints(text, bank.schema)
        assert len(sigma.cinds) == 2
        assert len(sigma.cfds) == 2
        # semantics: ind6 catches t10, like psi6.
        ind6 = [c for c in sigma.cinds if c.name == "ind6"][0]
        assert not ind6.satisfied_by(bank.db)
        assert ind6.satisfied_by(bank.clean_db)

    def test_comments_and_blank_lines_skipped(self, bank):
        sigma = parse_constraints("\n# nothing\n\n", bank.schema)
        assert len(sigma) == 0


class TestRoundTrip:
    def test_cind_round_trip(self, bank):
        for cind in bank.cinds:
            for line in format_cind(cind):
                parsed = parse_cind(line, bank.schema)
                assert parsed.lhs_relation.name == cind.lhs_relation.name
                assert parsed.x == cind.x
                assert parsed.xp == cind.xp
                assert parsed.y == cind.y
                assert parsed.yp == cind.yp

    def test_cind_round_trip_semantics(self, bank):
        # Parsing the formatted rows of ψ6 yields constraints that jointly
        # behave like ψ6 on the dirty and clean instances.
        psi6 = bank.by_name["psi6"]
        parts = [parse_cind(line, bank.schema) for line in format_cind(psi6)]
        assert not all(p.satisfied_by(bank.db) for p in parts)
        assert all(p.satisfied_by(bank.clean_db) for p in parts)

    def test_cfd_round_trip(self, bank):
        for cfd in bank.cfds:
            for line in format_cfd(cfd):
                parsed = parse_cfd(line, bank.schema)
                assert parsed.relation.name == cfd.relation.name
                assert parsed.lhs == cfd.lhs
                assert parsed.rhs == cfd.rhs

    def test_named_round_trip(self, bank):
        (line,) = format_cind(bank.by_name["psi3"])
        assert line.startswith("[psi3] ")
        assert parse_cind(line, bank.schema).name == "psi3"
