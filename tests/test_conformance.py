"""Every backend × the :class:`~tests.conformance.BackendContract` suite.

One registration (a ``make_session`` fixture) per backend — including the
out-of-core ``sqlfile`` backend, which materializes the canonical
instance into an on-disk sqlite file first, and a parallel-dispatch
variant of the memory backend to show option combinations register just
as easily. This file is the entry bar for new backends: add a class,
inherit the contract, done.

The second half registers every backend against the
:class:`~tests.conformance.ServiceContract` — the same bar, but through
:class:`repro.serve.DetectionService`: async reads/batch-writes must
agree bit-identically with direct sessions, and streamed violation
deltas must replay to every cold check exactly (randomized batches +
concurrent interleavings).
"""

from __future__ import annotations

import itertools

import pytest

from repro import api
from repro.api.parallel import fork_available
from repro.sql.loader import create_database_file

from tests.conformance import BackendContract, ServiceContract


def _simple_factory(name, **options):
    def factory(db, sigma):
        return api.connect(db, sigma, backend=name, **options)

    return factory


class TestMemoryContract(BackendContract):
    @pytest.fixture
    def make_session(self):
        return _simple_factory("memory")


class TestNaiveContract(BackendContract):
    @pytest.fixture
    def make_session(self):
        return _simple_factory("naive")


class TestSQLContract(BackendContract):
    @pytest.fixture
    def make_session(self):
        return _simple_factory("sql")


class TestIncrementalContract(BackendContract):
    @pytest.fixture
    def make_session(self):
        return _simple_factory("incremental")


class TestParallelMemoryContract(BackendContract):
    """The memory backend under thread-pool scan-group dispatch."""

    @pytest.fixture
    def make_session(self):
        return _simple_factory("memory", workers=2, executor="thread")


class TestShardedParallelMemoryContract(BackendContract):
    """The memory backend with row-range sharding forced *on*: every scan
    unit splits into three shards (min_shard_rows=1 so even the tiny
    fixture relations shard), exercising the task-graph scheduler's
    map/merge/finalize path end to end against the full contract."""

    @pytest.fixture
    def make_session(self):
        return _simple_factory(
            "memory", workers=2, executor="thread",
            shards=3, min_shard_rows=1,
        )


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
class TestProcessShardedParallelMemoryContract(BackendContract):
    """The memory backend on the fork-based *process* pool with sharding
    forced on: shard states and hit payloads cross a real process
    boundary (pickled plain values, parent-side rebind) and must still
    satisfy the whole contract bit-identically."""

    @pytest.fixture
    def make_session(self):
        return _simple_factory(
            "memory", workers=2, executor="process",
            shards=2, min_shard_rows=1,
        )


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
class TestPersistentPoolMemoryContract(BackendContract):
    """The session-persistent fork pool with work stealing forced on:
    one pool serves every check/count/is_clean in a contract scenario,
    DML between calls drives the drift protocol (shared-memory column
    segments or epoch re-forks), and over-partitioned shards
    (``steal_granularity``) make idle workers steal — all while every
    report stays bit-identical to the serial oracle, list order
    included."""

    @pytest.fixture
    def make_session(self):
        return _simple_factory(
            "memory", workers=2, executor="process",
            pool="persistent", steal_granularity=2, min_shard_rows=1,
        )


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
class TestPerCallPoolMemoryContract(BackendContract):
    """``pool="per-call"`` keeps the historical fork-per-check dispatch
    alive as an explicit opt-out; it must stay on the same contract."""

    @pytest.fixture
    def make_session(self):
        return _simple_factory(
            "memory", workers=2, executor="process",
            pool="per-call", shards=2, min_shard_rows=1,
        )


class TestContentFingerprintSQLFileContract(BackendContract):
    """The out-of-core backend with the content-hash fingerprint mode —
    the full contract must hold regardless of how cache invalidation
    detects foreign writes."""

    @pytest.fixture
    def make_session(self, tmp_path):
        counter = itertools.count()

        def factory(db, sigma):
            path = tmp_path / f"content_{next(counter)}.db"
            create_database_file(path, db)
            return api.connect(
                path, sigma, backend="sqlfile", fingerprint="content"
            )

        return factory


class TestSQLFileContract(BackendContract):
    """The out-of-core backend, run against real on-disk sqlite files."""

    @pytest.fixture
    def make_session(self, tmp_path):
        counter = itertools.count()

        def factory(db, sigma):
            path = tmp_path / f"contract_{next(counter)}.db"
            create_database_file(path, db)
            return api.connect(path, sigma, backend="sqlfile")

        return factory


class TestWindowedSQLFileContract(BackendContract):
    """The out-of-core backend under rowid-window parallel dispatch:
    every cold scan unit splits into three contiguous rowid windows
    (min_shard_rows=1 so even the tiny fixture relations split) run
    concurrently on a pool of read-only connections, and the merged
    partial states must satisfy the whole contract bit-identically —
    including violation-list order."""

    @pytest.fixture
    def make_session(self, tmp_path):
        counter = itertools.count()

        def factory(db, sigma):
            path = tmp_path / f"windowed_{next(counter)}.db"
            create_database_file(path, db)
            return api.connect(
                path, sigma, backend="sqlfile",
                workers=2, executor="thread",
                shards=3, min_shard_rows=1,
            )

        return factory


class TestPersistentWindowedSQLFileContract(BackendContract):
    """The out-of-core backend with its persistent window connection
    pool and stealing-grade rowid windows: read-only connections live
    for the session (seeded witness tables dropped between executions),
    and over-partitioned windows merge in index order — the contract
    must hold across repeated checks and DML on one session."""

    @pytest.fixture
    def make_session(self, tmp_path):
        counter = itertools.count()

        def factory(db, sigma):
            path = tmp_path / f"persistent_{next(counter)}.db"
            create_database_file(path, db)
            return api.connect(
                path, sigma, backend="sqlfile",
                workers=2, executor="thread", pool="persistent",
                steal_granularity=2, min_shard_rows=1,
            )

        return factory


class TestLegacySQLFileContract(BackendContract):
    """The out-of-core backend with ``window_functions="off"`` — the
    GROUP-BY-then-self-join SQL that is also the automatic fallback when
    the sqlite library lacks window functions must keep satisfying the
    full contract on its own."""

    @pytest.fixture
    def make_session(self, tmp_path):
        counter = itertools.count()

        def factory(db, sigma):
            path = tmp_path / f"legacy_{next(counter)}.db"
            create_database_file(path, db)
            return api.connect(
                path, sigma, backend="sqlfile", window_functions="off"
            )

        return factory


# -- the serving layer: every backend behind DetectionService ---------------


def _service_tenant_factory(backend):
    async def factory(service, name, db, sigma):
        return await service.create_tenant(name, db, sigma, backend=backend)

    return factory


class TestMemoryServiceContract(ServiceContract):
    @pytest.fixture
    def make_tenant(self):
        return _service_tenant_factory("memory")


class TestNaiveServiceContract(ServiceContract):
    """The oracle behind the service: deltas come from a shadow
    incremental session, never from diffing naive re-checks."""

    @pytest.fixture
    def make_tenant(self):
        return _service_tenant_factory("naive")


class TestSQLServiceContract(ServiceContract):
    @pytest.fixture
    def make_tenant(self):
        return _service_tenant_factory("sql")


class TestIncrementalServiceContract(ServiceContract):
    @pytest.fixture
    def make_tenant(self):
        return _service_tenant_factory("incremental")


class TestSQLFileServiceContract(ServiceContract):
    """The out-of-core backend behind the service: tenants live in real
    sqlite files, reads fan out over the read-only connection pool, and
    the delta shadow is seeded by loading the file back (rowid order)."""

    @pytest.fixture
    def make_tenant(self, tmp_path):
        counter = itertools.count()

        async def factory(service, name, db, sigma):
            path = tmp_path / f"svc_{next(counter)}.db"
            create_database_file(path, db)
            return await service.create_tenant(
                name, str(path), sigma, backend="sqlfile"
            )

        return factory
