"""Cross-validation of the `repro.api` Session/Backend facade.

The facade's contract is that choosing a backend (memory / naive / sql /
sqlfile / incremental) or turning on parallel dispatch is a *performance*
decision: ``check()`` must return identical ``ViolationReport``s —
identical down to violation-list order — everywhere. The reusable
per-backend suite lives in :mod:`tests.conformance` (registered for all
five backends in ``test_conformance.py``); this module keeps the
Hypothesis cross-validation over random schemas/instances, the
deprecation shims, and the facade plumbing (options, mutations,
registry).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.api import ExecutionOptions, MemoryBackend, SQLBackend
from repro.api.parallel import fork_available
from repro.cleaning.detect import detect_errors, detect_errors_sql
from repro.core.violations import ConstraintSet, check_database_naive, constraint_labels
from repro.datasets.bank import bank_constraints, scaled_bank_instance
from repro.datasets.commerce import commerce_constraints, commerce_instance
from repro.errors import ReproError

from tests.conformance import (
    assert_all_backends_agree,
    in_memory_backend_names,
    report_key,
)
from tests.strategies import cfds as cfd_strategy
from tests.strategies import cinds as cind_strategy
from tests.strategies import database_schemas, instances

#: The backends that take an in-memory DatabaseInstance directly (the
#: file-backed ``sqlfile`` backend is held to the same contract through
#: the conformance kit and its own differential suite instead).
ALL_BACKENDS = in_memory_backend_names()


class TestBackendEquivalenceFixed:
    def test_bank_fig1(self, bank):
        reference = assert_all_backends_agree(bank.db, bank.constraints)
        assert reference.total == 2  # t10 and t12, as in the paper

    def test_bank_clean(self, bank):
        reference = assert_all_backends_agree(bank.clean_db, bank.constraints)
        assert reference.is_clean

    def test_commerce(self):
        db = commerce_instance(n_orders=200, error_rate=0.08, seed=11)
        assert_all_backends_agree(db, commerce_constraints())


@settings(max_examples=8, deadline=None)
@given(
    n_accounts=st.integers(min_value=10, max_value=60),
    error_rate=st.sampled_from([0.0, 0.05, 0.25]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_backends_identical_on_bank(n_accounts, error_rate, seed):
    db = scaled_bank_instance(n_accounts, error_rate=error_rate, seed=seed)
    assert_all_backends_agree(db, bank_constraints())


@settings(max_examples=8, deadline=None)
@given(
    n_orders=st.integers(min_value=5, max_value=60),
    error_rate=st.sampled_from([0.0, 0.1, 0.3]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_backends_identical_on_commerce(n_orders, error_rate, seed):
    db = commerce_instance(n_orders=n_orders, error_rate=error_rate, seed=seed)
    assert_all_backends_agree(db, commerce_constraints())


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
@given(data=st.data())
def test_backends_identical_on_random_constraint_sets(data):
    """Random schemas/instances stress the SQL adapter's report rebuild
    (multi-row tableaux, empty LHS, multi-attribute RHS, self-CINDs)."""
    schema = data.draw(database_schemas(max_relations=2))
    rels = list(schema)
    sigma = ConstraintSet(schema)
    for __ in range(data.draw(st.integers(min_value=0, max_value=2))):
        sigma.add_cfd(data.draw(cfd_strategy(data.draw(st.sampled_from(rels)))))
    for __ in range(data.draw(st.integers(min_value=0, max_value=2))):
        src = data.draw(st.sampled_from(rels))
        dst = data.draw(st.sampled_from(rels))
        sigma.add_cind(data.draw(cind_strategy(src, dst)))
    db = data.draw(instances(schema, max_tuples=10))
    assert_all_backends_agree(db, sigma)


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
class TestProcessParallel:
    """The fork-based process pool path (true CPU parallelism)."""

    def test_matches_serial_on_bank(self):
        db = scaled_bank_instance(300, error_rate=0.05, seed=5)
        sigma = bank_constraints()
        serial = api.connect(db, sigma).check()
        parallel = api.connect(
            db, sigma, workers=4, executor="process"
        ).check()
        assert report_key(parallel) == report_key(serial)

    def test_count_mode_matches(self):
        db = commerce_instance(n_orders=150, error_rate=0.1, seed=5)
        sigma = commerce_constraints()
        serial = api.connect(db, sigma).count()
        parallel = api.connect(
            db, sigma, workers=4, executor="process",
        ).count()
        assert parallel.by_constraint() == serial.by_constraint()
        assert parallel.total == serial.total


class TestMutations:
    #: A UK checking interest row with the wrong rate: a single-tuple
    #: violation of ϕ3 (the tableau demands rt='1.5%').
    ROW = {"ab": "GLA", "ct": "UK", "at": "checking", "rt": "9.9%"}

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_insert_delete_round_trip(self, bank, backend):
        db = bank.clean_db.copy()
        session = api.connect(db, bank.constraints, backend=backend)
        assert session.is_clean()
        assert session.insert("interest", dict(self.ROW)) is True
        assert session.insert("interest", dict(self.ROW)) is False
        assert not session.is_clean()
        report = session.check()
        assert "phi3" in report.by_constraint()
        t = next(t for t in db["interest"] if t["ab"] == "GLA")
        assert session.delete("interest", t) is True
        assert session.delete("interest", t) is False
        assert session.is_clean()
        session.close()

    def test_incremental_live_counts(self, bank):
        session = api.connect(
            bank.db, bank.constraints, backend="incremental"
        )
        # Counter-based monitoring numbers exist and flag the dirty state;
        # keyed by normalized Σ, so only compare emptiness, not labels.
        assert session.backend.live_counts()
        assert not session.is_clean()


class TestSQLBackendAdapter:
    def test_violating_rows_keys_every_constraint(self, bank):
        with api.connect(bank.db, bank.constraints, backend="sql") as session:
            rows = session.backend.violating_rows()
            report = session.check()
        labels = set(constraint_labels(bank.constraints).values())
        assert set(rows) == labels  # empty-entry normalization
        violated = {name for name, r in rows.items() if r}
        assert violated == set(report.by_constraint())

    def test_rows_match_canonical_tuples(self, bank):
        with api.connect(bank.db, bank.constraints, backend="sql") as session:
            report = session.check()
        canonical = {
            t for instance in bank.db for t in instance
        }
        for v in report.cind_violations:
            assert v.tuple_ in canonical
        for v in report.cfd_violations:
            assert set(v.tuples) <= canonical


class TestDeprecationShims:
    def test_detect_errors_warns_and_matches(self, bank):
        with pytest.warns(DeprecationWarning):
            old = detect_errors(bank.db, bank.constraints)
        new = api.connect(bank.db, bank.constraints).detect()
        assert report_key(old.report) == report_key(new.report)
        assert old.dirty_tuples == new.dirty_tuples

    def test_detect_errors_naive_warns_and_matches(self, bank):
        with pytest.warns(DeprecationWarning):
            old = detect_errors(bank.db, bank.constraints, naive=True)
        new = api.connect(bank.db, bank.constraints, backend="naive").detect()
        assert report_key(old.report) == report_key(new.report)

    def test_detect_errors_sql_warns_and_keeps_old_shape(self, bank):
        with pytest.warns(DeprecationWarning):
            old = detect_errors_sql(bank.db, bank.constraints)
        # Historical shape: only violated constraints appear.
        assert old and all(rows for rows in old.values())
        with api.connect(bank.db, bank.constraints, backend="sql") as session:
            normalized = session.backend.violating_rows()
        assert old == {k: v for k, v in normalized.items() if v}


class TestFacadePlumbing:
    def test_unknown_backend_rejected(self, bank):
        with pytest.raises(ReproError):
            api.connect(bank.db, bank.constraints, backend="duckdb")

    def test_backend_class_and_instance_accepted(self, bank):
        by_class = api.connect(bank.db, bank.constraints, backend=MemoryBackend)
        instance = SQLBackend(bank.db, bank.constraints)
        by_instance = api.connect(bank.db, bank.constraints, backend=instance)
        assert report_key(by_class.check()) == report_key(by_instance.check())
        by_instance.close()

    def test_options_validation(self):
        with pytest.raises(ValueError):
            ExecutionOptions(mode="everything")
        with pytest.raises(ValueError):
            ExecutionOptions(workers=0)
        with pytest.raises(ValueError):
            ExecutionOptions(executor="gpu")
        with pytest.raises(ValueError):
            ExecutionOptions(min_shard_rows=0)
        with pytest.raises(ValueError):
            ExecutionOptions(shards=-1)
        with pytest.raises(ValueError):
            ExecutionOptions(fingerprint="sha512")
        # The shard/fingerprint knobs accept their documented values.
        opts = ExecutionOptions(
            workers=2, min_shard_rows=1, shards=4, fingerprint="content"
        )
        assert opts.parallel and opts.shards == 4

    def test_options_and_fields_are_exclusive(self, bank):
        with pytest.raises(ReproError):
            api.connect(
                bank.db, bank.constraints,
                options=ExecutionOptions(), workers=2,
            )

    def test_run_dispatches_on_mode(self, bank):
        db, sigma = bank.db, bank.constraints
        assert api.connect(db, sigma, mode="full").run().total == 2
        assert api.connect(db, sigma, mode="count").run().total == 2
        assert api.connect(db, sigma, mode="early-exit").run() is False

    def test_detection_summary_output_is_sorted(self, bank):
        text = api.connect(bank.db, bank.constraints).detect().summary()
        dirty_lines = [
            line for line in text.splitlines() if line.startswith("  ") and "<-" in line
        ]
        assert dirty_lines == sorted(dirty_lines)
