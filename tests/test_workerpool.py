"""The persistent worker pool: reuse, drift, leaks, stealing schedules.

Four contracts from ISSUE 10:

* **reuse** — a warm parallel ``check()`` spawns zero new processes: the
  PID set is identical across calls, including after small DML (the
  drifted relation travels by shared memory, not by re-fork);
* **epoch re-fork** — drift past ``WorkerPool.shm_drift_rows`` retires
  the workers (disjoint PID set, epoch bump) instead of shipping a huge
  relation through ``/dev/shm``;
* **no leaks** — ``Session.close()`` returns the process to its baseline
  file-descriptor count and unlinks every published shm segment (checked
  by name under ``/dev/shm``);
* **schedule invariance** — reports are bit-identical, including list
  order, under any work-stealing schedule: forced skewed shards cross-
  checked against serial, plus a Hypothesis permutation of the
  scheduler's ready-deque pick via ``parallel._SCHEDULE_HOOK``.
"""

from __future__ import annotations

import gc
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
import repro.api.parallel as parallel
from repro.api.options import ExecutionOptions
from repro.api.workerpool import ShmColumnStore, WorkerPool, fetch_payload
from repro.datasets.bank import bank_constraints, scaled_bank_instance
from repro.engine import plan_detection
from repro.engine.executor import execute_plan
from repro.engine.shards import resolve_shard_count

from tests.conformance import report_key

pytestmark = pytest.mark.skipif(
    not parallel.fork_available(),
    reason="persistent process pools need the fork start method",
)

NEW_ROW = {"ab": "GLA", "ct": "UK", "at": "checking", "rt": "9.9%"}


def persistent_session(db, sigma, **overrides):
    options = dict(
        workers=2, executor="process", shards=2, min_shard_rows=1,
    )
    options.update(overrides)
    return api.connect(db, sigma, **options)


# -- pool reuse and drift ------------------------------------------------------


class TestPoolReuse:
    def test_same_pids_across_checks(self):
        db = scaled_bank_instance(300, error_rate=0.05, seed=3)
        sigma = bank_constraints()
        serial = api.connect(db, sigma).check()
        session = persistent_session(db, sigma)
        assert session.effective_executor == "process-persistent"
        r1 = session.check()
        pool = session.backend._pool
        pids = pool.pids()
        assert pids and all(isinstance(p, int) for p in pids)
        # Cached warm re-check: no graph at all. Force cold re-checks by
        # reconnecting with a fresh cache over the same pool? No — the
        # contract is about the *session's* pool, so mutate to go cold.
        r2 = session.check()
        assert pool.pids() == pids
        assert report_key(r1) == report_key(serial)
        assert report_key(r2) == report_key(serial)
        session.close()

    def test_small_dml_keeps_pids_and_epoch(self, bank):
        db = bank.clean_db.copy()
        session = persistent_session(db, bank.constraints)
        assert session.check().is_clean
        pool = session.backend._pool
        pids, epoch = pool.pids(), pool.epoch
        session.insert("interest", dict(NEW_ROW))
        report = session.check()
        assert pool.pids() == pids
        assert pool.epoch == epoch
        # The drifted relation traveled by shared memory.
        assert len(pool.store) > 0
        oracle = api.connect(db, bank.constraints).check()
        assert report_key(report) == report_key(oracle)
        session.close()

    def test_large_drift_reforks_with_epoch_bump(self, bank, monkeypatch):
        monkeypatch.setattr(WorkerPool, "shm_drift_rows", 0)
        db = bank.clean_db.copy()
        session = persistent_session(db, bank.constraints)
        session.check()
        pool = session.backend._pool
        pids = pool.pids()
        assert pool.epoch == 0
        session.insert("interest", dict(NEW_ROW))
        report = session.check()
        assert pool.epoch == 1
        assert pool.pids().isdisjoint(pids)
        # Re-forked workers read the fresh copy-on-write data, so no
        # column segments survive; CIND witness sets are born after the
        # fork and still (correctly) travel by shared memory.
        assert all(key[0] == "witness" for key in pool.store._segments)
        oracle = api.connect(db, bank.constraints).check()
        assert report_key(report) == report_key(oracle)
        session.close()

    def test_per_call_pool_has_no_persistent_state(self, bank):
        session = api.connect(
            bank.db, bank.constraints, workers=2, executor="process",
            shards=2, min_shard_rows=1, pool="per-call",
        )
        assert session.effective_executor == "process"
        assert session.backend._pool is None
        oracle = api.connect(bank.db, bank.constraints).check()
        assert report_key(session.check()) == report_key(oracle)
        session.close()

    def test_closed_pool_refuses_submissions(self):
        pool = WorkerPool("process", 2)
        pool.close()
        assert pool.closed
        with pytest.raises(RuntimeError, match="closed"):
            pool.executor()
        pool.close()  # idempotent


# -- resource hygiene ----------------------------------------------------------


class TestNoLeaks:
    def test_close_releases_fds_and_shm_segments(self, bank):
        # Warm-up: the first fork pool lazily spawns the multiprocessing
        # resource-tracker process, whose pipe fd lives until interpreter
        # exit. Pay that cost before taking the baseline.
        warmup = persistent_session(bank.clean_db.copy(), bank.constraints)
        warmup.check()
        warmup.close()
        gc.collect()
        baseline = len(os.listdir("/proc/self/fd"))

        db = bank.clean_db.copy()
        session = persistent_session(db, bank.constraints)
        session.check()
        session.insert("interest", dict(NEW_ROW))
        session.check()  # drift -> published shm segments
        pool = session.backend._pool
        names = pool.store.segment_names()
        assert names, "drift should have published at least one segment"
        assert all(
            os.path.exists(f"/dev/shm/{name.lstrip('/')}") for name in names
        )
        session.close()
        gc.collect()
        assert len(os.listdir("/proc/self/fd")) == baseline
        assert not any(
            os.path.exists(f"/dev/shm/{name.lstrip('/')}") for name in names
        )

    def test_finalizer_unlinks_segments_without_close(self):
        store = ShmColumnStore()
        ref = store.publish(("columns", "r", 0), lambda: [("a", "b")])
        assert os.path.exists(f"/dev/shm/{ref.name.lstrip('/')}")
        assert fetch_payload(ref) == [("a", "b")]
        store.close()
        assert not os.path.exists(f"/dev/shm/{ref.name.lstrip('/')}")

    def test_store_reuses_segments_by_key(self):
        store = ShmColumnStore()
        builds = []

        def build():
            builds.append(1)
            return [("x",)]

        ref1 = store.publish(("columns", "r", 7), build)
        ref2 = store.publish(("columns", "r", 7), build)
        assert ref1 == ref2
        assert len(builds) == 1
        store.release(("columns", "r", 7))
        store.release(("columns", "r", 7))
        # Idle segments survive until their keying version goes stale.
        assert len(store) == 1
        store.sweep(lambda key: key[2] != 8)
        assert len(store) == 0


# -- work stealing -------------------------------------------------------------


class TestWorkStealing:
    def test_steal_granularity_over_partitions(self):
        # granularity 0: classic split, capped at workers.
        assert resolve_shard_count(10_000, 2, 1, 0, 0) == 2
        # granularity N: workers * N fine shards for idle workers to steal.
        assert resolve_shard_count(10_000, 2, 1, 0, 4) == 8
        # min_shard_rows still floors the shard size.
        assert resolve_shard_count(10_000, 2, 5_000, 0, 4) == 2
        # explicit shards always wins.
        assert resolve_shard_count(10_000, 2, 1, 3, 4) == 3

    def test_options_validate_new_fields(self):
        assert ExecutionOptions().pool == "persistent"
        assert ExecutionOptions().steal_granularity == 0
        with pytest.raises(ValueError, match="pool"):
            ExecutionOptions(pool="forever")
        with pytest.raises(ValueError, match="steal_granularity"):
            ExecutionOptions(steal_granularity=-1)
        with pytest.raises(ValueError, match="steal_granularity"):
            ExecutionOptions(steal_granularity="lots")

    def test_skewed_fine_shards_match_serial(self):
        db = scaled_bank_instance(120, error_rate=0.1, seed=11)
        sigma = bank_constraints()
        serial = api.connect(db, sigma).check()
        stealing = api.connect(
            db, sigma, workers=2, executor="thread", min_shard_rows=1,
            steal_granularity=5,
        )
        assert report_key(stealing.check()) == report_key(serial)
        process = persistent_session(
            db, sigma, shards=0, steal_granularity=5
        )
        assert report_key(process.check()) == report_key(serial)
        process.close()

    def test_sqlfile_windows_honor_granularity(self, bank, tmp_path):
        from repro.sql.loader import create_database_file

        path = tmp_path / "bank.db"
        create_database_file(path, bank.db)
        serial = api.connect(
            str(path), bank.constraints, backend="sqlfile"
        ).check()
        stealing = api.connect(
            str(path), bank.constraints, backend="sqlfile",
            workers=2, min_shard_rows=1, steal_granularity=4,
        )
        assert stealing.effective_executor == "thread-persistent"
        assert report_key(stealing.check()) == report_key(serial)
        # Warm re-check over the persistent connection pool (the seeded
        # witness tables were dropped; a second cold run must re-seed).
        assert report_key(stealing.check()) == report_key(serial)
        stealing.close()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_reports_invariant_under_any_schedule(self, seed):
        """Permute the scheduler's ready-deque pick arbitrarily: the
        report must stay bit-identical, because states merge by shard
        index, never by completion or submission order."""
        db = scaled_bank_instance(90, error_rate=0.1, seed=7)
        sigma = bank_constraints()
        plan = plan_detection(sigma)
        serial = execute_plan(plan, db)
        rnd = random.Random(seed)
        assert parallel._SCHEDULE_HOOK is None
        parallel._SCHEDULE_HOOK = lambda n: rnd.randrange(n)
        try:
            permuted = parallel.execute_plan_parallel(
                plan, db, workers=1, executor="thread",
                min_shard_rows=1, shards=5,
            )
        finally:
            parallel._SCHEDULE_HOOK = None
        assert report_key(permuted) == report_key(serial)
