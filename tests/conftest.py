"""Shared fixtures: the paper's examples, small schemas, RNG seeds."""

from __future__ import annotations

import random

import pytest

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.violations import ConstraintSet
from repro.datasets.bank import (
    bank_cfds,
    bank_cinds,
    bank_constraints,
    bank_instance,
    bank_schema,
    clean_bank_instance,
)
from repro.relational.domains import BOOL, enum_domain
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _


@pytest.fixture
def rng():
    return random.Random(20070923)  # VLDB'07 started on 2007-09-23


@pytest.fixture(scope="session")
def bank():
    """The bank schema plus everything defined over it, as a namespace."""

    class Bank:
        schema = bank_schema()

    Bank.db = bank_instance(Bank.schema)
    Bank.clean_db = clean_bank_instance(Bank.schema)
    Bank.cinds = bank_cinds(Bank.schema)
    Bank.cfds = bank_cfds(Bank.schema)
    Bank.constraints = bank_constraints(Bank.schema)
    Bank.by_name = {c.name: c for c in Bank.cinds + Bank.cfds}
    return Bank


@pytest.fixture
def ab_schema():
    """Example 3.2's schema: R(A: bool, B: string)."""
    return DatabaseSchema(
        [RelationSchema("R", [Attribute("A", BOOL), Attribute("B")])]
    )


@pytest.fixture
def example_3_2_cfds(ab_schema):
    """The four conflicting CFDs of Example 3.2 (inconsistent set)."""
    r = ab_schema.relation("R")
    return [
        CFD(r, ("A",), ("B",), [((True,), ("b1",))], name="phi1"),
        CFD(r, ("A",), ("B",), [((False,), ("b2",))], name="phi2"),
        CFD(r, ("B",), ("A",), [(("b1",), (False,))], name="phi3"),
        CFD(r, ("B",), ("A",), [(("b2",), (True,))], name="phi4"),
    ]


@pytest.fixture
def example_4_2(ab_schema):
    """Example 4.2: CFD φ and CIND ψ, separately consistent, jointly not.

    Uses R(A: string, B: string) — the example needs no finite domains.
    """
    schema = DatabaseSchema(
        [RelationSchema("R", [Attribute("A"), Attribute("B")])]
    )
    r = schema.relation("R")
    phi = CFD(r, ("A",), ("B",), [((_,), ("a",))], name="phi")
    # ψ = (R[nil; nil] ⊆ R[nil; B], ( ‖ b)): any nonempty instance must
    # contain a tuple with B = b — which φ (forcing B = a) forbids.
    psi = CIND(r, (), (), r, (), ("B",), [((), ("b",))], name="psi")
    return schema, phi, psi


@pytest.fixture
def example_5_1():
    """Example 5.1: R1(E,F), R2(G,H), all infinite, Σ = {φ1,φ2,ψ1,ψ2,ψ3}."""
    schema = DatabaseSchema(
        [
            RelationSchema("R1", [Attribute("E"), Attribute("F")]),
            RelationSchema("R2", [Attribute("G"), Attribute("H")]),
        ]
    )
    r1 = schema.relation("R1")
    r2 = schema.relation("R2")
    phi1 = CFD(r1, ("E",), ("F",), [((_,), (_,))], name="phi1")
    phi2 = CFD(r2, ("H",), ("G",), [((_,), ("c",))], name="phi2")
    psi1 = CIND(r1, ("E",), (), r2, ("G",), (), [((_,), (_,))], name="psi1")
    psi2 = CIND(r2, (), ("H",), r1, (), ("F",), [(("0",), ("a",))], name="psi2")
    psi3 = CIND(r2, (), ("H",), r1, (), ("F",), [(("1",), ("b",))], name="psi3")
    sigma = ConstraintSet(schema, cfds=[phi1, phi2], cinds=[psi1, psi2, psi3])
    return schema, sigma


@pytest.fixture
def example_5_1_finite_h():
    """Example 5.2/5.3's variant: dom(H) = {0, 1} (finite)."""
    dom_h = enum_domain("H01", ("0", "1"))
    schema = DatabaseSchema(
        [
            RelationSchema("R1", [Attribute("E"), Attribute("F")]),
            RelationSchema("R2", [Attribute("G"), Attribute("H", dom_h)]),
        ]
    )
    r1 = schema.relation("R1")
    r2 = schema.relation("R2")
    phi1 = CFD(r1, ("E",), ("F",), [((_,), (_,))], name="phi1")
    phi2 = CFD(r2, ("H",), ("G",), [((_,), ("c",))], name="phi2")
    psi1 = CIND(r1, ("E",), (), r2, ("G",), (), [((_,), (_,))], name="psi1")
    psi2 = CIND(r2, (), ("H",), r1, (), ("F",), [(("0",), ("a",))], name="psi2")
    psi3 = CIND(r2, (), ("H",), r1, (), ("F",), [(("1",), ("b",))], name="psi3")
    sigma = ConstraintSet(schema, cfds=[phi1, phi2], cinds=[psi1, psi2, psi3])
    return schema, sigma
