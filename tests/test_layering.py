"""Tier-1 guard for the repo-specific AST lint (tools/check_layering.py).

Two halves: the linter's rules must *fire* on synthetic bad code (so the
tool can't silently rot), and the real ``src/repro`` tree must be clean
(so a layering/nondeterminism regression fails the suite, not just CI).
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_layering import (  # noqa: E402
    LOW_LAYERS,
    Violation,
    lint_file,
    lint_paths,
    main,
)


def _lint_snippet(tmp_path, rel_path: str, code: str) -> list[Violation]:
    path = tmp_path / rel_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code)
    return lint_file(path)


class TestLayeringRule:
    @pytest.mark.parametrize("stmt", [
        "from repro.api import connect",
        "import repro.api",
        "import repro.cli",
        "from repro import api",
        "from repro.api.session import Session",
    ])
    @pytest.mark.parametrize("layer", ["core", "engine", "consistency"])
    def test_low_layer_importing_top_flagged(self, tmp_path, layer, stmt):
        violations = _lint_snippet(
            tmp_path, f"src/repro/{layer}/mod.py", stmt + "\n"
        )
        assert [v.rule for v in violations] == ["layering"]

    @pytest.mark.parametrize("rel", [
        "src/repro/api/session.py",      # the facade itself
        "src/repro/cli.py",              # the CLI
        "src/repro/cleaning/repair.py",  # orchestrates sessions, sits on top
        "src/repro/__init__.py",         # package root re-exports the facade
    ])
    def test_top_of_stack_modules_exempt(self, tmp_path, rel):
        violations = _lint_snippet(
            tmp_path, rel, "from repro.api import connect\n"
        )
        assert violations == []

    @pytest.mark.parametrize("stmt", [
        "import repro.serve",
        "from repro.serve import DetectionService",
        "from repro import serve",
    ])
    @pytest.mark.parametrize("rel", [
        "src/repro/api/session.py",      # the facade may not know serve
        "src/repro/engine/mod.py",       # nor anything under it
        "src/repro/core/mod.py",
    ])
    def test_serve_layer_is_import_terminal(self, tmp_path, rel, stmt):
        violations = _lint_snippet(tmp_path, rel, stmt + "\n")
        assert [v.rule for v in violations] == ["layering"]

    @pytest.mark.parametrize("rel, stmt", [
        # serve sits above the facade: importing api is its whole job
        ("src/repro/serve/service.py", "from repro.api import connect"),
        # the CLI is the one module allowed to import both layers
        ("src/repro/cli.py", "from repro.serve import DetectionServer"),
        ("src/repro/cli.py", "from repro.api import connect"),
    ])
    def test_serve_and_cli_edges_allowed(self, tmp_path, rel, stmt):
        assert _lint_snippet(tmp_path, rel, stmt + "\n") == []

    @pytest.mark.parametrize("stmt", [
        "from repro.engine.shards import resolve_shard_count",
        "from repro.relational.instance import DatabaseInstance",
    ])
    def test_workerpool_pin_allows_engine_surface(self, tmp_path, stmt):
        """``repro.api.workerpool`` is pinned to the engine/relational
        surface — the imports it actually needs stay clean."""
        assert _lint_snippet(
            tmp_path, "src/repro/api/workerpool.py", stmt + "\n"
        ) == []

    @pytest.mark.parametrize("stmt", [
        "from repro.serve import DetectionService",
        "from repro.api.session import Session",
        "import repro.cli",
    ])
    def test_workerpool_pin_blocks_upper_layers(self, tmp_path, stmt):
        """The pin is an allowlist: anything outside the engine surface
        — the facade, serve, the CLI — is a layering violation even
        though workerpool lives inside the api package."""
        violations = _lint_snippet(
            tmp_path, "src/repro/api/workerpool.py", stmt + "\n"
        )
        # (a serve import also trips the serve-terminal rule — every
        # violation must still be a layering one)
        assert violations and {v.rule for v in violations} == {"layering"}

    def test_low_layers_cover_the_real_tree(self):
        """Every library package under src/repro is in LOW_LAYERS (new
        packages must be classified, not silently unlinted)."""
        exempt = {"api", "cleaning", "serve"}
        packages = {
            p.name
            for p in (REPO_ROOT / "src" / "repro").iterdir()
            if p.is_dir() and (p / "__init__.py").exists()
        }
        low = {prefix.split(".", 1)[1] for prefix in LOW_LAYERS}
        assert packages - exempt == low


class TestMutableDefaultRule:
    @pytest.mark.parametrize("code", [
        "def f(x=[]):\n    return x\n",
        "def f(x={}):\n    return x\n",
        "def f(*, x=set()):\n    return x\n",
        "def f(x=dict()):\n    return x\n",
        "async def f(x=[1, 2]):\n    return x\n",
    ])
    def test_flagged(self, tmp_path, code):
        violations = _lint_snippet(tmp_path, "mod.py", code)
        assert [v.rule for v in violations] == ["mutable-default"]

    @pytest.mark.parametrize("code", [
        "def f(x=None):\n    return x\n",
        "def f(x=()):\n    return x\n",
        "def f(x=frozenset()):\n    return x\n",
        # argful dict() is still shared, but rare and noisy to ban outright
        "def f(x=dict(a=1)):\n    return x\n",
    ])
    def test_not_flagged(self, tmp_path, code):
        assert _lint_snippet(tmp_path, "mod.py", code) == []


class TestNondeterminismRule:
    @pytest.mark.parametrize("code", [
        "import random\nrandom.shuffle(xs)\n",
        "import random\nx = random.random()\n",
        "import random as r\nx = r.choice(xs)\n",
        "from random import randint\n",
        "import time\nx = time.time()\n",
        "import time\nx = time.time_ns()\n",
        "from time import time\n",
    ])
    def test_flagged_in_core(self, tmp_path, code):
        violations = _lint_snippet(tmp_path, "src/repro/core/mod.py", code)
        assert [v.rule for v in violations] == ["nondeterminism"]

    @pytest.mark.parametrize("code", [
        "import random\nr = random.Random(7)\n",
        "import random\nr = random.SystemRandom()\n",
        "from random import Random\n",
        "import time\nx = time.perf_counter()\n",
        "import time\nx = time.monotonic()\n",
    ])
    def test_seeded_and_monotonic_allowed(self, tmp_path, code):
        assert _lint_snippet(tmp_path, "src/repro/core/mod.py", code) == []

    def test_generator_package_exempt(self, tmp_path):
        violations = _lint_snippet(
            tmp_path, "src/repro/generator/mod.py",
            "import random\nrandom.shuffle(xs)\n",
        )
        assert violations == []


class TestDriver:
    def test_src_repro_is_clean(self):
        """The real tree passes its own lint — the PR-blocking assertion."""
        violations = lint_paths([REPO_ROOT / "src" / "repro"])
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import repro.api\n")
        assert main([str(bad)]) == 1
        assert "layering" in capsys.readouterr().out
        assert main([str(REPO_ROOT / "tools" / "check_layering.py")]) == 0
        assert main([str(tmp_path / "does-not-exist.py")]) == 2

    def test_syntax_error_reported_not_raised(self, tmp_path):
        violations = _lint_snippet(tmp_path, "mod.py", "def broken(:\n")
        assert [v.rule for v in violations] == ["syntax"]
