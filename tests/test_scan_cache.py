"""Columnar views + versioned ScanCache: consistency under mutation.

The columnar execution layer rests on two invariants:

1. ``RelationInstance.columns()``/``rows()`` always equal the transpose of
   the live tuple set (the ``version`` counter invalidates them on every
   ``add``/``discard``/``replace_value``);
2. a session's :class:`~repro.engine.cache.ScanCache` never serves a stale
   scan result — any interleaving of mutations and ``check``/``count``/
   ``is_clean`` must answer exactly like a cold naive run over the current
   data, on every backend.

The Hypothesis tests drive randomized ``insert``/``delete`` (all four
backends, persistent sessions so the caches live across mutations) and
``replace_value`` (memory backend — the chase's in-place rewrite, which the
incremental checker's bookkeeping deliberately does not model) against the
fresh-oracle answer after every observation.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.core.violations import check_database_naive
from repro.datasets.bank import bank_constraints, scaled_bank_instance
from repro.engine import ScanCache, execute_plan, plan_detection
from repro.relational.instance import RelationInstance, Tuple
from repro.relational.schema import RelationSchema

from tests.conformance import in_memory_backend_names, report_key

#: In-memory backends only: the file-backed ``sqlfile`` backend runs the
#: same interleavings against a real file in ``test_sqlfile.py``.
ALL_BACKENDS = in_memory_backend_names()


# -- columnar view unit behaviour ---------------------------------------------


class TestColumnarView:
    @pytest.fixture
    def inst(self):
        return RelationInstance(
            RelationSchema("R", ["A", "B"]),
            [("1", "x"), ("2", "y"), ("3", "x")],
        )

    def assert_consistent(self, inst):
        rows = inst.rows()
        assert rows == list(inst.tuples)
        columns = inst.columns()
        assert len(columns) == inst.schema.arity
        for i, t in enumerate(rows):
            assert tuple(col[i] for col in columns) == t.values

    def test_columns_transpose_in_insertion_order(self, inst):
        assert inst.columns() == (("1", "2", "3"), ("x", "y", "x"))
        self.assert_consistent(inst)

    def test_empty_instance_columns(self):
        inst = RelationInstance(RelationSchema("R", ["A", "B"]))
        assert inst.columns() == ((), ())
        assert inst.rows() == []

    def test_version_bumps_on_mutations_only(self, inst):
        v0 = inst.version
        assert inst.add(("4", "z")) is not None
        assert inst.version > v0
        v1 = inst.version
        assert inst.add(("4", "z")) is None  # duplicate: no-op
        assert inst.version == v1
        assert inst.discard(Tuple(inst.schema, ("9", "9"))) is False  # absent
        assert inst.version == v1
        assert inst.discard(Tuple(inst.schema, ("4", "z"))) is True
        assert inst.version > v1
        v2 = inst.version
        inst.replace_value("x", "w")
        assert inst.version > v2

    def test_views_track_mutations(self, inst):
        inst.columns()  # materialize, then invalidate
        inst.add(("4", "z"))
        self.assert_consistent(inst)
        inst.discard(Tuple(inst.schema, ("2", "y")))
        self.assert_consistent(inst)
        assert inst.columns() == (("1", "3", "4"), ("x", "x", "z"))
        inst.replace_value("x", "y")
        self.assert_consistent(inst)

    def test_views_memoized_while_unchanged(self, inst):
        assert inst.columns() is inst.columns()
        assert inst.rows() is inst.rows()

    def test_discard_keeps_index_order(self, inst):
        # Force an index, then remove from the middle of a bucket: the
        # dict-keyed bucket removal must keep the others in insertion order.
        assert [t["A"] for t in inst.lookup(["B"], ("x",))] == ["1", "3"]
        inst.discard(Tuple(inst.schema, ("1", "x")))
        assert [t["A"] for t in inst.lookup(["B"], ("x",))] == ["3"]
        inst.add(("5", "x"))
        assert [t["A"] for t in inst.lookup(["B"], ("x",))] == ["3", "5"]


# -- ScanCache unit behaviour -------------------------------------------------


class TestScanCache:
    def test_warm_check_serves_cached_hits(self):
        db = scaled_bank_instance(30, error_rate=0.2, seed=3)
        session = api.connect(db, bank_constraints())
        first = session.check()
        cache = session.backend.cache
        misses_after_cold = cache.misses
        assert report_key(session.check()) == report_key(first)
        assert cache.misses == misses_after_cold  # all scan units warm
        assert cache.hits > 0

    def test_mutation_invalidates_only_touched_relation(self):
        db = scaled_bank_instance(30, error_rate=0.0, seed=3)
        sigma = bank_constraints()
        session = api.connect(db, sigma)
        assert session.is_clean()
        t = next(iter(db["saving"]))
        session.delete("saving", t)
        session.insert("saving", t.replace(ab="nowhere"))
        report = session.check()
        assert report_key(report) == report_key(check_database_naive(db, sigma))

    def test_cache_rejected_for_foreign_plan(self):
        db = scaled_bank_instance(5, error_rate=0.0, seed=1)
        sigma = bank_constraints()
        plan = plan_detection(sigma)
        foreign = ScanCache(plan_detection(sigma))
        with pytest.raises(ValueError):
            execute_plan(plan, db, cache=foreign)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_dispatch_shares_the_cache(self, executor):
        from repro.api.parallel import fork_available

        if executor == "process" and not fork_available():
            pytest.skip("fork start method unavailable")
        db = scaled_bank_instance(40, error_rate=0.1, seed=2)
        sigma = bank_constraints()
        session = api.connect(db, sigma, workers=2, executor=executor)
        first = session.check()
        cache = session.backend.cache
        misses = cache.misses
        # Warm: every scan unit answers parent-side, nothing is dispatched.
        assert report_key(session.check()) == report_key(first)
        assert cache.misses == misses
        t = next(iter(db["saving"]))
        session.delete("saving", t)
        assert report_key(session.check()) == report_key(
            check_database_naive(db, sigma)
        )

    def test_count_and_is_clean_share_check_entries(self):
        db = scaled_bank_instance(25, error_rate=0.1, seed=9)
        session = api.connect(db, bank_constraints())
        report = session.check()
        cache = session.backend.cache
        misses = cache.misses
        summary = session.count()
        assert session.is_clean() == report.is_clean
        assert cache.misses == misses
        assert summary.total == report.total
        assert summary.by_constraint() == report.by_constraint()


# -- randomized mutation/observation interleavings ----------------------------


OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "check", "count", "is_clean"]),
        st.integers(min_value=0, max_value=10 ** 9),
    ),
    min_size=1,
    max_size=14,
)


def _random_row(relation: RelationSchema, seed: int) -> dict:
    """A row from a small value pool, so mutations collide with groups."""
    pool = ["NYC", "EDI", "GLA", "a", "b", str(seed % 5)]
    values = {}
    for i, attr in enumerate(relation.attributes):
        if attr.is_finite:
            values[attr.name] = attr.domain.values[seed % len(attr.domain.values)]
        else:
            values[attr.name] = pool[(seed + i) % len(pool)]
    return values


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_accounts=st.integers(min_value=3, max_value=12),
    error_rate=st.sampled_from([0.0, 0.2]),
    seed=st.integers(min_value=0, max_value=10_000),
    ops=OPS,
)
def test_cache_consistent_under_mutations_all_backends(
    n_accounts, error_rate, seed, ops
):
    """Persistent sessions (live caches) answer like a fresh naive oracle
    after every mutation, on every backend."""
    sigma = bank_constraints()
    sessions = {
        name: api.connect(
            scaled_bank_instance(n_accounts, error_rate=error_rate, seed=seed),
            sigma,
            backend=name,
        )
        for name in ALL_BACKENDS
    }
    reference_db = scaled_bank_instance(
        n_accounts, error_rate=error_rate, seed=seed
    )
    relation_names = list(reference_db.schema.relation_names)

    for op, op_seed in ops:
        relation = relation_names[op_seed % len(relation_names)]
        if op == "insert":
            row = _random_row(reference_db.schema.relation(relation), op_seed)
            expected = reference_db[relation].add(dict(row)) is not None
            for name, session in sessions.items():
                assert session.insert(relation, dict(row)) == expected, name
        elif op == "delete":
            tuples = reference_db[relation].tuples
            if not tuples:
                continue
            victim = tuples[op_seed % len(tuples)]
            assert reference_db[relation].discard(victim)
            for name, session in sessions.items():
                mirror = Tuple(victim.schema, victim.values)
                assert session.delete(relation, mirror) is True, name
        else:
            oracle = check_database_naive(reference_db, sigma)
            expected_key = report_key(oracle)
            for name, session in sessions.items():
                if op == "check":
                    assert report_key(session.check()) == expected_key, name
                elif op == "count":
                    summary = session.count()
                    assert summary.total == oracle.total, name
                    assert summary.by_constraint() == oracle.by_constraint(), name
                else:
                    assert session.is_clean() == oracle.is_clean, name
    for session in sessions.values():
        session.close()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_accounts=st.integers(min_value=3, max_value=12),
    seed=st.integers(min_value=0, max_value=10_000),
    ops=st.lists(
        st.tuples(
            st.sampled_from(
                ["insert", "delete", "replace", "check", "count", "is_clean"]
            ),
            st.integers(min_value=0, max_value=10 ** 9),
        ),
        min_size=1,
        max_size=14,
    ),
)
def test_cache_consistent_under_replace_value(n_accounts, seed, ops):
    """replace_value (the chase's wholesale rewrite) also invalidates the
    columnar views and every dependent cache entry."""
    sigma = bank_constraints()
    db = scaled_bank_instance(n_accounts, error_rate=0.2, seed=seed)
    session = api.connect(db, sigma)
    for op, op_seed in ops:
        relation = db.schema.relation_names[op_seed % len(db.schema.relation_names)]
        instance = db[relation]
        if op == "insert":
            session.insert(
                relation, _random_row(instance.schema, op_seed)
            )
        elif op == "delete":
            if len(instance):
                session.delete(
                    relation, instance.tuples[op_seed % len(instance)]
                )
        elif op == "replace":
            values = sorted({v for t in instance for v in t.values})
            if len(values) >= 2:
                old = values[op_seed % len(values)]
                new = values[(op_seed // 7) % len(values)]
                instance.replace_value(old, new)
        elif op == "check":
            assert report_key(session.check()) == report_key(
                check_database_naive(db, sigma)
            )
        elif op == "count":
            oracle = check_database_naive(db, sigma)
            summary = session.count()
            assert summary.total == oracle.total
            assert summary.by_constraint() == oracle.by_constraint()
        else:
            assert session.is_clean() == check_database_naive(db, sigma).is_clean
