"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_schema_text
from repro.errors import ParseError
from repro.relational.csvio import write_database_csv
from repro.relational.domains import INTEGER, FiniteDomain


SCHEMA_TEXT = """
# the bank target side
relation saving(an, cn, ca, cp, ab)
relation checking(an, cn, ca, cp, ab)
relation interest(ab, ct, at: enum[saving|checking], rt)
"""

RULES_TEXT = """
[psi3] saving[ab ; nil] <= interest[ab ; nil]
[psi6-edi] checking[nil ; ab='EDI'] <= interest[nil ; ab='EDI', at='checking', ct='UK', rt='1.5%']
[phi3-uk-check] interest: ct='UK', at='checking' -> rt='1.5%'
"""


class TestSchemaParser:
    def test_basic(self):
        schema = parse_schema_text(SCHEMA_TEXT)
        assert set(schema.relation_names) == {"saving", "checking", "interest"}
        at = schema.relation("interest").attribute("at")
        assert isinstance(at.domain, FiniteDomain)
        assert set(at.domain.values) == {"saving", "checking"}

    def test_int_type(self):
        schema = parse_schema_text("relation r(a: int, b)")
        assert schema.relation("r").attribute("a").domain is INTEGER

    def test_comments_and_blanks(self):
        schema = parse_schema_text("# hi\n\nrelation r(a)\n")
        assert "r" in schema

    def test_bad_line_rejected(self):
        with pytest.raises(ParseError):
            parse_schema_text("relations r(a)")

    def test_bad_attribute_rejected(self):
        with pytest.raises(ParseError):
            parse_schema_text("relation r(a: float)")


@pytest.fixture
def workspace(tmp_path, bank):
    """Schema/rules files + CSV data dir holding the dirty bank target."""
    schema_file = tmp_path / "bank.schema"
    schema_file.write_text(SCHEMA_TEXT)
    rules_file = tmp_path / "bank.rules"
    rules_file.write_text(RULES_TEXT)
    data_dir = tmp_path / "data"
    schema = parse_schema_text(SCHEMA_TEXT)
    from repro.relational.instance import DatabaseInstance

    db = DatabaseInstance(schema)
    for name in ("saving", "checking", "interest"):
        for t in bank.db[name]:
            db[name].add(t.values)
    write_database_csv(db, data_dir)
    return schema_file, rules_file, data_dir, tmp_path


class TestCheckCommand:
    def test_detects_bank_errors(self, workspace, capsys):
        schema_file, rules_file, data_dir, __ = workspace
        code = main([
            "check", "--schema", str(schema_file),
            "--constraints", str(rules_file), "--data", str(data_dir),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "phi3-uk-check" in out
        assert "psi6-edi" in out

    def test_sql_engine(self, workspace, capsys):
        schema_file, rules_file, data_dir, __ = workspace
        code = main([
            "check", "--engine", "sql", "--schema", str(schema_file),
            "--constraints", str(rules_file), "--data", str(data_dir), "-v",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "psi6-edi" in out

    def test_clean_data_exit_zero(self, workspace, capsys, bank, tmp_path):
        schema_file, rules_file, __, __tmp = workspace
        clean_dir = tmp_path / "clean"
        schema = parse_schema_text(SCHEMA_TEXT)
        from repro.relational.instance import DatabaseInstance

        db = DatabaseInstance(schema)
        for name in ("saving", "checking", "interest"):
            for t in bank.clean_db[name]:
                db[name].add(t.values)
        write_database_csv(db, clean_dir)
        code = main([
            "check", "--schema", str(schema_file),
            "--constraints", str(rules_file), "--data", str(clean_dir),
        ])
        assert code == 0


class TestRepairCommand:
    def test_repairs_and_writes(self, workspace, capsys):
        schema_file, rules_file, data_dir, tmp_path = workspace
        out_dir = tmp_path / "repaired"
        code = main([
            "repair", "--schema", str(schema_file),
            "--constraints", str(rules_file), "--data", str(data_dir),
            "--out", str(out_dir), "-v",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean: True" in out
        assert (out_dir / "interest.csv").exists()
        # Re-checking the repaired copy must be clean.
        code = main([
            "check", "--schema", str(schema_file),
            "--constraints", str(rules_file), "--data", str(out_dir),
        ])
        assert code == 0

    def test_engine_and_mode_flags(self, workspace, capsys):
        schema_file, rules_file, data_dir, tmp_path = workspace
        out_dir = tmp_path / "repaired_incremental"
        code = main([
            "repair", "--schema", str(schema_file),
            "--constraints", str(rules_file), "--data", str(data_dir),
            "--out", str(out_dir), "--engine", "incremental",
            "--mode", "delta", "--tie-break", "first", "-v",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "engine=incremental" in out and "mode=delta" in out
        assert "round 1:" in out  # per-round observability under -v

    def test_sqlfile_engine_repairs_database_file(
        self, workspace, capsys, tmp_path
    ):
        from repro.relational.csvio import database_csv_to_sqlite

        schema_file, rules_file, data_dir, __ = workspace
        schema = parse_schema_text(SCHEMA_TEXT)
        db_file = tmp_path / "bank.sqlite"
        database_csv_to_sqlite(schema, data_dir, db_file)
        before = db_file.read_bytes()
        out_dir = tmp_path / "repaired_sqlfile"
        code = main([
            "repair", "--schema", str(schema_file),
            "--constraints", str(rules_file), "--data", str(db_file),
            "--out", str(out_dir), "--engine", "sqlfile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean: True" in out
        # Out-of-core repair stages a working copy; the input is pristine.
        assert db_file.read_bytes() == before
        code = main([
            "check", "--schema", str(schema_file),
            "--constraints", str(rules_file), "--data", str(out_dir),
        ])
        assert code == 0


class TestConsistencyCommand:
    def test_consistent_rules(self, workspace, capsys):
        schema_file, rules_file, __, __tmp = workspace
        code = main([
            "consistency", "--schema", str(schema_file),
            "--constraints", str(rules_file), "-v",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "consistent: True" in out

    def test_inconsistent_rules(self, workspace, tmp_path, capsys):
        schema_file, __, __data, __tmp = workspace
        # Every relation's CFD set is contradictory, so no relation can be
        # nonempty — Σ is genuinely inconsistent (a lone pair on `interest`
        # would not be: the other relations could hold the witness tuple).
        bad_rules = tmp_path / "bad.rules"
        bad_rules.write_text(
            "saving: nil -> ab='X'\n"
            "saving: nil -> ab='Y'\n"
            "checking: nil -> ab='X'\n"
            "checking: nil -> ab='Y'\n"
            "interest: nil -> ct='UK'\n"
            "interest: nil -> ct='US'\n"
        )
        code = main([
            "consistency", "--schema", str(schema_file),
            "--constraints", str(bad_rules),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "consistent: False" in out


class TestErrorHandling:
    def test_missing_file_reports_cleanly(self, tmp_path, capsys):
        code = main([
            "consistency", "--schema", str(tmp_path / "nope.schema"),
            "--constraints", str(tmp_path / "nope.rules"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestLintSigmaCommand:
    def test_clean_rules_exit_zero(self, workspace, capsys):
        schema_file, rules_file, __, __tmp = workspace
        code = main([
            "lint-sigma", "--schema", str(schema_file),
            "--constraints", str(rules_file),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "CFD consistency: ok" in out

    def test_errors_exit_one(self, workspace, tmp_path, capsys):
        schema_file, __, __data, __tmp = workspace
        bad_rules = tmp_path / "bad.rules"
        # Wildcard-premise conflict: every interest tuple would need both.
        bad_rules.write_text(
            "interest: nil -> ct='UK'\n"
            "interest: nil -> ct='US'\n"
        )
        code = main([
            "lint-sigma", "--schema", str(schema_file),
            "--constraints", str(bad_rules),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "INCONSISTENT" in out
        assert "cfd-conflict" in out

    def test_warnings_exit_three_or_strict_one(
        self, workspace, tmp_path, capsys
    ):
        schema_file, __, __data, __tmp = workspace
        looped = tmp_path / "loop.rules"
        looped.write_text(
            "[self] interest[ab ; nil] <= interest[ab ; nil]\n"
        )
        args = [
            "lint-sigma", "--schema", str(schema_file),
            "--constraints", str(looped),
        ]
        code = main(args)
        out = capsys.readouterr().out
        assert code == 3
        assert "cind-self-cycle" in out
        assert main(args + ["--strict"]) == 1

    def test_duplicates_are_info_only_exit_zero(
        self, workspace, tmp_path, capsys
    ):
        schema_file, __, __data, __tmp = workspace
        duped = tmp_path / "dup.rules"
        duped.write_text(
            "[orig] interest: ct='UK', at='checking' -> rt='1.5%'\n"
            "[copy] interest: ct='UK', at='checking' -> rt='1.5%'\n"
        )
        code = main([
            "lint-sigma", "--schema", str(schema_file),
            "--constraints", str(duped),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "duplicate-cfd" in out
        assert "copy" in out

    def test_json_output(self, workspace, tmp_path, capsys):
        import json

        schema_file, __, __data, __tmp = workspace
        duped = tmp_path / "dup.rules"
        duped.write_text(
            "[orig] interest: ct='UK', at='checking' -> rt='1.5%'\n"
            "[copy] interest: ct='UK', at='checking' -> rt='1.5%'\n"
        )
        code = main([
            "lint-sigma", "--schema", str(schema_file),
            "--constraints", str(duped), "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["cfds_consistent"] is True
        assert payload["duplicate_cfds"] == {"1": 0}
        codes = {f["code"] for f in payload["findings"]}
        assert "duplicate-cfd" in codes

    def test_no_implication_skips_the_expensive_tier(
        self, workspace, capsys
    ):
        import json

        schema_file, rules_file, __, __tmp = workspace
        code = main([
            "lint-sigma", "--schema", str(schema_file),
            "--constraints", str(rules_file), "--no-implication", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["implication_checked"] is False
