"""Hypothesis strategies for schemas, instances, and dependencies.

Kept in a plain module (not conftest) so test files can import the
strategies explicitly. The strategies build *small* but structurally
varied objects: 1–3 relations, arity 1–5, mixed finite/infinite domains,
instances of up to ~12 tuples, and dependencies whose patterns draw from a
small constant pool so that premises actually fire.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.relational.domains import STRING, FiniteDomain
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD

#: Small shared constant pool so patterns and data overlap frequently.
CONSTS = ["a", "b", "c", "d"]

#: A shared finite domain reused across generated finite attributes, so the
#: dom(Ai) ⊆ dom(Bi) requirement of CINDs is satisfiable.
FIN_DOM = FiniteDomain("fin", ("a", "b"))


@st.composite
def relation_schemas(draw, name: str = "R", max_arity: int = 5, allow_finite: bool = True):
    arity = draw(st.integers(min_value=1, max_value=max_arity))
    attrs = []
    for i in range(arity):
        finite = allow_finite and draw(st.booleans())
        domain = FIN_DOM if finite else STRING
        attrs.append(Attribute(f"{name}_A{i}", domain))
    return RelationSchema(name, attrs)


@st.composite
def database_schemas(draw, max_relations: int = 3, allow_finite: bool = True):
    n = draw(st.integers(min_value=1, max_value=max_relations))
    return DatabaseSchema(
        [
            draw(relation_schemas(name=f"R{i}", allow_finite=allow_finite))
            for i in range(n)
        ]
    )


def _value_strategy(attribute: Attribute):
    if isinstance(attribute.domain, FiniteDomain):
        return st.sampled_from(list(attribute.domain.values))
    return st.sampled_from(CONSTS)


@st.composite
def instances(draw, schema: DatabaseSchema, max_tuples: int = 12):
    db = DatabaseInstance(schema)
    for rel in schema:
        n = draw(st.integers(min_value=0, max_value=max_tuples))
        for __ in range(n):
            row = [draw(_value_strategy(a)) for a in rel]
            db[rel.name].add(row)
    return db


def _pattern_value(attribute: Attribute):
    return st.one_of(st.just(WILDCARD), _value_strategy(attribute))


@st.composite
def cfds(draw, relation: RelationSchema, max_rows: int = 3):
    """A random (possibly multi-row, multi-RHS) CFD on *relation*."""
    names = list(relation.attribute_names)
    lhs_size = draw(st.integers(min_value=0, max_value=max(0, len(names) - 1)))
    shuffled = draw(st.permutations(names))
    lhs = tuple(shuffled[:lhs_size])
    rest = [n for n in shuffled if n not in lhs]
    rhs_size = draw(st.integers(min_value=1, max_value=len(rest)))
    rhs = tuple(rest[:rhs_size])
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    rows = []
    for __ in range(n_rows):
        lhs_vals = [draw(_pattern_value(relation.attribute(a))) for a in lhs]
        rhs_vals = [draw(_pattern_value(relation.attribute(a))) for a in rhs]
        rows.append((lhs_vals, rhs_vals))
    return CFD(relation, lhs, rhs, rows)


def _compatible(src: Attribute, dst: Attribute) -> bool:
    """Is dom(src) ⊆ dom(dst) under our generator's domains?"""
    if src.domain is dst.domain:
        return True
    if isinstance(src.domain, FiniteDomain) and dst.domain is STRING:
        return all(isinstance(v, str) for v in src.domain.values)
    return False


@st.composite
def cinds(draw, lhs_relation: RelationSchema, rhs_relation: RelationSchema, max_rows: int = 3):
    """A random (possibly multi-row) CIND between two relations.

    X/Y pairs are drawn only among domain-compatible attribute pairs, so the
    constructor's dom(Ai) ⊆ dom(Bi) check always passes.
    """
    lhs_names = list(draw(st.permutations(list(lhs_relation.attribute_names))))
    rhs_names = list(draw(st.permutations(list(rhs_relation.attribute_names))))
    x: list[str] = []
    y: list[str] = []
    for a in lhs_names:
        for b in rhs_names:
            if b in y or a in x:
                continue
            if _compatible(lhs_relation.attribute(a), rhs_relation.attribute(b)):
                if draw(st.booleans()):
                    x.append(a)
                    y.append(b)
                break
    remaining_lhs = [a for a in lhs_names if a not in x]
    remaining_rhs = [b for b in rhs_names if b not in y]
    xp_size = draw(st.integers(min_value=0, max_value=len(remaining_lhs)))
    yp_size = draw(st.integers(min_value=0, max_value=len(remaining_rhs)))
    xp = tuple(remaining_lhs[:xp_size])
    yp = tuple(remaining_rhs[:yp_size])
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    rows = []
    for __ in range(n_rows):
        x_vals = [
            draw(_pattern_value(lhs_relation.attribute(a))) for a in x
        ]
        # tp[X] = tp[Y] is required; constants must be in dom(Bi) too, which
        # _compatible guarantees.
        lhs_vals = list(x_vals) + [
            draw(_pattern_value(lhs_relation.attribute(a))) for a in xp
        ]
        rhs_vals = list(x_vals) + [
            draw(_pattern_value(rhs_relation.attribute(b))) for b in yp
        ]
        rows.append((lhs_vals, rhs_vals))
    return CIND(lhs_relation, tuple(x), xp, rhs_relation, tuple(y), yp, rows)
