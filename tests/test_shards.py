"""The shard pipeline: merge laws, partition equivalence, honest executors.

The sharded scan pipeline rests on three algebraic claims
(:mod:`repro.engine.shards`):

* every partial-state ``merge`` is **associative** over an ordered shard
  sequence (any parenthesization of ``s0..sn`` in order agrees);
* ``WitnessState`` is fully commutative, and ``CFDGroupState`` is
  *commutative-safe* — permuting merge order may reorder keys, but the
  disagree set and every non-disagreeing key's first value (all that
  violation detection reads) are invariant;
* mapping **any** contiguous partition of a relation and merging in shard
  order yields exactly the 1-shard (serial) result.

Hypothesis owns those laws here; the end-to-end guarantee — a sharded
parallel ``check()`` is bit-identical to serial, including list order —
is covered by the ``BackendContract`` registration in
``test_conformance.py`` plus the forced-shard cross-checks below. The
executor-honesty tests pin the ``resolve_executor`` downgrade warning and
``Session.effective_executor``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.datasets.bank import bank_constraints, scaled_bank_instance
from repro.engine import plan_detection
from repro.engine.executor import cfd_group_hits, cind_scan_hits, witness_sets
from repro.engine.shards import (
    CFDGroupState,
    CINDScanState,
    ShardSpec,
    WitnessState,
    cfd_finalize,
    cfd_map_shard,
    cind_finalize,
    cind_map_shard,
    make_shards,
    merge_cfd_states,
    merge_cind_states,
    merge_witness_states,
    plan_shard_ranges,
    resolve_shard_count,
    shard_key_fn,
    witness_map_shard,
)

from tests.conformance import report_key


# -- shard geometry ------------------------------------------------------------


class TestShardGeometry:
    def test_ranges_cover_contiguously(self):
        for n in (0, 1, 2, 7, 100):
            for count in (1, 2, 3, 8):
                ranges = plan_shard_ranges(n, count)
                assert ranges[0][0] == 0
                assert ranges[-1][1] == n
                for (__, stop), (start, __s) in zip(ranges, ranges[1:]):
                    assert stop == start
                # Balanced: sizes differ by at most one row.
                sizes = [stop - start for start, stop in ranges]
                assert max(sizes) - min(sizes) <= 1

    def test_never_more_shards_than_rows(self):
        assert len(plan_shard_ranges(3, 8)) == 3
        assert plan_shard_ranges(0, 4) == [(0, 0)]

    def test_min_shard_rows_keeps_small_relations_single_shard(self):
        assert resolve_shard_count(100, workers=4, min_shard_rows=1000) == 1
        assert resolve_shard_count(8000, workers=4, min_shard_rows=1000) == 4
        assert resolve_shard_count(2500, workers=4, min_shard_rows=1000) == 2

    def test_explicit_shards_win(self):
        assert resolve_shard_count(100, 2, 1000, shards=5) == 5
        assert resolve_shard_count(3, 2, 1000, shards=5) == 3  # capped at rows

    def test_make_shards_specs(self):
        specs = make_shards("R", 10, workers=3, min_shard_rows=1)
        assert [s.index for s in specs] == [0, 1, 2]
        assert all(s.count == 3 and s.relation == "R" for s in specs)
        assert specs[0].whole is False
        [whole] = make_shards("R", 10, workers=1, min_shard_rows=1)
        assert whole.whole and whole.rows == 10

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            ShardSpec("R", 5, 3)


# -- merge laws (Hypothesis) ---------------------------------------------------

#: Small value alphabet so shards genuinely collide on group keys.
values = st.integers(min_value=0, max_value=3)
rows2 = st.lists(st.tuples(values, values), max_size=24)


def _split(rows, cuts):
    """Contiguous partition of *rows* at relative cut points."""
    points = sorted({min(c, len(rows)) for c in cuts})
    bounds = [0, *points, len(rows)]
    return [rows[a:b] for a, b in zip(bounds, bounds[1:])]


class _Group:
    """A stand-in CFD scan group: X = column 0, one RHS variant = column 1."""

    lhs_positions = (0,)

    def rhs_variants(self):
        return [(1,), (0,)]


def _columns(rows, arity=2):
    if not rows:
        return tuple(() for __ in range(arity))
    return tuple(zip(*rows))


def _cfd_state(rows):
    cols = _columns(rows)
    return cfd_map_shard(_Group(), shard_key_fn(cols, len(rows)))


def _content(state: CFDGroupState):
    """What finalize reads: per variant, the disagree set, the first value
    of every non-disagreeing key, and the full key set."""
    out = {}
    for variant, (first, disagree) in state.variants.items():
        out[variant] = (
            frozenset(disagree),
            frozenset(first),
            {k: v for k, v in first.items() if k not in disagree},
        )
    return out


def _ordered(state: CFDGroupState):
    return {
        variant: (list(first.items()), frozenset(disagree))
        for variant, (first, disagree) in state.variants.items()
    }


@settings(max_examples=60, deadline=None)
@given(rows=rows2, cuts=st.lists(st.integers(0, 24), max_size=3))
def test_cfd_state_partition_equals_single_shard(rows, cuts):
    parts = _split(rows, cuts)
    merged = merge_cfd_states([_cfd_state(p) for p in parts])
    assert _ordered(merged) == _ordered(_cfd_state(rows))


@settings(max_examples=60, deadline=None)
@given(rows=rows2, cut1=st.integers(0, 24), cut2=st.integers(0, 24))
def test_cfd_merge_associative(rows, cut1, cut2):
    parts = _split(rows, [cut1, cut2])
    while len(parts) < 3:
        parts.append([])
    # merge() mutates in place, so each grouping gets fresh states.
    left = _cfd_state(parts[0]).merge(_cfd_state(parts[1])).merge(_cfd_state(parts[2]))
    right = _cfd_state(parts[0]).merge(
        _cfd_state(parts[1]).merge(_cfd_state(parts[2]))
    )
    assert _ordered(left) == _ordered(right)


@settings(max_examples=60, deadline=None)
@given(
    rows=rows2,
    cut1=st.integers(0, 24),
    cut2=st.integers(0, 24),
    perm=st.permutations([0, 1, 2]),
)
def test_cfd_merge_commutative_safe(rows, cut1, cut2, perm):
    """Out-of-order merges may reorder keys but never change what
    violation detection reads: disagreements and agreed first values."""
    parts = _split(rows, [cut1, cut2])
    while len(parts) < 3:
        parts.append([])
    in_order = merge_cfd_states([_cfd_state(p) for p in parts])
    shuffled = merge_cfd_states([_cfd_state(parts[i]) for i in perm])
    assert _content(in_order) == _content(shuffled)


witness_sets_strategy = st.lists(
    st.frozensets(st.tuples(values), max_size=6), min_size=2, max_size=2
)


@settings(max_examples=60, deadline=None)
@given(a=witness_sets_strategy, b=witness_sets_strategy, c=witness_sets_strategy)
def test_witness_merge_associative_and_commutative(a, b, c):
    def state(sets):
        return WitnessState([set(s) for s in sets])

    left = state(a).merge(state(b)).merge(state(c))
    right = state(a).merge(state(b).merge(state(c)))
    assert left.sets == right.sets
    for perm in ((b, a, c), (c, b, a), (b, c, a)):
        shuffled = merge_witness_states([state(s) for s in perm])
        assert shuffled.sets == left.sets


@settings(max_examples=40, deadline=None)
@given(
    buckets=st.lists(
        st.lists(st.lists(values, max_size=4), min_size=2, max_size=2),
        min_size=3,
        max_size=3,
    )
)
def test_cind_merge_associative(buckets):
    def state(b):
        return CINDScanState([list(x) for x in b])

    a, b, c = buckets
    left = merge_cind_states([state(a), state(b)]).merge(state(c))
    right = merge_cind_states([state(a), merge_cind_states([state(b), state(c)])])
    assert left.buckets == right.buckets
    # And the flat partition equals the in-order concatenation.
    assert left.buckets == [x + y + z for x, y, z in zip(a, b, c)]


def test_cind_merge_copies_aliased_buckets():
    """Tasks sharing a signature alias one hit list inside a shard state;
    the merge must not let an extend on one bucket leak into the other."""
    shared = [1, 2]
    merged = merge_cind_states(
        [CINDScanState([shared, shared]), CINDScanState([[3], [3]])]
    )
    assert merged.buckets == [[1, 2, 3], [1, 2, 3]]
    assert shared == [1, 2]  # the input state was not mutated


# -- partition equivalence on the real engine ---------------------------------


@pytest.fixture(scope="module")
def dirty_bank():
    db = scaled_bank_instance(80, error_rate=0.2, seed=13)
    plan = plan_detection(bank_constraints())
    return db, plan


def _shard_states(instance, mapper, cuts):
    columns = instance.columns()
    n = len(instance)
    points = sorted({min(c, n) for c in cuts})
    bounds = [0, *points, n]
    states = []
    for start, stop in zip(bounds, bounds[1:]):
        cols = tuple(col[start:stop] for col in columns)
        states.append(mapper(cols, start, stop))
    return states


@settings(max_examples=25, deadline=None)
@given(cuts=st.lists(st.integers(0, 200), max_size=4))
def test_cfd_partition_matches_serial_hits(dirty_bank, cuts):
    db, plan = dirty_bank
    for group in plan.cfd_groups:
        instance = db[group.relation]
        serial = cfd_group_hits(group, instance)
        states = _shard_states(
            instance,
            lambda cols, a, b: cfd_map_shard(group, shard_key_fn(cols, b - a)),
            cuts,
        )
        assert cfd_finalize(group, merge_cfd_states(states)) == serial


@settings(max_examples=25, deadline=None)
@given(cuts=st.lists(st.integers(0, 200), max_size=4))
def test_witness_partition_matches_serial_sets(dirty_bank, cuts):
    db, plan = dirty_bank
    for relation, specs in plan.witness_specs.items():
        instance = db[relation]
        serial = witness_sets(instance, specs)
        states = _shard_states(
            instance,
            lambda cols, a, b: witness_map_shard(
                specs, cols, shard_key_fn(cols, b - a)
            ),
            cuts,
        )
        merged = merge_witness_states(states)
        assert merged.as_dict(specs) == serial


@settings(max_examples=25, deadline=None)
@given(cuts=st.lists(st.integers(0, 200), max_size=4))
def test_cind_partition_matches_serial_hits(dirty_bank, cuts):
    db, plan = dirty_bank
    witnesses = {}
    for relation, specs in plan.witness_specs.items():
        witnesses.update(witness_sets(db[relation], specs))
    for relation, tasks in plan.cind_scans.items():
        instance = db[relation]
        serial = list(cind_scan_hits(tasks, instance, witnesses))
        rows = instance.rows()
        states = _shard_states(
            instance,
            lambda cols, a, b: cind_map_shard(
                tasks, cols, rows[a:b], witnesses, shard_key_fn(cols, b - a)
            ),
            cuts,
        )
        merged = merge_cind_states(states)
        assert list(cind_finalize(tasks, merged)) == serial


# -- end-to-end: forced shards through the task-graph scheduler ---------------


class TestShardedDispatch:
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_forced_shards_bit_identical(self, shards):
        db = scaled_bank_instance(120, error_rate=0.1, seed=3)
        sigma = bank_constraints()
        serial = api.connect(db, sigma).check()
        session = api.connect(
            db, sigma, workers=2, executor="thread",
            shards=shards, min_shard_rows=1,
        )
        assert report_key(session.check()) == report_key(serial)
        assert session.count().by_constraint() == serial.by_constraint()
        # Warm re-check: the cache stores merged group-level results, so
        # a second call replays without dispatching anything.
        hits_before = session.backend.cache.hits
        assert report_key(session.check()) == report_key(serial)
        assert session.backend.cache.hits > hits_before

    def test_auto_sharding_respects_min_shard_rows(self):
        db = scaled_bank_instance(60, error_rate=0.1, seed=9)
        sigma = bank_constraints()
        serial = api.connect(db, sigma).check()
        # min_shard_rows larger than any relation: scan-group dispatch only.
        coarse = api.connect(
            db, sigma, workers=2, executor="thread", min_shard_rows=10**6
        )
        # min_shard_rows=1: every unit splits into `workers` shards.
        fine = api.connect(
            db, sigma, workers=2, executor="thread", min_shard_rows=1
        )
        assert report_key(coarse.check()) == report_key(serial)
        assert report_key(fine.check()) == report_key(serial)

    def test_mutation_then_sharded_recheck(self, bank):
        db = bank.clean_db.copy()
        session = api.connect(
            db, bank.constraints, workers=2, executor="thread",
            shards=2, min_shard_rows=1,
        )
        assert session.check().is_clean
        session.insert(
            "interest",
            {"ab": "GLA", "ct": "UK", "at": "checking", "rt": "9.9%"},
        )
        oracle = api.connect(db, bank.constraints).check()
        assert not oracle.is_clean
        assert report_key(session.check()) == report_key(oracle)


# -- executor honesty ----------------------------------------------------------


class TestEffectiveExecutor:
    def test_process_downgrade_warns_and_is_recorded(self, bank, monkeypatch):
        import repro.api.parallel as parallel

        monkeypatch.setattr(parallel, "fork_available", lambda: False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            session = api.connect(
                bank.db, bank.constraints, workers=2, executor="process"
            )
        assert session.effective_executor == "thread-persistent"
        # The session still works — and does not warn again per check.
        with warnings_as_errors():
            report = session.check()
        assert report.total == 2

    def test_per_call_downgrade_warns_once_per_session(self, bank, monkeypatch):
        import repro.api.parallel as parallel

        monkeypatch.setattr(parallel, "fork_available", lambda: False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            session = api.connect(
                bank.db, bank.constraints, workers=2, executor="process",
                pool="per-call",
            )
        assert session.effective_executor == "thread"
        # The kind was resolved at connect time; per-call checks reuse it
        # and must not re-warn.
        with warnings_as_errors():
            report = session.check()
        assert report.total == 2

    def test_auto_downgrade_is_silent(self, bank, monkeypatch):
        import repro.api.parallel as parallel

        monkeypatch.setattr(parallel, "fork_available", lambda: False)
        with warnings_as_errors():
            session = api.connect(
                bank.db, bank.constraints, workers=2, executor="auto"
            )
        assert session.effective_executor == "thread-persistent"

    def test_serial_sessions_report_none(self, bank):
        assert api.connect(bank.db, bank.constraints).effective_executor is None
        assert (
            api.connect(
                bank.db, bank.constraints, backend="naive"
            ).effective_executor
            is None
        )

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_process_kept_when_fork_available(self, bank):
        session = api.connect(
            bank.db, bank.constraints, workers=2, executor="process"
        )
        assert session.effective_executor == "process-persistent"
        per_call = api.connect(
            bank.db, bank.constraints, workers=2, executor="process",
            pool="per-call",
        )
        assert per_call.effective_executor == "process"


class warnings_as_errors:
    def __enter__(self):
        import warnings

        self._ctx = warnings.catch_warnings()
        self._ctx.__enter__()
        warnings.simplefilter("error", RuntimeWarning)
        return self

    def __exit__(self, *exc_info):
        return self._ctx.__exit__(*exc_info)
