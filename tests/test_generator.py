"""Tests for the random schema/constraint/data generators."""

import random

import pytest

from repro.core.violations import check_database
from repro.errors import GenerationError
from repro.generator.constraint_gen import (
    ConstraintConfig,
    consistent_constraints,
    random_cfd,
    random_cind,
    random_constraints,
)
from repro.generator.data_gen import (
    inject_cfd_violations,
    inject_cind_violations,
    populate_clean,
)
from repro.generator.schema_gen import SchemaConfig, random_schema
from repro.relational.domains import FiniteDomain


class TestSchemaGen:
    def test_shape(self):
        schema = random_schema(n_relations=7, seed=1)
        assert len(schema) == 7
        for rel in schema:
            assert 2 <= rel.arity <= 15

    def test_deterministic(self):
        a = random_schema(n_relations=5, seed=42)
        b = random_schema(n_relations=5, seed=42)
        assert [r.name for r in a] == [r.name for r in b]
        for ra, rb in zip(a, b):
            assert ra.attribute_names == rb.attribute_names
            assert [x.is_finite for x in ra] == [x.is_finite for x in rb]

    def test_finite_ratio_zero(self):
        schema = random_schema(n_relations=10, finite_ratio=0.0, seed=2)
        assert not schema.has_finite_attributes()

    def test_finite_ratio_statistics(self):
        schema = random_schema(
            n_relations=30, finite_ratio=0.25, seed=3, max_arity=10
        )
        attrs = [a for rel in schema for a in rel]
        ratio = sum(a.is_finite for a in attrs) / len(attrs)
        assert 0.1 < ratio < 0.45

    def test_finite_domain_sizes(self):
        schema = random_schema(
            n_relations=20, finite_ratio=1.0, finite_domain_size=(2, 9), seed=4
        )
        for rel in schema:
            for attr in rel:
                assert isinstance(attr.domain, FiniteDomain)
                assert 2 <= len(attr.domain) <= 9

    def test_bad_config_rejected(self):
        with pytest.raises(GenerationError):
            random_schema(n_relations=0)
        with pytest.raises(GenerationError):
            random_schema(finite_ratio=1.5)
        with pytest.raises(GenerationError):
            random_schema(finite_domain_size=(1, 5))


class TestRandomConstraints:
    def test_normal_form_output(self):
        schema = random_schema(n_relations=5, seed=5)
        rng = random.Random(5)
        for __ in range(30):
            assert random_cfd(schema, rng).is_normal_form
            assert random_cind(schema, rng).is_normal_form

    def test_mix_ratio(self):
        schema = random_schema(n_relations=10, seed=6)
        sigma = random_constraints(schema, 400, rng=random.Random(6))
        assert len(sigma) == 400
        ratio = len(sigma.cfds) / 400
        assert 0.65 < ratio < 0.85

    def test_cfds_spread_over_relations(self):
        schema = random_schema(n_relations=10, seed=7)
        sigma = random_constraints(schema, 200, rng=random.Random(7))
        covered = {c.relation.name for c in sigma.cfds}
        assert len(covered) == 10

    def test_deterministic(self):
        schema = random_schema(n_relations=5, seed=8)
        a = random_constraints(schema, 50, rng=random.Random(8))
        b = random_constraints(schema, 50, rng=random.Random(8))
        assert [repr(c) for c in a] == [repr(c) for c in b]


class TestConsistentConstraints:
    @pytest.mark.parametrize("seed", range(5))
    def test_witness_satisfies_sigma(self, seed):
        schema = random_schema(n_relations=6, seed=seed, max_arity=8)
        sigma, witness = consistent_constraints(
            schema, 120, rng=random.Random(seed)
        )
        assert len(sigma) == 120
        assert sigma.satisfied_by(witness)
        assert witness.total_tuples() == len(schema)

    def test_with_finite_attributes(self):
        schema = random_schema(
            n_relations=5, seed=11, finite_ratio=0.3, finite_domain_size=(2, 6)
        )
        sigma, witness = consistent_constraints(schema, 80, rng=random.Random(11))
        assert sigma.satisfied_by(witness)

    def test_checking_confirms_consistency(self):
        # End-to-end: the Section 5 algorithms accept generated-consistent Σ.
        from repro.consistency.checking import checking

        schema = random_schema(n_relations=4, seed=12, max_arity=6)
        sigma, __ = consistent_constraints(schema, 40, rng=random.Random(12))
        decision = checking(schema, sigma, rng=random.Random(12))
        assert decision.consistent


class TestDataGen:
    @pytest.fixture
    def setting(self):
        schema = random_schema(n_relations=4, seed=21, max_arity=6, finite_ratio=0.2)
        sigma, witness = consistent_constraints(schema, 30, rng=random.Random(21))
        return schema, sigma, witness

    def test_populate_clean_stays_clean(self, setting):
        schema, sigma, witness = setting
        db = populate_clean(sigma, witness, 40, rng=random.Random(1))
        assert db.total_tuples() >= witness.total_tuples()
        report = check_database(db, sigma)
        assert report.is_clean, report.summary()

    def test_populate_grows_when_free_attributes_exist(self):
        # Few constraints over wide relations: some attributes stay
        # unconstrained, so cloning-with-variation can grow the instance.
        schema = random_schema(n_relations=3, seed=22, min_arity=8, max_arity=10)
        sigma, witness = consistent_constraints(schema, 4, rng=random.Random(22))
        db = populate_clean(sigma, witness, 25, rng=random.Random(2))
        grew = any(len(db[rel.name]) > 1 for rel in schema)
        assert grew
        assert check_database(db, sigma).is_clean

    def test_inject_cfd_violations_detected(self, setting):
        schema, sigma, witness = setting
        db = populate_clean(sigma, witness, 30, rng=random.Random(3))
        injected = inject_cfd_violations(db, sigma, 5, rng=random.Random(3))
        if injected.total == 0:
            pytest.skip("no constant-RHS CFD matched data (rare seed)")
        report = check_database(db, sigma)
        assert len(report.cfd_violations) >= 1

    def test_inject_cind_violations_detected(self, setting):
        schema, sigma, witness = setting
        db = populate_clean(sigma, witness, 30, rng=random.Random(4))
        injected = inject_cind_violations(db, sigma, 5, rng=random.Random(4))
        if injected.total == 0:
            pytest.skip("no triggered CIND with removable witness (rare seed)")
        report = check_database(db, sigma)
        assert len(report.cind_violations) >= 1

    def test_bank_injection_roundtrip(self, bank):
        from repro.core.violations import ConstraintSet
        from repro.datasets.bank import bank_constraints, scaled_bank_instance

        db = scaled_bank_instance(100, error_rate=0.0, seed=9)
        sigma = bank_constraints()
        injected = inject_cfd_violations(db, sigma, 3, rng=random.Random(9))
        report = check_database(db, sigma)
        assert report.total >= injected.total > 0
