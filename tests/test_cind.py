"""Tests for CINDs: syntax validation, semantics, violations (Section 2)."""

import pytest

from repro.core.cind import CIND, standard_ind
from repro.errors import ConstraintError
from repro.relational.domains import BOOL, INTEGER, FiniteDomain
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _


@pytest.fixture
def two_relations():
    r = RelationSchema("R", ["A", "B", "C"])
    s = RelationSchema("S", ["D", "E", "F"])
    return DatabaseSchema([r, s]), r, s


class TestConstruction:
    def test_basic(self, two_relations):
        __, r, s = two_relations
        cind = CIND(r, ("A",), ("B",), s, ("D",), ("E",), [((_, "b"), (_, "e"))])
        assert cind.x == ("A",)
        assert cind.yp == ("E",)

    def test_x_xp_overlap_rejected(self, two_relations):
        __, r, s = two_relations
        with pytest.raises(ConstraintError):
            CIND(r, ("A",), ("A",), s, ("D",), (), [((_, _), (_,))])

    def test_y_yp_overlap_rejected(self, two_relations):
        __, r, s = two_relations
        with pytest.raises(ConstraintError):
            CIND(r, ("A",), (), s, ("D",), ("D",), [((_,), (_, _))])

    def test_arity_mismatch_rejected(self, two_relations):
        __, r, s = two_relations
        with pytest.raises(ConstraintError):
            CIND(r, ("A", "B"), (), s, ("D",), (), [((_, _), (_,))])

    def test_tp_x_equals_tp_y_enforced(self, two_relations):
        __, r, s = two_relations
        with pytest.raises(ConstraintError):
            CIND(r, ("A",), (), s, ("D",), (), [(("x",), ("y",))])

    def test_tp_x_equals_tp_y_wildcards_ok(self, two_relations):
        __, r, s = two_relations
        CIND(r, ("A",), (), s, ("D",), (), [((_,), (_,))])

    def test_tp_x_equals_tp_y_constants_ok(self, two_relations):
        __, r, s = two_relations
        cind = CIND(r, ("A",), (), s, ("D",), (), [(("k",), ("k",))])
        assert cind.pattern.lhs_value("A") == "k"

    def test_empty_tableau_rejected(self, two_relations):
        __, r, s = two_relations
        with pytest.raises(ConstraintError):
            CIND(r, ("A",), (), s, ("D",), (), [])

    def test_pattern_constant_outside_domain_rejected(self):
        r = RelationSchema("R", [Attribute("A", BOOL)])
        s = RelationSchema("S", ["D"])
        with pytest.raises(ConstraintError):
            CIND(r, (), ("A",), s, (), (), [(("oops",), ())])

    def test_self_cind_allowed(self, two_relations):
        __, r, __s = two_relations
        cind = CIND(r, ("A",), (), r, ("B",), (), [((_,), (_,))])
        assert cind.lhs_relation is cind.rhs_relation


class TestDomainCompatibility:
    """The dom(Ai) ⊆ dom(Bi) assumption is validated best-effort."""

    def test_same_infinite_domain_ok(self, two_relations):
        __, r, s = two_relations
        CIND(r, ("A",), (), s, ("D",), (), [((_,), (_,))])

    def test_finite_into_same_finite_ok(self):
        dom = FiniteDomain("d", ("x", "y"))
        r = RelationSchema("R", [Attribute("A", dom)])
        s = RelationSchema("S", [Attribute("D", dom)])
        CIND(r, ("A",), (), s, ("D",), (), [((_,), (_,))])

    def test_finite_subset_finite_ok(self):
        small = FiniteDomain("small", ("x",))
        big = FiniteDomain("big", ("x", "y"))
        r = RelationSchema("R", [Attribute("A", small)])
        s = RelationSchema("S", [Attribute("D", big)])
        CIND(r, ("A",), (), s, ("D",), (), [((_,), (_,))])

    def test_finite_superset_finite_rejected(self):
        small = FiniteDomain("small", ("x",))
        big = FiniteDomain("big", ("x", "y"))
        r = RelationSchema("R", [Attribute("A", big)])
        s = RelationSchema("S", [Attribute("D", small)])
        with pytest.raises(ConstraintError):
            CIND(r, ("A",), (), s, ("D",), (), [((_,), (_,))])

    def test_finite_strings_into_infinite_string_ok(self):
        dom = FiniteDomain("d", ("x", "y"))
        r = RelationSchema("R", [Attribute("A", dom)])
        s = RelationSchema("S", ["D"])
        CIND(r, ("A",), (), s, ("D",), (), [((_,), (_,))])

    def test_infinite_into_finite_rejected(self):
        dom = FiniteDomain("d", ("x", "y"))
        r = RelationSchema("R", ["A"])
        s = RelationSchema("S", [Attribute("D", dom)])
        with pytest.raises(ConstraintError):
            CIND(r, ("A",), (), s, ("D",), (), [((_,), (_,))])

    def test_distinct_infinite_domains_rejected(self):
        r = RelationSchema("R", [Attribute("A", INTEGER)])
        s = RelationSchema("S", ["D"])
        with pytest.raises(ConstraintError):
            CIND(r, ("A",), (), s, ("D",), (), [((_,), (_,))])


class TestStructuralProperties:
    def test_standard_ind(self, two_relations):
        __, r, s = two_relations
        ind = standard_ind(r, ("A", "B"), s, ("D", "E"))
        assert ind.is_standard_ind
        assert ind.is_normal_form  # an IND is trivially in normal form

    def test_not_standard_with_patterns(self, two_relations):
        __, r, s = two_relations
        cind = CIND(r, ("A",), ("B",), s, ("D",), (), [((_, "b"), (_,))])
        assert not cind.is_standard_ind

    def test_normal_form_detection(self, two_relations):
        __, r, s = two_relations
        nf = CIND(r, ("A",), ("B",), s, ("D",), ("E",), [((_, "b"), (_, "e"))])
        assert nf.is_normal_form
        # Constant on an X attribute -> not normal form.
        not_nf = CIND(r, ("A",), (), s, ("D",), (), [(("k",), ("k",))])
        assert not not_nf.is_normal_form
        # Wildcard on a pattern attribute -> not normal form.
        not_nf2 = CIND(r, ("A",), ("B",), s, ("D",), (), [((_, _), (_,))])
        assert not not_nf2.is_normal_form

    def test_multi_row_not_normal(self, two_relations):
        __, r, s = two_relations
        multi = CIND(
            r, (), ("A",), s, (), (),
            [(("x",), ()), (("y",), ())],
        )
        assert not multi.is_normal_form
        with pytest.raises(ConstraintError):
            multi.pattern


class TestSemantics:
    def test_standard_ind_semantics(self, two_relations):
        schema, r, s = two_relations
        ind = standard_ind(r, ("A",), s, ("D",))
        db = DatabaseInstance(schema, {"R": [("1", "b", "c")]})
        assert not ind.satisfied_by(db)
        db.add("S", ("1", "e", "f"))
        assert ind.satisfied_by(db)

    def test_xp_scopes_the_ind(self, two_relations):
        # Example 2.2: Xp identifies the tuples ψ applies to; the embedded
        # IND need not hold on the whole relation.
        schema, r, s = two_relations
        cind = CIND(r, ("A",), ("B",), s, ("D",), (), [((_, "go"), (_,))])
        db = DatabaseInstance(schema, {"R": [("1", "stop", "c")]})
        assert cind.satisfied_by(db)  # premise not matched: vacuous
        db.add("R", ("2", "go", "c"))
        assert not cind.satisfied_by(db)
        db.add("S", ("2", "e", "f"))
        assert cind.satisfied_by(db)

    def test_yp_constrains_witness(self, two_relations):
        schema, r, s = two_relations
        cind = CIND(r, ("A",), (), s, ("D",), ("E",), [((_,), (_, "req"))])
        db = DatabaseInstance(
            schema, {"R": [("1", "b", "c")], "S": [("1", "other", "f")]}
        )
        assert not cind.satisfied_by(db)  # witness exists but Yp mismatches
        db.add("S", ("1", "req", "f"))
        assert cind.satisfied_by(db)

    def test_empty_x_pure_pattern_cind(self, two_relations):
        # ψ5-style: X = nil; only the patterns constrain.
        schema, r, s = two_relations
        cind = CIND(r, (), ("A",), s, (), ("E",), [(("k",), ("e",))])
        db = DatabaseInstance(schema, {"R": [("k", "b", "c")]})
        assert not cind.satisfied_by(db)
        db.add("S", ("d", "e", "f"))
        assert cind.satisfied_by(db)

    def test_multi_row_tableau(self, two_relations):
        schema, r, s = two_relations
        cind = CIND(
            r, (), ("A",), s, (), ("E",),
            [(("k1",), ("e1",)), (("k2",), ("e2",))],
        )
        db = DatabaseInstance(
            schema, {"R": [("k1", "b", "c"), ("k2", "b", "c")], "S": [("d", "e1", "f")]}
        )
        violations = list(cind.iter_violations(db))
        assert len(violations) == 1
        assert violations[0].pattern_index == 1
        assert violations[0].tuple_["A"] == "k2"

    def test_x_constant_in_pattern(self, two_relations):
        # A non-normal-form CIND: the constant sits on X/Y directly.
        schema, r, s = two_relations
        cind = CIND(r, ("A",), (), s, ("D",), (), [(("k",), ("k",))])
        db = DatabaseInstance(schema, {"R": [("k", "b", "c")], "S": [("j", "e", "f")]})
        assert not cind.satisfied_by(db)
        db.add("S", ("k", "e", "f"))
        assert cind.satisfied_by(db)

    def test_required_rhs_template(self, two_relations):
        __, r, s = two_relations
        cind = CIND(r, ("A",), (), s, ("D",), ("E",), [((_,), (_, "req"))])
        t1 = Tuple(r, ("1", "b", "c"))
        template = cind.required_rhs_template(t1, cind.tableau[0])
        assert template["D"] == "1"
        assert template["E"] == "req"
        assert template["F"] is _


class TestPaperExample22:
    """Example 2.2: the Fig. 1 instance vs ψ1–ψ6."""

    def test_psi1_through_psi5_satisfied(self, bank):
        for name in ("psi1[NYC]", "psi1[EDI]", "psi2[NYC]", "psi2[EDI]",
                     "psi3", "psi4", "psi5"):
            assert bank.by_name[name].satisfied_by(bank.db), name

    def test_psi6_violated_by_t10(self, bank):
        psi6 = bank.by_name["psi6"]
        violations = list(psi6.iter_violations(bank.db))
        assert len(violations) == 1
        t10 = violations[0].tuple_
        assert t10["cn"] == "I. Stark"
        assert t10["ab"] == "EDI"
        # the violated pattern row is the EDI/UK/1.5% one
        assert violations[0].pattern_index == 0

    def test_embedded_ind_of_psi1_does_not_hold(self, bank):
        # Example 2.2: ψ1 holds but its embedded IND does not (for EDI).
        from repro.core.cind import standard_ind

        account_edi = bank.schema.relation("account_EDI")
        saving = bank.schema.relation("saving")
        xs = ("an", "cn", "ca", "cp")
        embedded = standard_ind(account_edi, xs, saving, xs)
        assert not embedded.satisfied_by(bank.db)
        assert bank.by_name["psi1[EDI]"].satisfied_by(bank.db)

    def test_clean_instance_satisfies_everything(self, bank):
        assert bank.constraints.satisfied_by(bank.clean_db)
