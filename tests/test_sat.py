"""Tests for the DPLL SAT solver, including random checks against brute force."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.sat import Solver, solve_cnf


def brute_force_sat(clauses, num_vars):
    """Exhaustive reference decision procedure."""
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        ok = True
        for clause in clauses:
            if not any(
                assignment[abs(l)] if l > 0 else not assignment[abs(l)]
                for l in clause
            ):
                ok = False
                break
        if ok:
            return True, assignment
    return False, None


def check_model(clauses, assignment):
    for clause in clauses:
        assert any(
            assignment[abs(l)] if l > 0 else not assignment[abs(l)]
            for l in clause
        ), f"clause {clause} falsified"


class TestBasics:
    def test_empty_formula_sat(self):
        assert solve_cnf([]).satisfiable

    def test_single_unit(self):
        result = solve_cnf([[1]])
        assert result.satisfiable
        assert result.assignment[1] is True

    def test_negative_unit(self):
        result = solve_cnf([[-1]])
        assert result.satisfiable
        assert result.assignment[1] is False

    def test_contradicting_units(self):
        assert not solve_cnf([[1], [-1]]).satisfiable

    def test_empty_clause_unsat(self):
        assert not solve_cnf([[1], []]).satisfiable

    def test_tautological_clause_dropped(self):
        solver = Solver()
        solver.add_clause([1, -1])
        assert solver.num_clauses == 0
        assert solver.solve().satisfiable

    def test_duplicate_literals_collapse(self):
        solver = Solver()
        solver.add_clause([1, 1, 1])
        assert solver.solve().assignment[1] is True

    def test_simple_implication_chain(self):
        # 1, 1->2, 2->3 : all true.
        result = solve_cnf([[1], [-1, 2], [-2, 3]])
        assert result.satisfiable
        assert result.assignment == {1: True, 2: True, 3: True}

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons (vars 1, 2 = "in hole"), both must be placed, hole
        # holds one: 1, 2, ¬1∨¬2.
        assert not solve_cnf([[1], [2], [-1, -2]]).satisfiable

    def test_requires_backtracking(self):
        # Forces the solver off its first polarity choice.
        clauses = [[1, 2], [-1, 2], [1, -2], [-1, -2, 3], [-3, -1]]
        result = solve_cnf(clauses)
        sat, __ = brute_force_sat(clauses, 3)
        assert result.satisfiable == sat
        if result.satisfiable:
            check_model(clauses, result.assignment)

    def test_assumptions(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]).assignment[2] is True
        assert not solver.solve(assumptions=[-1, -2]).satisfiable

    def test_stats_populated(self):
        result = solve_cnf([[1, 2], [-1, 2], [1, -2]])
        assert result.stats.propagations >= 1

    def test_new_var_allocation(self):
        solver = Solver()
        assert solver.new_var() == 1
        assert solver.new_var() == 2
        solver.add_clause([5])
        assert solver.num_vars == 5


class TestRandomAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_3sat(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 9)
        num_clauses = rng.randint(1, 30)
        clauses = []
        for __ in range(num_clauses):
            width = rng.randint(1, 3)
            clause = [
                rng.choice([1, -1]) * rng.randint(1, num_vars)
                for __ in range(width)
            ]
            clauses.append(clause)
        expected, __ = brute_force_sat(clauses, num_vars)
        result = solve_cnf(clauses)
        assert result.satisfiable == expected
        if result.satisfiable:
            check_model(clauses, result.assignment)


@settings(max_examples=80, deadline=None)
@given(
    clauses=st.lists(
        st.lists(
            st.integers(min_value=1, max_value=6).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=4,
        ),
        max_size=25,
    )
)
def test_solver_matches_brute_force(clauses):
    expected, __ = brute_force_sat(clauses, 6)
    result = solve_cnf(clauses)
    assert result.satisfiable == expected
    if result.satisfiable:
        check_model(clauses, result.assignment)
