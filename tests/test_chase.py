"""Tests for the chase engine and valuations (Section 5.1)."""

import random

import pytest

from repro.chase.engine import ChaseEngine, ChaseStatus, ground_template
from repro.chase.valuation import (
    apply_valuation,
    enumerate_valuations,
    finite_domain_variables,
    sample_valuations,
    valuation_space_size,
)
from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.violations import ConstraintSet
from repro.errors import ChaseError
from repro.relational.domains import FiniteDomain
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _
from repro.relational.values import Variable


@pytest.fixture
def ef_gh_schema():
    """Example 5.1's schema: R1(E, F), R2(G, H), all infinite."""
    return DatabaseSchema(
        [
            RelationSchema("R1", [Attribute("E"), Attribute("F")]),
            RelationSchema("R2", [Attribute("G"), Attribute("H")]),
        ]
    )


class TestFDStep:
    def test_variable_unified_with_constant(self, ef_gh_schema):
        # tp[A] = '_' with one constant, one variable: constant wins (v < a).
        r1 = ef_gh_schema.relation("R1")
        phi = CFD(r1, ("E",), ("F",), [((_,), (_,))])
        engine = ChaseEngine(ef_gh_schema, cfds=[phi])
        v = Variable("R1.F", 0)
        db = DatabaseInstance(ef_gh_schema, {"R1": [("e", v), ("e", "f")]})
        result = engine.chase(db)
        assert result.is_defined
        assert {t.values for t in result.db["R1"]} == {("e", "f")}

    def test_two_constants_conflict_is_undefined(self, ef_gh_schema):
        r1 = ef_gh_schema.relation("R1")
        phi = CFD(r1, ("E",), ("F",), [((_,), (_,))])
        engine = ChaseEngine(ef_gh_schema, cfds=[phi])
        db = DatabaseInstance(ef_gh_schema, {"R1": [("e", "f1"), ("e", "f2")]})
        result = engine.chase(db)
        assert result.status is ChaseStatus.UNDEFINED

    def test_constant_rhs_instantiates_variable(self, ef_gh_schema):
        # Example 5.1: FD(φ2) makes vG1 = c.
        r2 = ef_gh_schema.relation("R2")
        phi2 = CFD(r2, ("H",), ("G",), [((_,), ("c",))])
        engine = ChaseEngine(ef_gh_schema, cfds=[phi2])
        v = Variable("R2.G", 0)
        db = DatabaseInstance(ef_gh_schema, {"R2": [(v, "h")]})
        result = engine.chase(db)
        assert result.is_defined
        assert result.db["R2"].tuples[0]["G"] == "c"

    def test_constant_rhs_conflicting_constant_is_undefined(self, ef_gh_schema):
        r2 = ef_gh_schema.relation("R2")
        phi2 = CFD(r2, ("H",), ("G",), [((_,), ("c",))])
        engine = ChaseEngine(ef_gh_schema, cfds=[phi2])
        db = DatabaseInstance(ef_gh_schema, {"R2": [("not-c", "h")]})
        result = engine.chase(db)
        assert result.status is ChaseStatus.UNDEFINED

    def test_variable_variable_unification(self, ef_gh_schema):
        r1 = ef_gh_schema.relation("R1")
        phi = CFD(r1, ("E",), ("F",), [((_,), (_,))])
        engine = ChaseEngine(ef_gh_schema, cfds=[phi])
        v0, v1 = Variable("R1.F", 0), Variable("R1.F", 1)
        db = DatabaseInstance(ef_gh_schema, {"R1": [("e", v0), ("e", v1)]})
        result = engine.chase(db)
        assert result.is_defined
        assert len(result.db["R1"]) == 1  # unified then merged

    def test_variable_premise_does_not_match_constant_pattern(self, ef_gh_schema):
        # v ≭ a: a variable never fires a constant premise.
        r1 = ef_gh_schema.relation("R1")
        phi = CFD(r1, ("E",), ("F",), [(("k",), ("forced",))])
        engine = ChaseEngine(ef_gh_schema, cfds=[phi])
        v = Variable("R1.E", 0)
        db = DatabaseInstance(ef_gh_schema, {"R1": [(v, "f")]})
        result = engine.chase(db)
        assert result.is_defined
        assert result.db["R1"].tuples[0]["F"] == "f"  # untouched


class TestINDStep:
    def test_witness_inserted(self, ef_gh_schema):
        r1 = ef_gh_schema.relation("R1")
        r2 = ef_gh_schema.relation("R2")
        psi = CIND(r1, ("E",), (), r2, ("G",), (), [((_,), (_,))])
        engine = ChaseEngine(ef_gh_schema, cinds=[psi])
        db = DatabaseInstance(ef_gh_schema, {"R1": [("e", "f")]})
        result = engine.chase(db)
        assert result.is_defined
        assert result.insertions == 1
        (t2,) = result.db["R2"].tuples
        assert t2["G"] == "e"
        assert isinstance(t2["H"], Variable)  # pool variable fills the gap

    def test_yp_pattern_constants_placed(self, ef_gh_schema):
        r1 = ef_gh_schema.relation("R1")
        r2 = ef_gh_schema.relation("R2")
        psi = CIND(r1, (), ("E",), r2, (), ("G", "H"), [(("k",), ("g1", "h1"))])
        engine = ChaseEngine(ef_gh_schema, cinds=[psi])
        db = DatabaseInstance(ef_gh_schema, {"R1": [("k", "f")]})
        result = engine.chase(db)
        assert result.is_defined
        assert result.db["R2"].tuples[0].values == ("g1", "h1")

    def test_existing_witness_prevents_insertion(self, ef_gh_schema):
        r1 = ef_gh_schema.relation("R1")
        r2 = ef_gh_schema.relation("R2")
        psi = CIND(r1, ("E",), (), r2, ("G",), (), [((_,), (_,))])
        engine = ChaseEngine(ef_gh_schema, cinds=[psi])
        db = DatabaseInstance(
            ef_gh_schema, {"R1": [("e", "f")], "R2": [("e", "h")]}
        )
        result = engine.chase(db)
        assert result.is_defined
        assert result.insertions == 0

    def test_finite_domain_instantiation(self):
        dom = FiniteDomain("d2", ("x", "y"))
        schema = DatabaseSchema(
            [
                RelationSchema("R1", [Attribute("E")]),
                RelationSchema("R2", [Attribute("G"), Attribute("H", dom)]),
            ]
        )
        r1 = schema.relation("R1")
        r2 = schema.relation("R2")
        psi = CIND(r1, ("E",), (), r2, ("G",), (), [((_,), (_,))])
        engine = ChaseEngine(
            schema, cinds=[psi], instantiate_finite=True, rng=random.Random(1)
        )
        db = DatabaseInstance(schema, {"R1": [("e",)]})
        result = engine.chase(db)
        assert result.is_defined
        assert result.db["R2"].tuples[0]["H"] in ("x", "y")

    def test_overflow_threshold(self):
        # A CIND that feeds itself new tuples forever: R[A] ⊆ R[B].
        schema = DatabaseSchema([RelationSchema("R", ["A", "B"])])
        r = schema.relation("R")
        psi = CIND(r, ("A",), (), r, ("B",), (), [((_,), (_,))])
        engine = ChaseEngine(schema, cinds=[psi], max_tuples=10, var_pool_size=1)
        db = DatabaseInstance(schema, {"R": [("a0", "b0")]})
        result = engine.chase(db)
        # Either the pool variables close the cycle (defined) or we overflow;
        # with pool size 1 the chase reuses the single variable and closes.
        assert result.status in (ChaseStatus.DEFINED, ChaseStatus.OVERFLOW)

    def test_overflow_reported(self):
        # Force growth with constants: R[A] ⊆ R[B] starting from distinct
        # constants keeps inserting tuples carrying fresh pool variables in
        # column A... with pool size 2 the space is bounded; use Yp pattern
        # to force new constants instead.
        schema = DatabaseSchema([RelationSchema("R", ["A", "B"])])
        r = schema.relation("R")
        # Every tuple requires a witness with B = A-value; A of the witness
        # is a pool var; combined with a CFD forcing A to be a new constant
        # each time is hard to arrange — instead use max_tuples=0 to trip
        # the threshold immediately.
        psi = CIND(r, ("A",), (), r, ("B",), (), [((_,), (_,))])
        engine = ChaseEngine(schema, cinds=[psi], max_tuples=1, var_pool_size=2)
        db = DatabaseInstance(schema, {"R": [("a0", "b0")]})
        result = engine.chase(db)
        assert result.status in (ChaseStatus.OVERFLOW, ChaseStatus.DEFINED)


class TestExample51:
    """The full chase trace of Example 5.1."""

    def test_chase_reproduces_example(self, example_5_1):
        schema, sigma = example_5_1
        engine = ChaseEngine(schema, constraints=sigma, var_pool_size=2)
        db = DatabaseInstance(schema)
        db["R1"].add(engine.fresh_tuple(schema.relation("R1")))
        result = engine.chase(db)
        assert result.is_defined
        # chase(D, Σ) per the paper: R1 = {(c, vF1)}, R2 = {(c, vH1)}.
        (r1_tuple,) = result.db["R1"].tuples
        (r2_tuple,) = result.db["R2"].tuples
        assert r1_tuple["E"] == "c"
        assert r2_tuple["G"] == "c"
        assert isinstance(r1_tuple["F"], Variable)
        assert isinstance(r2_tuple["H"], Variable)

    def test_grounded_witness_satisfies_sigma(self, example_5_1):
        schema, sigma = example_5_1
        engine = ChaseEngine(schema, constraints=sigma, var_pool_size=2)
        db = DatabaseInstance(schema)
        db["R1"].add(engine.fresh_tuple(schema.relation("R1")))
        result = engine.chase(db)
        witness = ground_template(result.db, exclude_constants=sigma.all_constants())
        assert witness.is_ground()
        assert sigma.satisfied_by(witness)


class TestGroundTemplate:
    def test_fresh_values_distinct_and_avoid_constants(self, ef_gh_schema):
        v1, v2 = Variable("R1.E", 0), Variable("R1.F", 0)
        db = DatabaseInstance(ef_gh_schema, {"R1": [(v1, v2)]})
        ground = ground_template(db, exclude_constants={"v0"})
        (t,) = ground["R1"].tuples
        assert t.is_ground()
        assert t["E"] != t["F"]
        assert "v0" not in t.values

    def test_finite_variable_rejected(self):
        dom = FiniteDomain("d", ("x",))
        schema = DatabaseSchema([RelationSchema("R", [Attribute("A", dom)])])
        db = DatabaseInstance(schema, {"R": [(Variable("R.A", 0),)]})
        with pytest.raises(ChaseError):
            ground_template(db)

    def test_shared_variable_maps_consistently(self, ef_gh_schema):
        v = Variable("shared", 0)
        db = DatabaseInstance(ef_gh_schema, {"R1": [(v, "f")], "R2": [(v, "h")]})
        ground = ground_template(db)
        assert ground["R1"].tuples[0]["E"] == ground["R2"].tuples[0]["G"]


class TestValuations:
    def test_finite_domain_variables_found(self):
        dom = FiniteDomain("d2", ("x", "y"))
        schema = DatabaseSchema(
            [RelationSchema("R", [Attribute("A", dom), Attribute("B")])]
        )
        va, vb = Variable("R.A", 0), Variable("R.B", 0)
        db = DatabaseInstance(schema, {"R": [(va, vb)]})
        found = finite_domain_variables(db)
        assert set(found) == {va}
        assert found[va] is dom

    def test_enumerate_valuations_product(self):
        dom = FiniteDomain("d2", ("x", "y"))
        v1, v2 = Variable("A", 0), Variable("B", 0)
        vals = list(enumerate_valuations({v1: dom, v2: dom}))
        assert len(vals) == 4
        assert valuation_space_size({v1: dom, v2: dom}) == 4
        assert {frozenset(v.items()) for v in vals} == {
            frozenset({(v1, a), (v2, b)}.__iter__())
            for a in ("x", "y")
            for b in ("x", "y")
        }

    def test_empty_valuation_convention(self):
        assert list(enumerate_valuations({})) == [{}]

    def test_enumerate_limit(self):
        dom = FiniteDomain("d2", ("x", "y"))
        v1, v2 = Variable("A", 0), Variable("B", 0)
        assert len(list(enumerate_valuations({v1: dom, v2: dom}, limit=3))) == 3

    def test_sample_small_space_exhaustive(self):
        dom = FiniteDomain("d2", ("x", "y"))
        v = Variable("A", 0)
        vals = list(sample_valuations({v: dom}, k=10, rng=random.Random(0)))
        assert len(vals) == 2

    def test_sample_large_space_distinct(self):
        dom = FiniteDomain("d4", ("a", "b", "c", "d"))
        variables = {Variable("A", i): dom for i in range(5)}  # 1024 valuations
        vals = list(sample_valuations(variables, k=20, rng=random.Random(0)))
        assert len(vals) == 20
        assert len({tuple(sorted((k.sort_key(), v) for k, v in m.items())) for m in vals}) == 20

    def test_apply_valuation(self):
        dom = FiniteDomain("d2", ("x", "y"))
        schema = DatabaseSchema([RelationSchema("R", [Attribute("A", dom)])])
        v = Variable("R.A", 0)
        db = DatabaseInstance(schema, {"R": [(v,)]})
        out = apply_valuation(db, {v: "x"})
        assert out["R"].tuples[0]["A"] == "x"
        assert not db.is_ground()  # original untouched
