"""Tests for the first-order / TGD renderings."""

from repro.core.cfd import CFD, standard_fd
from repro.core.cind import CIND, standard_ind
from repro.logic.fo import cfd_to_fo, cind_to_fo, constraint_set_to_fo
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _


class TestCFDRendering:
    def test_standard_fd_shape(self):
        r = RelationSchema("R", ["A", "B"])
        (sentence,) = cfd_to_fo(standard_fd(r, ("A",), ("B",)))
        assert sentence.startswith("∀ ")
        assert "R(x_A, x_B)" in sentence
        assert "R(x2_A, x2_B)" in sentence
        assert "x_A = x2_A" in sentence
        assert "x_B = x2_B" in sentence
        assert "∃" not in sentence  # CFDs are full dependencies

    def test_constants_inlined(self):
        r = RelationSchema("R", ["A", "B"])
        cfd = CFD(r, ("A",), ("B",), [(("a",), ("b",))])
        (sentence,) = cfd_to_fo(cfd)
        assert "x_A = 'a'" in sentence
        assert "x_B = 'b'" in sentence

    def test_one_sentence_per_row(self, bank):
        phi3 = bank.by_name["phi3"]
        assert len(cfd_to_fo(phi3)) == len(phi3.tableau)


class TestCINDRendering:
    def test_standard_ind_is_plain_tgd(self):
        r = RelationSchema("R", ["A", "B"])
        s = RelationSchema("S", ["C", "D"])
        (sentence,) = cind_to_fo(standard_ind(r, ("A",), s, ("C",)))
        assert "∃" in sentence
        assert "y_C = x_A" in sentence
        assert "'" not in sentence  # no constants in a plain IND

    def test_patterns_become_constants(self, bank):
        psi1 = bank.by_name["psi1[EDI]"]
        (sentence,) = cind_to_fo(psi1)
        assert "x_at = 'saving'" in sentence       # Xp pattern
        assert "y_ab = 'EDI'" in sentence          # Yp pattern
        assert "y_an = x_an" in sentence           # embedded IND equalities

    def test_multi_row(self, bank):
        psi6 = bank.by_name["psi6"]
        sentences = cind_to_fo(psi6)
        assert len(sentences) == 2
        assert any("'1.5%'" in s for s in sentences)
        assert any("'1%'" in s for s in sentences)


class TestWholeSet:
    def test_bank_constraint_set(self, bank):
        sentences = constraint_set_to_fo(bank.cfds, bank.cinds)
        rows = sum(len(c.tableau) for c in bank.cfds) + sum(
            len(c.tableau) for c in bank.cinds
        )
        assert len(sentences) == rows
        assert all(s.startswith("∀ ") for s in sentences)
