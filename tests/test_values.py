"""Tests for repro.relational.values: wildcards, variables, ordering."""

import copy

import pytest

from repro.relational.values import (
    WILDCARD,
    Variable,
    fresh_variables,
    is_constant,
    is_variable,
    is_wildcard,
    value_order_key,
)


class TestWildcard:
    def test_singleton(self):
        from repro.relational.values import _Wildcard

        assert _Wildcard() is WILDCARD

    def test_repr(self):
        assert repr(WILDCARD) == "_"

    def test_copy_preserves_identity(self):
        assert copy.copy(WILDCARD) is WILDCARD
        assert copy.deepcopy(WILDCARD) is WILDCARD

    def test_predicates(self):
        assert is_wildcard(WILDCARD)
        assert not is_variable(WILDCARD)
        assert not is_constant(WILDCARD)


class TestVariable:
    def test_equality_by_attribute_and_index(self):
        assert Variable("A", 0) == Variable("A", 0)
        assert Variable("A", 0) != Variable("A", 1)
        assert Variable("A", 0) != Variable("B", 0)

    def test_hash_consistency(self):
        assert hash(Variable("A", 3)) == hash(Variable("A", 3))
        assert len({Variable("A", 0), Variable("A", 0), Variable("A", 1)}) == 2

    def test_not_equal_to_constants(self):
        assert Variable("A", 0) != "a"
        assert Variable("A", 0) != 0

    def test_repr(self):
        assert repr(Variable("F", 1)) == "?F1"

    def test_predicates(self):
        v = Variable("A", 0)
        assert is_variable(v)
        assert not is_wildcard(v)
        assert not is_constant(v)

    def test_fresh_variables_pool(self):
        pool = fresh_variables("A", 3)
        assert len(pool) == 3
        assert len(set(pool)) == 3
        assert all(v.attribute == "A" for v in pool)


class TestConstants:
    @pytest.mark.parametrize("value", ["x", 0, 1.5, True, False, None, ()])
    def test_is_constant(self, value):
        assert is_constant(value)


class TestValueOrder:
    def test_variables_precede_constants(self):
        # The paper's "v < a for any v in Var and constant a" (Section 5.1).
        assert value_order_key(Variable("A", 0)) < value_order_key("a")
        assert value_order_key(Variable("Z", 99)) < value_order_key("")
        assert value_order_key(Variable("Z", 99)) < value_order_key(0)

    def test_variable_order_is_total_and_deterministic(self):
        vs = [Variable("B", 1), Variable("A", 2), Variable("A", 0)]
        ordered = sorted(vs, key=value_order_key)
        assert ordered == [Variable("A", 0), Variable("A", 2), Variable("B", 1)]

    def test_constant_order_deterministic(self):
        vals = ["b", "a", 2, 1]
        assert sorted(vals, key=value_order_key) == sorted(vals, key=value_order_key)

    def test_max_prefers_constant_over_variable(self):
        # The chase's FD step keeps the larger value: a constant survives.
        winner = max([Variable("A", 0), "const"], key=value_order_key)
        assert winner == "const"
