"""Tests for the bounded chase-based implication checker and minimal covers."""

import pytest

from repro.core.cind import CIND, standard_ind
from repro.core.cover import minimal_cover_cinds
from repro.core.implication import ImplicationStatus, implies
from repro.core.normalize import normalize_cind
from repro.relational.domains import FiniteDomain
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _


@pytest.fixture
def rst():
    r = RelationSchema("R", ["A", "B"])
    s = RelationSchema("S", ["C", "D"])
    t = RelationSchema("T", ["E", "F"])
    return DatabaseSchema([r, s, t]), r, s, t


class TestStandardINDChains:
    def test_transitivity_implied(self, rst):
        schema, r, s, t = rst
        sigma = [
            standard_ind(r, ("A",), s, ("C",)),
            standard_ind(s, ("C",), t, ("E",)),
        ]
        goal = standard_ind(r, ("A",), t, ("E",))
        assert implies(schema, sigma, goal)

    def test_unrelated_not_implied(self, rst):
        schema, r, s, t = rst
        sigma = [standard_ind(r, ("A",), s, ("C",))]
        goal = standard_ind(r, ("A",), t, ("E",))
        result = implies(schema, sigma, goal)
        assert result.status is ImplicationStatus.NOT_IMPLIED
        assert result.counterexample is not None
        # The counterexample must satisfy Σ and violate the goal.
        for cind in sigma:
            assert cind.satisfied_by(result.counterexample)
        assert not goal.satisfied_by(result.counterexample)

    def test_projection_implied(self, rst):
        schema, r, s, __t = rst
        sigma = [standard_ind(r, ("A", "B"), s, ("C", "D"))]
        goal = standard_ind(r, ("A",), s, ("C",))
        assert implies(schema, sigma, goal)

    def test_reflexivity_implied_from_nothing(self, rst):
        schema, r, *__ = rst
        goal = standard_ind(r, ("A",), r, ("A",))
        assert implies(schema, [], goal)

    def test_reversed_ind_not_implied(self, rst):
        schema, r, s, __t = rst
        sigma = [standard_ind(r, ("A",), s, ("C",))]
        goal = standard_ind(s, ("C",), r, ("A",))
        assert implies(schema, sigma, goal).status is ImplicationStatus.NOT_IMPLIED


class TestPatternReasoning:
    def test_weaker_yp_implied(self, rst):
        # (R[nil;A] ⊆ S[nil;C,D], (a || c,d)) implies dropping D from Yp.
        schema, r, s, __t = rst
        strong = CIND(r, (), ("A",), s, (), ("C", "D"), [(("a",), ("c", "d"))])
        weak = CIND(r, (), ("A",), s, (), ("C",), [(("a",), ("c",))])
        assert implies(schema, [strong], weak)
        # ... but not the converse.
        assert (
            implies(schema, [weak], strong).status
            is ImplicationStatus.NOT_IMPLIED
        )

    def test_more_specific_premise_implied(self, rst):
        # ψ applying to all tuples implies ψ restricted to A = a (CIND5).
        schema, r, s, __t = rst
        general = CIND(r, ("B",), (), s, ("D",), (), [((_,), (_,))])
        specific = CIND(r, ("B",), ("A",), s, ("D",), (), [((_, "a"), (_,))])
        assert implies(schema, [general], specific)
        assert (
            implies(schema, [specific], general).status
            is ImplicationStatus.NOT_IMPLIED
        )

    def test_pattern_transitivity(self, rst):
        schema, r, s, t = rst
        sigma = [
            CIND(r, (), ("A",), s, (), ("C",), [(("go",), ("mid",))]),
            CIND(s, (), ("C",), t, (), ("E",), [(("mid",), ("end",))]),
        ]
        goal = CIND(r, (), ("A",), t, (), ("E",), [(("go",), ("end",))])
        assert implies(schema, sigma, goal)

    def test_pattern_transitivity_broken_middle(self, rst):
        schema, r, s, t = rst
        sigma = [
            CIND(r, (), ("A",), s, (), ("C",), [(("go",), ("mid",))]),
            CIND(s, (), ("C",), t, (), ("E",), [(("OTHER",), ("end",))]),
        ]
        goal = CIND(r, (), ("A",), t, (), ("E",), [(("go",), ("end",))])
        assert (
            implies(schema, sigma, goal).status
            is ImplicationStatus.NOT_IMPLIED
        )


class TestExample33:
    """Example 3.3/3.4: Σ (bank CINDs) |= (account_B[at] ⊆ interest[at])."""

    def test_bank_implication(self, bank):
        account = bank.schema.relation("account_EDI")
        interest = bank.schema.relation("interest")
        goal = CIND(account, ("at",), (), interest, ("at",), (), [((_,), (_,))])
        result = implies(bank.schema, bank.cinds, goal, max_tuples=400)
        assert result.status is ImplicationStatus.IMPLIED

    def test_bank_implication_needs_finite_domain(self, bank):
        # With an *infinite* account-type domain the implication fails:
        # an account of some third type t is not forced into interest.
        r = RelationSchema(
            "acct", ["an", "cn", "ca", "cp", "at"]  # 'at' infinite here
        )
        saving = RelationSchema("saving", ["an", "cn", "ca", "cp", "ab"])
        checking = RelationSchema("checking", ["an", "cn", "ca", "cp", "ab"])
        interest = RelationSchema("interest", ["ab", "ct", "at", "rt"])
        schema = DatabaseSchema([r, saving, checking, interest])
        xs = ("an", "cn", "ca", "cp")
        sigma = [
            CIND(r, xs, ("at",), saving, xs, ("ab",),
                 [((_, _, _, _, "saving"), (_, _, _, _, "EDI"))]),
            CIND(r, xs, ("at",), checking, xs, ("ab",),
                 [((_, _, _, _, "checking"), (_, _, _, _, "EDI"))]),
            CIND(saving, (), ("ab",), interest, (), ("ab", "at", "ct", "rt"),
                 [(("EDI",), ("EDI", "saving", "UK", "4.5%"))]),
            CIND(checking, (), ("ab",), interest, (), ("ab", "at", "ct", "rt"),
                 [(("EDI",), ("EDI", "checking", "UK", "1.5%"))]),
        ]
        goal = CIND(r, ("at",), (), interest, ("at",), (), [((_,), (_,))])
        result = implies(schema, sigma, goal)
        assert result.status is ImplicationStatus.NOT_IMPLIED


class TestFiniteDomainBranching:
    def test_case_split_over_finite_domain(self):
        dom = FiniteDomain("d2i", ("x", "y"))
        r = RelationSchema("R", [Attribute("A", dom), "B"])
        s = RelationSchema("S", ["C"])
        schema = DatabaseSchema([r, s])
        sigma = [
            CIND(r, ("B",), ("A",), s, ("C",), (), [((_, "x"), (_,))]),
            CIND(r, ("B",), ("A",), s, ("C",), (), [((_, "y"), (_,))]),
        ]
        # Every value of A is covered, so the unconditional IND follows
        # (rule CIND7's semantic content).
        goal = CIND(r, ("B",), (), s, ("C",), (), [((_,), (_,))])
        assert implies(schema, sigma, goal)

    def test_partial_cover_not_implied(self):
        dom = FiniteDomain("d3i", ("x", "y", "z"))
        r = RelationSchema("R", [Attribute("A", dom), "B"])
        s = RelationSchema("S", ["C"])
        schema = DatabaseSchema([r, s])
        sigma = [
            CIND(r, ("B",), ("A",), s, ("C",), (), [((_, "x"), (_,))]),
            CIND(r, ("B",), ("A",), s, ("C",), (), [((_, "y"), (_,))]),
        ]
        goal = CIND(r, ("B",), (), s, ("C",), (), [((_,), (_,))])
        result = implies(schema, sigma, goal)
        assert result.status is ImplicationStatus.NOT_IMPLIED
        # The countermodel uses the uncovered value z.
        ce = result.counterexample
        assert any(t["A"] == "z" for t in ce["R"])


class TestBudgets:
    def test_cyclic_chase_hits_budget(self, rst):
        # R[A] ⊆ S[C] and S[C] ⊆ R[B] with fresh values each round could
        # run forever; the goal never closes, the budget must kick in.
        schema, r, s, __t = rst
        sigma = [
            standard_ind(r, ("A",), s, ("C",)),
            standard_ind(s, ("C",), r, ("B",)),
            standard_ind(r, ("B",), s, ("D",)),
            standard_ind(s, ("D",), r, ("A",)),
        ]
        goal = standard_ind(r, ("A",), s, ("D",))
        result = implies(schema, sigma, goal, max_tuples=20, max_branches=4)
        assert result.status in (
            ImplicationStatus.UNKNOWN,
            ImplicationStatus.IMPLIED,
            ImplicationStatus.NOT_IMPLIED,
        )
        # Whatever the verdict, a counterexample must actually check out.
        if result.status is ImplicationStatus.NOT_IMPLIED:
            for cind in sigma:
                assert cind.satisfied_by(result.counterexample)

    def test_multi_row_goal(self, bank):
        # ψ5's two rows must each be implied by Σ (which contains ψ5).
        result = implies(bank.schema, bank.cinds, bank.by_name["psi5"])
        assert result.status is ImplicationStatus.IMPLIED


class TestMinimalCover:
    def test_redundant_transitive_member_removed(self, rst):
        schema, r, s, t = rst
        chain = [
            standard_ind(r, ("A",), s, ("C",), name="r-s"),
            standard_ind(s, ("C",), t, ("E",), name="s-t"),
            standard_ind(r, ("A",), t, ("E",), name="r-t(redundant)"),
        ]
        result = minimal_cover_cinds(schema, chain)
        assert len(result.cover) == 2
        assert [c.name for c in result.removed] == ["r-t(redundant)"]

    def test_irredundant_set_untouched(self, rst):
        schema, r, s, t = rst
        sigma = [
            standard_ind(r, ("A",), s, ("C",)),
            standard_ind(t, ("E",), s, ("D",)),
        ]
        result = minimal_cover_cinds(schema, sigma)
        assert len(result.cover) == 2
        assert not result.removed

    def test_duplicate_removed(self, rst):
        schema, r, s, __t = rst
        a = standard_ind(r, ("A",), s, ("C",), name="one")
        b = standard_ind(r, ("A",), s, ("C",), name="two")
        result = minimal_cover_cinds(schema, [a, b])
        assert len(result.cover) == 1

    def test_cover_equivalent_on_bank(self, bank):
        result = minimal_cover_cinds(bank.schema, bank.cinds, max_tuples=300)
        # ψ3 is implied by ψ5 + ψ1? Not necessarily — just require soundness:
        # whatever was removed must be implied by the survivors.
        for gone in result.removed:
            again = implies(bank.schema, result.cover, gone, max_tuples=300)
            assert again.status is ImplicationStatus.IMPLIED
