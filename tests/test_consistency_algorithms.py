"""Tests for RandomChecking, preProcessing and Checking (Section 5.2–5.3).

Pinned to the paper's Examples 4.2 (CFD+CIND conflict), 5.1/5.3 (chase
runs), 5.4–5.6 (dependency-graph reduction), plus the bank constraints.
"""

import random

import pytest

from repro.consistency.checking import checking
from repro.consistency.depgraph import (
    build_dependency_graph,
    non_triggering_cfds,
    preprocess,
)
from repro.consistency.random_checking import random_checking
from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.violations import ConstraintSet
from repro.relational.domains import FiniteDomain, enum_domain
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _


def example_5_4_constraints(psi4_variant: str = "paper"):
    """The schema and Σ of Example 5.4 (and Example 5.5's ψ4' variant).

    R1(E,F), R2(G,H), R3(A,B), R4(C,D), R5(I,J); dom(H) = bool-ish {0,1}.
    """
    dom_h = enum_domain("H01", ("0", "1"))
    schema = DatabaseSchema(
        [
            RelationSchema("R1", [Attribute("E"), Attribute("F")]),
            RelationSchema("R2", [Attribute("G"), Attribute("H", dom_h)]),
            RelationSchema("R3", [Attribute("A"), Attribute("B")]),
            RelationSchema("R4", [Attribute("C"), Attribute("D")]),
            RelationSchema("R5", [Attribute("I"), Attribute("J")]),
        ]
    )
    r1, r2, r3, r4, r5 = (schema.relation(f"R{i}") for i in range(1, 6))
    phi1 = CFD(r1, ("E",), ("F",), [((_,), (_,))], name="phi1")
    phi2 = CFD(r2, ("H",), ("G",), [((_,), ("c",))], name="phi2")
    phi3 = CFD(r3, ("A",), ("B",), [(("c",), (_,))], name="phi3")
    phi4 = CFD(r4, ("C",), ("D",), [((_,), ("a",))], name="phi4")
    phi5 = CFD(r4, ("C",), ("D",), [((_,), ("b",))], name="phi5")
    phi6 = CFD(r5, ("I",), ("J",), [((_,), ("c",))], name="phi6")
    psi1 = CIND(r1, ("E",), (), r2, ("G",), (), [((_,), (_,))], name="psi1")
    psi2 = CIND(r2, (), ("H",), r1, (), ("F",), [(("0",), ("a",))], name="psi2")
    psi3 = CIND(r2, (), ("H",), r1, (), ("F",), [(("1",), ("b",))], name="psi3")
    if psi4_variant == "paper":
        psi4 = CIND(r3, ("A",), ("B",), r4, ("C",), (), [((_, "b"), (_,))], name="psi4")
    else:  # Example 5.5's ψ4': no Xp pattern — impossible to avoid triggering.
        psi4 = CIND(r3, ("A",), (), r4, ("C",), (), [((_,), (_,))], name="psi4'")
    psi5 = CIND(r5, (), ("J",), r2, (), ("G",), [(("c",), ("d",))], name="psi5")
    sigma = ConstraintSet(
        schema,
        cfds=[phi1, phi2, phi3, phi4, phi5, phi6],
        cinds=[psi1, psi2, psi3, psi4, psi5],
    )
    return schema, sigma


class TestRandomChecking:
    def test_example_5_1_consistent(self, example_5_1):
        schema, sigma = example_5_1
        decision = random_checking(schema, sigma, rng=random.Random(1))
        assert decision.consistent
        assert sigma.satisfied_by(decision.witness)

    def test_example_5_3_finite_h(self, example_5_1_finite_h):
        # Example 5.3: with dom(H) = {0,1} the instantiated chase still
        # finds a witness (e.g. the D4 of the paper).
        schema, sigma = example_5_1_finite_h
        decision = random_checking(schema, sigma, k=20, rng=random.Random(1))
        assert decision.consistent
        assert sigma.satisfied_by(decision.witness)

    def test_example_4_2_joint_conflict(self, example_4_2):
        # φ: (A -> B, (_ || a)); ψ: (R[nil;B] ⊆ R[nil;B], (b || b)).
        # Separately consistent, jointly inconsistent.
        schema, phi, psi = example_4_2
        both = ConstraintSet(schema, cfds=[phi], cinds=[psi])
        assert not random_checking(schema, both, k=10, rng=random.Random(0))
        only_phi = ConstraintSet(schema, cfds=[phi])
        assert random_checking(schema, only_phi, rng=random.Random(0))
        only_psi = ConstraintSet(schema, cinds=[psi])
        assert random_checking(schema, only_psi, rng=random.Random(0))

    def test_bank_constraints_consistent(self, bank):
        decision = random_checking(
            bank.schema, bank.constraints, k=30, rng=random.Random(5)
        )
        assert decision.consistent
        assert bank.constraints.satisfied_by(decision.witness)

    def test_plain_variant_also_works(self, example_5_1_finite_h):
        schema, sigma = example_5_1_finite_h
        decision = random_checking(
            schema, sigma, k=30, improved=False, rng=random.Random(2)
        )
        assert decision.consistent

    def test_candidate_relations_restriction(self, example_5_1):
        schema, sigma = example_5_1
        decision = random_checking(
            schema, sigma, rng=random.Random(1), candidate_relations=["R1"]
        )
        assert decision.consistent

    def test_attempts_reported(self, example_4_2):
        schema, phi, psi = example_4_2
        both = ConstraintSet(schema, cfds=[phi], cinds=[psi])
        decision = random_checking(schema, both, k=7, rng=random.Random(0))
        assert decision.attempts == 7


class TestNonTriggeringCFDs:
    def test_deny_matching_tuples(self):
        schema, sigma = example_5_4_constraints()
        normal = sigma.normalized()
        (psi4,) = [c for c in normal.cinds if (c.name or "").startswith("psi4")]
        nt = non_triggering_cfds(psi4)
        assert len(nt) == 2
        # Both CFDs share LHS pattern tp[Xp] and force different constants.
        assert nt[0].lhs == nt[1].lhs == ("B",)
        assert nt[0].pattern.lhs_value("B") == "b"
        c1 = nt[0].pattern.rhs_value(nt[0].rhs_attribute)
        c2 = nt[1].pattern.rhs_value(nt[1].rhs_attribute)
        assert c1 != c2

    def test_empty_xp_denies_everything(self):
        schema, sigma = example_5_4_constraints(psi4_variant="prime")
        normal = sigma.normalized()
        (psi4p,) = [c for c in normal.cinds if (c.name or "").startswith("psi4")]
        nt = non_triggering_cfds(psi4p)
        assert nt[0].lhs == ()
        # Together they force a single-attribute contradiction on any tuple.
        from repro.consistency.cfd_checking import cfd_checking

        r3 = schema.relation("R3")
        assert not cfd_checking(r3, nt).consistent


class TestPreprocessing:
    def test_example_5_5_paper_variant_returns_1(self):
        # With ψ4 (pattern B = b), R3 can dodge the trigger: return 1.
        schema, sigma = example_5_4_constraints("paper")
        dep = build_dependency_graph(sigma)
        result = preprocess(dep, rng=random.Random(0))
        assert result.code == 1
        assert result.witness is not None
        assert sigma.satisfied_by(result.witness)
        assert "R4" in result.deleted_inconsistent

    def test_example_5_5_prime_variant_reduces_to_r1_r2(self):
        # With ψ4', R3 dies too; R5 is pruned; the R1 <-> R2 cycle remains.
        schema, sigma = example_5_4_constraints("prime")
        dep = build_dependency_graph(sigma)
        result = preprocess(dep, rng=random.Random(0))
        assert result.code == -1
        assert set(dep.graph.nodes) == {"R1", "R2"}
        assert set(result.deleted_inconsistent) == {"R4", "R3"}
        assert "R5" in result.pruned

    def test_graph_shape_matches_fig6(self):
        schema, sigma = example_5_4_constraints("paper")
        dep = build_dependency_graph(sigma)
        assert dep.graph.has_edge("R1", "R2")
        assert dep.graph.has_edge("R2", "R1")
        assert dep.graph.has_edge("R3", "R4")
        assert dep.graph.has_edge("R5", "R2")
        assert set(dep.graph.nodes) == {"R1", "R2", "R3", "R4", "R5"}

    def test_all_relations_inconsistent_returns_0(self):
        r = RelationSchema("R", ["A"])
        schema = DatabaseSchema([r])
        sigma = ConstraintSet(
            schema,
            cfds=[
                CFD(r, (), ("A",), [((), ("a",))]),
                CFD(r, (), ("A",), [((), ("b",))]),
            ],
        )
        dep = build_dependency_graph(sigma)
        result = preprocess(dep, rng=random.Random(0))
        assert result.code == 0

    def test_unconstrained_relation_gives_instant_1(self, example_4_2):
        # A relation with no CFDs and no outgoing CINDs can hold one tuple.
        schema0, phi, psi = example_4_2
        extended = DatabaseSchema(
            list(schema0.relations) + [RelationSchema("FREE", ["Z"])]
        )
        sigma = ConstraintSet(extended, cfds=[phi], cinds=[psi])
        dep = build_dependency_graph(sigma)
        result = preprocess(dep, rng=random.Random(0))
        assert result.code == 1
        assert sigma.satisfied_by(result.witness)

    def test_avoid_trigger_probe_ablation(self):
        # With the probe off, the paper-variant Example 5.4 may stay
        # undecided (-1) or decide via some other node; with it on, it
        # decides 1 via R3. Both must at least not answer 0.
        schema, sigma = example_5_4_constraints("paper")
        dep = build_dependency_graph(sigma)
        result = preprocess(dep, rng=random.Random(0), avoid_trigger_probe=False)
        assert result.code in (1, -1)


class TestChecking:
    def test_example_5_6_checking_end_to_end(self):
        # ψ4' variant: preProcessing reduces to {R1, R2}; RandomChecking
        # finds the witness on that component (Example 5.3/5.6).
        schema, sigma = example_5_4_constraints("prime")
        decision = checking(schema, sigma, k=30, rng=random.Random(3))
        assert decision.consistent
        assert sigma.satisfied_by(decision.witness)

    def test_paper_variant_decided_in_preprocessing(self):
        schema, sigma = example_5_4_constraints("paper")
        decision = checking(schema, sigma, rng=random.Random(0))
        assert decision.consistent
        assert decision.method == "checking/preprocessing"

    def test_example_4_2_inconsistent(self, example_4_2):
        schema, phi, psi = example_4_2
        sigma = ConstraintSet(schema, cfds=[phi], cinds=[psi])
        decision = checking(schema, sigma, k=10, rng=random.Random(0))
        assert not decision.consistent

    def test_bank_constraints(self, bank):
        decision = checking(bank.schema, bank.constraints, k=30, rng=random.Random(1))
        assert decision.consistent
        assert bank.constraints.satisfied_by(decision.witness)

    def test_pure_cfd_inconsistency(self, ab_schema, example_3_2_cfds):
        sigma = ConstraintSet(ab_schema, cfds=example_3_2_cfds)
        decision = checking(ab_schema, sigma, rng=random.Random(0))
        assert not decision.consistent
        assert decision.method == "checking/preprocessing"

    def test_soundness_of_true_answers(self, example_5_1_finite_h):
        # Theorem 5.1: whenever Checking returns true, Σ is consistent —
        # our implementation additionally hands back the verified witness.
        schema, sigma = example_5_1_finite_h
        decision = checking(schema, sigma, k=30, rng=random.Random(9))
        if decision.consistent:
            assert sigma.satisfied_by(decision.witness)
