"""Tests for CFDs: syntax validation, semantics, violations (Section 4)."""

import pytest

from repro.core.cfd import CFD, standard_fd
from repro.errors import ConstraintError
from repro.relational.domains import BOOL
from repro.relational.instance import DatabaseInstance, RelationInstance, Tuple
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _


@pytest.fixture
def r():
    return RelationSchema("R", ["A", "B", "C"])


@pytest.fixture
def db_schema(r):
    return DatabaseSchema([r])


class TestConstruction:
    def test_basic(self, r):
        cfd = CFD(r, ("A",), ("B",), [(("x",), ("y",))])
        assert cfd.lhs == ("A",)
        assert cfd.rhs == ("B",)

    def test_unknown_attribute_rejected(self, r):
        with pytest.raises(Exception):
            CFD(r, ("Z",), ("B",), [((_,), (_,))])

    def test_empty_rhs_rejected(self, r):
        with pytest.raises(ConstraintError):
            CFD(r, ("A",), (), [((_,), ())])

    def test_empty_tableau_rejected(self, r):
        with pytest.raises(ConstraintError):
            CFD(r, ("A",), ("B",), [])

    def test_pattern_constant_outside_domain_rejected(self):
        rel = RelationSchema("R", [Attribute("A", BOOL), "B"])
        with pytest.raises(ConstraintError):
            CFD(rel, ("A",), ("B",), [(("not-bool",), (_,))])

    def test_empty_lhs_allowed(self, r):
        # A constant CFD with empty LHS constrains every tuple.
        cfd = CFD(r, (), ("B",), [((), ("b",))])
        assert cfd.lhs == ()


class TestStructuralProperties:
    def test_standard_fd_detection(self, r):
        fd = standard_fd(r, ("A",), ("B", "C"))
        assert fd.is_standard_fd
        assert not fd.is_constant_cfd

    def test_non_standard(self, r):
        cfd = CFD(r, ("A",), ("B",), [(("x",), (_,))])
        assert not cfd.is_standard_fd

    def test_constant_cfd(self, r):
        cfd = CFD(r, ("A",), ("B",), [((_,), ("b",))])
        assert cfd.is_constant_cfd

    def test_normal_form_flag(self, r):
        nf = CFD(r, ("A",), ("B",), [((_,), ("b",))])
        assert nf.is_normal_form
        multi_rhs = CFD(r, ("A",), ("B", "C"), [((_,), (_, _))])
        assert not multi_rhs.is_normal_form

    def test_normal_form_accessors(self, r):
        nf = CFD(r, ("A",), ("B",), [(("x",), ("b",))])
        assert nf.rhs_attribute == "B"
        assert nf.pattern.lhs_value("A") == "x"

    def test_normal_form_accessors_reject_non_normal(self, r):
        multi = CFD(r, ("A",), ("B",), [((_,), (_,)), (("x",), ("y",))])
        with pytest.raises(ConstraintError):
            multi.pattern

    def test_to_normal_form_counts(self, r):
        cfd = CFD(
            r, ("A",), ("B", "C"), [((_,), (_, _)), (("x",), ("y", "z"))]
        )
        nf = cfd.to_normal_form()
        assert len(nf) == 4  # 2 rows x 2 RHS attributes
        assert all(c.is_normal_form for c in nf)

    def test_constants(self, r):
        cfd = CFD(r, ("A",), ("B",), [(("x",), ("y",))])
        assert cfd.constants() == {"x", "y"}

    def test_equality_and_hash(self, r):
        a = CFD(r, ("A",), ("B",), [(("x",), ("y",))])
        b = CFD(r, ("A",), ("B",), [(("x",), ("y",))])
        c = CFD(r, ("A",), ("B",), [(("x",), ("z",))])
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestSemantics:
    """Satisfaction per Section 4, pinned to the paper's examples."""

    def test_standard_fd_violation_needs_two_tuples(self, r, db_schema):
        fd = standard_fd(r, ("A",), ("B",))
        db = DatabaseInstance(db_schema, {"R": [("1", "x", "p")]})
        assert fd.satisfied_by(db)
        db.add("R", ("1", "y", "q"))
        assert not fd.satisfied_by(db)

    def test_single_tuple_violates_constant_cfd(self, r, db_schema):
        # Example 4.1: a single tuple alone may violate a CFD.
        cfd = CFD(r, ("A",), ("B",), [(("k",), ("good",))])
        db = DatabaseInstance(db_schema, {"R": [("k", "bad", "p")]})
        violations = list(cfd.iter_violations(db))
        assert len(violations) == 1
        assert violations[0].kind == "single"

    def test_pattern_scopes_the_fd(self, r, db_schema):
        # The FD applies only to tuples matching tp[X].
        cfd = CFD(r, ("A",), ("B",), [(("k",), (_,))])
        db = DatabaseInstance(
            db_schema, {"R": [("other", "x", "p"), ("other", "y", "q")]}
        )
        assert cfd.satisfied_by(db)  # conflicting pair does not match pattern
        db.add("R", ("k", "x", "p"))
        db.add("R", ("k", "y", "q"))
        assert not cfd.satisfied_by(db)

    def test_pair_violation_kind(self, r, db_schema):
        cfd = CFD(r, ("A",), ("B",), [((_,), (_,))])
        db = DatabaseInstance(db_schema, {"R": [("1", "x", "p"), ("1", "y", "p")]})
        violations = list(cfd.iter_violations(db))
        assert len(violations) == 1
        assert violations[0].kind == "pair"
        assert violations[0].lhs_values == ("1",)
        assert len(violations[0].tuples) == 2

    def test_empty_lhs_constant_cfd(self, r, db_schema):
        cfd = CFD(r, (), ("B",), [((), ("only",))])
        db = DatabaseInstance(db_schema, {"R": [("1", "only", "p")]})
        assert cfd.satisfied_by(db)
        db.add("R", ("2", "nope", "q"))
        assert not cfd.satisfied_by(db)

    def test_multi_row_tableau_all_rows_enforced(self, r, db_schema):
        cfd = CFD(
            r, ("A",), ("B",), [(("1",), ("x",)), (("2",), ("y",))]
        )
        db = DatabaseInstance(db_schema, {"R": [("1", "x", "p"), ("2", "y", "q")]})
        assert cfd.satisfied_by(db)
        db.add("R", ("2", "x", "w"))  # violates second row
        assert not cfd.satisfied_by(db)

    def test_violating_tuples_collects_group(self, r, db_schema):
        cfd = CFD(r, ("A",), ("B",), [((_,), (_,))])
        db = DatabaseInstance(db_schema, {"R": [("1", "x", "p"), ("1", "y", "p")]})
        assert len(cfd.violating_tuples(db)) == 2

    def test_tuple_violates_single(self, r):
        cfd = CFD(r, ("A",), ("B",), [(("k",), ("good",))])
        assert cfd.tuple_violates(Tuple(r, ("k", "bad", "p")))
        assert not cfd.tuple_violates(Tuple(r, ("k", "good", "p")))
        assert not cfd.tuple_violates(Tuple(r, ("other", "bad", "p")))

    def test_accepts_relation_instance_directly(self, r):
        cfd = CFD(r, ("A",), ("B",), [((_,), ("b",))])
        inst = RelationInstance(r, [("1", "b", "c")])
        assert cfd.satisfied_by(inst)

    def test_wrong_relation_rejected(self, r):
        cfd = CFD(r, ("A",), ("B",), [((_,), (_,))])
        other = RelationInstance(RelationSchema("S", ["A", "B", "C"]))
        with pytest.raises(ConstraintError):
            list(cfd.iter_violations(other))


class TestPaperExample41:
    """ϕ3 and tuple t12 (Example 4.1), via the bank fixtures."""

    def test_phi3_violated_by_t12(self, bank):
        phi3 = bank.by_name["phi3"]
        violations = list(phi3.iter_violations(bank.db))
        assert len(violations) == 1
        (violation,) = violations
        assert violation.kind == "single"
        assert violation.tuples[0]["rt"] == "10.5%"
        # The violated row is the (UK, checking) -> 1.5% pattern.
        row = phi3.tableau[violation.pattern_index]
        assert row.lhs_value("ct") == "UK"
        assert row.lhs_value("at") == "checking"

    def test_phi3_satisfied_after_repair(self, bank):
        phi3 = bank.by_name["phi3"]
        assert phi3.satisfied_by(bank.clean_db)

    def test_standard_fds_satisfied_even_on_dirty_data(self, bank):
        # Example 1.2: the dirty instance satisfies fd1-fd3 (and ϕ1, ϕ2).
        assert bank.by_name["phi1"].satisfied_by(bank.db)
        assert bank.by_name["phi2"].satisfied_by(bank.db)
