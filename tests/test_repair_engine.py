"""Tests for the delta-driven repair engine (planner + worklist sources).

Covers the three historical ``repair.py`` bugs (each test here fails on
the pre-engine seed code), the one-invalidation-per-round batching
contract, delta/full equivalence across all five backends, and the
Hypothesis property suite: oracle-verified cleanliness, edit-log replay,
and delta-vs-full final-database agreement.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import connect
from repro.api.backends import MemoryBackend
from repro.cleaning.planner import RepairPlanner
from repro.cleaning.repair import RoundStats, repair, replay_edits
from repro.core.cfd import CFD, standard_fd
from repro.core.cind import CIND
from repro.core.violations import ConstraintSet, check_database
from repro.datasets.bank import bank_constraints, scaled_bank_instance
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _

from tests.strategies import cfds as cfd_strategy
from tests.strategies import cinds as cind_strategy
from tests.strategies import database_schemas, instances

BACKENDS = ("memory", "naive", "sql", "incremental")


def snap(db):
    """Content *and* iteration order of every relation."""
    return {name: list(inst.rows()) for name, inst in db.relations().items()}


def dirty_bank(n=120, error_rate=0.25, seed=17):
    return scaled_bank_instance(n, error_rate=error_rate, seed=seed)


@pytest.fixture()
def kv_tie_db():
    """Two-tuple group with a 1-1 majority tie on the RHS."""
    r = RelationSchema("R", ["ID", "K", "V"])
    schema = DatabaseSchema([r])
    sigma = ConstraintSet(schema, cfds=[standard_fd(r, ("K",), ("V",))])
    db = DatabaseInstance(
        schema, {"R": [("1", "k", "left"), ("2", "k", "right")]}
    )
    return db, sigma


class TestRoundsReporting:
    """Bug 1: ``rounds`` must be the number of rounds that executed."""

    def test_nonpositive_round_cap_reports_zero(self):
        # The seed loop returned rounds=max_rounds (-1) with zero rounds
        # executed.
        db = dirty_bank(50, 0.3, 2)
        sigma = bank_constraints()
        result = repair(db, sigma, max_rounds=-1)
        assert result.rounds == 0
        assert not result.clean
        assert result.cost == 0
        assert result.round_stats == []

    def test_zero_round_cap_reports_zero(self):
        result = repair(dirty_bank(), bank_constraints(), max_rounds=0)
        assert result.rounds == 0 and not result.clean

    def test_fixpoint_before_cap(self):
        # bank repairs in one round; a generous cap must not be reported.
        db = dirty_bank()
        sigma = bank_constraints()
        result = repair(db, sigma, max_rounds=50)
        assert result.clean
        assert result.rounds == len(result.round_stats)
        assert 0 < result.rounds < 50

    def test_cap_reached_reports_cap(self):
        # The self-feeding CIND never converges under the default fill.
        r = RelationSchema("R", ["A", "B"])
        schema = DatabaseSchema([r])
        cind = CIND(r, ("A",), (), r, ("B",), (), [((_,), (_,))], name="loop")
        sigma = ConstraintSet(schema, cinds=[cind])
        db = DatabaseInstance(schema, {"R": [("a0", "b0")]})
        result = repair(db, sigma, cind_policy="insert", max_rounds=4)
        assert result.rounds == 4
        assert not result.clean
        assert result.clean == check_database(result.db, sigma).is_clean


class TestTieBreaking:
    """Bug 2: majority-vote ties are explicit and ``rng`` is honoured."""

    def test_tie_repairs_identically_across_runs(self, kv_tie_db):
        db, sigma = kv_tie_db
        outcomes = {
            frozenset(t["V"] for t in repair(db.copy(), sigma).db["R"])
            for __ in range(5)
        }
        assert len(outcomes) == 1

    def test_default_first_matches_scan_order(self, kv_tie_db):
        db, sigma = kv_tie_db
        result = repair(db, sigma)  # tie_break="first"
        assert {t["V"] for t in result.db["R"]} == {"left"}

    def test_lexicographic_tie_break(self, kv_tie_db):
        db, sigma = kv_tie_db
        result = repair(db, sigma, tie_break="lexicographic")
        # ("left",) < ("right",) under the repr-based key.
        assert {t["V"] for t in result.db["R"]} == {"left"}

    def test_random_tie_break_uses_rng(self, kv_tie_db):
        db, sigma = kv_tie_db
        picks = {
            tuple(
                sorted(
                    t["V"]
                    for t in repair(
                        db.copy(),
                        sigma,
                        tie_break="random",
                        rng=random.Random(seed),
                    ).db["R"]
                )
            )
            for seed in range(12)
        }
        # Across seeds both tied values get picked; per seed it's stable.
        assert len(picks) == 2
        for seed in range(3):
            a = repair(db.copy(), sigma, tie_break="random", rng=random.Random(seed))
            b = repair(db.copy(), sigma, tie_break="random", rng=random.Random(seed))
            assert snap(a.db) == snap(b.db)

    def test_bad_tie_break_rejected(self, kv_tie_db):
        db, sigma = kv_tie_db
        with pytest.raises(ValueError):
            repair(db, sigma, tie_break="wat")

    def test_planner_validates_tie_break(self):
        r = RelationSchema("R", ["A"])
        db = DatabaseInstance(DatabaseSchema([r]))
        with pytest.raises(ValueError):
            RepairPlanner(db, tie_break="nope")


class TestMergeDetection:
    """Bug 3: rewrites whose target already exists are merges."""

    def test_colliding_rewrite_recorded_as_merge(self):
        # (k, bad) rewrites to (k, good), which already exists: under set
        # semantics the group shrinks by one — a merge, not a modify.
        r = RelationSchema("R", ["K", "V"])
        schema = DatabaseSchema([r])
        sigma = ConstraintSet(schema, cfds=[standard_fd(r, ("K",), ("V",))])
        db = DatabaseInstance(schema, {"R": [("k", "good"), ("k", "bad")]})
        result = repair(db, sigma)
        assert result.clean
        assert [e.kind for e in result.edits] == ["merge"]
        assert len(list(result.db["R"])) == 1

    def test_merge_differential_vs_naive_oracle(self):
        r = RelationSchema("R", ["K", "V"])
        schema = DatabaseSchema([r])
        sigma = ConstraintSet(schema, cfds=[standard_fd(r, ("K",), ("V",))])
        db = DatabaseInstance(
            schema,
            {"R": [("k", "x"), ("k", "x2"), ("k", "x3"), ("j", "y")]},
        )
        result = repair(db.copy(), sigma)
        assert result.clean == check_database(result.db, sigma).is_clean
        assert result.clean
        # Replaying the log (merges included) reproduces the final state.
        assert snap(replay_edits(db, result.edits)) == snap(result.db)
        # Majority "x" absorbs the two rewritten tuples: 4 - 2 merges.
        kinds = [e.kind for e in result.edits]
        assert kinds.count("merge") == 2
        assert len(list(result.db["R"])) == 2

    def test_merge_cost_counts_what_happened(self):
        r = RelationSchema("R", ["K", "V"])
        schema = DatabaseSchema([r])
        sigma = ConstraintSet(schema, cfds=[standard_fd(r, ("K",), ("V",))])
        db = DatabaseInstance(schema, {"R": [("k", "good"), ("k", "bad")]})
        result = repair(db, sigma)
        assert result.cost == 1
        assert result.edits_by_kind() == {"merge": 1}


class TestBatching:
    def test_one_invalidation_per_round(self, bank, monkeypatch):
        # bank has two violations (phi3 CFD + psi6 CIND); the seed loop
        # paid one apply each. The engine batches: one invalidation per
        # executed round, none from single-row DML.
        calls = []
        original = MemoryBackend._invalidate

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(MemoryBackend, "_invalidate", counting)
        result = repair(bank.db, bank.constraints, backend="memory")
        assert result.clean
        # Both violations were on the round-1 worklist (the CFD rewrite
        # happens to create the CIND's witness, so one edit fixes both).
        assert result.round_stats[0].worklist_size == 2
        assert len(calls) == result.rounds

    def test_round_stats_observability(self):
        db = dirty_bank(200, 0.3, 5)
        sigma = bank_constraints()
        result = repair(db, sigma, backend="incremental", mode="delta")
        assert result.backend == "incremental" and result.mode == "delta"
        assert len(result.round_stats) == result.rounds
        total_edits = 0
        for stats in result.round_stats:
            assert isinstance(stats, RoundStats)
            assert stats.worklist_size == stats.cfd_items + stats.cind_items
            assert stats.batch_deletes + stats.batch_inserts > 0
            total_edits += sum(stats.edits.values())
            # Delta sizes are measured on the checker-fed path.
            assert stats.delta_removed >= 0 and stats.delta_added >= 0
        assert total_edits == len(result.edits)

    def test_auto_mode_resolution(self):
        db = dirty_bank(60, 0.2, 3)
        sigma = bank_constraints()
        assert repair(db.copy(), sigma, backend="memory").mode == "full"
        for backend in ("naive", "sql", "incremental"):
            assert repair(db.copy(), sigma, backend=backend).mode == "delta"

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            repair(dirty_bank(), bank_constraints(), mode="wat")


class TestDeltaFullEquivalence:
    def test_bank_identical_across_backends_and_modes(self):
        db = dirty_bank(300, 0.25, 9)
        sigma = bank_constraints()
        reference = repair(db.copy(), sigma, backend="memory", mode="full")
        assert reference.clean
        ref_snap = snap(reference.db)
        ref_edits = [repr(e) for e in reference.edits]
        for backend in BACKENDS:
            for mode in ("full", "delta"):
                result = repair(db.copy(), sigma, backend=backend, mode=mode)
                assert snap(result.db) == ref_snap, (backend, mode)
                assert [repr(e) for e in result.edits] == ref_edits
                assert result.rounds == reference.rounds

    def test_sqlfile_identical(self, tmp_path):
        from repro.sql.loader import create_database_file, read_database_file

        db = dirty_bank(150, 0.25, 4)
        sigma = bank_constraints()
        reference = repair(db.copy(), sigma)
        for mode in ("full", "delta"):
            result = repair(db.copy(), sigma, backend="sqlfile", mode=mode)
            assert snap(result.db) == snap(reference.db), mode
        # Path input: the source file is loaded, never mutated.
        path = tmp_path / "dirty.sqlite"
        create_database_file(path, db)
        result = repair(path, sigma, backend="sqlfile", mode="delta")
        assert snap(result.db) == snap(reference.db)
        assert snap(read_database_file(path, sigma.schema)) == snap(db)

    def test_multi_round_cind_chain(self):
        # A CIND witness insertion violates a CFD on the RHS relation, so
        # round 2 must see (only) the delta the batch introduced.
        s = RelationSchema("S", ["K", "V"])
        t = RelationSchema("T", ["K", "V"])
        schema = DatabaseSchema([s, t])
        cind = CIND(s, ("K",), (), t, ("K",), (), [((_,), (_,))], name="s_in_t")
        cfd = CFD(t, ("K",), ("V",), [(("k1",), ("right",))], name="t_kv")
        sigma = ConstraintSet(schema, cfds=[cfd], cinds=[cind])
        db = DatabaseInstance(
            schema, {"S": [("k1", "x"), ("k2", "y")], "T": [("k2", "ok")]}
        )
        reference = repair(db.copy(), sigma, backend="memory", mode="full")
        assert reference.clean and reference.rounds == 2
        for backend in BACKENDS:
            result = repair(db.copy(), sigma, backend=backend, mode="delta")
            assert snap(result.db) == snap(reference.db), backend
            assert result.rounds == 2

    def test_session_repair_routes_backend(self):
        db = dirty_bank(80, 0.25, 6)
        sigma = bank_constraints()
        with connect(db, sigma, backend="incremental") as session:
            result = session.repair()
        assert result.backend == "incremental" and result.mode == "delta"
        assert result.clean
        assert snap(result.db) == snap(repair(db.copy(), sigma).db)
        # The session's own database is untouched.
        assert snap(db) == snap(dirty_bank(80, 0.25, 6))


def _draw_sigma_and_db(data):
    schema = data.draw(database_schemas(max_relations=2))
    rels = list(schema)
    sigma = ConstraintSet(schema)
    for __ in range(data.draw(st.integers(min_value=0, max_value=2))):
        sigma.add_cfd(data.draw(cfd_strategy(data.draw(st.sampled_from(rels)))))
    for __ in range(data.draw(st.integers(min_value=0, max_value=2))):
        src = data.draw(st.sampled_from(rels))
        dst = data.draw(st.sampled_from(rels))
        sigma.add_cind(data.draw(cind_strategy(src, dst, max_rows=2)))
    db = data.draw(instances(schema, max_tuples=8))
    return sigma, db


class TestRepairProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    @given(data=st.data())
    def test_clean_flag_matches_naive_oracle(self, data):
        sigma, db = _draw_sigma_and_db(data)
        result = repair(db, sigma, max_rounds=6)
        assert result.clean == check_database(result.db, sigma).is_clean

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    @given(data=st.data())
    def test_edit_replay_reproduces_result(self, data):
        sigma, db = _draw_sigma_and_db(data)
        result = repair(db.copy(), sigma, max_rounds=6)
        assert snap(replay_edits(db, result.edits)) == snap(result.db)

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    @given(data=st.data())
    def test_delta_and_full_agree_on_all_backends(self, data):
        sigma, db = _draw_sigma_and_db(data)
        reference = repair(db.copy(), sigma, max_rounds=5, mode="full")
        ref_snap = snap(reference.db)
        for backend in BACKENDS:
            result = repair(
                db.copy(), sigma, max_rounds=5, backend=backend, mode="delta"
            )
            assert snap(result.db) == ref_snap, backend
            assert result.clean == reference.clean
