"""Cross-cutting hypothesis properties tying several modules together.

These complement the per-module property tests with invariants that span
subsystem boundaries:

* heuristic consistency answers are *sound* on arbitrary (random, possibly
  inconsistent) constraint sets — a ``True`` always carries a verifying
  witness;
* the SQL and in-memory engines agree on whole constraint sets, not just
  single dependencies;
* source-side CIND propagation through views is sound on random data;
* the Theorem 3.2 witness keeps verifying when CINDs are first normalised.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consistency.checking import checking
from repro.consistency.random_checking import random_checking
from repro.core.consistency import build_cind_witness
from repro.core.normalize import normalize_cinds
from repro.core.violations import ConstraintSet, check_database
from repro.generator.constraint_gen import random_constraints
from repro.generator.schema_gen import random_schema
from repro.sql.violations import sql_check_database
from repro.views.spc import SPView, materialize, propagate_cinds

from tests.strategies import cinds as cind_strategy
from tests.strategies import database_schemas, instances


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=5, max_value=60),
)
def test_heuristic_true_answers_always_verify(seed, n):
    """On arbitrary random Σ: True ⇒ a witness satisfying Σ exists."""
    schema = random_schema(n_relations=4, seed=seed % 50, max_arity=6,
                           finite_ratio=0.25)
    sigma = random_constraints(schema, n, rng=random.Random(seed))
    for decide in (checking, random_checking):
        decision = decide(schema, sigma, k=5, rng=random.Random(seed))
        if decision.consistent:
            assert decision.witness is not None
            assert not decision.witness.is_empty()
            assert sigma.satisfied_by(decision.witness)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
@given(data=st.data())
def test_sql_and_memory_agree_on_constraint_sets(data):
    schema = data.draw(database_schemas(max_relations=2))
    rels = list(schema)
    sigma = ConstraintSet(schema)
    n = data.draw(st.integers(min_value=1, max_value=4))
    for __ in range(n):
        src = data.draw(st.sampled_from(rels))
        dst = data.draw(st.sampled_from(rels))
        sigma.add_cind(data.draw(cind_strategy(src, dst)))
    db = data.draw(instances(schema, max_tuples=8))
    memory = check_database(db, sigma)
    sql = sql_check_database(db, sigma)
    assert bool(sql) == (not memory.is_clean)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_view_cind_propagation_sound(data):
    """db |= ψ implies materialised view satisfies every propagated CIND."""
    schema = data.draw(database_schemas(max_relations=2))
    rels = list(schema)
    base = rels[0]
    target = rels[-1]
    cind = data.draw(cind_strategy(base, target, max_rows=2))
    db = data.draw(instances(schema, max_tuples=8))
    from hypothesis import assume

    assume(cind.satisfied_by(db))
    keep_size = data.draw(st.integers(min_value=1, max_value=base.arity))
    keep = base.attribute_names[:keep_size]
    view = SPView("v", base, keep, {})
    for propagated in propagate_cinds(view, [cind]):
        extended = materialize(db, [view])
        assert propagated.satisfied_by(extended)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_theorem_32_witness_stable_under_normalization(seed):
    schema = random_schema(n_relations=3, seed=seed % 40, max_arity=5,
                           finite_ratio=0.2)
    sigma = random_constraints(
        schema, 10, rng=random.Random(seed)
    )
    cinds = list(sigma.cinds)
    if not cinds:
        return
    witness = build_cind_witness(schema, cinds, max_tuples_per_relation=500_000)
    for cind in cinds:
        assert cind.satisfied_by(witness)
    for cind in normalize_cinds(cinds):
        assert cind.satisfied_by(witness)
