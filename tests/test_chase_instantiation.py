"""Tests for the smart finite-domain instantiation in the chase engine.

Covers `choose_finite_values` (the CFD_Checking-style per-tuple search),
the conflict-avoiding pool-variable selection at IND insertions, and the
lazy-instantiation loop in RandomChecking that together reproduce the
paper's Fig. 11(a) accuracy.
"""

import random

import pytest

from repro.chase.engine import ChaseEngine, ChaseStatus
from repro.consistency.random_checking import random_checking
from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.violations import ConstraintSet
from repro.relational.domains import FiniteDomain
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD as _
from repro.relational.values import Variable


@pytest.fixture
def finite_schema():
    dom = FiniteDomain("d3c", ("p", "q", "r"))
    rel = RelationSchema("R", [Attribute("A", dom), Attribute("B"), Attribute("C", dom)])
    return DatabaseSchema([rel]), rel, dom


class TestChooseFiniteValues:
    def test_respects_forcing_cfds(self, finite_schema):
        schema, rel, dom = finite_schema
        # B = 'go' forces A = 'q'.
        phi = CFD(rel, ("B",), ("A",), [(("go",), ("q",))], name="force")
        engine = ChaseEngine(schema, cfds=[phi], rng=random.Random(0))
        values = {"A": Variable("R.A", 0), "B": "go", "C": Variable("R.C", 0)}
        chosen = engine.choose_finite_values(rel, values)
        assert chosen is not None
        assert chosen["A"] == "q"
        assert chosen["C"] in dom.values  # free: any domain value

    def test_avoids_dead_values(self, finite_schema):
        schema, rel, dom = finite_schema
        # A = 'p' and A = 'q' both lead to a B conflict; only 'r' works.
        cfds = [
            CFD(rel, ("A",), ("B",), [(("p",), ("x1",))]),
            CFD(rel, ("A",), ("B",), [(("p",), ("x2",))]),
            CFD(rel, ("A",), ("B",), [(("q",), ("x1",))]),
            CFD(rel, ("A",), ("B",), [(("q",), ("x2",))]),
        ]
        engine = ChaseEngine(schema, cfds=cfds, rng=random.Random(0))
        values = {"A": Variable("R.A", 0), "B": Variable("R.B", 0),
                  "C": Variable("R.C", 0)}
        chosen = engine.choose_finite_values(rel, values)
        assert chosen is not None
        assert chosen["A"] == "r"

    def test_none_when_every_value_fails(self, finite_schema):
        schema, rel, dom = finite_schema
        cfds = []
        for value in dom.values:
            cfds.append(CFD(rel, ("A",), ("B",), [((value,), ("x1",))]))
            cfds.append(CFD(rel, ("A",), ("B",), [((value,), ("x2",))]))
        engine = ChaseEngine(schema, cfds=cfds, rng=random.Random(0))
        values = {"A": Variable("R.A", 0), "B": Variable("R.B", 0),
                  "C": Variable("R.C", 0)}
        assert engine.choose_finite_values(rel, values) is None

    def test_fixed_constant_conflict_detected(self, finite_schema):
        schema, rel, dom = finite_schema
        phi = CFD(rel, ("B",), ("A",), [(("go",), ("q",))])
        engine = ChaseEngine(schema, cfds=[phi], rng=random.Random(0))
        # A is already fixed to a conflicting constant: no assignment helps.
        values = {"A": "p", "B": "go", "C": Variable("R.C", 0)}
        assert engine.choose_finite_values(rel, values) is None

    def test_no_finite_gaps_returns_empty(self, finite_schema):
        schema, rel, dom = finite_schema
        engine = ChaseEngine(schema, rng=random.Random(0))
        values = {"A": "p", "B": Variable("R.B", 0), "C": "q"}
        assert engine.choose_finite_values(rel, values) == {}


class TestConflictAvoidingInsertion:
    def test_distinct_yp_constants_coexist(self):
        """Two CINDs force tuples into S with different D constants; the
        inserted tuples must not collide into one FD group."""
        r = RelationSchema("R", ["A"])
        s = RelationSchema("S", ["C", "D", "E"])
        schema = DatabaseSchema([r, s])
        sigma = ConstraintSet(
            schema,
            cfds=[CFD(s, ("E",), ("D",), [((_,), (_,))], name="fd")],
            cinds=[
                CIND(r, (), ("A",), s, (), ("D",), [(("k",), ("d1",))], name="c1"),
                CIND(r, (), ("A",), s, (), ("D",), [(("k",), ("d2",))], name="c2"),
            ],
        )
        # With a single pool variable per column the two insertions would
        # share E and clash on D; the engine must still find a defined chase
        # (var_pool_size=2 gives it room to separate the groups).
        engine = ChaseEngine(
            schema, constraints=sigma, var_pool_size=2, rng=random.Random(3)
        )
        db = DatabaseInstance(schema, {"R": [("k",)]})
        result = engine.chase(db)
        assert result.status is ChaseStatus.DEFINED
        assert len(result.db["S"]) == 2


class TestLazyInstantiationEndToEnd:
    def test_late_forced_value_is_respected(self):
        """The regression that motivated lazy instantiation: a finite value
        whose constraining premise only matches after later unification."""
        dom = FiniteDomain("d2z", ("good", "bad"))
        r = RelationSchema("R", ["A"])
        s = RelationSchema("S", ["C", Attribute("H", dom)])
        schema = DatabaseSchema([r, s])
        sigma = ConstraintSet(
            schema,
            cfds=[
                # Any S tuple with C = 'k' must have H = 'good'.
                CFD(s, ("C",), ("H",), [(("k",), ("good",))], name="force"),
            ],
            cinds=[
                # R's tuple forces an S tuple with C = value of A.
                CIND(r, ("A",), (), s, ("C",), (), [((_,), (_,))], name="push"),
                # ... and every R tuple must carry A = 'k'.
            ],
        )
        sigma.add_cfd(CFD(r, (), ("A",), [((), ("k",))], name="pin"))
        decision = random_checking(schema, sigma, k=5, rng=random.Random(0))
        assert decision.consistent
        (s_tuple,) = decision.witness["S"].tuples
        assert s_tuple["H"] == "good"

    def test_plain_variant_still_sound(self):
        """improved=False (Fig. 5 verbatim) may fail more often but must
        never return an unverified True."""
        dom = FiniteDomain("d2y", ("x", "y"))
        rel = RelationSchema("R", [Attribute("A", dom), "B"])
        schema = DatabaseSchema([rel])
        sigma = ConstraintSet(
            schema,
            cfds=[CFD(rel, ("A",), ("B",), [(("x",), ("only",))], name="c")],
        )
        for seed in range(5):
            decision = random_checking(
                schema, sigma, k=10, improved=False, rng=random.Random(seed)
            )
            if decision.consistent:
                assert sigma.satisfied_by(decision.witness)
