"""Unit tests for the serving layer (repro.serve) and its contracts.

The cross-backend equivalence gates live in the
:class:`tests.conformance.ServiceContract` registrations
(``test_conformance.py``); this file covers the mechanisms those gates
rest on: the read-biased RW lock, LRU registry, reader pool, the delta
diff/replay algebra, the bounded-queue slow-consumer policy, the
batch-DML invalidation-count contract, the idempotent close path, and
the NDJSON TCP protocol.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.errors import (
    ReproError,
    ServeError,
    ServiceOverloadedError,
    SessionClosedError,
    UnknownTenantError,
)
from repro.serve import (
    DetectionServer,
    DetectionService,
    ReaderPool,
    ReadWriteLock,
    SessionRegistry,
    Subscription,
    TenantHandle,
    ViolationDelta,
    ViolationFeed,
    diff_records,
    replay,
)
from repro.serve.feed import DeltaSource
from repro.serve.protocol import ProtocolError
from repro.sql.loader import create_database_file

DIRTY_ROW = {"ab": "GLA", "ct": "UK", "at": "checking", "rt": "9.9%"}


def run(coro):
    return asyncio.run(coro)


# -- ReadWriteLock ----------------------------------------------------------


class TestReadWriteLock:
    def test_readers_are_concurrent(self):
        async def scenario():
            lock = ReadWriteLock()
            peak = 0

            async def reader():
                nonlocal peak
                async with lock.reading():
                    peak = max(peak, lock.readers)
                    await asyncio.sleep(0)
                    peak = max(peak, lock.readers)

            await asyncio.gather(*(reader() for __ in range(5)))
            return peak

        assert run(scenario()) > 1

    def test_writer_excludes_everyone(self):
        async def scenario():
            lock = ReadWriteLock()
            events = []

            async def writer(tag):
                async with lock.writing():
                    events.append(("start", tag))
                    await asyncio.sleep(0.01)
                    events.append(("end", tag))

            async def reader():
                async with lock.reading():
                    events.append(("read", lock.write_held))

            await asyncio.gather(writer("a"), writer("b"), reader())
            return events

        events = run(scenario())
        # Writer sections never interleave ...
        starts = [i for i, (kind, __) in enumerate(events) if kind == "start"]
        for i in starts:
            assert events[i + 1][0] == "end"
        # ... and no reader ever observed the write flag held.
        assert all(not held for kind, held in events if kind == "read")

    def test_read_biased_admission(self):
        """A reader arriving while a writer *waits* (but does not hold)
        still gets in — the BRAVO-style read preference."""

        async def scenario():
            lock = ReadWriteLock()
            order = []

            async def long_reader(release: asyncio.Event):
                async with lock.reading():
                    order.append("r1-in")
                    await release.wait()
                order.append("r1-out")

            async def writer():
                async with lock.writing():
                    order.append("w-in")

            async def late_reader():
                async with lock.reading():
                    order.append("r2-in")

            release = asyncio.Event()
            first = asyncio.create_task(long_reader(release))
            await asyncio.sleep(0)            # r1 holds the read side
            blocked = asyncio.create_task(writer())
            await asyncio.sleep(0)            # writer now waits on r1
            late = asyncio.create_task(late_reader())
            await asyncio.sleep(0.01)
            assert "r2-in" in order           # admitted past the waiting writer
            assert "w-in" not in order
            release.set()
            await asyncio.gather(first, blocked, late)
            return order

        order = run(scenario())
        assert order.index("r2-in") < order.index("w-in")

    def test_uncontended_reads_take_the_fast_path(self):
        """With no writer in sight, every read is a slot claim — no
        Condition, no slow counter (the BRAVO fast path)."""

        async def scenario():
            lock = ReadWriteLock()
            for __ in range(5):
                async with lock.reading():
                    assert lock.readers == 1
            return lock.fast_reads, lock.slow_reads, lock.revocations

        assert run(scenario()) == (5, 0, 0)

    def test_writer_revokes_bias_and_restores_it(self):
        """A writer flips ``read_biased`` off for its whole critical
        section (readers behind it go slow), then re-arms it on release
        — after which reads are fast again."""

        async def scenario():
            lock = ReadWriteLock()
            observed = []

            async def writer():
                async with lock.writing():
                    observed.append(lock.read_biased)
                    await asyncio.sleep(0.01)

            async def reader(tag):
                async with lock.reading():
                    observed.append(tag)

            assert lock.read_biased
            w = asyncio.create_task(writer())
            await asyncio.sleep(0)            # writer holds the lock
            await asyncio.gather(reader("during"), w)
            slow_after_revoke = lock.slow_reads
            assert lock.read_biased           # re-armed on release
            await reader("after")
            return observed, slow_after_revoke, lock.fast_reads

        observed, slow, fast = run(scenario())
        assert observed == [False, "during", "after"]
        assert slow == 1                      # the blocked reader went slow
        assert fast == 1                      # the post-release reader is fast
        # and the writer paid exactly one revocation
        # (fast/slow split is observable, so assert it stays stable)

    def test_bias_stays_revoked_while_writers_queue(self):
        """Back-to-back writers: the first release must not re-arm the
        fast path while a second writer is already waiting, or that
        writer's revocation barrier would race fresh fast readers."""

        async def scenario():
            lock = ReadWriteLock()
            biases = []

            async def writer():
                async with lock.writing():
                    biases.append(lock.read_biased)
                    await asyncio.sleep(0.005)

            await asyncio.gather(writer(), writer())
            return biases, lock.read_biased, lock.revocations

        biases, final, revocations = run(scenario())
        assert biases == [False, False]
        assert final is True
        assert revocations == 2

    def test_fast_and_slow_readers_agree_on_exclusion(self):
        """Cross-validation: force a slot collision so one reader goes
        slow while another is fast — both count in ``readers`` and both
        hold off a writer until they drain."""

        async def scenario():
            lock = ReadWriteLock()
            lock._slots = [None]              # 1 slot → second reader collides
            release = asyncio.Event()
            order = []

            async def reader(tag):
                async with lock.reading():
                    order.append(tag)
                    await release.wait()

            async def writer():
                async with lock.writing():
                    order.append("w")

            r1 = asyncio.create_task(reader("fast"))
            await asyncio.sleep(0)
            r2 = asyncio.create_task(reader("slow"))
            await asyncio.sleep(0)
            assert lock.fast_reads == 1 and lock.slow_reads == 1
            assert lock.readers == 2
            w = asyncio.create_task(writer())
            await asyncio.sleep(0.005)
            assert order == ["fast", "slow"]  # writer still barred
            release.set()
            await asyncio.gather(r1, r2, w)
            return order

        assert run(scenario()) == ["fast", "slow", "w"]


# -- SessionRegistry and ReaderPool -----------------------------------------


class _NullSource(DeltaSource):
    def commit(self, inserts, deletes):
        return ()

    def baseline(self):
        return ()


def _handle(name, bank):
    session = api.connect(bank.clean_db.copy(), bank.constraints)
    return TenantHandle(
        name=name, session=session, feed=ViolationFeed(name, _NullSource())
    )


class TestSessionRegistry:
    def test_lru_eviction_closes_sessions(self, bank):
        registry = SessionRegistry(capacity=2)
        handles = [_handle(n, bank) for n in ("a", "b", "c")]
        registry.register(handles[0])
        registry.register(handles[1])
        registry.get("a")                      # refresh: b becomes LRU
        registry.register(handles[2])          # evicts b
        assert registry.tenants() == ["a", "c"]
        assert registry.evictions == 1
        assert handles[1].session.closed
        with pytest.raises(SessionClosedError):
            handles[1].session.check()

    def test_duplicate_and_unknown(self, bank):
        registry = SessionRegistry(capacity=2)
        registry.register(_handle("a", bank))
        with pytest.raises(ServeError):
            registry.register(_handle("a", bank))
        with pytest.raises(UnknownTenantError):
            registry.get("nope")
        assert registry.evict("nope") is False
        registry.close()
        assert len(registry) == 0

    def test_capacity_validation(self):
        with pytest.raises(ServeError):
            SessionRegistry(capacity=0)


class TestReaderPool:
    def test_backpressure_and_reuse(self, bank, tmp_path):
        path = create_database_file(tmp_path / "pool.db", bank.clean_db)
        options = api.ExecutionOptions(readonly=True)

        def factory():
            return api.connect(
                str(path), bank.constraints, backend="sqlfile", options=options
            )

        async def scenario():
            pool = ReaderPool(factory, size=2)
            assert len(pool) == 2
            order = []
            async with pool.acquire() as s1:
                async with pool.acquire() as s2:
                    assert s1 is not s2

                    async def third():
                        async with pool.acquire() as s3:
                            order.append(("acquired", s3 in (s1, s2)))

                    waiter = asyncio.create_task(third())
                    await asyncio.sleep(0.01)
                    assert order == []       # both busy: third() waits
                # s2 released -> third() proceeds with a *reused* session
                await waiter
            assert order == [("acquired", True)]
            pool.close()

        run(scenario())

    def test_size_validation(self):
        with pytest.raises(ServeError):
            ReaderPool(lambda: None, size=0)


# -- delta algebra -----------------------------------------------------------

_RECORD = st.tuples(
    st.sampled_from(("cfd", "cind")), st.integers(0, 5), st.integers(0, 5)
)
_RECORDS = st.lists(_RECORD, max_size=12).map(tuple)


class TestDeltaAlgebra:
    @settings(max_examples=200, deadline=None)
    @given(old=_RECORDS, new=_RECORDS)
    def test_diff_replay_roundtrip(self, old, new):
        removed, added = diff_records(old, new)
        delta = ViolationDelta(seq=1, removed=removed, added=added)
        assert replay(old, delta) == new

    @settings(max_examples=100, deadline=None)
    @given(old=_RECORDS, new=_RECORDS)
    def test_diff_never_ships_unchanged_suffix(self, old, new):
        """Records common to both sequences are not re-shipped: the wire
        cost is bounded by the number of *changed* positions."""
        removed, added = diff_records(old, new)
        assert len(removed) <= len(old)
        assert len(added) <= len(new)
        if old == new:
            assert removed == () and added == ()

    def test_replay_is_unambiguous_under_duplicate_records(self):
        """Removals are position-tagged: dropping the *last* of two equal
        records replays exactly, not to a reordered report."""
        a, b = ("cfd", 0, 0), ("cind", 0, 0)
        removed, added = diff_records((a, b, a), (a, b))
        delta = ViolationDelta(seq=1, removed=removed, added=added)
        assert replay((a, b, a), delta) == (a, b)

    def test_replay_rejects_wrong_baseline(self):
        delta = ViolationDelta(seq=3, removed=((0, ("cfd", 1, 1)),), added=())
        with pytest.raises(ServeError):
            replay((("cind", 0, 0),), delta)
        with pytest.raises(ServeError):
            replay((), delta)                 # position out of range


# -- feed: bounded queues and the slow-consumer policy -----------------------


class TestViolationFeed:
    def test_slow_consumer_evicted(self):
        async def scenario():
            feed = ViolationFeed("t", _NullSource())
            slow = feed.subscribe(maxsize=1)
            fast = feed.subscribe(maxsize=8)
            d1 = ViolationDelta(seq=1, removed=(), added=())
            d2 = ViolationDelta(seq=2, removed=(), added=())
            feed.publish(d1)
            feed.publish(d2)                  # slow queue full -> evicted
            assert feed.evicted == 1
            assert slow.reason == "lagging"
            assert fast.reason is None
            # The fast consumer still sees everything, in order.
            assert (await fast.__anext__()).seq == 1
            assert (await fast.__anext__()).seq == 2
            # The evicted one stops immediately: partial delivery is void,
            # so the close sentinel displaces anything still queued.
            with pytest.raises(StopAsyncIteration):
                await slow.__anext__()

        run(scenario())

    def test_close_terminates_subscribers(self):
        async def scenario():
            feed = ViolationFeed("t", _NullSource())
            sub = feed.subscribe()
            feed.close()
            assert sub.reason == "closed"
            with pytest.raises(StopAsyncIteration):
                await sub.__anext__()
            with pytest.raises(ServeError):
                feed.subscribe()
            feed.close()                      # idempotent

        run(scenario())

    def test_unsubscribe_stops_delivery(self):
        async def scenario():
            feed = ViolationFeed("t", _NullSource())
            sub = feed.subscribe()
            feed.unsubscribe(sub)
            feed.publish(ViolationDelta(seq=1, removed=(), added=()))
            with pytest.raises(StopAsyncIteration):
                await sub.__anext__()
            assert feed.subscriber_count == 0

        run(scenario())

    def test_every_commit_yields_a_delta(self, bank):
        """Empty deltas are still published — seq continuity is how
        subscribers prove they missed nothing."""

        async def scenario():
            async with DetectionService() as service:
                await service.create_tenant(
                    "t", bank.clean_db.copy(), bank.constraints
                )
                sub = await service.subscribe("t")
                # A no-op batch (delete of an absent row) still commits.
                __, delta = await service.apply(
                    "t", deletes=[("interest", dict(DIRTY_ROW))]
                )
                assert delta.seq == 1 and delta.empty
                got = await sub.__anext__()
                assert got.seq == 1 and got.empty

        run(scenario())


# -- batch DML: the one-invalidation contract --------------------------------


class TestBatchInvalidation:
    N = 50

    def _rows(self):
        return [
            {"ab": f"B{i}", "ct": "US", "at": "saving", "rt": f"{i}%"}
            for i in range(self.N)
        ]

    @pytest.mark.parametrize("backend", ["memory", "naive", "sql"])
    def test_one_invalidation_per_batch(self, bank, backend):
        session = api.connect(
            bank.clean_db.copy(), bank.constraints, backend=backend
        )
        calls = []
        original = session.backend._invalidate

        def counting_invalidate():
            calls.append(1)
            original()

        session.backend._invalidate = counting_invalidate

        rows = self._rows()
        result = session.apply(
            inserts=[("interest", dict(r)) for r in rows]
        )
        assert result.inserted == self.N
        assert len(calls) == 1, (
            f"{backend}: a {self.N}-row batch must invalidate once, "
            f"got {len(calls)}"
        )
        # The single-row path pays one invalidation per row — that gap is
        # the point of apply().
        calls.clear()
        for i, r in enumerate(rows):
            session.insert("interest", {**r, "ab": f"C{i}"})
        assert len(calls) == self.N
        # An all-no-op batch invalidates zero times.
        calls.clear()
        result = session.apply(inserts=[("interest", dict(rows[0]))])
        assert result.inserted == 0 and calls == []
        session.close()

    def test_sqlfile_one_transaction_per_batch(self, bank, tmp_path):
        path = create_database_file(tmp_path / "batch.db", bank.clean_db)
        session = api.connect(str(path), bank.constraints, backend="sqlfile")
        statements = []
        session.backend.conn.set_trace_callback(statements.append)
        rows = self._rows()
        result = session.apply(
            inserts=[("interest", dict(r)) for r in rows],
            deletes=[("interest", dict(DIRTY_ROW))],  # absent: no-op
        )
        assert result.inserted == self.N and result.deleted == 0
        begins = [s for s in statements if s.startswith("BEGIN")]
        commits = [s for s in statements if s.startswith("COMMIT")]
        assert len(begins) == 1 and len(commits) == 1
        # Report correctness after the batch: matches a fresh session.
        warm = session.check()
        fresh = api.connect(str(path), bank.constraints, backend="sqlfile")
        from tests.conformance import assert_reports_bit_identical

        assert_reports_bit_identical(warm, fresh.check())
        fresh.close()
        session.close()

    def test_incremental_batch_updates_live_state(self, bank):
        session = api.connect(
            bank.clean_db.copy(), bank.constraints, backend="incremental"
        )
        assert session.is_clean()
        result = session.apply(inserts=[("interest", dict(DIRTY_ROW))])
        assert result.inserted == 1
        assert not session.is_clean()          # O(1) off live counters
        result = session.apply(deletes=[("interest", dict(DIRTY_ROW))])
        assert result.deleted == 1
        assert session.is_clean()
        session.close()

    def test_apply_deletes_before_inserts(self, bank):
        """A row both deleted and re-inserted in one batch ends present
        (deletes run first — the documented order)."""
        session = api.connect(bank.db.copy(), bank.constraints)
        row = dict(DIRTY_ROW)
        session.insert("interest", dict(row))
        result = session.apply(
            inserts=[("interest", dict(row))], deletes=[("interest", dict(row))]
        )
        assert result.inserted == 1 and result.deleted == 1
        assert {tuple(row.values())} <= {
            t.values for t in session.db["interest"]
        }
        session.close()


# -- Session close path ------------------------------------------------------


class TestSessionClose:
    def test_close_is_idempotent_and_guards_all_calls(self, bank):
        session = api.connect(bank.db.copy(), bank.constraints)
        session.close()
        session.close()                        # second close: no-op
        assert session.closed
        for call in (
            session.check,
            session.count,
            session.is_clean,
            session.stream,
            lambda: session.insert("interest", dict(DIRTY_ROW)),
            lambda: session.delete(
                "interest",
                next(iter(bank.db["interest"])),
            ),
            lambda: session.apply(inserts=[("interest", dict(DIRTY_ROW))]),
        ):
            with pytest.raises(SessionClosedError):
                call()

    def test_session_closed_error_is_repro_error(self):
        assert issubclass(SessionClosedError, ReproError)
        assert issubclass(UnknownTenantError, ServeError)
        assert issubclass(ServeError, ReproError)

    def test_context_manager_closes(self, bank):
        with api.connect(bank.db.copy(), bank.constraints) as session:
            session.check()
        assert session.closed
        with pytest.raises(SessionClosedError):
            session.count()


# -- the NDJSON TCP protocol -------------------------------------------------


@pytest.fixture
def bank_rows(bank):
    return {
        name: [list(t.values) for t in bank.db[name]]
        for name in bank.db.schema.relation_names
    }


async def _rpc(reader, writer, request):
    writer.write(json.dumps(request).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


class TestProtocol:
    def _server(self, bank):
        return DetectionServer(
            DetectionService(capacity=8),
            bank.db.schema,
            bank.constraints,
            port=0,
        )

    def test_request_response_surface(self, bank, bank_rows):
        async def scenario():
            server = await self._server(bank).start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                assert (await _rpc(reader, writer, {"op": "ping"})) == {
                    "ok": True,
                    "result": "pong",
                }
                created = await _rpc(
                    reader,
                    writer,
                    {"op": "create", "tenant": "w", "rows": bank_rows},
                )
                assert created["result"]["backend"] == "memory"
                report = await _rpc(
                    reader, writer, {"op": "check", "tenant": "w"}
                )
                assert report["result"]["total"] == 2  # t10 + t12
                applied = await _rpc(
                    reader,
                    writer,
                    {
                        "op": "apply",
                        "tenant": "w",
                        "inserts": [
                            ["interest", ["GLA", "UK", "checking", "9.9%"]]
                        ],
                    },
                )
                assert applied["result"]["inserted"] == 1
                assert applied["result"]["delta"]["seq"] == 1
                count = await _rpc(
                    reader, writer, {"op": "count", "tenant": "w"}
                )
                assert count["result"]["total"] > 2
                clean = await _rpc(
                    reader, writer, {"op": "is_clean", "tenant": "w"}
                )
                assert clean["result"] is False
                tenants = await _rpc(reader, writer, {"op": "tenants"})
                assert tenants["result"] == ["w"]
                evicted = await _rpc(
                    reader, writer, {"op": "evict", "tenant": "w"}
                )
                assert evicted["result"] is True
            finally:
                writer.close()
                await server.stop()

        run(scenario())

    def test_subscribe_streams_deltas_and_close(self, bank, bank_rows):
        async def scenario():
            server = await self._server(bank).start()
            host, port = server.address
            r1, w1 = await asyncio.open_connection(host, port)
            await _rpc(r1, w1, {"op": "create", "tenant": "w", "rows": bank_rows})
            r2, w2 = await asyncio.open_connection(host, port)
            baseline = await _rpc(r2, w2, {"op": "subscribe", "tenant": "w"})
            assert baseline["ok"] and baseline["result"]["seq"] == 0
            applied = await _rpc(
                r1,
                w1,
                {
                    "op": "apply",
                    "tenant": "w",
                    "inserts": [["interest", ["GLA", "UK", "checking", "9.9%"]]],
                },
            )
            event = json.loads(await r2.readline())
            assert event["event"] == "delta" and event["seq"] == 1
            # Wire deltas equal in-process deltas, field for field.
            assert event["removed"] == applied["result"]["delta"]["removed"]
            assert event["added"] == applied["result"]["delta"]["added"]
            await _rpc(r1, w1, {"op": "evict", "tenant": "w"})
            closed = json.loads(await r2.readline())
            assert closed == {"event": "closed", "reason": "closed"}
            w1.close()
            w2.close()
            await server.stop()

        run(scenario())

    def test_error_envelopes(self, bank):
        async def scenario():
            server = await self._server(bank).start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                # Unknown tenant: typed error, connection stays usable.
                resp = await _rpc(
                    reader, writer, {"op": "check", "tenant": "ghost"}
                )
                assert resp["ok"] is False
                assert resp["kind"] == "UnknownTenantError"
                # Malformed JSON.
                writer.write(b"{not json\n")
                await writer.drain()
                resp = json.loads(await reader.readline())
                assert resp["ok"] is False and resp["kind"] == "ProtocolError"
                # Unknown op / missing tenant field.
                resp = await _rpc(reader, writer, {"op": "frobnicate"})
                assert resp["kind"] == "ProtocolError"
                resp = await _rpc(reader, writer, {"op": "check"})
                assert resp["kind"] == "ProtocolError"
                # Still alive after all of that.
                resp = await _rpc(reader, writer, {"op": "ping"})
                assert resp == {"ok": True, "result": "pong"}
            finally:
                writer.close()
                await server.stop()

        run(scenario())

    def test_protocol_error_is_serve_error(self):
        assert issubclass(ProtocolError, ServeError)


# -- service odds and ends ---------------------------------------------------


class TestDetectionService:
    def test_closed_service_refuses_calls(self, bank):
        async def scenario():
            service = DetectionService()
            await service.create_tenant(
                "t", bank.clean_db.copy(), bank.constraints
            )
            await service.close()
            await service.close()              # idempotent
            with pytest.raises(ServeError):
                await service.check("t")
            with pytest.raises(ServeError):
                await service.create_tenant(
                    "u", bank.clean_db.copy(), bank.constraints
                )

        run(scenario())

    def test_duplicate_tenant_rejected(self, bank):
        async def scenario():
            async with DetectionService() as service:
                await service.create_tenant(
                    "t", bank.clean_db.copy(), bank.constraints
                )
                with pytest.raises(ServeError):
                    await service.create_tenant(
                        "t", bank.clean_db.copy(), bank.constraints
                    )

        run(scenario())

    def test_writes_serialize_reads_interleave(self, bank):
        """Two concurrent apply batches serialize (seq never collides);
        commit counters and feed sequence stay consistent."""

        async def scenario():
            async with DetectionService(max_workers=4) as service:
                handle = await service.create_tenant(
                    "t", bank.clean_db.copy(), bank.constraints
                )
                rows = [
                    {"ab": f"B{i}", "ct": "US", "at": "saving", "rt": "1%"}
                    for i in range(8)
                ]
                deltas = await asyncio.gather(
                    *(
                        service.apply("t", inserts=[("interest", dict(r))])
                        for r in rows
                    )
                )
                seqs = sorted(d.seq for __, d in deltas)
                assert seqs == list(range(1, 9))
                assert handle.commits == 8
                assert handle.feed.seq == 8

        run(scenario())


# -- write admission control -------------------------------------------------


class TestAdmissionControl:
    """``max_pending_writes``: bounded per-tenant write queues that fail
    fast with a typed, retryable error instead of growing an unbounded
    writer-lock queue."""

    @staticmethod
    def _row(i):
        return {"ab": f"B{i}", "ct": "US", "at": "saving", "rt": "1%"}

    def test_overload_fails_fast_and_typed(self, bank):
        """With a limit of 1, a burst of concurrent applies admits exactly
        one batch; every other caller gets ServiceOverloadedError before
        anything of theirs is applied."""

        async def scenario():
            async with DetectionService(max_pending_writes=1) as service:
                handle = await service.create_tenant(
                    "t", bank.clean_db.copy(), bank.constraints
                )
                results = await asyncio.gather(
                    *(
                        service.apply(
                            "t", inserts=[("interest", dict(self._row(i)))]
                        )
                        for i in range(5)
                    ),
                    return_exceptions=True,
                )
                ok = [r for r in results if not isinstance(r, Exception)]
                rejected = [r for r in results if isinstance(r, Exception)]
                assert len(ok) == 1
                assert len(rejected) == 4
                assert all(
                    isinstance(r, ServiceOverloadedError) for r in rejected
                )
                # Rejected batches were never applied: one commit only.
                assert handle.commits == 1
                assert handle.feed.seq == 1

        run(scenario())

    def test_queue_drains_and_recovers(self, bank):
        """Overload is transient: once the admitted batch commits, the
        counter is back to zero and later applies succeed."""

        async def scenario():
            async with DetectionService(max_pending_writes=1) as service:
                handle = await service.create_tenant(
                    "t", bank.clean_db.copy(), bank.constraints
                )
                await asyncio.gather(
                    *(
                        service.apply(
                            "t", inserts=[("interest", dict(self._row(i)))]
                        )
                        for i in range(3)
                    ),
                    return_exceptions=True,
                )
                assert handle.pending_writes == 0
                __, delta = await service.apply(
                    "t", inserts=[("interest", dict(self._row(99)))]
                )
                assert delta.seq == handle.feed.seq
                assert handle.pending_writes == 0

        run(scenario())

    def test_unbounded_by_default(self, bank):
        """No limit configured (the historical behaviour): every batch in
        a burst queues on the writer lock and commits."""

        async def scenario():
            async with DetectionService() as service:
                handle = await service.create_tenant(
                    "t", bank.clean_db.copy(), bank.constraints
                )
                results = await asyncio.gather(
                    *(
                        service.apply(
                            "t", inserts=[("interest", dict(self._row(i)))]
                        )
                        for i in range(5)
                    )
                )
                assert len(results) == 5
                assert handle.commits == 5

        run(scenario())

    def test_limit_is_per_tenant(self, bank):
        """One tenant saturating its queue never consumes another
        tenant's admission budget."""

        async def scenario():
            async with DetectionService(max_pending_writes=1) as service:
                await service.create_tenant(
                    "a", bank.clean_db.copy(), bank.constraints
                )
                await service.create_tenant(
                    "b", bank.clean_db.copy(), bank.constraints
                )
                burst = [
                    service.apply(
                        "a", inserts=[("interest", dict(self._row(i)))]
                    )
                    for i in range(4)
                ] + [
                    service.apply(
                        "b", inserts=[("interest", dict(self._row(0)))]
                    )
                ]
                results = await asyncio.gather(*burst, return_exceptions=True)
                # Tenant b's lone batch is admitted regardless of a's burst.
                assert not isinstance(results[-1], Exception)

        run(scenario())

    def test_invalid_limit_rejected(self):
        with pytest.raises(ServeError):
            DetectionService(max_pending_writes=0)
        with pytest.raises(ServeError):
            DetectionService(max_pending_writes=-3)

    def test_overloaded_error_is_serve_error(self):
        """The protocol maps (ReproError, ServeError) to typed envelopes;
        subclassing ServeError is what makes the overload signal arrive
        as {"ok": false, "kind": "ServiceOverloadedError"} for free."""
        assert issubclass(ServiceOverloadedError, ServeError)

    def test_protocol_envelope_kind(self, bank, bank_rows):
        """Over the NDJSON protocol an overloaded tenant yields the typed
        envelope, and the connection stays usable (retryable)."""

        async def scenario():
            service = DetectionService(capacity=8, max_pending_writes=1)
            server = await DetectionServer(
                service, bank.db.schema, bank.constraints, port=0
            ).start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                await _rpc(
                    reader, writer,
                    {"op": "create", "tenant": "w", "rows": bank_rows},
                )
                # Saturate the tenant's queue from the side: the next
                # apply must be rejected at admission, not queued.
                service.registry.get("w").pending_writes = 1
                resp = await _rpc(
                    reader, writer,
                    {
                        "op": "apply",
                        "tenant": "w",
                        "inserts": [
                            ["interest", ["GLA", "UK", "checking", "9.9%"]]
                        ],
                    },
                )
                assert resp["ok"] is False
                assert resp["kind"] == "ServiceOverloadedError"
                # Queue drains -> the very same request now succeeds.
                service.registry.get("w").pending_writes = 0
                resp = await _rpc(
                    reader, writer,
                    {
                        "op": "apply",
                        "tenant": "w",
                        "inserts": [
                            ["interest", ["GLA", "UK", "checking", "9.9%"]]
                        ],
                    },
                )
                assert resp["ok"] is True
            finally:
                writer.close()
                await server.stop()

        run(scenario())
