#!/usr/bin/env python
"""Repo-specific AST lint: layering, mutable defaults, nondeterminism.

Three rule families, each encoding an invariant the test suite relies on
but ordinary linters don't know about:

* **layering** — ``repro.api`` (the Session facade), ``repro.cli``, and
  ``repro.serve`` (the service layer) sit *on top of* the library. The
  core layers (``LOW_LAYERS``: ``core``, ``engine``, ``consistency``,
  ``relational``, ``sql``, ``graph``, ``analyze``, ``generator``,
  ``datasets``, ``logic``) importing them would invert the dependency
  stack and eventually cycle. Within the top of the stack there is one
  more edge: ``repro.serve`` imports ``repro.api``, never the reverse —
  the facade must stay hostable without knowing about the service. The
  package root (which re-exports the facade), ``__main__``, and
  ``cleaning`` (which *orchestrates* sessions) are deliberately above
  the facade and exempt.

* **layering** also enforces per-module *import allowlists*
  (``MODULE_IMPORT_ALLOWLISTS``) for modules whose dependency surface is
  deliberately narrow. ``repro.sql.windows`` — the rowid-window planner
  and window-function scan kernels — may reach only the engine's shard
  policy/mergeable states, the planner's scan-group types, the
  relational schema/instance types, and its sql siblings (ddl, loader);
  growing an import there (say, on the columnar views or the matching
  layer) widens what a windowed scan can observe and must be a reviewed
  decision, not drift.

* **mutable-default** — a ``def f(x=[])``-style default is shared across
  calls; every instance found in review so far was a latent bug. Literal
  list/dict/set displays and zero-argument ``list()``/``dict()``/
  ``set()`` calls are flagged.

* **nondeterminism** — detection and reasoning must be reproducible:
  identical inputs, identical reports, byte for byte. Module-level
  randomness (``random.random()``, ``random.shuffle``, ... — anything on
  the shared global generator) and wall-clock reads (``time.time``,
  ``time.time_ns``) are forbidden outside ``repro/generator/``
  (whose whole job is seeded randomness). Explicitly seeded
  ``random.Random(seed)`` / ``random.SystemRandom`` instances are fine
  anywhere, as are the monotonic timers (``perf_counter`` etc.).

Usage::

    python tools/check_layering.py              # lints src/repro
    python tools/check_layering.py path/to/file.py dir/ ...

Exit status 0 when clean, 1 when any violation is found. Also imported
by ``tests/test_layering.py``, which keeps the tree clean in tier 1.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

#: The top of the stack: nothing in LOW_LAYERS may import these.
TOP_LAYERS = ("repro.api", "repro.cli", "repro.serve")

#: The serving layer sits *above* the Session facade: ``repro.serve``
#: may import ``repro.api``, but the facade (and, via LOW_LAYERS,
#: everything under it — engine, core, ...) must never import
#: ``repro.serve``: the library cannot depend on the service hosting it.
#: ``repro.cli`` is the one module allowed to import both.
SERVE_LAYER = "repro.serve"
SERVE_FORBIDDEN_IMPORTERS = ("repro.api",)

#: The library layers underneath the facade. Anything else under repro/
#: (the package root, __main__, cleaning) is allowed to sit on top of it.
LOW_LAYERS = (
    "repro.analyze",
    "repro.chase",
    "repro.consistency",
    "repro.core",
    "repro.datasets",
    "repro.engine",
    "repro.generator",
    "repro.graph",
    "repro.logic",
    "repro.matching",
    "repro.relational",
    "repro.sql",
    "repro.views",
)

#: Modules pinned to an explicit set of allowed ``repro.*`` import
#: prefixes. Keyed by dotted module name; any ``repro.*`` import from
#: that module whose target matches none of the prefixes is flagged.
#: ``repro.sql.windows`` runs partial scans over arbitrary database
#: files on pooled read-only connections — its inputs are meant to be
#: *only* plan types, shard policy, schema/tuple types, and the sql
#: layer's own DDL/URI helpers, so merged window results provably
#: depend on nothing the serial executor doesn't also see.
MODULE_IMPORT_ALLOWLISTS: dict[str, tuple[str, ...]] = {
    "repro.sql.windows": (
        "repro.engine.planner",
        "repro.engine.shards",
        "repro.relational",
        "repro.sql.ddl",
        "repro.sql.loader",
    ),
    # The repair planner is pure decision logic: constraint types,
    # pattern matching, and relational values in — a RoundPlan out. It
    # must never touch a Session, a backend, or the checker; keeping it
    # side-effect-free is what makes planned batches provably equivalent
    # to the historical eager loop (and trivially testable).
    "repro.cleaning.planner": (
        "repro.core",
        "repro.relational",
    ),
    # The persistent worker pool manages process lifecycles and
    # /dev/shm segments for *any* dispatcher. Its only repro inputs are
    # the relation version counters (relational) and the shard-state
    # machinery its payloads feed (engine.shards); importing the facade,
    # the CLI, or the serving layer from here would let pool plumbing
    # observe — and eventually depend on — the layers hosting it.
    "repro.api.workerpool": (
        "repro.engine.shards",
        "repro.relational",
    ),
}

#: ``random`` attributes that are deterministic to *construct* — seeded
#: generator classes; everything else on the module is global state.
RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

#: ``time`` attributes that read the wall clock (monotonic timers are fine).
TIME_FORBIDDEN = frozenset({"time", "time_ns"})


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _module_name(path: Path) -> str | None:
    """Dotted module name of *path*, if it lives under a ``repro`` tree."""
    parts = list(path.with_suffix("").parts)
    if "repro" not in parts:
        return None
    parts = parts[parts.index("repro"):]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_low_layer(module: str | None) -> bool:
    return module is not None and module.startswith(LOW_LAYERS)


def _is_generator_module(module: str | None) -> bool:
    return module is not None and module.startswith("repro.generator")


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, module: str | None):
        self.path = path
        self.module = module
        self.violations: list[Violation] = []
        #: Local aliases of the random/time modules (``import random as r``).
        self._random_aliases: set[str] = set()
        self._time_aliases: set[str] = set()

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(self.path, node.lineno, rule, message)
        )

    # -- layering -----------------------------------------------------------

    def _check_layering_target(self, node: ast.AST, target: str) -> None:
        if target.startswith(TOP_LAYERS) and _is_low_layer(self.module):
            self._flag(
                node, "layering",
                f"{self.module or self.path} imports {target!r}: core layers "
                "must not depend on the api/cli/serve layer",
            )
        if (
            target.startswith(SERVE_LAYER)
            and self.module is not None
            and self.module.startswith(SERVE_FORBIDDEN_IMPORTERS)
        ):
            self._flag(
                node, "layering",
                f"{self.module} imports {target!r}: the Session facade must "
                "not depend on the serving layer built on top of it",
            )
        allowed = MODULE_IMPORT_ALLOWLISTS.get(self.module or "")
        if (
            allowed is not None
            and target.startswith("repro")
            and not target.startswith(allowed)
        ):
            self._flag(
                node, "layering",
                f"{self.module} imports {target!r}, outside its pinned "
                f"allowlist ({', '.join(allowed)}); widening this module's "
                "dependency surface is a reviewed decision — see "
                "MODULE_IMPORT_ALLOWLISTS",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_layering_target(node, alias.name)
            if alias.name == "random":
                self._random_aliases.add(alias.asname or "random")
            elif alias.name == "time":
                self._time_aliases.add(alias.asname or "time")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level == 0:
            self._check_layering_target(node, module)
            if module == "repro":
                for alias in node.names:
                    self._check_layering_target(node, f"repro.{alias.name}")
            if module == "random" and not _is_generator_module(self.module):
                for alias in node.names:
                    if alias.name not in RANDOM_ALLOWED:
                        self._flag(
                            node, "nondeterminism",
                            f"from random import {alias.name}: global-"
                            "generator randomness outside repro/generator "
                            "(use an explicit random.Random(seed))",
                        )
            if module == "time" and not _is_generator_module(self.module):
                for alias in node.names:
                    if alias.name in TIME_FORBIDDEN:
                        self._flag(
                            node, "nondeterminism",
                            f"from time import {alias.name}: wall-clock read "
                            "(use time.perf_counter for durations)",
                        )
        self.generic_visit(node)

    # -- nondeterminism -----------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and not _is_generator_module(self.module)
        ):
            base = node.value.id
            if (
                base in self._random_aliases
                and node.attr not in RANDOM_ALLOWED
            ):
                self._flag(
                    node, "nondeterminism",
                    f"random.{node.attr}: global-generator randomness "
                    "outside repro/generator (use an explicit "
                    "random.Random(seed))",
                )
            elif base in self._time_aliases and node.attr in TIME_FORBIDDEN:
                self._flag(
                    node, "nondeterminism",
                    f"time.{node.attr}: wall-clock read (use "
                    "time.perf_counter for durations)",
                )
        self.generic_visit(node)

    # -- mutable defaults ---------------------------------------------------

    @staticmethod
    def _is_mutable_default(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in {"list", "dict", "set"}
            and not expr.args
            and not expr.keywords
        )

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable_default(default):
                self._flag(
                    default, "mutable-default",
                    f"mutable default argument in {node.name}() is shared "
                    "across calls (default to None, or a tuple/frozenset)",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


def lint_file(path: Path) -> list[Violation]:
    """All violations in one python source file."""
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(str(path), exc.lineno or 0, "syntax", str(exc))]
    linter = _Linter(str(path), _module_name(path))
    linter.visit(tree)
    return linter.violations


def lint_paths(paths: list[Path]) -> list[Violation]:
    """All violations under *paths* (files, or directories walked for .py)."""
    violations: list[Violation] = []
    for path in paths:
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            violations.extend(lint_file(file))
    return violations


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    repo_root = Path(__file__).resolve().parent.parent
    targets = [Path(a) for a in argv] or [repo_root / "src" / "repro"]
    missing = [t for t in targets if not t.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2
    violations = lint_paths(targets)
    for violation in violations:
        print(violation)
    if violations:
        print(
            f"\n{len(violations)} violation(s) "
            f"(rules: layering / mutable-default / nondeterminism; see "
            f"tools/check_layering.py docstring)",
            file=sys.stderr,
        )
        return 1
    print(f"layering lint: {len(targets)} target(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
