"""A small directed-graph substrate.

The dependency-graph analysis of Section 5.3 needs three graph operations:

* a topological order that tolerates cycles — the paper's preProcessing
  (Fig. 7, line 1) sorts nodes so that if there is an edge ``Ri -> Rj`` then
  ``Rj`` precedes ``Ri`` (sinks first), breaking cycles arbitrarily;
* node deletion with indegree bookkeeping (lines 12–13);
* strongly connected components, because the reduced graph is analysed one
  SCC at a time by the combined ``Checking`` algorithm (Fig. 9).

The implementation is self-contained (iterative Tarjan SCC, Kahn-style
ordering with cycle tolerance) so the core library has no third-party
dependencies.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, TypeVar

N = TypeVar("N", bound=Hashable)


class DiGraph(Generic[N]):
    """A mutable directed graph over hashable nodes.

    Parallel edges collapse (edge sets); self-loops are allowed — a CIND from
    a relation to itself produces one.
    """

    def __init__(self) -> None:
        self._succ: dict[N, set[N]] = {}
        self._pred: dict[N, set[N]] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node: N) -> None:
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_edge(self, src: N, dst: N) -> None:
        self.add_node(src)
        self.add_node(dst)
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def remove_node(self, node: N) -> None:
        """Delete *node* and every incident edge."""
        for succ in self._succ.pop(node, ()):
            self._pred[succ].discard(node)
        for pred in self._pred.pop(node, ()):
            self._succ[pred].discard(node)

    def remove_edge(self, src: N, dst: N) -> None:
        self._succ.get(src, set()).discard(dst)
        self._pred.get(dst, set()).discard(src)

    # -- queries ----------------------------------------------------------

    def __contains__(self, node: N) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[N]:
        return iter(self._succ)

    @property
    def nodes(self) -> tuple[N, ...]:
        return tuple(self._succ)

    def edges(self) -> Iterator[tuple[N, N]]:
        for src, succs in self._succ.items():
            for dst in succs:
                yield (src, dst)

    def successors(self, node: N) -> set[N]:
        return set(self._succ.get(node, ()))

    def predecessors(self, node: N) -> set[N]:
        return set(self._pred.get(node, ()))

    def out_degree(self, node: N) -> int:
        return len(self._succ.get(node, ()))

    def in_degree(self, node: N) -> int:
        return len(self._pred.get(node, ()))

    def has_edge(self, src: N, dst: N) -> bool:
        return dst in self._succ.get(src, ())

    def copy(self) -> "DiGraph[N]":
        g: DiGraph[N] = DiGraph()
        for node in self._succ:
            g.add_node(node)
        for src, dst in self.edges():
            g.add_edge(src, dst)
        return g

    # -- algorithms ---------------------------------------------------------

    def topological_order_sinks_first(self) -> list[N]:
        """Order nodes so edge ``u -> v`` implies ``v`` comes before ``u``.

        This is the order required by preProcessing (Fig. 7): process a
        relation only after the relations its CINDs point *to*. On cyclic
        graphs the order within a cycle is arbitrary but deterministic
        (we peel SCCs in reverse topological order of the condensation).
        """
        order: list[N] = []
        for component in self.strongly_connected_components():
            order.extend(component)
        return order

    def strongly_connected_components(self) -> list[list[N]]:
        """Tarjan's SCC algorithm, iteratively (no recursion-depth limits).

        Components are returned in reverse topological order of the
        condensation: every edge between components goes from a later
        component in the list to an earlier one. Within a component, nodes
        appear in a deterministic order.
        """
        index_of: dict[N, int] = {}
        lowlink: dict[N, int] = {}
        on_stack: set[N] = set()
        stack: list[N] = []
        components: list[list[N]] = []
        counter = 0

        for root in self._succ:
            if root in index_of:
                continue
            # Iterative DFS: work holds (node, iterator over successors).
            work: list[tuple[N, Iterator[N]]] = []
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            work.append((root, iter(sorted(self._succ[root], key=repr))))
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index_of:
                        index_of[succ] = lowlink[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self._succ[succ], key=repr))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: list[N] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def weakly_connected_components(self) -> list[list[N]]:
        """Connected components ignoring edge direction."""
        seen: set[N] = set()
        components: list[list[N]] = []
        for start in self._succ:
            if start in seen:
                continue
            component: list[N] = []
            frontier = [start]
            seen.add(start)
            while frontier:
                node = frontier.pop()
                component.append(node)
                for neighbour in self._succ[node] | self._pred[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
            components.append(component)
        return components

    def subgraph(self, nodes: Iterable[N]) -> "DiGraph[N]":
        """The induced subgraph on *nodes*."""
        keep = set(nodes)
        g: DiGraph[N] = DiGraph()
        for node in self._succ:
            if node in keep:
                g.add_node(node)
        for src, dst in self.edges():
            if src in keep and dst in keep:
                g.add_edge(src, dst)
        return g

    def prune_zero_indegree(self) -> list[N]:
        """Iteratively delete nodes with indegree 0 (self-loops count).

        This is line 13 of preProcessing: a relation nothing points to can be
        left empty without affecting the consistency of the rest, so its node
        (and consequently anything only it pointed to) can be removed.
        Returns the deleted nodes in deletion order.
        """
        deleted: list[N] = []
        changed = True
        while changed:
            changed = False
            for node in list(self._succ):
                if self.in_degree(node) == 0:
                    self.remove_node(node)
                    deleted.append(node)
                    changed = True
        return deleted

    def __repr__(self) -> str:
        return f"<DiGraph {len(self)} nodes, {sum(len(s) for s in self._succ.values())} edges>"
