"""Directed-graph substrate used by the dependency-graph analysis."""

from repro.graph.digraph import DiGraph

__all__ = ["DiGraph"]
