"""Data-cleaning layer: violation detection and heuristic repair."""

from repro.cleaning.detect import (
    DetectionResult,
    build_detection_result,
    compare_with_traditional,
    detect_errors,
    detect_errors_sql,
    is_clean,
)
from repro.cleaning.incremental import IncrementalChecker
from repro.cleaning.planner import RepairPlanner, RoundPlan
from repro.cleaning.repair import (
    RepairEdit,
    RepairResult,
    RoundStats,
    repair,
    replay_edits,
)

__all__ = [
    "DetectionResult",
    "IncrementalChecker",
    "RepairEdit",
    "RepairPlanner",
    "RepairResult",
    "RoundPlan",
    "RoundStats",
    "build_detection_result",
    "compare_with_traditional",
    "detect_errors",
    "detect_errors_sql",
    "is_clean",
    "repair",
    "replay_edits",
]
