"""Heuristic repair of CFD/CIND violations.

Constraint-based repairing (the paper's related work [8, 13]) finds a
database close to the original that satisfies Σ. We implement the two
classic local moves, iterated to a fixpoint:

* **CFD repairs** — value modification. For a single-tuple violation
  (constant RHS pattern), rewrite the offending tuple's RHS attribute to
  the pattern constant. For a pair violation (wildcard RHS), rewrite the
  minority tuples of the group to the group's most frequent RHS value
  (cost = number of changed cells, following [8]'s cost intuition).
* **CIND repairs** — by policy, either *insert* the missing witness tuple
  on the RHS (``policy="insert"``; unconstrained columns take values from
  a fill function) or *delete* the violating LHS tuple
  (``policy="delete"``, the minimal-change tuple-deletion semantics of
  [13]).

Repairing is not confluent and may not terminate on adversarial Σ (repair
moves can re-violate other constraints), so rounds are capped; the result
reports whether a clean database was reached.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.violations import ConstraintSet
from repro.relational.domains import FiniteDomain
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.schema import RelationSchema
from repro.relational.values import is_wildcard


@dataclass
class RepairEdit:
    """One applied repair operation."""

    kind: str                 # "modify" | "insert" | "delete"
    relation: str
    before: Tuple | None
    after: Tuple | None
    constraint: str

    def __repr__(self) -> str:
        return f"<{self.kind} {self.relation}: {self.before!r} -> {self.after!r} [{self.constraint}]>"


@dataclass
class RepairResult:
    db: DatabaseInstance
    edits: list[RepairEdit] = field(default_factory=list)
    clean: bool = False
    rounds: int = 0

    @property
    def cost(self) -> int:
        """Number of edit operations applied."""
        return len(self.edits)


def default_fill(relation: RelationSchema, attribute: str, counter: list[int]) -> Any:
    """Fill value for unconstrained columns of inserted witness tuples."""
    attr = relation.attribute(attribute)
    if isinstance(attr.domain, FiniteDomain):
        return attr.domain.values[0]
    counter[0] += 1
    return f"repair#{counter[0]}"


def repair(
    db: DatabaseInstance,
    sigma: ConstraintSet,
    cind_policy: str = "insert",
    max_rounds: int = 10,
    rng: random.Random | None = None,
    fill: Callable[[RelationSchema, str, list[int]], Any] | None = None,
    workers: int = 1,
) -> RepairResult:
    """Iteratively repair *db* (on a copy) until clean or out of rounds.

    ``workers > 1`` runs each round's detection with parallel scan-group
    dispatch (see :mod:`repro.api.parallel`).
    """
    from repro.api import ExecutionOptions, connect

    if cind_policy not in ("insert", "delete"):
        raise ValueError(f"cind_policy must be insert|delete, got {cind_policy!r}")
    rng = rng or random.Random(0)
    fill = fill or default_fill
    counter = [0]
    work = db.copy()
    edits: list[RepairEdit] = []
    # One session (and so one shared-scan plan for Σ and one versioned
    # ScanCache), re-checked once per repair round against the mutating
    # working copy: each round re-scans only the relations the previous
    # round's edits actually touched and replays cached hit lists for the
    # rest — including the final count-only verdict, which is free when
    # the last round changed nothing.
    session = connect(work, sigma, options=ExecutionOptions(workers=workers))

    for round_no in range(1, max_rounds + 1):
        report = session.check()
        if report.is_clean:
            return RepairResult(work, edits, clean=True, rounds=round_no - 1)
        changed = False

        for violation in report.cfd_violations:
            cfd = violation.cfd
            name = report.label_for(cfd)
            instance = work[cfd.relation.name]
            row = cfd.tableau[violation.pattern_index]
            rhs_pattern = row.rhs_projection(cfd.rhs)
            group = [t for t in violation.tuples if t in instance]
            if not group:
                continue  # already rewritten this round
            constants = [v for v in rhs_pattern if not is_wildcard(v)]
            if len(constants) == len(rhs_pattern):
                target = tuple(rhs_pattern)
            else:
                # Wildcard positions: majority vote within the group.
                votes = Counter(t.project(cfd.rhs) for t in group)
                majority = votes.most_common(1)[0][0]
                target = tuple(
                    value if not is_wildcard(value) else majority[i]
                    for i, value in enumerate(rhs_pattern)
                )
            # One batch per violated group: the rewrites go through
            # Session.apply (deletes first, then inserts — the same
            # discard/add order the per-tuple loop used), so a group of
            # k tuples costs one invalidation, not k.
            rewrites = [
                (t, t.replace(**dict(zip(cfd.rhs, target))))
                for t in group
                if t.project(cfd.rhs) != target and t in instance
            ]
            if rewrites:
                session.apply(
                    inserts=[
                        (cfd.relation.name, after) for __, after in rewrites
                    ],
                    deletes=[
                        (cfd.relation.name, before) for before, __ in rewrites
                    ],
                )
                edits.extend(
                    RepairEdit("modify", cfd.relation.name, before, after, name)
                    for before, after in rewrites
                )
                changed = True

        for violation in report.cind_violations:
            cind = violation.cind
            name = report.label_for(cind)
            t1 = violation.tuple_
            if t1 not in work[cind.lhs_relation.name]:
                continue  # removed by an earlier repair
            row = cind.tableau[violation.pattern_index]
            if cind.find_witness(work, t1, row) is not None:
                continue  # an earlier insertion already fixed it
            if cind_policy == "delete":
                session.apply(deletes=[(cind.lhs_relation.name, t1)])
                edits.append(
                    RepairEdit("delete", cind.lhs_relation.name, t1, None, name)
                )
            else:
                template = cind.required_rhs_template(t1, row)
                values = {
                    attr: (
                        fill(cind.rhs_relation, attr, counter)
                        if is_wildcard(value)
                        else value
                    )
                    for attr, value in template.items()
                }
                witness = Tuple(cind.rhs_relation, values)
                session.apply(inserts=[(cind.rhs_relation.name, witness)])
                edits.append(
                    RepairEdit(
                        "insert", cind.rhs_relation.name, None, witness, name
                    )
                )
            changed = True

        if not changed:
            break

    # Count-only fast path: the final verdict needs no violation objects.
    final = session.count()
    return RepairResult(work, edits, clean=final.is_clean, rounds=max_rounds)
