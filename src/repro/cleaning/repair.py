"""Delta-driven heuristic repair of CFD/CIND violations.

Constraint-based repairing (the paper's related work [8, 13]) finds a
database close to the original that satisfies Σ. We implement the two
classic local moves, iterated to a fixpoint:

* **CFD repairs** — value modification. For a single-tuple violation
  (constant RHS pattern), rewrite the offending tuple's RHS attribute to
  the pattern constant. For a pair violation (wildcard RHS), rewrite the
  minority tuples of the group to the group's most frequent RHS value
  (cost = number of changed cells, following [8]'s cost intuition).
  Majority ties break by explicit policy (``tie_break=``, see
  :class:`~repro.cleaning.planner.RepairPlanner`).
* **CIND repairs** — by policy, either *insert* the missing witness tuple
  on the RHS (``policy="insert"``; unconstrained columns take values from
  a fill function) or *delete* the violating LHS tuple
  (``policy="delete"``, the minimal-change tuple-deletion semantics of
  [13]).

The engine is **round-batched and delta-driven**. Each round, the full
worklist of current violations is planned up front
(:class:`~repro.cleaning.planner.RepairPlanner`) and applied as *one*
``Session.apply`` batch — one cache invalidation, one sqlite transaction
on file backends — where the historical loop paid one apply per violated
group. Between rounds, the next worklist comes from one of two sources,
mirroring ``repro.serve``'s delta-source split:

* ``mode="delta"`` on the ``incremental`` backend reads the live
  checker's maintained violation state (updated in O(touched groups) by
  the batch itself — no scan ever runs); on the re-scan backends
  (``naive``/``sql``/``sqlfile``) a *shadow* incremental session mirrors
  each batch and provides the same state.
* ``mode="full"`` re-checks the session every round (the ``memory``
  backend's versioned ``ScanCache`` makes this the natural self-serve
  path, so ``mode="auto"`` picks it there).

Both sources produce the worklist in exactly the engine's report order
(constraints in Σ order, pattern rows in tableau order, groups and
tuples in scan order), so the two modes — and the historical eager loop
— produce bit-identical final databases and edit logs; the benchmark
(``benchmarks/bench_repair.py``) cross-validates this every run.

Repairing is not confluent and may not terminate on adversarial Σ (repair
moves can re-violate other constraints), so rounds are capped; the result
reports whether a clean database was reached and — truthfully — how many
repair rounds actually executed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.cleaning.planner import (
    CFDWork,
    CINDWork,
    RepairEdit,
    RepairPlanner,
    RoundPlan,
    WorkItem,
    default_fill,
)
from repro.core.violations import ConstraintSet, constraint_labels
from repro.errors import ReproError
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.schema import RelationSchema

if TYPE_CHECKING:
    from repro.api.session import Session
    from repro.cleaning.incremental import IncrementalChecker

#: Backends whose own per-round re-check *is* the cheap path (versioned
#: scan cache), mirroring ``repro.serve``'s self-delta classification.
#: ``incremental`` feeds repair from its live checker instead; everything
#: else gets a shadow incremental session under ``mode="delta"``.
_SELF_CHECK_BACKENDS = frozenset({"memory"})

_MODES = ("auto", "delta", "full")


@dataclass
class RoundStats:
    """Observability record for one executed repair round.

    ``delta_removed``/``delta_added`` are the violation-delta sizes the
    round's batch caused (violations resolved / newly introduced); they
    are filled in when the *next* worklist is built and stay ``-1`` when
    that never happens (the round cap was hit on a full-scan source,
    where measuring would cost an extra check).
    """

    round_no: int
    worklist_size: int
    cfd_items: int
    cind_items: int
    edits: dict[str, int]
    batch_deletes: int
    batch_inserts: int
    applied_deletes: int
    applied_inserts: int
    cache_hits: int
    cache_misses: int
    worklist_s: float = 0.0
    apply_s: float = 0.0
    delta_removed: int = -1
    delta_added: int = -1


@dataclass
class RepairResult:
    db: DatabaseInstance
    edits: list[RepairEdit] = field(default_factory=list)
    clean: bool = False
    rounds: int = 0
    backend: str = "memory"
    mode: str = "full"
    round_stats: list[RoundStats] = field(default_factory=list)

    @property
    def cost(self) -> int:
        """Number of edit operations applied."""
        return len(self.edits)

    def edits_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for edit in self.edits:
            out[edit.kind] = out.get(edit.kind, 0) + 1
        return out


def replay_edits(db: DatabaseInstance, edits: list[RepairEdit]) -> DatabaseInstance:
    """Apply a repair edit log to a copy of *db* and return it.

    Replay is uniform across edit kinds: discard ``before``, add
    ``after``. Replaying ``RepairResult.edits`` onto a fresh copy of the
    repair input reproduces ``RepairResult.db`` exactly, including
    relation iteration order — the property suite holds repair to this.
    """
    out = db.copy()
    for edit in edits:
        instance = out[edit.relation]
        if edit.before is not None:
            instance.discard(edit.before)
        if edit.after is not None:
            instance.add(edit.after)
    return out


# -- worklist ordering --------------------------------------------------------


class _PositionIndex:
    """Scan-order positions of live tuples, maintained across batches.

    The engine reports CFD group keys in first-occurrence scan order and
    CIND tuples in scan order. A checker-fed worklist has only *sets*, so
    this index re-derives that order: every tuple gets a monotonically
    increasing ticket at insertion, deletes retire tickets, and a
    re-inserted tuple gets a fresh (higher) ticket — exactly matching the
    insertion-ordered relation dict (and sqlite rowid order) the scans
    iterate.
    """

    def __init__(self, db: DatabaseInstance):
        self._pos: dict[str, dict[Tuple, int]] = {}
        self._next = 0
        for name, instance in db.relations().items():
            positions = self._pos[name] = {}
            for t in instance.rows():
                positions[t] = self._next
                self._next += 1

    def note_batch(
        self,
        deletes: list[tuple[str, Tuple]],
        inserts: list[tuple[str, Tuple]],
    ) -> None:
        """Record one applied batch (deletes first, then inserts — the
        ``Session.apply`` order)."""
        for relation, t in deletes:
            self._pos[relation].pop(t, None)
        for relation, t in inserts:
            positions = self._pos[relation]
            if t not in positions:
                positions[t] = self._next
                self._next += 1

    def of(self, relation: str, t: Tuple) -> int:
        return self._pos[relation].get(t, self._next)


def _normalized_alignment(
    sigma: ConstraintSet, checker: "IncrementalChecker"
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Map the checker's normalized children back to original Σ slots.

    Returns ``(cfd_map, cind_map)`` where entry ``j`` of each list is the
    ``(original constraint index, pattern row index)`` that normalized
    child ``j`` came from. Normalization is positional and deterministic:
    ``to_normal_form`` emits one CFD child per (row, RHS attribute) in
    row-major order, ``normalize_cind`` one child per row.
    """
    cfd_map: list[tuple[int, int]] = []
    for index, cfd in enumerate(sigma.cfds):
        for row in range(len(cfd.tableau)):
            cfd_map.extend((index, row) for __ in cfd.rhs)
    cind_map: list[tuple[int, int]] = []
    for index, cind in enumerate(sigma.cinds):
        cind_map.extend((index, row) for row in range(len(cind.tableau)))
    if len(cfd_map) != len(checker.sigma.cfds) or len(cind_map) != len(
        checker.sigma.cinds
    ):
        raise ReproError(
            "normalized Σ does not align with the original constraint set "
            f"({len(cfd_map)}/{len(checker.sigma.cfds)} CFD children, "
            f"{len(cind_map)}/{len(checker.sigma.cinds)} CIND children); "
            "the repair engine's child-to-parent mapping assumes "
            "normalize_cfds/normalize_cinds emit children positionally"
        )
    return cfd_map, cind_map


class _ReportSource:
    """Full-re-scan worklists: one ``session.check()`` per round."""

    def __init__(
        self, session: "Session", labels: dict[int, str]
    ):
        self.session = session
        self.labels = labels

    def _label(self, constraint: Any) -> str:
        return (
            self.labels.get(id(constraint))
            or constraint.name
            or repr(constraint)
        )

    def worklist(self) -> list[WorkItem]:
        report = self.session.check()
        items: list[WorkItem] = []
        for cfd_violation in report.cfd_violations:
            items.append(
                CFDWork(
                    cfd=cfd_violation.cfd,
                    pattern_index=cfd_violation.pattern_index,
                    label=self._label(cfd_violation.cfd),
                    group=tuple(cfd_violation.tuples),
                )
            )
        for cind_violation in report.cind_violations:
            items.append(
                CINDWork(
                    cind=cind_violation.cind,
                    pattern_index=cind_violation.pattern_index,
                    label=self._label(cind_violation.cind),
                    tuple_=cind_violation.tuple_,
                )
            )
        return items

    def commit(self, plan: RoundPlan) -> None:
        pass  # the primary session saw the batch; next check() re-scans

    def final_clean(self) -> bool:
        # Count-only fast path: the final verdict needs no violation
        # objects, and a warm versioned cache answers it without a scan
        # when the last round changed nothing.
        return self.session.count().is_clean

    def close(self) -> None:
        pass


class _CheckerSource:
    """Delta-driven worklists from a live :class:`IncrementalChecker`.

    The checker belongs either to the primary session (``incremental``
    backend) or to a shadow incremental session mirroring the primary's
    batches (re-scan backends). Either way, the next round's worklist is
    assembled from the checker's *maintained* violation state — updated
    in O(touched groups) by the batch itself — then ordered against the
    planning instance so it is bit-identical to what a full re-scan
    would report.
    """

    def __init__(
        self,
        checker: "IncrementalChecker",
        sigma: ConstraintSet,
        plan_db: DatabaseInstance,
        positions: _PositionIndex,
        labels: dict[int, str],
        shadow: "Session | None" = None,
    ):
        self.checker = checker
        self.sigma = sigma
        self.plan_db = plan_db
        self.positions = positions
        self.labels = labels
        self.shadow = shadow
        self.cfd_map, self.cind_map = _normalized_alignment(sigma, checker)

    def worklist(self) -> list[WorkItem]:
        # Union the per-child violated keys into original (cfd, row) slots:
        # a multi-attribute RHS normalizes into one child per attribute,
        # and the original task's violated keys are exactly their union.
        per_task: dict[tuple[int, int], set[tuple]] = {}
        for (child, violated), slot in zip(
            self.checker.violated_cfd_groups(), self.cfd_map
        ):
            if violated:
                per_task.setdefault(slot, set()).update(violated)
        items: list[WorkItem] = []
        for index, cfd in enumerate(self.sigma.cfds):
            relation = cfd.relation.name
            instance = self.plan_db[relation]
            label = self.labels[id(cfd)]
            for row in range(len(cfd.tableau)):
                keys = per_task.get((index, row))
                if not keys:
                    continue
                groups = {
                    key: instance.lookup(cfd.lhs, key) for key in keys
                }
                for key in sorted(
                    keys,
                    key=lambda k: self.positions.of(relation, groups[k][0]),
                ):
                    items.append(
                        CFDWork(
                            cfd=cfd,
                            pattern_index=row,
                            label=label,
                            group=tuple(groups[key]),
                        )
                    )
        per_cind: dict[tuple[int, int], tuple[Tuple, ...]] = {}
        for (child, tuples), slot in zip(
            self.checker.violated_cind_entries(), self.cind_map
        ):
            if tuples:
                per_cind[slot] = tuples
        for index, cind in enumerate(self.sigma.cinds):
            relation = cind.lhs_relation.name
            label = self.labels[id(cind)]
            for row in range(len(cind.tableau)):
                tuples = per_cind.get((index, row))
                if not tuples:
                    continue
                for t in sorted(
                    tuples, key=lambda t: self.positions.of(relation, t)
                ):
                    items.append(
                        CINDWork(
                            cind=cind, pattern_index=row, label=label, tuple_=t
                        )
                    )
        return items

    def commit(self, plan: RoundPlan) -> None:
        if self.shadow is not None:
            self.shadow.apply(inserts=plan.inserts, deletes=plan.deletes)

    def final_clean(self) -> bool:
        return self.checker.violation_count == 0

    def close(self) -> None:
        if self.shadow is not None:
            self.shadow.close()


# -- engine -------------------------------------------------------------------


def _resolve_mode(mode: str, backend: str) -> str:
    if mode not in _MODES:
        raise ValueError(
            f"mode must be one of {'|'.join(_MODES)}, got {mode!r}"
        )
    if mode != "auto":
        return mode
    if backend in _SELF_CHECK_BACKENDS:
        return "full"
    return "delta"


def _cache_counters(session: "Session") -> tuple[int, int]:
    cache = getattr(session.backend, "cache", None)
    if cache is None:
        cache = getattr(session.backend, "_cache", None)
    if cache is None:
        return (0, 0)
    return (getattr(cache, "hits", 0), getattr(cache, "misses", 0))


def _work_signatures(worklist: list[WorkItem]) -> set[tuple]:
    """Stable identities of worklist items, for violation-delta sizing."""
    out: set[tuple] = set()
    for item in worklist:
        if isinstance(item, CFDWork):
            key = item.group[0].project(item.cfd.lhs) if item.group else ()
            out.add(("cfd", item.label, item.pattern_index, key))
        else:
            out.add(("cind", item.label, item.pattern_index, item.tuple_))
    return out


def repair(
    db: DatabaseInstance | str | Path,
    sigma: ConstraintSet,
    cind_policy: str = "insert",
    max_rounds: int = 10,
    rng: random.Random | None = None,
    fill: Callable[[RelationSchema, str, list[int]], Any] | None = None,
    workers: int = 1,
    backend: str = "memory",
    mode: str = "auto",
    tie_break: str = "first",
) -> RepairResult:
    """Iteratively repair *db* (on a copy) until clean or out of rounds.

    ``db`` may be a :class:`DatabaseInstance` or the path of a sqlite
    database file; file inputs are loaded (never mutated) and the repair
    runs on the copy. ``backend`` picks the detection/apply engine for
    the repair session (``sqlfile`` stages the working copy into a
    temporary database file and repairs it out-of-core). ``mode`` picks
    the worklist source: ``"full"`` re-checks every round, ``"delta"``
    maintains the violation set incrementally (live checker on the
    ``incremental`` backend, shadow incremental session elsewhere);
    ``"auto"`` chooses ``"full"`` for the memory backend (its versioned
    scan cache already makes re-checks cheap) and ``"delta"`` for the
    rest. Both modes produce bit-identical results — the choice is a
    performance decision.

    ``tie_break`` makes CFD majority-vote ties explicit: ``"first"``
    (default; first tied value in group scan order — the historical
    behaviour), ``"lexicographic"`` (smallest under a type-stable key),
    or ``"random"`` (drawn with *rng*, the only use of it; a default
    ``random.Random(0)`` keeps even that deterministic run-to-run).

    ``rounds`` on the result is the number of repair rounds that actually
    executed — reaching the fixpoint early no longer misreports the
    round cap, and ``max_rounds <= 0`` truthfully reports ``0``.

    ``workers > 1`` runs each round's detection with parallel scan-group
    dispatch (see :mod:`repro.api.parallel`).
    """
    from repro.api import ExecutionOptions, connect

    planner_db: DatabaseInstance
    if isinstance(db, (str, Path)):
        from repro.sql.loader import read_database_file

        work = read_database_file(db, sigma.schema)
    else:
        work = db.copy()

    resolved_mode = _resolve_mode(mode, backend)
    labels = constraint_labels(list(sigma))
    counter = [0]
    planner = RepairPlanner(
        work,
        cind_policy=cind_policy,
        fill=fill,
        counter=counter,
        tie_break=tie_break,
        rng=rng,
    )

    tmpdir: Any = None
    mirror_file = backend == "sqlfile"
    options = ExecutionOptions(workers=workers)
    if mirror_file:
        # Stage the working copy into a temp sqlite file: detection and
        # DML run out-of-core while `work` stays the planning mirror
        # (kept in lockstep batch by batch, same deletes-then-inserts
        # order, so mirror iteration order == file rowid order).
        import tempfile

        from repro.sql.loader import create_database_file

        tmpdir = tempfile.TemporaryDirectory(prefix="repro-repair-")
        staged = Path(tmpdir.name) / "repair.sqlite"
        create_database_file(staged, work)
        session = connect(staged, sigma, backend=backend, options=options)
    else:
        session = connect(work, sigma, backend=backend, options=options)

    shadow: "Session | None" = None
    source: _ReportSource | _CheckerSource
    try:
        if resolved_mode == "full":
            source = _ReportSource(session, labels)
        elif backend == "incremental":
            source = _CheckerSource(
                session.backend.checker,
                sigma,
                work,
                _PositionIndex(work),
                labels,
            )
        else:
            shadow = connect(
                work.copy(), sigma, backend="incremental",
                options=ExecutionOptions(),
            )
            source = _CheckerSource(
                shadow.backend.checker,
                sigma,
                work,
                _PositionIndex(work),
                labels,
                shadow=shadow,
            )

        edits: list[RepairEdit] = []
        stats: list[RoundStats] = []
        previous_sigs: set[tuple] | None = None
        rounds_executed = 0
        clean = False

        for round_no in range(1, max(0, max_rounds) + 1):
            worklist_start = time.perf_counter()
            worklist = source.worklist()
            worklist_s = time.perf_counter() - worklist_start
            sigs = _work_signatures(worklist)
            if stats and previous_sigs is not None:
                stats[-1].delta_removed = len(previous_sigs - sigs)
                stats[-1].delta_added = len(sigs - previous_sigs)
            previous_sigs = sigs
            if not worklist:
                clean = True
                break
            plan = planner.plan_round(worklist)
            if plan.is_empty:
                # Defensive: violations remain but nothing is plannable.
                # Unreachable from a fresh worklist with the current
                # repair moves; the truthful round count still holds.
                break
            hits_before, misses_before = _cache_counters(session)
            apply_start = time.perf_counter()
            applied = session.apply(
                inserts=plan.inserts, deletes=plan.deletes
            )
            apply_s = time.perf_counter() - apply_start
            if mirror_file:
                for relation, t in plan.deletes:
                    work[relation].discard(t)
                for relation, t in plan.inserts:
                    work[relation].add(t)
            if isinstance(source, _CheckerSource):
                source.positions.note_batch(plan.deletes, plan.inserts)
            source.commit(plan)
            edits.extend(plan.edits)
            rounds_executed = round_no
            hits_after, misses_after = _cache_counters(session)
            stats.append(
                RoundStats(
                    round_no=round_no,
                    worklist_size=len(worklist),
                    cfd_items=sum(
                        1 for item in worklist if isinstance(item, CFDWork)
                    ),
                    cind_items=sum(
                        1 for item in worklist if isinstance(item, CINDWork)
                    ),
                    edits=plan.counts_by_kind(),
                    batch_deletes=len(plan.deletes),
                    batch_inserts=len(plan.inserts),
                    applied_deletes=applied.deleted,
                    applied_inserts=applied.inserted,
                    cache_hits=hits_after - hits_before,
                    cache_misses=misses_after - misses_before,
                    worklist_s=worklist_s,
                    apply_s=apply_s,
                )
            )

        if not clean:
            clean = source.final_clean()
            if isinstance(source, _CheckerSource) and stats:
                # The checker makes the final delta free to measure.
                final_sigs = _work_signatures(source.worklist())
                if previous_sigs is not None:
                    stats[-1].delta_removed = len(previous_sigs - final_sigs)
                    stats[-1].delta_added = len(final_sigs - previous_sigs)
        return RepairResult(
            work,
            edits,
            clean=clean,
            rounds=rounds_executed,
            backend=backend,
            mode=resolved_mode,
            round_stats=stats,
        )
    finally:
        source_obj = locals().get("source")
        if isinstance(source_obj, (_ReportSource, _CheckerSource)):
            source_obj.close()
        session.close()
        if tmpdir is not None:
            tmpdir.cleanup()


__all__ = [
    "RepairEdit",
    "RepairResult",
    "RoundStats",
    "default_fill",
    "repair",
    "replay_edits",
]
