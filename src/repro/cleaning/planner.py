"""Round planning for the delta-driven repair engine.

:mod:`repro.cleaning.repair` used to fix violations *eagerly*: each
violated CFD group and each witness-less CIND tuple paid its own
``Session.apply`` (one cache invalidation — one sqlite transaction on
file backends — per violation). The planner separates *deciding* the
round's repairs from *applying* them: :meth:`RepairPlanner.plan_round`
walks one round's worklist, simulates the eager loop's intermediate
states with a pending-insert/pending-delete **overlay** (never touching
the database), and returns a :class:`RoundPlan` whose delete/insert
lists the engine submits as one batch. The overlay reproduces the eager
loop's semantics exactly — violation ``k`` sees the effects of
violations ``1..k-1`` — so the planned batch leaves the database
bit-identical (content *and* iteration order) to the historical loop.

The planner also owns the two repair-policy decisions the old loop made
implicitly:

* **tie-breaking** (``tie_break=``): when a CFD group's RHS values are
  tied for the majority, ``"first"`` keeps the historical behaviour
  (first tied value in scan order — ``Counter`` insertion order),
  ``"lexicographic"`` picks the smallest under a type-stable sort key,
  and ``"random"`` draws from the tied values with the caller's seeded
  ``rng`` — explicit, documented, and deterministic for a fixed seed,
  where the old loop's tie outcome was an undocumented artifact.
* **merge detection**: a rewrite whose target tuple already exists (in
  the database or among this round's pending inserts) nets out to a
  deletion under set semantics. The old loop recorded it as a
  ``"modify"`` that produced no tuple; the planner records the honest
  ``"merge"`` edit (no insert op is planned) so the edit log replays
  exactly and costs count what actually happened.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Union

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.patterns import PatternTuple, matches_all
from repro.relational.domains import FiniteDomain
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.schema import RelationSchema
from repro.relational.values import is_wildcard

#: Explicit tie-breaking policies for CFD majority votes.
TIE_BREAKS = ("first", "lexicographic", "random")


@dataclass
class RepairEdit:
    """One applied repair operation.

    ``kind`` is one of ``"modify"`` (rewrite produced a new tuple),
    ``"merge"`` (rewrite target already existed — the tuple was folded
    into it, a net deletion), ``"insert"`` (CIND witness insertion) or
    ``"delete"`` (CIND violating-tuple deletion). Replaying an edit is
    uniform across kinds: discard ``before`` if set, add ``after`` if
    set — for a merge the add is a set-semantics no-op by construction.
    """

    kind: str                 # "modify" | "merge" | "insert" | "delete"
    relation: str
    before: Tuple | None
    after: Tuple | None
    constraint: str

    def __repr__(self) -> str:
        return f"<{self.kind} {self.relation}: {self.before!r} -> {self.after!r} [{self.constraint}]>"


@dataclass(frozen=True)
class CFDWork:
    """One violated CFD group: rewrite its minority tuples."""

    cfd: CFD
    pattern_index: int
    label: str
    group: tuple[Tuple, ...]   # the group's tuples, in scan order


@dataclass(frozen=True)
class CINDWork:
    """One witness-less CIND premise tuple: insert a witness or delete it."""

    cind: CIND
    pattern_index: int
    label: str
    tuple_: Tuple


WorkItem = Union[CFDWork, CINDWork]


@dataclass
class RoundPlan:
    """Everything one repair round will do, before any of it is applied.

    ``deletes``/``inserts`` are ``(relation, tuple)`` ops for one
    ``Session.apply`` call (which runs all deletes, then all inserts —
    the order the overlay planning assumed). ``edits`` is the round's
    slice of the repair log, in worklist order.
    """

    edits: list[RepairEdit] = field(default_factory=list)
    deletes: list[tuple[str, Tuple]] = field(default_factory=list)
    inserts: list[tuple[str, Tuple]] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.deletes and not self.inserts

    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for edit in self.edits:
            out[edit.kind] = out.get(edit.kind, 0) + 1
        return out


def default_fill(relation: RelationSchema, attribute: str, counter: list[int]) -> Any:
    """Fill value for unconstrained columns of inserted witness tuples."""
    attr = relation.attribute(attribute)
    if isinstance(attr.domain, FiniteDomain):
        return attr.domain.values[0]
    counter[0] += 1
    return f"repair#{counter[0]}"


def _lexicographic_key(value: tuple[Any, ...]) -> tuple[tuple[str, str], ...]:
    """Total order over projection tuples that never compares raw values.

    Mixed-type columns (``2`` vs ``"2"``) would make ``<`` raise; sorting
    by ``(type name, repr)`` pairs is deterministic for any hashable
    domain values.
    """
    return tuple((type(v).__name__, repr(v)) for v in value)


class _RoundOverlay:
    """Pending effects of one round's plan, indexed for witness probes.

    ``deleted``/``inserted`` answer liveness; ``indexes`` holds, per
    ``(relation, y-attribute tuple)``, the pending inserts keyed by their
    ``y`` projection — built lazily on the first witness probe with that
    attribute set and maintained incrementally afterwards, so witness
    checks against pending inserts stay O(candidates) instead of scanning
    every insert planned so far (which made large CIND rounds quadratic).
    """

    def __init__(self) -> None:
        self.deleted: dict[str, set[Tuple]] = {}
        self.inserted: dict[str, set[Tuple]] = {}
        self.indexes: dict[
            tuple[str, tuple[str, ...]], dict[tuple, list[Tuple]]
        ] = {}

    def note_insert(self, relation: str, t: Tuple) -> None:
        for (rel, attrs), index in self.indexes.items():
            if rel == relation:
                index.setdefault(t.project(attrs), []).append(t)

    def note_cancelled_insert(self, relation: str, t: Tuple) -> None:
        for (rel, attrs), index in self.indexes.items():
            if rel == relation:
                bucket = index.get(t.project(attrs))
                if bucket and t in bucket:
                    bucket.remove(t)

    def inserted_matching(
        self, relation: str, attrs: tuple[str, ...], key: tuple
    ) -> list[Tuple]:
        index = self.indexes.get((relation, attrs))
        if index is None:
            index = {}
            for t in self.inserted.get(relation, ()):
                index.setdefault(t.project(attrs), []).append(t)
            self.indexes[(relation, attrs)] = index
        return index.get(key, [])


class RepairPlanner:
    """Plans one batch of repairs per round against a live overlay.

    ``db`` is the planning instance — the working copy the repair engine
    mutates (for file-backed sessions, its in-memory mirror). The planner
    never writes to it; all intra-round state lives in the per-call
    overlay sets.
    """

    def __init__(
        self,
        db: DatabaseInstance,
        cind_policy: str = "insert",
        fill: Callable[[RelationSchema, str, list[int]], Any] | None = None,
        counter: list[int] | None = None,
        tie_break: str = "first",
        rng: random.Random | None = None,
    ):
        if cind_policy not in ("insert", "delete"):
            raise ValueError(
                f"cind_policy must be insert|delete, got {cind_policy!r}"
            )
        if tie_break not in TIE_BREAKS:
            raise ValueError(
                f"tie_break must be one of {'|'.join(TIE_BREAKS)}, "
                f"got {tie_break!r}"
            )
        self.db = db
        self.cind_policy = cind_policy
        self.fill = fill or default_fill
        self.counter = counter if counter is not None else [0]
        self.tie_break = tie_break
        # Only the "random" policy consumes randomness; a fixed default
        # seed keeps even that path reproducible run-to-run unless the
        # caller supplies their own generator.
        self.rng = rng or random.Random(0)

    # -- overlay helpers ----------------------------------------------------

    def _alive(self, relation: str, t: Tuple, overlay: _RoundOverlay) -> bool:
        """Would *t* exist right now if the plan so far had been applied?"""
        if t in overlay.inserted.get(relation, ()):
            return True
        if t in overlay.deleted.get(relation, ()):
            return False
        return t in self.db[relation]

    def _plan_delete(
        self, plan: RoundPlan, relation: str, t: Tuple, overlay: _RoundOverlay
    ) -> None:
        """Remove *t* from the planned end state.

        If *t*'s presence comes from an earlier planned insert this
        round, that insert is *cancelled* instead of a delete being
        queued — ``Session.apply`` runs deletes before inserts, so a
        queued delete could not undo a queued insert of the same tuple.
        """
        pend_ins = overlay.inserted.setdefault(relation, set())
        if t in pend_ins:
            pend_ins.discard(t)
            plan.inserts.remove((relation, t))
            overlay.note_cancelled_insert(relation, t)
            return
        pend_del = overlay.deleted.setdefault(relation, set())
        if t not in pend_del and t in self.db[relation]:
            pend_del.add(t)
            plan.deletes.append((relation, t))

    def _plan_insert(
        self, plan: RoundPlan, relation: str, t: Tuple, overlay: _RoundOverlay
    ) -> None:
        pend_ins = overlay.inserted.setdefault(relation, set())
        if t not in pend_ins:
            pend_ins.add(t)
            plan.inserts.append((relation, t))
            overlay.note_insert(relation, t)

    # -- CFD planning -------------------------------------------------------

    def _majority(self, votes: Counter) -> tuple[Any, ...]:
        top = max(votes.values())
        candidates = [value for value, count in votes.items() if count == top]
        if len(candidates) == 1 or self.tie_break == "first":
            # Counter preserves insertion order: candidates[0] is the
            # first tied value in group scan order — the historical
            # (previously implicit) behaviour, now the documented default.
            return candidates[0]
        if self.tie_break == "lexicographic":
            return min(candidates, key=_lexicographic_key)
        return self.rng.choice(candidates)

    def _plan_cfd(
        self, plan: RoundPlan, item: CFDWork, overlay: _RoundOverlay
    ) -> None:
        cfd = item.cfd
        relation = cfd.relation.name
        row = cfd.tableau[item.pattern_index]
        rhs_pattern = row.rhs_projection(cfd.rhs)
        # Work-item groups are captured at round start, so a group tuple
        # can only have *left* the overlay state, never joined it.
        group = [t for t in item.group if self._alive(relation, t, overlay)]
        if not group:
            return  # already rewritten this round
        constants = [v for v in rhs_pattern if not is_wildcard(v)]
        if len(constants) == len(rhs_pattern):
            target = tuple(rhs_pattern)
        else:
            # Wildcard positions: majority vote within the group.
            votes = Counter(t.project(cfd.rhs) for t in group)
            majority = self._majority(votes)
            target = tuple(
                value if not is_wildcard(value) else majority[i]
                for i, value in enumerate(rhs_pattern)
            )
        for t in group:
            if t.project(cfd.rhs) == target:
                continue
            after = t.replace(**dict(zip(cfd.rhs, target)))
            if self._alive(relation, after, overlay):
                # The rewrite target already exists: set semantics make
                # this a merge (net deletion), not a modification.
                plan.edits.append(
                    RepairEdit("merge", relation, t, after, item.label)
                )
                self._plan_delete(plan, relation, t, overlay)
            else:
                plan.edits.append(
                    RepairEdit("modify", relation, t, after, item.label)
                )
                self._plan_delete(plan, relation, t, overlay)
                self._plan_insert(plan, relation, after, overlay)

    # -- CIND planning ------------------------------------------------------

    def _has_witness(
        self, cind: CIND, t1: Tuple, row: PatternTuple, overlay: _RoundOverlay
    ) -> bool:
        """``find_witness`` against the overlay-adjusted RHS relation."""
        relation = cind.rhs_relation.name
        key = t1.project(cind.x)
        yp_pattern = row.rhs_projection(cind.yp)
        pend_del = overlay.deleted.get(relation, ())
        for t2 in self.db[relation].lookup(cind.y, key):
            if t2 in pend_del:
                continue
            if matches_all(t2.project(cind.yp), yp_pattern):
                return True
        for t2 in overlay.inserted_matching(relation, cind.y, key):
            if matches_all(t2.project(cind.yp), yp_pattern):
                return True
        return False

    def _plan_cind(
        self, plan: RoundPlan, item: CINDWork, overlay: _RoundOverlay
    ) -> None:
        cind = item.cind
        t1 = item.tuple_
        lhs_relation = cind.lhs_relation.name
        if not self._alive(lhs_relation, t1, overlay):
            return  # removed by an earlier repair this round
        row = cind.tableau[item.pattern_index]
        if self._has_witness(cind, t1, row, overlay):
            return  # an earlier planned insertion already fixes it
        if self.cind_policy == "delete":
            plan.edits.append(
                RepairEdit("delete", lhs_relation, t1, None, item.label)
            )
            self._plan_delete(plan, lhs_relation, t1, overlay)
            return
        template = cind.required_rhs_template(t1, row)
        values = {
            attr: (
                self.fill(cind.rhs_relation, attr, self.counter)
                if is_wildcard(value)
                else value
            )
            for attr, value in template.items()
        }
        witness = Tuple(cind.rhs_relation, values)
        relation = cind.rhs_relation.name
        plan.edits.append(
            RepairEdit("insert", relation, None, witness, item.label)
        )
        self._plan_insert(plan, relation, witness, overlay)

    # -- entry point --------------------------------------------------------

    def plan_round(self, worklist: Iterable[WorkItem]) -> RoundPlan:
        """Plan one round's repairs for *worklist*, in worklist order.

        The overlay sets thread each item's planned effects into every
        later item's view, replicating the eager loop's semantics within
        a single batched round.
        """
        plan = RoundPlan()
        overlay = _RoundOverlay()
        for item in worklist:
            if isinstance(item, CFDWork):
                self._plan_cfd(plan, item, overlay)
            else:
                self._plan_cind(plan, item, overlay)
        return plan


__all__ = [
    "CFDWork",
    "CINDWork",
    "RepairEdit",
    "RepairPlanner",
    "RoundPlan",
    "TIE_BREAKS",
    "WorkItem",
    "default_fill",
]
