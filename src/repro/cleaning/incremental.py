"""Incremental violation detection under tuple insertions and deletions.

`check_database` rescans everything; a cleaning tool watching a live
database wants the *delta*. :class:`IncrementalChecker` owns a database
instance and a constraint set (normalised on entry) and maintains, per
constraint, just enough state to update violation sets in time
proportional to the touched groups:

* per normal-form CFD — the tuples of each LHS-pattern-matching group,
  keyed by their ``X`` projection, plus the set of violated group keys;
* per normal-form CIND — a witness count per required ``Y``-projection
  (counting RHS tuples whose ``Yp`` matches the pattern) and the violating
  LHS tuples, indexed by their ``X``-projection so a new witness clears
  exactly its key's bucket.

The initial build reuses the shared-scan primitives of
:mod:`repro.engine`: one group-by per distinct ``(relation, X)``, one
witness-counting pass per RHS relation (deduplicated by ``(Y, Yp,
tp[Yp])``), and one violation pass per LHS relation — instead of replaying
every tuple through the single-tuple bookkeeping.

Every mutation goes through :meth:`insert` / :meth:`delete`, which apply
it to the underlying database *and* the state. The test-suite
cross-validates against full rechecks on randomized operation sequences.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.patterns import matches_all
from repro.core.violations import ConstraintSet, constraint_labels
from repro.engine import (
    attribute_positions,
    compile_checks,
    group_tuples_by,
    passes,
    projection_column_keys,
)
from repro.engine.executor import filter_by_checks
from repro.errors import ConstraintError
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.values import is_wildcard


@dataclass
class _CFDState:
    cfd: CFD
    #: group key (X projection) -> multiset of RHS values in the group
    groups: dict[tuple, Counter] = field(default_factory=dict)
    violated: set[tuple] = field(default_factory=set)

    def group_violated(self, key: tuple) -> bool:
        counter = self.groups.get(key)
        if not counter:
            return False
        if len(counter) > 1:
            return True
        pattern_value = self.cfd.pattern.rhs_value(self.cfd.rhs_attribute)
        if is_wildcard(pattern_value):
            return False
        (value,) = counter
        return value != pattern_value

    def refresh(self, key: tuple) -> None:
        if self.group_violated(key):
            self.violated.add(key)
        else:
            self.violated.discard(key)


@dataclass
class _CINDState:
    cind: CIND
    #: required Y-projection -> number of pattern-matching RHS witnesses
    witness_count: Counter = field(default_factory=Counter)
    #: X-projection -> violating LHS tuples with that key (premise matched,
    #: no witness). Indexed by key so a freshly inserted witness clears its
    #: key's bucket in O(cleared) instead of rebuilding the whole set.
    violated: dict[tuple, set[Tuple]] = field(default_factory=dict)
    violated_total: int = 0

    def add_violation(self, key: tuple, t: Tuple) -> None:
        bucket = self.violated.get(key)
        if bucket is None:
            bucket = self.violated[key] = set()
        if t not in bucket:
            bucket.add(t)
            self.violated_total += 1

    def discard_violation(self, key: tuple, t: Tuple) -> None:
        bucket = self.violated.get(key)
        if bucket is not None and t in bucket:
            bucket.discard(t)
            self.violated_total -= 1
            if not bucket:
                del self.violated[key]

    def clear_violations_for(self, key: tuple) -> None:
        bucket = self.violated.pop(key, None)
        if bucket is not None:
            self.violated_total -= len(bucket)

    def violating_tuples(self) -> Iterable[Tuple]:
        for bucket in self.violated.values():
            yield from bucket


class IncrementalChecker:
    """Violation bookkeeping for one database under single-tuple updates."""

    def __init__(self, db: DatabaseInstance, sigma: ConstraintSet):
        self.db = db
        self.sigma = sigma.normalized()
        self._labels = constraint_labels(self.sigma)
        self._cfd_states: dict[str, list[_CFDState]] = {}
        self._cind_lhs: dict[str, list[_CINDState]] = {}
        self._cind_rhs: dict[str, list[_CINDState]] = {}
        self._cind_states: list[_CINDState] = []
        for cfd in self.sigma.cfds:
            state = _CFDState(cfd)
            self._cfd_states.setdefault(cfd.relation.name, []).append(state)
        for cind in self.sigma.cinds:
            state = _CINDState(cind)
            self._cind_states.append(state)
            self._cind_lhs.setdefault(cind.lhs_relation.name, []).append(state)
            self._cind_rhs.setdefault(cind.rhs_relation.name, []).append(state)
        self._bulk_build()

    def _bulk_build(self) -> None:
        """Initial state via shared scans (engine-style), not per-tuple replay.

        * one group-by per distinct ``(relation, X)`` across all CFD states;
        * one witness-counting pass per RHS relation, deduplicated by
          ``(Y, Yp, tp[Yp])`` across CIND states;
        * one violation pass per LHS relation covering all its CIND states.
        """
        by_scan: dict[tuple[str, tuple[str, ...]], list[_CFDState]] = {}
        for states in self._cfd_states.values():
            for state in states:
                cfd = state.cfd
                by_scan.setdefault((cfd.relation.name, cfd.lhs), []).append(state)
        for (relation, lhs), states in by_scan.items():
            instance = self.db[relation]
            positions = attribute_positions(instance.schema, lhs)
            groups = group_tuples_by(instance, positions)
            for state in states:
                cfd = state.cfd
                key_checks = compile_checks(
                    cfd.pattern.lhs_projection(lhs), range(len(lhs))
                )
                rhs_pos = instance.schema.positions[cfd.rhs_attribute]
                for key, tuples in groups.items():
                    if not passes(key, key_checks):
                        continue
                    state.groups[key] = Counter(
                        t.values[rhs_pos] for t in tuples
                    )
                    state.refresh(key)

        # Witness counts: share one Counter computation per (R2, Y, Yp, tp[Yp]).
        shared: dict[tuple, list[_CINDState]] = {}
        for state in self._cind_states:
            cind = state.cind
            key = (
                cind.rhs_relation.name,
                cind.y,
                cind.yp,
                cind.pattern.rhs_projection(cind.yp),
            )
            shared.setdefault(key, []).append(state)
        by_rhs: dict[str, list[tuple]] = {}
        for key in shared:
            by_rhs.setdefault(key[0], []).append(key)
        for relation, keys in by_rhs.items():
            instance = self.db[relation]
            columns = instance.columns()
            positions = instance.schema.positions
            n = len(instance)
            key_lists: dict[tuple[int, ...], list] = {}
            for key in keys:
                yp_checks = compile_checks(
                    key[3], tuple(positions[a] for a in key[2])
                )
                y_positions = tuple(positions[a] for a in key[1])
                y_keys = key_lists.get(y_positions)
                if y_keys is None:
                    y_keys = key_lists[y_positions] = projection_column_keys(
                        columns, y_positions, n
                    )
                counter = Counter(filter_by_checks(columns, yp_checks, y_keys))
                consumers = shared[key]
                for state in consumers[:-1]:
                    state.witness_count = counter.copy()
                consumers[-1].witness_count = counter

        # Violation sets: one columnar pass per LHS relation per state.
        for relation, states in self._cind_lhs.items():
            instance = self.db[relation]
            columns = instance.columns()
            rows = instance.rows()
            positions = instance.schema.positions
            key_lists = {}
            for state in states:
                cind = state.cind
                lhs_attrs = cind.x + cind.xp
                lhs_checks = compile_checks(
                    cind.pattern.lhs_projection(lhs_attrs),
                    tuple(positions[a] for a in lhs_attrs),
                )
                x_positions = tuple(positions[a] for a in cind.x)
                x_keys = key_lists.get(x_positions)
                if x_keys is None:
                    x_keys = key_lists[x_positions] = projection_column_keys(
                        columns, x_positions, len(rows)
                    )
                witness_count = state.witness_count
                for key, t in filter_by_checks(
                    columns, lhs_checks, zip(x_keys, rows)
                ):
                    if witness_count.get(key, 0) == 0:
                        state.add_violation(key, t)

        # The columnar views were build-time artifacts; after the bulk
        # build all maintenance is per-tuple.
        self.db.release_views()

    # -- public API -----------------------------------------------------------

    def insert(self, relation: str, row: Tuple | Sequence[Any] | Mapping[str, Any]) -> bool:
        """Insert a tuple; returns False (no-op) if it was already present."""
        stored = self.db[relation].add(row)
        if stored is None:
            return False
        self._account_insert(stored)
        self._settle_cinds_after_insert(stored)
        return True

    def delete(self, relation: str, row: Tuple) -> bool:
        """Delete a tuple; returns False if it was not present."""
        if not isinstance(row, Tuple):
            raise ConstraintError("delete expects a Tuple object")
        if not self.db[relation].discard(row):
            return False
        self._account_delete(row)
        return True

    @property
    def is_clean(self) -> bool:
        return self.violation_count == 0

    @property
    def violation_count(self) -> int:
        total = sum(
            len(s.violated)
            for states in self._cfd_states.values()
            for s in states
        )
        total += sum(s.violated_total for s in self._cind_states)
        return total

    def violations(self) -> dict[str, int]:
        """Current violation counts per stable constraint label.

        Labels come from :func:`repro.core.violations.constraint_labels`
        over the normalized Σ, matching ``ViolationReport.by_constraint`` —
        distinct constraints with equal names/reprs keep separate entries.
        """
        out: dict[str, int] = {}
        for states in self._cfd_states.values():
            for s in states:
                if s.violated:
                    out[self._labels[id(s.cfd)]] = len(s.violated)
        for s in self._cind_states:
            if s.violated_total:
                out[self._labels[id(s.cind)]] = s.violated_total
        return out

    def violating_cind_tuples(self) -> set[Tuple]:
        out: set[Tuple] = set()
        for s in self._cind_states:
            out.update(s.violating_tuples())
        return out

    def violated_cfd_groups(self) -> "Iterator[tuple[CFD, frozenset[tuple]]]":
        """Per normalized CFD, the currently violated group keys.

        Yields one ``(cfd, keys)`` pair per CFD of ``self.sigma`` (the
        *normalized* Σ), aligned with ``self.sigma.cfds`` order, so a
        consumer can map child constraints back to the original Σ by
        position. The key sets are snapshots — safe to hold across
        subsequent inserts/deletes. This is the delta-driven repair
        engine's worklist source: after a batch of edits, only these
        maintained sets are consulted, never a fresh scan.
        """
        by_id = {
            id(state.cfd): state
            for states in self._cfd_states.values()
            for state in states
        }
        for cfd in self.sigma.cfds:
            yield cfd, frozenset(by_id[id(cfd)].violated)

    def violated_cind_entries(self) -> "Iterator[tuple[CIND, tuple[Tuple, ...]]]":
        """Per normalized CIND, the currently violating premise tuples.

        Aligned with ``self.sigma.cinds`` order (one entry per normalized
        child, i.e. per pattern row of the original CIND). Tuple order
        within an entry is unspecified — callers that need scan order
        (the repair engine does) must re-order against their instance.
        """
        for state in self._cind_states:
            yield state.cind, tuple(state.violating_tuples())

    # -- CFD bookkeeping ----------------------------------------------------------

    def _cfd_key(self, state: _CFDState, t: Tuple) -> tuple | None:
        cfd = state.cfd
        key = t.project(cfd.lhs)
        if not matches_all(key, cfd.pattern.lhs_projection(cfd.lhs)):
            return None
        return key

    def _account_insert(self, t: Tuple) -> None:
        for state in self._cfd_states.get(t.schema.name, ()):
            key = self._cfd_key(state, t)
            if key is None:
                continue
            state.groups.setdefault(key, Counter())[
                t[state.cfd.rhs_attribute]
            ] += 1
            state.refresh(key)
        for state in self._cind_rhs.get(t.schema.name, ()):
            cind = state.cind
            if matches_all(
                t.project(cind.yp), cind.pattern.rhs_projection(cind.yp)
            ):
                state.witness_count[t.project(cind.y)] += 1
        for state in self._cind_lhs.get(t.schema.name, ()):
            cind = state.cind
            if not cind.lhs_matches(t, cind.pattern):
                continue
            key = t.project(cind.x)
            if state.witness_count[key] == 0:
                state.add_violation(key, t)

    def _account_delete(self, t: Tuple) -> None:
        for state in self._cfd_states.get(t.schema.name, ()):
            key = self._cfd_key(state, t)
            if key is None:
                continue
            counter = state.groups.get(key)
            if counter is not None:
                value = t[state.cfd.rhs_attribute]
                counter[value] -= 1
                if counter[value] <= 0:
                    del counter[value]
                if not counter:
                    del state.groups[key]
            state.refresh(key)
        for state in self._cind_lhs.get(t.schema.name, ()):
            state.discard_violation(t.project(state.cind.x), t)
        for state in self._cind_rhs.get(t.schema.name, ()):
            cind = state.cind
            if not matches_all(
                t.project(cind.yp), cind.pattern.rhs_projection(cind.yp)
            ):
                continue
            key = t.project(cind.y)
            state.witness_count[key] -= 1
            if state.witness_count[key] <= 0:
                del state.witness_count[key]
                self._mark_orphans(state, key)

    def _settle_cinds_after_insert(self, t: Tuple) -> None:
        """A new RHS witness may clear pending LHS violations.

        The violated sets are indexed by ``X``-projection, so clearing the
        witnessed key costs O(tuples cleared) — not a rebuild of the whole
        violated set per witness insert.
        """
        for state in self._cind_rhs.get(t.schema.name, ()):
            cind = state.cind
            if not matches_all(
                t.project(cind.yp), cind.pattern.rhs_projection(cind.yp)
            ):
                continue
            key = t.project(cind.y)
            if state.witness_count.get(key, 0) > 0:
                state.clear_violations_for(key)

    def _mark_orphans(self, state: _CINDState, key: tuple) -> None:
        """The last witness for *key* vanished: LHS tuples become violations."""
        cind = state.cind
        lhs_instance = self.db[cind.lhs_relation.name]
        for t1 in lhs_instance.lookup(cind.x, key):
            if cind.lhs_matches(t1, cind.pattern):
                state.add_violation(key, t1)
