"""Incremental violation detection under tuple insertions and deletions.

`check_database` rescans everything; a cleaning tool watching a live
database wants the *delta*. :class:`IncrementalChecker` owns a database
instance and a constraint set (normalised on entry) and maintains, per
constraint, just enough state to update violation sets in time
proportional to the touched groups:

* per normal-form CFD — the tuples of each LHS-pattern-matching group,
  keyed by their ``X`` projection, plus the set of violated group keys;
* per normal-form CIND — a witness count per required ``Y``-projection
  (counting RHS tuples whose ``Yp`` matches the pattern) and the set of
  violating LHS tuples.

Every mutation goes through :meth:`insert` / :meth:`delete`, which apply
it to the underlying database *and* the state. The test-suite
cross-validates against full rechecks on randomized operation sequences.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.patterns import matches_all
from repro.core.violations import ConstraintSet
from repro.errors import ConstraintError
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.values import is_wildcard


@dataclass
class _CFDState:
    cfd: CFD
    #: group key (X projection) -> multiset of RHS values in the group
    groups: dict[tuple, Counter] = field(default_factory=dict)
    violated: set[tuple] = field(default_factory=set)

    def group_violated(self, key: tuple) -> bool:
        counter = self.groups.get(key)
        if not counter:
            return False
        if len(counter) > 1:
            return True
        pattern_value = self.cfd.pattern.rhs_value(self.cfd.rhs_attribute)
        if is_wildcard(pattern_value):
            return False
        (value,) = counter
        return value != pattern_value

    def refresh(self, key: tuple) -> None:
        if self.group_violated(key):
            self.violated.add(key)
        else:
            self.violated.discard(key)


@dataclass
class _CINDState:
    cind: CIND
    #: required Y-projection -> number of pattern-matching RHS witnesses
    witness_count: Counter = field(default_factory=Counter)
    #: violating LHS tuples (premise matched, no witness)
    violated: set[Tuple] = field(default_factory=set)


class IncrementalChecker:
    """Violation bookkeeping for one database under single-tuple updates."""

    def __init__(self, db: DatabaseInstance, sigma: ConstraintSet):
        self.db = db
        self.sigma = sigma.normalized()
        self._cfd_states: dict[str, list[_CFDState]] = {}
        self._cind_lhs: dict[str, list[_CINDState]] = {}
        self._cind_rhs: dict[str, list[_CINDState]] = {}
        self._cind_states: list[_CINDState] = []
        for cfd in self.sigma.cfds:
            state = _CFDState(cfd)
            self._cfd_states.setdefault(cfd.relation.name, []).append(state)
        for cind in self.sigma.cinds:
            state = _CINDState(cind)
            self._cind_states.append(state)
            self._cind_lhs.setdefault(cind.lhs_relation.name, []).append(state)
            self._cind_rhs.setdefault(cind.rhs_relation.name, []).append(state)
        for inst in db:
            for t in inst:
                self._account_insert(t)
        # Initial CIND violation sets need the witness counts complete first.
        for state in self._cind_states:
            self._rebuild_cind_violations(state)

    # -- public API -----------------------------------------------------------

    def insert(self, relation: str, row: Tuple | Sequence[Any] | Mapping[str, Any]) -> bool:
        """Insert a tuple; returns False (no-op) if it was already present."""
        instance = self.db[relation]
        before = len(instance)
        instance.add(row)
        if len(instance) == before:
            return False
        t = row if isinstance(row, Tuple) else instance.tuples[-1]
        self._account_insert(t)
        self._settle_cinds_after_insert(t)
        return True

    def delete(self, relation: str, row: Tuple) -> bool:
        """Delete a tuple; returns False if it was not present."""
        if not isinstance(row, Tuple):
            raise ConstraintError("delete expects a Tuple object")
        if not self.db[relation].discard(row):
            return False
        self._account_delete(row)
        return True

    @property
    def is_clean(self) -> bool:
        return self.violation_count == 0

    @property
    def violation_count(self) -> int:
        total = sum(
            len(s.violated)
            for states in self._cfd_states.values()
            for s in states
        )
        total += sum(len(s.violated) for s in self._cind_states)
        return total

    def violations(self) -> dict[str, int]:
        """Current violation counts per constraint name."""
        out: dict[str, int] = {}
        for states in self._cfd_states.values():
            for s in states:
                if s.violated:
                    out[s.cfd.name or repr(s.cfd)] = len(s.violated)
        for s in self._cind_states:
            if s.violated:
                out[s.cind.name or repr(s.cind)] = len(s.violated)
        return out

    def violating_cind_tuples(self) -> set[Tuple]:
        out: set[Tuple] = set()
        for s in self._cind_states:
            out |= s.violated
        return out

    # -- CFD bookkeeping ----------------------------------------------------------

    def _cfd_key(self, state: _CFDState, t: Tuple) -> tuple | None:
        cfd = state.cfd
        key = t.project(cfd.lhs)
        if not matches_all(key, cfd.pattern.lhs_projection(cfd.lhs)):
            return None
        return key

    def _account_insert(self, t: Tuple) -> None:
        for state in self._cfd_states.get(t.schema.name, ()):
            key = self._cfd_key(state, t)
            if key is None:
                continue
            state.groups.setdefault(key, Counter())[
                t[state.cfd.rhs_attribute]
            ] += 1
            state.refresh(key)
        for state in self._cind_rhs.get(t.schema.name, ()):
            cind = state.cind
            if matches_all(
                t.project(cind.yp), cind.pattern.rhs_projection(cind.yp)
            ):
                state.witness_count[t.project(cind.y)] += 1
        for state in self._cind_lhs.get(t.schema.name, ()):
            cind = state.cind
            if not cind.lhs_matches(t, cind.pattern):
                continue
            # witness_count may not be final during __init__; the
            # constructor rebuilds afterwards. For live inserts it is exact.
            if state.witness_count[t.project(cind.x)] == 0:
                state.violated.add(t)

    def _account_delete(self, t: Tuple) -> None:
        for state in self._cfd_states.get(t.schema.name, ()):
            key = self._cfd_key(state, t)
            if key is None:
                continue
            counter = state.groups.get(key)
            if counter is not None:
                value = t[state.cfd.rhs_attribute]
                counter[value] -= 1
                if counter[value] <= 0:
                    del counter[value]
                if not counter:
                    del state.groups[key]
            state.refresh(key)
        for state in self._cind_lhs.get(t.schema.name, ()):
            state.violated.discard(t)
        for state in self._cind_rhs.get(t.schema.name, ()):
            cind = state.cind
            if not matches_all(
                t.project(cind.yp), cind.pattern.rhs_projection(cind.yp)
            ):
                continue
            key = t.project(cind.y)
            state.witness_count[key] -= 1
            if state.witness_count[key] <= 0:
                del state.witness_count[key]
                self._mark_orphans(state, key)

    def _settle_cinds_after_insert(self, t: Tuple) -> None:
        """A new RHS witness may clear pending LHS violations."""
        for state in self._cind_rhs.get(t.schema.name, ()):
            cind = state.cind
            if not matches_all(
                t.project(cind.yp), cind.pattern.rhs_projection(cind.yp)
            ):
                continue
            key = t.project(cind.y)
            if state.witness_count.get(key, 0) > 0 and state.violated:
                state.violated = {
                    t1 for t1 in state.violated if t1.project(cind.x) != key
                }

    def _mark_orphans(self, state: _CINDState, key: tuple) -> None:
        """The last witness for *key* vanished: LHS tuples become violations."""
        cind = state.cind
        lhs_instance = self.db[cind.lhs_relation.name]
        for t1 in lhs_instance.lookup(cind.x, key):
            if cind.lhs_matches(t1, cind.pattern):
                state.violated.add(t1)

    def _rebuild_cind_violations(self, state: _CINDState) -> None:
        cind = state.cind
        state.violated = set()
        for t1 in self.db[cind.lhs_relation.name]:
            if not cind.lhs_matches(t1, cind.pattern):
                continue
            if state.witness_count.get(t1.project(cind.x), 0) == 0:
                state.violated.add(t1)
