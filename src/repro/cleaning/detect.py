"""Constraint-based error detection (the data-cleaning side of the paper).

Example 1.2's pitch: traditional FDs/INDs miss errors (tuple ``t12``) that
CFDs/CINDs catch. Detection itself now lives behind the unified
:mod:`repro.api` facade — ``api.connect(db, sigma, backend=...)`` — which
fronts the shared-scan engine, the naive oracle, the SQL backend and the
incremental checker with one report shape. This module keeps

* :class:`DetectionResult` — the per-tuple error table the repair step
  consumes — and :func:`build_detection_result` which derives it from any
  backend's ``ViolationReport``;
* :func:`compare_with_traditional` — the Example 1.2 experiment;
* thin **deprecated** shims (:func:`detect_errors`,
  :func:`detect_errors_sql`) for the pre-facade entry points.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.core.violations import ConstraintSet, ViolationReport
from repro.engine import database_is_clean
from repro.relational.instance import DatabaseInstance, Tuple


@dataclass
class DetectionResult:
    """Violations organised for reporting and repair."""

    report: ViolationReport
    #: (relation, tuple) -> names of constraints it participates in violating.
    dirty_tuples: dict[tuple[str, Tuple], list[str]] = field(default_factory=dict)

    @property
    def is_clean(self) -> bool:
        return self.report.is_clean

    @property
    def dirty_count(self) -> int:
        return len(self.dirty_tuples)

    def summary(self) -> str:
        lines = [self.report.summary()]
        if self.dirty_tuples:
            lines.append(f"{self.dirty_count} distinct dirty tuple(s):")
            # Sort for deterministic output across Python hash seeds and
            # backends (dict order would expose violation-discovery order).
            shown = sorted(
                self.dirty_tuples.items(),
                key=lambda item: (item[0][0], repr(item[0][1])),
            )
            for (relation, t), names in shown[:20]:
                lines.append(f"  {t!r} <- {', '.join(sorted(set(names)))}")
            if self.dirty_count > 20:
                lines.append(f"  ... and {self.dirty_count - 20} more")
        return "\n".join(lines)


def build_detection_result(report: ViolationReport) -> DetectionResult:
    """Index a report's offending tuples into a :class:`DetectionResult`.

    Works on the report of *any* backend (they are identical), which is
    how ``Session.detect()`` produces repair-ready error tables.
    """
    dirty: dict[tuple[str, Tuple], list[str]] = {}
    for violation in report.cfd_violations:
        name = report.label_for(violation.cfd)
        for t in violation.tuples:
            dirty.setdefault((violation.cfd.relation.name, t), []).append(name)
    for violation in report.cind_violations:
        name = report.label_for(violation.cind)
        key = (violation.cind.lhs_relation.name, violation.tuple_)
        dirty.setdefault(key, []).append(name)
    return DetectionResult(report=report, dirty_tuples=dirty)


def detect_errors(
    db: DatabaseInstance, sigma: ConstraintSet, naive: bool = False
) -> DetectionResult:
    """Deprecated shim: use ``api.connect(db, sigma).detect()``.

    ``naive=True`` maps to the ``naive`` backend (the reference oracle).
    """
    warnings.warn(
        "detect_errors() is deprecated; use "
        "repro.api.connect(db, sigma, backend=...).detect()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import connect

    return connect(db, sigma, backend="naive" if naive else "memory").detect()


def is_clean(db: DatabaseInstance, sigma: ConstraintSet) -> bool:
    """``D |= Σ`` without materializing violations (engine early-exit mode)."""
    return database_is_clean(db, sigma)


def detect_errors_in_file(path, sigma: ConstraintSet) -> DetectionResult:
    """Out-of-core detection: check a sqlite database file *in place*.

    Routes through the facade's ``sqlfile`` backend — nothing is loaded
    into memory beyond the violating tuples — and returns the same
    repair-ready :class:`DetectionResult` as every other path. The file
    is opened read-only (detection never writes), so write-protected
    snapshots audit fine.
    """
    from repro.api import ExecutionOptions, connect

    with connect(
        path,
        sigma,
        backend="sqlfile",
        options=ExecutionOptions(readonly=True),
    ) as session:
        return session.detect()


def detect_errors_sql(
    db: DatabaseInstance, sigma: ConstraintSet
) -> dict[str, set[tuple[Any, ...]]]:
    """Deprecated shim: use ``api.connect(db, sigma, backend="sql")``.

    Returns the historical shape (violating rows per constraint name,
    zero-violation constraints omitted). The facade's
    ``SQLBackend.violating_rows()`` keys every constraint instead, and
    ``Session.check()`` gives a full cross-comparable ``ViolationReport``.
    """
    warnings.warn(
        "detect_errors_sql() is deprecated; use "
        'repro.api.connect(db, sigma, backend="sql").check() (or '
        ".backend.violating_rows())",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import connect

    with connect(db, sigma, backend="sql") as session:
        rows = session.backend.violating_rows()
    return {label: r for label, r in rows.items() if r}


def compare_with_traditional(
    db: DatabaseInstance, sigma: ConstraintSet
) -> dict[str, dict[str, int]]:
    """Example 1.2 quantified: violations under Σ vs its traditional core.

    The "traditional core" keeps only the standard FDs and INDs of Σ
    (all-wildcard single-row tableaux) — the dependencies pre-CFD/CIND
    cleaning would use. Returns violation counts under both, showing what
    the conditional extensions catch that the classical dependencies miss.
    """
    from repro.api import connect

    traditional = ConstraintSet(
        sigma.schema,
        cfds=[c for c in sigma.cfds if c.is_standard_fd],
        cinds=[c for c in sigma.cinds if c.is_standard_ind],
    )
    # Only totals are reported, so use the backends' count-only fast path.
    full = connect(db, sigma).count()
    classic = connect(db, traditional).count()
    return {
        "conditional": {
            "constraints": len(sigma),
            "violations": full.total,
        },
        "traditional": {
            "constraints": len(traditional),
            "violations": classic.total,
        },
    }
