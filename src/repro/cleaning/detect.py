"""Constraint-based error detection (the data-cleaning side of the paper).

Example 1.2's pitch: traditional FDs/INDs miss errors (tuple ``t12``) that
CFDs/CINDs catch. This module wraps the violation engines — the shared-scan
one of :mod:`repro.engine` (default), the naive per-constraint oracle of
:mod:`repro.core.violations`, and the SQL one of
:mod:`repro.sql.violations` — behind one call and produces a per-tuple
error table that the repair step consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.violations import (
    ConstraintSet,
    ViolationReport,
    check_database,
    check_database_naive,
)
from repro.engine import count_violations, database_is_clean
from repro.relational.instance import DatabaseInstance, Tuple
from repro.sql.violations import sql_check_database


@dataclass
class DetectionResult:
    """Violations organised for reporting and repair."""

    report: ViolationReport
    #: (relation, tuple) -> names of constraints it participates in violating.
    dirty_tuples: dict[tuple[str, Tuple], list[str]] = field(default_factory=dict)

    @property
    def is_clean(self) -> bool:
        return self.report.is_clean

    @property
    def dirty_count(self) -> int:
        return len(self.dirty_tuples)

    def summary(self) -> str:
        lines = [self.report.summary()]
        if self.dirty_tuples:
            lines.append(f"{self.dirty_count} distinct dirty tuple(s):")
            for (relation, t), names in list(self.dirty_tuples.items())[:20]:
                lines.append(f"  {t!r} <- {', '.join(sorted(set(names)))}")
            if self.dirty_count > 20:
                lines.append(f"  ... and {self.dirty_count - 20} more")
        return "\n".join(lines)


def detect_errors(
    db: DatabaseInstance, sigma: ConstraintSet, naive: bool = False
) -> DetectionResult:
    """Find every CFD/CIND violation and index the offending tuples.

    Detection runs on the shared-scan engine by default; ``naive=True``
    evaluates each constraint independently (the reference oracle — useful
    for cross-checking and timing comparisons).
    """
    checker = check_database_naive if naive else check_database
    report = checker(db, sigma)
    dirty: dict[tuple[str, Tuple], list[str]] = {}
    for violation in report.cfd_violations:
        name = report.label_for(violation.cfd)
        for t in violation.tuples:
            dirty.setdefault((violation.cfd.relation.name, t), []).append(name)
    for violation in report.cind_violations:
        name = report.label_for(violation.cind)
        key = (violation.cind.lhs_relation.name, violation.tuple_)
        dirty.setdefault(key, []).append(name)
    return DetectionResult(report=report, dirty_tuples=dirty)


def is_clean(db: DatabaseInstance, sigma: ConstraintSet) -> bool:
    """``D |= Σ`` without materializing violations (engine early-exit mode)."""
    return database_is_clean(db, sigma)


def detect_errors_sql(
    db: DatabaseInstance, sigma: ConstraintSet
) -> dict[str, set[tuple[Any, ...]]]:
    """SQL-backed detection (violating rows per constraint name)."""
    return sql_check_database(db, sigma)


def compare_with_traditional(
    db: DatabaseInstance, sigma: ConstraintSet
) -> dict[str, dict[str, int]]:
    """Example 1.2 quantified: violations under Σ vs its traditional core.

    The "traditional core" keeps only the standard FDs and INDs of Σ
    (all-wildcard single-row tableaux) — the dependencies pre-CFD/CIND
    cleaning would use. Returns violation counts under both, showing what
    the conditional extensions catch that the classical dependencies miss.
    """
    traditional = ConstraintSet(
        sigma.schema,
        cfds=[c for c in sigma.cfds if c.is_standard_fd],
        cinds=[c for c in sigma.cinds if c.is_standard_ind],
    )
    # Only totals are reported, so use the engine's count-only fast path.
    full = count_violations(db, sigma)
    classic = count_violations(db, traditional)
    return {
        "conditional": {
            "constraints": len(sigma),
            "violations": full.total,
        },
        "traditional": {
            "constraints": len(traditional),
            "violations": classic.total,
        },
    }
