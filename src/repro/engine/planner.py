"""Shared-scan detection planner.

The naive checker (`repro.core.violations.check_database_naive`) evaluates
each constraint independently: every pattern row of every CFD rebuilds the
full ``X``-projection group-by of its relation, and every CIND row probes a
witness per LHS tuple. On a Σ with many constraints per relation this
re-scans the same data ``|Σ| · |tableau|`` times.

The planner turns a :class:`~repro.core.violations.ConstraintSet` into a
:class:`DetectionPlan` whose unit of work is a *scan*, not a constraint:

* **CFD scan groups** — CFDs are bucketed by ``(relation, X)``. One pass
  over the relation builds the ``X``-projection group-by that every pattern
  row of every CFD in the bucket then consumes (iterating distinct group
  keys, not tuples).
* **CIND witness specs** — pattern rows are bucketed by
  ``(R2, Y, Yp, tp[Yp])``. One pass over ``R2`` per relation computes, for
  every spec at once, the set of ``Y``-projections that have a
  ``Yp``-matching witness. LHS rows sharing a spec then test tuples by set
  membership instead of per-tuple index lookup + linear ``Yp`` filtering.
* **CIND LHS scan lists** — pattern rows are bucketed by LHS relation so
  the executor walks each LHS relation once, evaluating every row against
  each tuple with precompiled positional checks (no per-row
  ``Tuple.project`` calls).

Pattern rows are precompiled into ``(position, constant)`` check lists
(wildcards are dropped — they match everything, including chase variables,
exactly as :func:`repro.core.patterns.matches` specifies), so the hot loop
is plain tuple indexing and ``==``.

Plans are immutable and reusable: build once per Σ, execute against any
instance (see :mod:`repro.engine.executor`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence, Union

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.violations import ConstraintSet
from repro.relational.schema import RelationSchema
from repro.relational.values import is_wildcard

#: Precompiled pattern: ``(position, constant)`` pairs; a value sequence
#: passes when every listed position equals its constant.
Checks = tuple[tuple[int, Any], ...]


def attribute_positions(
    relation: RelationSchema, attributes: Iterable[str]
) -> tuple[int, ...]:
    """Positions of *attributes* within the relation's value tuples."""
    return relation.positions_of(attributes)


def compile_checks(
    pattern_values: Sequence[Any], positions: Sequence[int]
) -> Checks:
    """Precompile a pattern projection into ``(position, constant)`` pairs.

    Wildcard entries are dropped: ``_`` matches every value (constants and
    chase variables alike), so only constant entries constrain anything.
    """
    return tuple(
        (p, v) for p, v in zip(positions, pattern_values) if not is_wildcard(v)
    )


def passes(values: Sequence[Any], checks: Checks) -> bool:
    """Does the value sequence satisfy every precompiled check?"""
    for position, constant in checks:
        if values[position] != constant:
            return False
    return True


@dataclass(frozen=True)
class PruneMap:
    """Which constraints a static analysis proved safely prunable.

    Maps pruned constraint index -> donor constraint index, separately
    for CFDs and CINDs. The planner only accepts *violation-equivalent*
    pruning: the pruned constraint must be structurally identical to its
    donor (same relation(s), attribute lists, and pattern tableau — names
    may differ), because only then can the donor's violations be replayed
    as the pruned constraint's, bit-identically, on every instance —
    dirty ones included. Donors must not themselves be pruned.

    Produced by :func:`repro.analyze.redundancy.detection_prune_map`;
    broader implication facts (entailed-but-not-identical constraints)
    stay advisory findings because their violation lists are not
    reconstructible on dirty data.
    """

    cfd_donors: Mapping[int, int] = field(default_factory=dict)
    cind_donors: Mapping[int, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.cfd_donors) or bool(self.cind_donors)


def _validate_prune(
    constraints: Sequence[Union[CFD, CIND]],
    donors: Mapping[int, int],
    kind: str,
) -> None:
    for pruned, donor in donors.items():
        if not 0 <= pruned < len(constraints) or not 0 <= donor < len(constraints):
            raise ValueError(
                f"{kind} prune entry {pruned} -> {donor} is out of range "
                f"for |{kind}s| = {len(constraints)}"
            )
        if pruned == donor or donor in donors:
            raise ValueError(
                f"{kind} prune entry {pruned} -> {donor}: donors must be "
                "kept (non-pruned) constraints"
            )
        if constraints[pruned] != constraints[donor]:
            raise ValueError(
                f"{kind} prune entry {pruned} -> {donor}: plan-level "
                "pruning requires violation-equivalent (structurally "
                "identical) constraints; implied-but-different constraints "
                "must stay planned"
            )


class CFDRowTask:
    """One (CFD, pattern row) pair inside a CFD scan group.

    ``key_checks`` constrain the shared group key (positions relative to the
    group's ``X`` projection); ``rhs_checks`` constrain a tuple's ``Y``
    projection (positions relative to ``rhs_positions``).
    """

    __slots__ = (
        "cfd",
        "cfd_index",
        "row_index",
        "key_checks",
        "rhs_positions",
        "rhs_checks",
    )

    def __init__(
        self,
        cfd: CFD,
        cfd_index: int,
        row_index: int,
        key_checks: Checks,
        rhs_positions: tuple[int, ...],
        rhs_checks: Checks,
    ):
        self.cfd = cfd
        self.cfd_index = cfd_index
        self.row_index = row_index
        self.key_checks = key_checks
        self.rhs_positions = rhs_positions
        self.rhs_checks = rhs_checks


class CFDScanGroup:
    """All (CFD, row) tasks that share one ``(relation, X)`` group-by."""

    __slots__ = ("relation", "lhs", "lhs_positions", "tasks")

    def __init__(self, relation: str, lhs: tuple[str, ...], lhs_positions: tuple[int, ...]):
        self.relation = relation
        self.lhs = lhs
        self.lhs_positions = lhs_positions
        self.tasks: list[CFDRowTask] = []

    def rhs_variants(self) -> list[tuple[int, ...]]:
        """Distinct RHS position tuples needed by this group's tasks."""
        return list(dict.fromkeys(task.rhs_positions for task in self.tasks))

    def __repr__(self) -> str:
        return (
            f"<CFDScanGroup {self.relation}[{', '.join(self.lhs)}] "
            f"{len(self.tasks)} row task(s)>"
        )


class WitnessSpec:
    """One shared witness computation: ``(R2, Y, Yp, tp[Yp])``.

    Executing a spec yields the set of ``Y``-projections of ``R2`` tuples
    whose ``Yp`` projection matches the pattern constants. Every CIND row
    with the same spec key reads the same set.
    """

    __slots__ = ("rhs_relation", "y", "y_positions", "yp_checks")

    def __init__(
        self,
        rhs_relation: str,
        y: tuple[str, ...],
        y_positions: tuple[int, ...],
        yp_checks: Checks,
    ):
        self.rhs_relation = rhs_relation
        self.y = y
        self.y_positions = y_positions
        self.yp_checks = yp_checks

    def __repr__(self) -> str:
        return (
            f"<WitnessSpec {self.rhs_relation}[{', '.join(self.y) or 'nil'}] "
            f"{len(self.yp_checks)} Yp check(s)>"
        )


class CINDRowTask:
    """One (CIND, pattern row) pair, bound to its shared witness spec.

    ``lhs_checks`` use *absolute* positions into LHS value tuples (they
    cover ``X ∪ Xp``); ``x_positions`` project the embedded-IND key that is
    tested against the witness set.
    """

    __slots__ = (
        "cind",
        "cind_index",
        "row_index",
        "lhs_checks",
        "x_positions",
        "witness",
    )

    def __init__(
        self,
        cind: CIND,
        cind_index: int,
        row_index: int,
        lhs_checks: Checks,
        x_positions: tuple[int, ...],
        witness: WitnessSpec,
    ):
        self.cind = cind
        self.cind_index = cind_index
        self.row_index = row_index
        self.lhs_checks = lhs_checks
        self.x_positions = x_positions
        self.witness = witness


class DetectionPlan:
    """A shared-scan evaluation plan for one constraint set.

    Attributes
    ----------
    sigma:
        The planned constraint set (kept for labels and output ordering).
    cfd_groups:
        CFD scan groups in first-seen ``(relation, X)`` order.
    witness_specs:
        Deduplicated witness specs, bucketed by RHS relation name.
    cind_scans:
        CIND row tasks bucketed by LHS relation name.
    """

    def __init__(self, sigma: ConstraintSet):
        self.sigma = sigma
        self.cfd_groups: list[CFDScanGroup] = []
        self.witness_specs: dict[str, list[WitnessSpec]] = {}
        self.cind_scans: dict[str, list[CINDRowTask]] = {}
        #: Tasks in (constraint index, row index) order — the naive
        #: checker's output order, used to assemble identical reports.
        #: Pruned constraints' tasks are listed here too (they anchor
        #: report positions) but belong to no scan group/scan list.
        self.cfd_tasks: list[CFDRowTask] = []
        self.cind_tasks: list[CINDRowTask] = []
        #: Violation-equivalent pruning (see :class:`PruneMap`): pruned
        #: constraint index -> donor index, and per-task donor lookup
        #: (``id(pruned task) -> donor task``) used at assembly time to
        #: replay the donor's hits as the pruned constraint's.
        self.pruned_cfd_donors: dict[int, int] = {}
        self.pruned_cind_donors: dict[int, int] = {}
        self.task_donors: dict[int, CFDRowTask | CINDRowTask] = {}

    @property
    def pruned_task_count(self) -> int:
        """Tasks answered by donor replay instead of scanning."""
        return len(self.task_donors)

    @property
    def shared_scan_count(self) -> int:
        """Number of relation scans the executor performs."""
        return (
            len(self.cfd_groups)
            + len(self.witness_specs)
            + len(self.cind_scans)
        )

    @property
    def naive_scan_count(self) -> int:
        """Scans the per-constraint reference evaluation would perform."""
        return len(self.cfd_tasks) + 2 * len(self.cind_tasks)

    def __repr__(self) -> str:
        return (
            f"<DetectionPlan {len(self.cfd_tasks)} CFD task(s) in "
            f"{len(self.cfd_groups)} group(s), {len(self.cind_tasks)} CIND "
            f"task(s) over {sum(len(s) for s in self.witness_specs.values())} "
            f"witness spec(s)>"
        )


def plan_detection(
    sigma: ConstraintSet, analysis: PruneMap | None = None
) -> DetectionPlan:
    """Compile *sigma* into a :class:`DetectionPlan` of shared scans.

    With *analysis* (a :class:`PruneMap` from the static analyzer), the
    scans of proved-duplicate constraints are dropped: their tasks stay in
    ``cfd_tasks``/``cind_tasks`` to anchor report positions, but belong to
    no scan group, and assembly replays the donor's hits as theirs — so
    reports stay bit-identical (including order) while the scan work
    shrinks. The planner re-verifies structural identity and raises on any
    entry it cannot prove violation-equivalent.
    """
    plan = DetectionPlan(sigma)
    cfd_donors = dict(analysis.cfd_donors) if analysis is not None else {}
    cind_donors = dict(analysis.cind_donors) if analysis is not None else {}
    _validate_prune(sigma.cfds, cfd_donors, "CFD")
    _validate_prune(sigma.cinds, cind_donors, "CIND")
    plan.pruned_cfd_donors = cfd_donors
    plan.pruned_cind_donors = cind_donors

    groups: dict[tuple[str, tuple[str, ...]], CFDScanGroup] = {}
    cfd_task_rows: dict[int, list[CFDRowTask]] = {}
    pending_cfd: list[CFDRowTask] = []
    for cfd_index, cfd in enumerate(sigma.cfds):
        pruned = cfd_index in cfd_donors
        group: CFDScanGroup | None = None
        if not pruned:
            group_key = (cfd.relation.name, cfd.lhs)
            group = groups.get(group_key)
            if group is None:
                group = CFDScanGroup(
                    cfd.relation.name,
                    cfd.lhs,
                    attribute_positions(cfd.relation, cfd.lhs),
                )
                groups[group_key] = group
                plan.cfd_groups.append(group)
        rhs_positions = attribute_positions(cfd.relation, cfd.rhs)
        for row_index, row in enumerate(cfd.tableau):
            task = CFDRowTask(
                cfd,
                cfd_index,
                row_index,
                key_checks=compile_checks(
                    row.lhs_projection(cfd.lhs), range(len(cfd.lhs))
                ),
                rhs_positions=rhs_positions,
                rhs_checks=compile_checks(
                    row.rhs_projection(cfd.rhs), range(len(cfd.rhs))
                ),
            )
            if group is not None:
                group.tasks.append(task)
            else:
                pending_cfd.append(task)
            plan.cfd_tasks.append(task)
            cfd_task_rows.setdefault(cfd_index, []).append(task)
    for task in pending_cfd:
        donor_rows = cfd_task_rows[cfd_donors[task.cfd_index]]
        plan.task_donors[id(task)] = donor_rows[task.row_index]

    spec_map: dict[tuple, WitnessSpec] = {}
    registered_specs: set[int] = set()
    cind_task_rows: dict[int, list[CINDRowTask]] = {}
    pending_cind: list[CINDRowTask] = []
    for cind_index, cind in enumerate(sigma.cinds):
        pruned = cind_index in cind_donors
        lhs_attrs = cind.x + cind.xp
        lhs_positions = attribute_positions(cind.lhs_relation, lhs_attrs)
        x_positions = attribute_positions(cind.lhs_relation, cind.x)
        y_positions = attribute_positions(cind.rhs_relation, cind.y)
        yp_positions = attribute_positions(cind.rhs_relation, cind.yp)
        for row_index, row in enumerate(cind.tableau):
            yp_values = row.rhs_projection(cind.yp)
            spec_key = (
                cind.rhs_relation.name,
                cind.y,
                cind.yp,
                yp_values,
            )
            spec = spec_map.get(spec_key)
            if spec is None:
                spec = WitnessSpec(
                    cind.rhs_relation.name,
                    cind.y,
                    y_positions,
                    compile_checks(yp_values, yp_positions),
                )
                spec_map[spec_key] = spec
            # Register the spec for execution only once a *live* task needs
            # it — a spec used solely by pruned rows would be a dead scan.
            if not pruned and id(spec) not in registered_specs:
                registered_specs.add(id(spec))
                plan.witness_specs.setdefault(
                    cind.rhs_relation.name, []
                ).append(spec)
            task = CINDRowTask(
                cind,
                cind_index,
                row_index,
                lhs_checks=compile_checks(
                    row.lhs_projection(lhs_attrs), lhs_positions
                ),
                x_positions=x_positions,
                witness=spec,
            )
            if pruned:
                pending_cind.append(task)
            else:
                plan.cind_scans.setdefault(
                    cind.lhs_relation.name, []
                ).append(task)
            plan.cind_tasks.append(task)
            cind_task_rows.setdefault(cind_index, []).append(task)
    for task in pending_cind:
        donor_rows = cind_task_rows[cind_donors[task.cind_index]]
        plan.task_donors[id(task)] = donor_rows[task.row_index]
    return plan
