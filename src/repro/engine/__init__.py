"""Shared-scan violation detection engine (planner + executor).

Table 1/2 of the paper are detection workloads: find every CFD/CIND
violation over instances of up to hundreds of thousands of tuples. The
per-constraint reference evaluation
(:func:`repro.core.violations.check_database_naive`, built on
``CFD.iter_violations`` / ``CIND.iter_violations``) re-scans the data once
per pattern row — ``Σ`` with many constraints on the same relation costs
``|Σ| · |tableau|`` relation scans. This package computes each shared
grouping/semijoin **once** and lets every constraint that needs it read the
result, in the "reuse results of nested subproblems" spirit of Russian Doll
Search.

Plan/execute split
------------------
Detection runs in two phases with an explicit intermediate artifact:

1. **Plan** (:func:`~repro.engine.planner.plan_detection`): compile a
   :class:`~repro.core.violations.ConstraintSet` into a
   :class:`~repro.engine.planner.DetectionPlan` —

   * CFDs bucketed by ``(relation, X)``: one scan group per distinct LHS
     attribute list; every pattern row of every CFD in the bucket becomes a
     :class:`~repro.engine.planner.CFDRowTask` over the shared group-by;
   * CIND pattern rows bucketed by ``(R2, Y, Yp, tp[Yp])`` into
     deduplicated :class:`~repro.engine.planner.WitnessSpec`\\ s (one
     semijoin key-set each) plus per-LHS-relation scan lists of
     :class:`~repro.engine.planner.CINDRowTask`\\ s;
   * all pattern matching precompiled to ``(position, constant)`` checks.

   Plans are immutable: build once per Σ, execute against many instances
   (the repair loop and the benchmarks do exactly this).

2. **Execute** (:func:`~repro.engine.executor.execute_plan`): walk each
   relation once per scan group / witness bucket and evaluate every task
   against the shared state. Scans are *columnar*: projection key lists
   are built with ``zip`` over the relation's lazily materialized,
   mutation-versioned column view (one C-speed pass per distinct
   ``(relation, positions)``), and structurally identical tasks are
   evaluated once and replicated. Output ordering matches the naive
   checker exactly, so ``detect(db, sigma)`` is a drop-in replacement.

Versioned scan caches
---------------------
:class:`~repro.engine.cache.ScanCache` (one per plan, owned by the
session/backend) memoizes every scan unit's result against the relation
mutation versions it was computed from: repeated ``check``/``count``/
``is_clean`` calls over unchanged data replay cached hit lists in time
proportional to the number of violations, and a repair round re-scans
only the relations its edits touched. See :mod:`repro.engine.cache` for
the BRAVO-style fast-read-path rationale.

Count-only fast path
--------------------
``execute_plan(plan, db, mode="count")`` (or :func:`count_violations`)
answers ``total`` / ``is_clean`` / per-constraint-count questions without
materializing a single ``CFDViolation``/``CINDViolation`` object — the CFD
scans keep only RHS-projection sets per group key, never tuple lists.
:func:`database_is_clean` goes further and returns at the first violation
found. The cross-validation suite (``tests/test_engine_cross.py``) checks
all modes against the naive oracle on randomized instances.
"""

from __future__ import annotations

from repro.core.violations import ConstraintSet, ViolationReport
from repro.engine.cache import ScanCache, SQLScanCache, projection_column_keys
from repro.engine.executor import (
    DetectionSummary,
    assemble_report,
    assemble_summary,
    cfd_group_hits,
    cind_scan_hits,
    execute_plan,
    group_tuples_by,
    plan_has_violation,
    projection_keys,
    witness_sets,
)
from repro.engine.planner import (
    CFDRowTask,
    CFDScanGroup,
    CINDRowTask,
    DetectionPlan,
    PruneMap,
    WitnessSpec,
    attribute_positions,
    compile_checks,
    passes,
    plan_detection,
)
from repro.engine.shards import (
    CFDGroupState,
    CINDScanState,
    ShardSpec,
    WitnessState,
    cfd_finalize,
    cfd_map_shard,
    cind_map_shard,
    make_shards,
    witness_map_shard,
)
from repro.relational.instance import DatabaseInstance

__all__ = [
    "CFDGroupState",
    "CFDRowTask",
    "CFDScanGroup",
    "CINDRowTask",
    "CINDScanState",
    "DetectionPlan",
    "DetectionSummary",
    "PruneMap",
    "SQLScanCache",
    "ScanCache",
    "ShardSpec",
    "WitnessSpec",
    "WitnessState",
    "assemble_report",
    "assemble_summary",
    "attribute_positions",
    "cfd_finalize",
    "cfd_group_hits",
    "cfd_map_shard",
    "cind_map_shard",
    "cind_scan_hits",
    "compile_checks",
    "count_violations",
    "database_is_clean",
    "detect",
    "execute_plan",
    "group_tuples_by",
    "make_shards",
    "passes",
    "plan_detection",
    "plan_has_violation",
    "projection_column_keys",
    "projection_keys",
    "witness_map_shard",
    "witness_sets",
]


def detect(db: DatabaseInstance, sigma: ConstraintSet) -> ViolationReport:
    """Plan + execute: the shared-scan equivalent of ``check_database``."""
    return execute_plan(plan_detection(sigma), db, mode="full")


def count_violations(
    db: DatabaseInstance, sigma: ConstraintSet
) -> DetectionSummary:
    """Count-only fast path: totals per constraint, no violation objects."""
    return execute_plan(plan_detection(sigma), db, mode="count")


def database_is_clean(db: DatabaseInstance, sigma: ConstraintSet) -> bool:
    """``D |= Σ`` via shared scans with early exit on the first violation."""
    return not plan_has_violation(plan_detection(sigma), db)
