"""Shared-scan violation detection engine (planner + executor).

Table 1/2 of the paper are detection workloads: find every CFD/CIND
violation over instances of up to hundreds of thousands of tuples. The
per-constraint reference evaluation
(:func:`repro.core.violations.check_database_naive`, built on
``CFD.iter_violations`` / ``CIND.iter_violations``) re-scans the data once
per pattern row — ``Σ`` with many constraints on the same relation costs
``|Σ| · |tableau|`` relation scans. This package computes each shared
grouping/semijoin **once** and lets every constraint that needs it read the
result, in the "reuse results of nested subproblems" spirit of Russian Doll
Search.

Plan/execute split
------------------
Detection runs in two phases with an explicit intermediate artifact:

1. **Plan** (:func:`~repro.engine.planner.plan_detection`): compile a
   :class:`~repro.core.violations.ConstraintSet` into a
   :class:`~repro.engine.planner.DetectionPlan` —

   * CFDs bucketed by ``(relation, X)``: one scan group per distinct LHS
     attribute list; every pattern row of every CFD in the bucket becomes a
     :class:`~repro.engine.planner.CFDRowTask` over the shared group-by;
   * CIND pattern rows bucketed by ``(R2, Y, Yp, tp[Yp])`` into
     deduplicated :class:`~repro.engine.planner.WitnessSpec`\\ s (one
     semijoin key-set each) plus per-LHS-relation scan lists of
     :class:`~repro.engine.planner.CINDRowTask`\\ s;
   * all pattern matching precompiled to ``(position, constant)`` checks.

   Plans are immutable: build once per Σ, execute against many instances
   (the repair loop and the benchmarks do exactly this).

2. **Execute** (:func:`~repro.engine.executor.execute_plan`): walk each
   relation once per scan group / witness bucket and evaluate every task
   against the shared state. Output ordering matches the naive checker
   exactly, so ``detect(db, sigma)`` is a drop-in replacement for it.

Count-only fast path
--------------------
``execute_plan(plan, db, mode="count")`` (or :func:`count_violations`)
answers ``total`` / ``is_clean`` / per-constraint-count questions without
materializing a single ``CFDViolation``/``CINDViolation`` object — the CFD
scans keep only RHS-projection sets per group key, never tuple lists.
:func:`database_is_clean` goes further and returns at the first violation
found. The cross-validation suite (``tests/test_engine_cross.py``) checks
all modes against the naive oracle on randomized instances.
"""

from __future__ import annotations

from repro.core.violations import ConstraintSet, ViolationReport
from repro.engine.executor import (
    DetectionSummary,
    assemble_report,
    assemble_summary,
    cfd_group_scan,
    cind_scan_hits,
    execute_plan,
    group_tuples_by,
    plan_has_violation,
    witness_sets,
)
from repro.engine.planner import (
    CFDRowTask,
    CFDScanGroup,
    CINDRowTask,
    DetectionPlan,
    WitnessSpec,
    attribute_positions,
    compile_checks,
    passes,
    plan_detection,
)
from repro.relational.instance import DatabaseInstance

__all__ = [
    "CFDRowTask",
    "CFDScanGroup",
    "CINDRowTask",
    "DetectionPlan",
    "DetectionSummary",
    "WitnessSpec",
    "assemble_report",
    "assemble_summary",
    "attribute_positions",
    "cfd_group_scan",
    "cind_scan_hits",
    "compile_checks",
    "count_violations",
    "database_is_clean",
    "detect",
    "execute_plan",
    "group_tuples_by",
    "passes",
    "plan_detection",
    "plan_has_violation",
    "witness_sets",
]


def detect(db: DatabaseInstance, sigma: ConstraintSet) -> ViolationReport:
    """Plan + execute: the shared-scan equivalent of ``check_database``."""
    return execute_plan(plan_detection(sigma), db, mode="full")


def count_violations(
    db: DatabaseInstance, sigma: ConstraintSet
) -> DetectionSummary:
    """Count-only fast path: totals per constraint, no violation objects."""
    return execute_plan(plan_detection(sigma), db, mode="count")


def database_is_clean(db: DatabaseInstance, sigma: ConstraintSet) -> bool:
    """``D |= Σ`` via shared scans with early exit on the first violation."""
    return not plan_has_violation(plan_detection(sigma), db)
