"""Shared-scan detection executor.

Executes a :class:`~repro.engine.planner.DetectionPlan` against a database
instance in one of three modes:

* :func:`execute_plan` with ``mode="full"`` — materializes every
  ``CFDViolation``/``CINDViolation`` into a
  :class:`~repro.core.violations.ViolationReport` whose violation lists are
  ordered exactly as the naive per-constraint checker would order them
  (constraints in Σ order, pattern rows in tableau order, groups/tuples in
  scan order), so it is a drop-in replacement.
* :func:`execute_plan` with ``mode="count"`` — the count-only fast path: a
  :class:`DetectionSummary` with totals and per-constraint counts, without
  constructing a single violation object (no group tuple lists either — the
  CFD scans keep only RHS projection sets per group key).
* :func:`plan_has_violation` — the laziest mode: returns as soon as any
  scan group surfaces one violation, for ``is_clean``-style questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.cfd import CFDViolation
from repro.core.cind import CINDViolation
from repro.core.violations import ViolationReport, constraint_labels
from repro.engine.planner import (
    CFDScanGroup,
    CINDRowTask,
    DetectionPlan,
    WitnessSpec,
    passes,
)
from repro.relational.instance import DatabaseInstance, RelationInstance, Tuple


@dataclass
class DetectionSummary:
    """Violation counts without materialized violation objects."""

    cfd_total: int = 0
    cind_total: int = 0
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.cfd_total + self.cind_total

    @property
    def is_clean(self) -> bool:
        return self.total == 0

    def by_constraint(self) -> dict[str, int]:
        """Counts per stable constraint label (``ViolationReport`` parity)."""
        return dict(self.counts)

    def __repr__(self) -> str:
        return (
            f"<DetectionSummary {self.total} violation(s): "
            f"{self.cfd_total} CFD, {self.cind_total} CIND>"
        )


# -- shared scan primitives (also used by the incremental checker) ------------


def group_tuples_by(
    instance: RelationInstance, positions: tuple[int, ...]
) -> dict[tuple[Any, ...], list[Tuple]]:
    """One-pass group-by of an instance on a value-position projection."""
    groups: dict[tuple[Any, ...], list[Tuple]] = {}
    for t in instance:
        values = t.values
        key = tuple(values[i] for i in positions)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [t]
        else:
            bucket.append(t)
    return groups


def witness_sets(
    instance: RelationInstance, specs: list[WitnessSpec]
) -> dict[WitnessSpec, set[tuple[Any, ...]]]:
    """One pass over *instance* filling every witness spec's key set."""
    results: dict[WitnessSpec, set[tuple[Any, ...]]] = {
        spec: set() for spec in specs
    }
    compiled = [
        (spec.yp_checks, spec.y_positions, results[spec]) for spec in specs
    ]
    for t in instance:
        values = t.values
        for yp_checks, y_positions, out in compiled:
            if passes(values, yp_checks):
                out.add(tuple(values[i] for i in y_positions))
    return results


# -- CFD evaluation ------------------------------------------------------------


def _cfd_group_state(
    group: CFDScanGroup, instance: RelationInstance, materialize: bool
) -> tuple[
    dict[tuple[Any, ...], list[Tuple]] | None,
    dict[tuple[int, ...], dict[tuple[Any, ...], set[tuple[Any, ...]]]],
]:
    """Scan once, producing the group-by (if materializing) and, per distinct
    RHS attribute list, the set of RHS projections observed per group key."""
    variants = group.rhs_variants()
    rhs_maps: dict[tuple[int, ...], dict[tuple[Any, ...], set]] = {
        v: {} for v in variants
    }
    groups: dict[tuple[Any, ...], list[Tuple]] | None = (
        {} if materialize else None
    )
    lhs_positions = group.lhs_positions
    for t in instance:
        values = t.values
        key = tuple(values[i] for i in lhs_positions)
        if groups is not None:
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [t]
            else:
                bucket.append(t)
        for variant in variants:
            rhs_map = rhs_maps[variant]
            seen = rhs_map.get(key)
            if seen is None:
                seen = rhs_map[key] = set()
            seen.add(tuple(values[i] for i in variant))
    return groups, rhs_maps


def _iter_cfd_group_violations(
    group: CFDScanGroup,
    instance: RelationInstance,
    materialize: bool,
) -> Iterator[tuple[Any, "CFDViolation | None"]]:
    """Yield ``(task, violation-or-None)`` for each violating (task, key).

    With ``materialize=False`` the violation slot is ``None`` (count mode).
    """
    groups, rhs_maps = _cfd_group_state(group, instance, materialize)
    if materialize:
        keys = groups
    else:
        # All variants share the same key set; pick any (there is at least
        # one variant because every task has an RHS).
        first_variant = next(iter(rhs_maps), None)
        keys = rhs_maps[first_variant] if first_variant is not None else {}
    for task in group.tasks:
        rhs_map = rhs_maps[task.rhs_positions]
        key_checks = task.key_checks
        rhs_checks = task.rhs_checks
        for key in keys:
            if not passes(key, key_checks):
                continue
            rhs_values = rhs_map[key]
            disagree = len(rhs_values) > 1
            if not disagree:
                # A single shared RHS value only violates when it misses a
                # constant of the pattern's RHS.
                if not rhs_checks or all(
                    passes(vals, rhs_checks) for vals in rhs_values
                ):
                    continue
            if materialize:
                violation = CFDViolation(
                    cfd=task.cfd,
                    pattern_index=task.row_index,
                    lhs_values=key,
                    tuples=tuple(groups[key]),
                    kind="pair" if disagree else "single",
                )
            else:
                violation = None
            yield task, violation


# -- CIND evaluation ---------------------------------------------------------


def _iter_cind_violations(
    tasks: list[CINDRowTask],
    instance: RelationInstance,
    witnesses: dict[WitnessSpec, set[tuple[Any, ...]]],
) -> Iterator[tuple[CINDRowTask, Tuple]]:
    """One pass over an LHS relation, testing every row task per tuple."""
    compiled = [
        (task, task.lhs_checks, task.x_positions, witnesses[task.witness])
        for task in tasks
    ]
    for t in instance:
        values = t.values
        for task, lhs_checks, x_positions, witness in compiled:
            if not passes(values, lhs_checks):
                continue
            if tuple(values[i] for i in x_positions) not in witness:
                yield task, t


def _all_witnesses(
    plan: DetectionPlan, db: DatabaseInstance
) -> dict[WitnessSpec, set[tuple[Any, ...]]]:
    witnesses: dict[WitnessSpec, set[tuple[Any, ...]]] = {}
    for relation, specs in plan.witness_specs.items():
        witnesses.update(witness_sets(db[relation], specs))
    return witnesses


# -- top-level execution ------------------------------------------------------


def execute_plan(
    plan: DetectionPlan, db: DatabaseInstance, mode: str = "full"
) -> ViolationReport | DetectionSummary:
    """Run every shared scan of *plan* against *db*.

    ``mode="full"`` returns a :class:`ViolationReport` identical (including
    list order) to the naive per-constraint evaluation; ``mode="count"``
    returns a :class:`DetectionSummary` without materializing violations.
    """
    if mode not in ("full", "count"):
        raise ValueError(f"mode must be 'full' or 'count', got {mode!r}")
    materialize = mode == "full"
    sigma = plan.sigma

    cfd_buckets: dict[int, list[CFDViolation]] = {}
    cfd_counts: dict[int, int] = {}
    for group in plan.cfd_groups:
        instance = db[group.relation]
        for task, violation in _iter_cfd_group_violations(
            group, instance, materialize
        ):
            if materialize:
                cfd_buckets.setdefault(id(task), []).append(violation)
            else:
                cfd_counts[task.cfd_index] = (
                    cfd_counts.get(task.cfd_index, 0) + 1
                )

    witnesses = _all_witnesses(plan, db)
    cind_buckets: dict[int, list[CINDViolation]] = {}
    cind_counts: dict[int, int] = {}
    for relation, tasks in plan.cind_scans.items():
        instance = db[relation]
        for task, t in _iter_cind_violations(tasks, instance, witnesses):
            if materialize:
                cind_buckets.setdefault(id(task), []).append(
                    CINDViolation(
                        cind=task.cind, pattern_index=task.row_index, tuple_=t
                    )
                )
            else:
                cind_counts[task.cind_index] = (
                    cind_counts.get(task.cind_index, 0) + 1
                )

    if materialize:
        cfd_violations: list[CFDViolation] = []
        for task in plan.cfd_tasks:
            cfd_violations.extend(cfd_buckets.get(id(task), ()))
        cind_violations: list[CINDViolation] = []
        for task in plan.cind_tasks:
            cind_violations.extend(cind_buckets.get(id(task), ()))
        return ViolationReport(
            cfd_violations, cind_violations, constraints=sigma
        )

    labels = constraint_labels(sigma)
    by_constraint: dict[str, int] = {}
    for cfd_index, count in cfd_counts.items():
        label = labels[id(sigma.cfds[cfd_index])]
        by_constraint[label] = by_constraint.get(label, 0) + count
    for cind_index, count in cind_counts.items():
        label = labels[id(sigma.cinds[cind_index])]
        by_constraint[label] = by_constraint.get(label, 0) + count
    return DetectionSummary(
        cfd_total=sum(cfd_counts.values()),
        cind_total=sum(cind_counts.values()),
        counts=by_constraint,
    )


def plan_has_violation(plan: DetectionPlan, db: DatabaseInstance) -> bool:
    """Early-exit check: does *db* violate any constraint of the plan?

    Scans are still shared, but the function returns at the first violating
    (task, group) or (task, tuple) pair instead of finishing the sweep.
    """
    for group in plan.cfd_groups:
        for __ in _iter_cfd_group_violations(
            group, db[group.relation], materialize=False
        ):
            return True
    witnesses = _all_witnesses(plan, db)
    for relation, tasks in plan.cind_scans.items():
        for __ in _iter_cind_violations(tasks, db[relation], witnesses):
            return True
    return False
