"""Shared-scan detection executor.

Executes a :class:`~repro.engine.planner.DetectionPlan` against a database
instance in one of three modes:

* :func:`execute_plan` with ``mode="full"`` — materializes every
  ``CFDViolation``/``CINDViolation`` into a
  :class:`~repro.core.violations.ViolationReport` whose violation lists are
  ordered exactly as the naive per-constraint checker would order them
  (constraints in Σ order, pattern rows in tableau order, groups/tuples in
  scan order), so it is a drop-in replacement.
* :func:`execute_plan` with ``mode="count"`` — the count-only fast path: a
  :class:`DetectionSummary` with totals and per-constraint counts, without
  constructing a single violation object (no group tuple lists either — the
  CFD scans keep only RHS projection sets per group key).
* :func:`plan_has_violation` — the laziest mode: returns as soon as any
  scan group surfaces one violation, for ``is_clean``-style questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.cfd import CFDViolation
from repro.core.cind import CINDViolation
from repro.core.violations import ViolationReport, constraint_labels
from repro.engine.planner import (
    CFDScanGroup,
    CINDRowTask,
    DetectionPlan,
    WitnessSpec,
    passes,
)
from repro.relational.instance import DatabaseInstance, RelationInstance, Tuple


@dataclass
class DetectionSummary:
    """Violation counts without materialized violation objects."""

    cfd_total: int = 0
    cind_total: int = 0
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.cfd_total + self.cind_total

    @property
    def is_clean(self) -> bool:
        return self.total == 0

    def by_constraint(self) -> dict[str, int]:
        """Counts per stable constraint label (``ViolationReport`` parity)."""
        return dict(self.counts)

    def __repr__(self) -> str:
        return (
            f"<DetectionSummary {self.total} violation(s): "
            f"{self.cfd_total} CFD, {self.cind_total} CIND>"
        )


# -- shared scan primitives (also used by the incremental checker) ------------


def group_tuples_by(
    instance: RelationInstance, positions: tuple[int, ...]
) -> dict[tuple[Any, ...], list[Tuple]]:
    """One-pass group-by of an instance on a value-position projection."""
    groups: dict[tuple[Any, ...], list[Tuple]] = {}
    for t in instance:
        values = t.values
        key = tuple(values[i] for i in positions)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [t]
        else:
            bucket.append(t)
    return groups


def witness_sets(
    instance: RelationInstance, specs: list[WitnessSpec]
) -> dict[WitnessSpec, set[tuple[Any, ...]]]:
    """One pass over *instance* filling every witness spec's key set."""
    results: dict[WitnessSpec, set[tuple[Any, ...]]] = {
        spec: set() for spec in specs
    }
    compiled = [
        (spec.yp_checks, spec.y_positions, results[spec]) for spec in specs
    ]
    for t in instance:
        values = t.values
        for yp_checks, y_positions, out in compiled:
            if passes(values, yp_checks):
                out.add(tuple(values[i] for i in y_positions))
    return results


# -- CFD evaluation ------------------------------------------------------------


def _cfd_group_state(
    group: CFDScanGroup, instance: RelationInstance, keep_groups: bool
) -> tuple[
    dict[tuple[Any, ...], list[Tuple]] | None,
    dict[tuple[int, ...], dict[tuple[Any, ...], set[tuple[Any, ...]]]],
]:
    """Scan once, producing the group-by (if ``keep_groups``) and, per distinct
    RHS attribute list, the set of RHS projections observed per group key."""
    variants = group.rhs_variants()
    rhs_maps: dict[tuple[int, ...], dict[tuple[Any, ...], set]] = {
        v: {} for v in variants
    }
    groups: dict[tuple[Any, ...], list[Tuple]] | None = (
        {} if keep_groups else None
    )
    lhs_positions = group.lhs_positions
    for t in instance:
        values = t.values
        key = tuple(values[i] for i in lhs_positions)
        if groups is not None:
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [t]
            else:
                bucket.append(t)
        for variant in variants:
            rhs_map = rhs_maps[variant]
            seen = rhs_map.get(key)
            if seen is None:
                seen = rhs_map[key] = set()
            seen.add(tuple(values[i] for i in variant))
    return groups, rhs_maps


def cfd_group_scan(
    group: CFDScanGroup,
    instance: RelationInstance,
    keep_groups: bool = False,
) -> tuple[
    dict[tuple[Any, ...], list[Tuple]] | None,
    Iterator[tuple[Any, tuple[Any, ...], str]],
]:
    """One shared scan of *group*; returns ``(groups, hits)``.

    ``hits`` lazily yields ``(task, key, kind)`` for every violating
    (task, group-key) pair, tasks in group order and keys in scan order —
    the naive checker's order. ``groups`` is the full group-by (only built
    when ``keep_groups`` is true; the full-materialization path needs it for
    the violation tuple lists, counting paths don't).
    """
    groups, rhs_maps = _cfd_group_state(group, instance, keep_groups)
    if keep_groups:
        keys = groups
    else:
        # All variants share the same key set; pick any (there is at least
        # one variant because every task has an RHS).
        first_variant = next(iter(rhs_maps), None)
        keys = rhs_maps[first_variant] if first_variant is not None else {}

    def hits() -> Iterator[tuple[Any, tuple[Any, ...], str]]:
        for task in group.tasks:
            rhs_map = rhs_maps[task.rhs_positions]
            key_checks = task.key_checks
            rhs_checks = task.rhs_checks
            for key in keys:
                if not passes(key, key_checks):
                    continue
                rhs_values = rhs_map[key]
                disagree = len(rhs_values) > 1
                if not disagree:
                    # A single shared RHS value only violates when it misses
                    # a constant of the pattern's RHS.
                    if not rhs_checks or all(
                        passes(vals, rhs_checks) for vals in rhs_values
                    ):
                        continue
                yield task, key, "pair" if disagree else "single"

    return groups, hits()


# -- CIND evaluation ---------------------------------------------------------


def cind_scan_hits(
    tasks: list[CINDRowTask],
    instance: RelationInstance,
    witnesses: dict[WitnessSpec, set[tuple[Any, ...]]],
) -> Iterator[tuple[CINDRowTask, Tuple]]:
    """One pass over an LHS relation, testing every row task per tuple.

    Yields ``(task, tuple)`` for every violating pair, tasks interleaved in
    scan order; witness key sets come from :func:`witness_sets` (any shard's
    sets can be merged in beforehand — set union is the merge operation).
    """
    compiled = [
        (task, task.lhs_checks, task.x_positions, witnesses[task.witness])
        for task in tasks
    ]
    for t in instance:
        values = t.values
        for task, lhs_checks, x_positions, witness in compiled:
            if not passes(values, lhs_checks):
                continue
            if tuple(values[i] for i in x_positions) not in witness:
                yield task, t


def _all_witnesses(
    plan: DetectionPlan, db: DatabaseInstance
) -> dict[WitnessSpec, set[tuple[Any, ...]]]:
    witnesses: dict[WitnessSpec, set[tuple[Any, ...]]] = {}
    for relation, specs in plan.witness_specs.items():
        witnesses.update(witness_sets(db[relation], specs))
    return witnesses


# -- report assembly ----------------------------------------------------------
#
# Scans fill per-task buckets; assembly orders them by the plan's task lists
# (constraints in Σ order, pattern rows in tableau order), reproducing the
# naive checker's output order no matter which order the scans ran in. The
# parallel dispatcher of :mod:`repro.api.parallel` merges worker results
# through these same two functions.


def assemble_report(
    plan: DetectionPlan,
    cfd_buckets: dict[int, list[CFDViolation]],
    cind_buckets: dict[int, list[CINDViolation]],
) -> ViolationReport:
    """Order per-task violation buckets (keyed by ``id(task)``) into a report."""
    cfd_violations: list[CFDViolation] = []
    for task in plan.cfd_tasks:
        cfd_violations.extend(cfd_buckets.get(id(task), ()))
    cind_violations: list[CINDViolation] = []
    for task in plan.cind_tasks:
        cind_violations.extend(cind_buckets.get(id(task), ()))
    return ViolationReport(
        cfd_violations, cind_violations, constraints=plan.sigma
    )


def assemble_summary(
    plan: DetectionPlan,
    cfd_counts: dict[int, int],
    cind_counts: dict[int, int],
) -> DetectionSummary:
    """Build a :class:`DetectionSummary` from per-constraint-index counts."""
    sigma = plan.sigma
    labels = constraint_labels(sigma)
    by_constraint: dict[str, int] = {}
    for cfd_index, count in cfd_counts.items():
        label = labels[id(sigma.cfds[cfd_index])]
        by_constraint[label] = by_constraint.get(label, 0) + count
    for cind_index, count in cind_counts.items():
        label = labels[id(sigma.cinds[cind_index])]
        by_constraint[label] = by_constraint.get(label, 0) + count
    return DetectionSummary(
        cfd_total=sum(cfd_counts.values()),
        cind_total=sum(cind_counts.values()),
        counts=by_constraint,
    )


# -- top-level execution ------------------------------------------------------


def execute_plan(
    plan: DetectionPlan, db: DatabaseInstance, mode: str = "full"
) -> ViolationReport | DetectionSummary:
    """Run every shared scan of *plan* against *db*.

    ``mode="full"`` returns a :class:`ViolationReport` identical (including
    list order) to the naive per-constraint evaluation; ``mode="count"``
    returns a :class:`DetectionSummary` without materializing violations.
    """
    if mode not in ("full", "count"):
        raise ValueError(f"mode must be 'full' or 'count', got {mode!r}")
    materialize = mode == "full"

    cfd_buckets: dict[int, list[CFDViolation]] = {}
    cfd_counts: dict[int, int] = {}
    for group in plan.cfd_groups:
        groups, hits = cfd_group_scan(
            group, db[group.relation], keep_groups=materialize
        )
        for task, key, kind in hits:
            if materialize:
                cfd_buckets.setdefault(id(task), []).append(
                    CFDViolation(
                        cfd=task.cfd,
                        pattern_index=task.row_index,
                        lhs_values=key,
                        tuples=tuple(groups[key]),
                        kind=kind,
                    )
                )
            else:
                cfd_counts[task.cfd_index] = (
                    cfd_counts.get(task.cfd_index, 0) + 1
                )

    witnesses = _all_witnesses(plan, db)
    cind_buckets: dict[int, list[CINDViolation]] = {}
    cind_counts: dict[int, int] = {}
    for relation, tasks in plan.cind_scans.items():
        instance = db[relation]
        for task, t in cind_scan_hits(tasks, instance, witnesses):
            if materialize:
                cind_buckets.setdefault(id(task), []).append(
                    CINDViolation(
                        cind=task.cind, pattern_index=task.row_index, tuple_=t
                    )
                )
            else:
                cind_counts[task.cind_index] = (
                    cind_counts.get(task.cind_index, 0) + 1
                )

    if materialize:
        return assemble_report(plan, cfd_buckets, cind_buckets)
    return assemble_summary(plan, cfd_counts, cind_counts)


def plan_has_violation(plan: DetectionPlan, db: DatabaseInstance) -> bool:
    """Early-exit check: does *db* violate any constraint of the plan?

    Scans are still shared, but the function returns at the first violating
    (task, group) or (task, tuple) pair instead of finishing the sweep.
    """
    for group in plan.cfd_groups:
        __, hits = cfd_group_scan(group, db[group.relation])
        for __ in hits:
            return True
    witnesses = _all_witnesses(plan, db)
    for relation, tasks in plan.cind_scans.items():
        for __ in cind_scan_hits(tasks, db[relation], witnesses):
            return True
    return False
