"""Shared-scan detection executor (columnar).

Executes a :class:`~repro.engine.planner.DetectionPlan` against a database
instance in one of three modes:

* :func:`execute_plan` with ``mode="full"`` — materializes every
  ``CFDViolation``/``CINDViolation`` into a
  :class:`~repro.core.violations.ViolationReport` whose violation lists are
  ordered exactly as the naive per-constraint checker would order them
  (constraints in Σ order, pattern rows in tableau order, groups/tuples in
  scan order), so it is a drop-in replacement.
* :func:`execute_plan` with ``mode="count"`` — the count-only fast path: a
  :class:`DetectionSummary` with totals and per-constraint counts, without
  constructing a single violation object or group tuple list.
* :func:`plan_has_violation` — the laziest mode: returns as soon as any
  scan group surfaces one violation, for ``is_clean``-style questions.

Scans are *columnar*: instead of a per-tuple Python loop rebuilding
projection tuples with ``tuple(values[i] for i in positions)``, every
projection key list is built once per ``(relation, positions)`` with
``zip`` over :meth:`~repro.relational.instance.RelationInstance.columns`
(C-speed tuple construction), shared across every scan unit that needs it,
and — when a :class:`~repro.engine.cache.ScanCache` is supplied — memoized
against the relation's mutation version so a re-check of unchanged data
skips the scan entirely and replays the cached hit lists.

Scan units are *sharded* underneath (:mod:`repro.engine.shards`): each
unit is a ``map_shard`` over a row range producing a mergeable partial
state, a shard-order ``merge``, and a ``finalize`` that evaluates the
plan's tasks against the merged state. The serial functions here are the
1-shard case of that pipeline — the parallel dispatcher
(:mod:`repro.api.parallel`) runs the very same map/merge/finalize over
many shards on a pool, which is why its output is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.core.cfd import CFDViolation
from repro.core.cind import CINDViolation
from repro.core.violations import ViolationReport, constraint_labels
from repro.engine.cache import ScanCache, projection_column_keys
from repro.engine.planner import (
    CFDScanGroup,
    CINDRowTask,
    DetectionPlan,
    WitnessSpec,
)
from repro.engine.shards import (
    cfd_finalize,
    cfd_map_shard,
    cind_finalize,
    cind_map_shard,
    instance_key_fn,
    shard_key_fn,
    witness_map_shard,
)
from repro.relational.instance import DatabaseInstance, RelationInstance, Tuple


@dataclass
class DetectionSummary:
    """Violation counts without materialized violation objects."""

    cfd_total: int = 0
    cind_total: int = 0
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.cfd_total + self.cind_total

    @property
    def is_clean(self) -> bool:
        return self.total == 0

    def by_constraint(self) -> dict[str, int]:
        """Counts per stable constraint label (``ViolationReport`` parity)."""
        return dict(self.counts)

    def __repr__(self) -> str:
        return (
            f"<DetectionSummary {self.total} violation(s): "
            f"{self.cfd_total} CFD, {self.cind_total} CIND>"
        )


# -- shared scan primitives (also used by the incremental checker) ------------


def projection_keys(
    instance: RelationInstance,
    positions: tuple[int, ...],
    cache: ScanCache | None = None,
) -> list[tuple[Any, ...]]:
    """Per-tuple projection key list in scan order, built column-wise.

    With a cache the list is memoized by ``(relation, positions, version)``
    and shared across every scan unit projecting the same positions.
    """
    if cache is not None:
        return cache.projection_keys(instance, positions)
    return projection_column_keys(
        instance.columns(), positions, len(instance)
    )


def group_tuples_by(
    instance: RelationInstance,
    positions: tuple[int, ...],
    cache: ScanCache | None = None,
) -> dict[tuple[Any, ...], list[Tuple]]:
    """One-pass group-by of an instance on a value-position projection."""
    groups: dict[tuple[Any, ...], list[Tuple]] = {}
    get = groups.get
    for key, t in zip(projection_keys(instance, positions, cache), instance.rows()):
        bucket = get(key)
        if bucket is None:
            groups[key] = [t]
        else:
            bucket.append(t)
    return groups


def filter_by_checks(
    columns: tuple[tuple[Any, ...], ...],
    checks: tuple[tuple[int, Any], ...],
    payload: "Iterable[Any]",
) -> Iterator[Any]:
    """Payload entries whose tuple satisfies the precompiled *checks*.

    Column-wise: the single-check case is a plain ``zip`` + ``==`` pass and
    the multi-check case compares one zipped value tuple against the
    constants tuple, so no per-row ``passes()`` call happens either way.
    """
    if not checks:
        return iter(payload)
    if len(checks) == 1:
        (pos, const), = checks
        return (p for v, p in zip(columns[pos], payload) if v == const)
    consts = tuple(c for __, c in checks)
    zipped = zip(*(columns[p] for p, __ in checks))
    return (p for vs, p in zip(zipped, payload) if vs == consts)


def witness_sets(
    instance: RelationInstance,
    specs: list[WitnessSpec],
    cache: ScanCache | None = None,
) -> dict[WitnessSpec, set[tuple[Any, ...]]]:
    """Witness key sets for every spec of *instance* (columnar, memoized).

    Each spec's set holds the ``Y``-projections of the tuples whose ``Yp``
    projection matches the spec's pattern constants. Specs sharing ``Y``
    positions share one projection key list.
    """
    results: dict[WitnessSpec, set[tuple[Any, ...]]] = {}
    version = instance.version
    cold: list[WitnessSpec] = []
    for spec in specs:
        if cache is not None:
            cached = cache.witness_set(spec, version)
            if cached is not None:
                results[spec] = cached
                continue
        cold.append(spec)
    if cold:
        # The 1-shard case of the shard pipeline: map the whole relation
        # as one row range (projection lists cache-memoized when possible).
        state = witness_map_shard(
            cold, instance.columns(), instance_key_fn(instance, cache)
        )
        for spec, out in zip(cold, state.sets):
            results[spec] = out
            if cache is not None:
                cache.store_witness_set(spec, version, out)
    return results


# -- CFD evaluation ------------------------------------------------------------


def cfd_group_hits(
    group: CFDScanGroup,
    instance: RelationInstance,
    cache: ScanCache | None = None,
) -> list[tuple[Any, tuple[Any, ...], str]]:
    """One shared scan of *group*: every violating ``(task, key, kind)``.

    Tasks appear in group order and keys in scan (first-occurrence) order —
    the naive checker's order. Each distinct projection (the ``X`` key and
    every distinct RHS variant) is computed exactly once per tuple, and each
    distinct ``key_checks`` filter exactly once per distinct group key. With
    a cache, the whole hit list is memoized against the relation version.

    This is the 1-shard case of the shard pipeline: one
    :func:`~repro.engine.shards.cfd_map_shard` over the whole relation,
    no merge, :func:`~repro.engine.shards.cfd_finalize` in place. The
    parallel dispatcher maps many shards and merges before the same
    finalize.
    """
    version = instance.version
    if cache is not None:
        cached = cache.cfd_hits(group, version)
        if cached is not None:
            return cached

    state = cfd_map_shard(group, instance_key_fn(instance, cache))
    hits = cfd_finalize(group, state)

    if cache is not None:
        cache.store_cfd_hits(group, version, hits)
    return hits


# -- CIND evaluation ---------------------------------------------------------


def cind_scan_hits(
    tasks: list[CINDRowTask],
    instance: RelationInstance,
    witnesses: dict[WitnessSpec, set[tuple[Any, ...]]],
) -> Iterator[tuple[CINDRowTask, Tuple]]:
    """One columnar pass over an LHS relation per row task.

    Yields ``(task, tuple)`` for every violating pair — tasks in task-list
    order, tuples in scan order within a task (consumers bucket per task, so
    assembled reports are identical to a tuple-major sweep). Witness key
    sets come from :func:`witness_sets`; any shard's sets can be merged in
    beforehand (set union is the merge operation). Tasks sharing ``X``
    positions share one projection key list.

    The 1-shard case of the shard pipeline: one
    :func:`~repro.engine.shards.cind_map_shard` over the whole relation
    with the canonical ``Tuple`` objects as the per-row payload, then the
    task-major flatten of :func:`~repro.engine.shards.cind_finalize`.
    """
    rows = instance.rows()
    columns = instance.columns()
    state = cind_map_shard(
        tasks, columns, rows, witnesses, shard_key_fn(columns, len(rows))
    )
    yield from cind_finalize(tasks, state)


def _cind_any_hit(
    tasks: list[CINDRowTask],
    instance: RelationInstance,
    witnesses: dict[WitnessSpec, set[tuple[Any, ...]]],
) -> bool:
    """True at the *first* violating (task, tuple) pair — the early-exit
    variant of :func:`cind_scan_hits`, which materializes each signature's
    full hit list before yielding and would scan a dirty relation to the
    end before the caller could stop."""
    rows = instance.rows()
    columns = instance.columns()
    key_lists: dict[tuple[int, ...], list] = {}
    seen: set[tuple] = set()
    for task in tasks:
        signature = (task.lhs_checks, task.x_positions, task.witness)
        if signature in seen:
            continue
        seen.add(signature)
        witness = witnesses[task.witness]
        if not task.x_positions:
            if () not in witness and any(
                True
                for __ in filter_by_checks(columns, task.lhs_checks, rows)
            ):
                return True
            continue
        x_keys = key_lists.get(task.x_positions)
        if x_keys is None:
            x_keys = key_lists[task.x_positions] = projection_column_keys(
                columns, task.x_positions, len(rows)
            )
        if any(
            key not in witness
            for key, __ in filter_by_checks(
                columns, task.lhs_checks, zip(x_keys, rows)
            )
        ):
            return True
    return False


def _cind_relation_hits(
    relation: str,
    tasks: list[CINDRowTask],
    db: DatabaseInstance,
    witnesses: dict[WitnessSpec, set[tuple[Any, ...]]],
    cache: ScanCache | None,
) -> list[tuple[CINDRowTask, Tuple]]:
    """Hit list for one LHS relation, memoized against the LHS version *and*
    the witness-side relation versions (a witness mutation invalidates)."""
    instance = db[relation]
    if cache is None:
        return list(cind_scan_hits(tasks, instance, witnesses))
    version = instance.version
    deps = cache.cind_deps(tasks, db)
    cached = cache.cind_hits(relation, version, deps)
    if cached is not None:
        return cached
    hits = list(cind_scan_hits(tasks, instance, witnesses))
    cache.store_cind_hits(relation, version, deps, hits)
    return hits


def _all_witnesses(
    plan: DetectionPlan, db: DatabaseInstance, cache: ScanCache | None = None
) -> dict[WitnessSpec, set[tuple[Any, ...]]]:
    witnesses: dict[WitnessSpec, set[tuple[Any, ...]]] = {}
    for relation, specs in plan.witness_specs.items():
        witnesses.update(witness_sets(db[relation], specs, cache))
    return witnesses


# -- report assembly ----------------------------------------------------------
#
# Scans fill per-task buckets; assembly orders them by the plan's task lists
# (constraints in Σ order, pattern rows in tableau order), reproducing the
# naive checker's output order no matter which order the scans ran in. The
# parallel dispatcher of :mod:`repro.api.parallel` merges worker results
# through these same two functions.


def assemble_report(
    plan: DetectionPlan,
    cfd_buckets: dict[int, list[CFDViolation]],
    cind_buckets: dict[int, list[CINDViolation]],
) -> ViolationReport:
    """Order per-task violation buckets (keyed by ``id(task)``) into a report.

    Tasks of pruned (violation-equivalent duplicate) constraints have no
    bucket of their own: the donor task's bucket is replayed in their
    report slot with the pruned constraint substituted. The donor's
    tableau is identical, so key, tuples, row index and kind carry over
    unchanged — the report is bit-identical to an unpruned run's.
    """
    donors = plan.task_donors
    cfd_violations: list[CFDViolation] = []
    for task in plan.cfd_tasks:
        donor = donors.get(id(task))
        if donor is None:
            cfd_violations.extend(cfd_buckets.get(id(task), ()))
        else:
            cfd_violations.extend(
                CFDViolation(
                    cfd=task.cfd,
                    pattern_index=task.row_index,
                    lhs_values=v.lhs_values,
                    tuples=v.tuples,
                    kind=v.kind,
                )
                for v in cfd_buckets.get(id(donor), ())
            )
    cind_violations: list[CINDViolation] = []
    for task in plan.cind_tasks:
        donor = donors.get(id(task))
        if donor is None:
            cind_violations.extend(cind_buckets.get(id(task), ()))
        else:
            cind_violations.extend(
                CINDViolation(
                    cind=task.cind,
                    pattern_index=task.row_index,
                    tuple_=v.tuple_,
                )
                for v in cind_buckets.get(id(donor), ())
            )
    return ViolationReport(
        cfd_violations, cind_violations, constraints=plan.sigma
    )


def assemble_summary(
    plan: DetectionPlan,
    cfd_counts: dict[int, int],
    cind_counts: dict[int, int],
) -> DetectionSummary:
    """Build a :class:`DetectionSummary` from per-constraint-index counts.

    Pruned duplicates inherit their donor's count (same tableau, same
    matches), so the summary is identical to an unpruned run's.
    """
    sigma = plan.sigma
    if plan.pruned_cfd_donors:
        cfd_counts = dict(cfd_counts)
        for pruned, donor in plan.pruned_cfd_donors.items():
            count = cfd_counts.get(donor)
            if count:
                cfd_counts[pruned] = count
    if plan.pruned_cind_donors:
        cind_counts = dict(cind_counts)
        for pruned, donor in plan.pruned_cind_donors.items():
            count = cind_counts.get(donor)
            if count:
                cind_counts[pruned] = count
    labels = constraint_labels(sigma)
    by_constraint: dict[str, int] = {}
    for cfd_index, count in cfd_counts.items():
        label = labels[id(sigma.cfds[cfd_index])]
        by_constraint[label] = by_constraint.get(label, 0) + count
    for cind_index, count in cind_counts.items():
        label = labels[id(sigma.cinds[cind_index])]
        by_constraint[label] = by_constraint.get(label, 0) + count
    return DetectionSummary(
        cfd_total=sum(cfd_counts.values()),
        cind_total=sum(cind_counts.values()),
        counts=by_constraint,
    )


# -- top-level execution ------------------------------------------------------


def release_scan_memos(db: DatabaseInstance, cache: ScanCache | None) -> None:
    """Drop scan-lifetime memos (columnar views, projection key lists).

    Both exist to be shared across the scan units of *one* plan execution;
    across executions the hit/witness caches answer warm calls and a
    version bump stales them anyway, so holding O(tuples)-sized lists on a
    long-lived database/session would be pure memory cost.
    """
    db.release_views()
    if cache is not None:
        cache.release_projections()


def _check_cache(
    plan: DetectionPlan, cache: ScanCache | None, db: DatabaseInstance
) -> None:
    if cache is None:
        return
    if cache.plan is not plan:
        raise ValueError(
            "ScanCache is bound to a different DetectionPlan; build one "
            "cache per plan (its entries reference the plan's task objects)"
        )
    if cache.db is None:
        cache.db = db
    elif cache.db is not db:
        raise ValueError(
            "ScanCache is bound to a different DatabaseInstance; its "
            "entries are keyed by relation name + version, which only "
            "identify data within one database"
        )


def execute_plan(
    plan: DetectionPlan,
    db: DatabaseInstance,
    mode: str = "full",
    cache: ScanCache | None = None,
) -> ViolationReport | DetectionSummary:
    """Run every shared scan of *plan* against *db*.

    ``mode="full"`` returns a :class:`ViolationReport` identical (including
    list order) to the naive per-constraint evaluation; ``mode="count"``
    returns a :class:`DetectionSummary` without materializing violations.

    With a :class:`~repro.engine.cache.ScanCache` (bound to *plan*), scan
    results are memoized per relation version: a re-check over unchanged
    data replays cached hit lists instead of scanning, and both modes share
    the same entries.
    """
    if mode not in ("full", "count"):
        raise ValueError(f"mode must be 'full' or 'count', got {mode!r}")
    _check_cache(plan, cache, db)

    try:
        cfd_hits = [
            (group, cfd_group_hits(group, db[group.relation], cache))
            for group in plan.cfd_groups
        ]
        witnesses = _all_witnesses(plan, db, cache)
        cind_hits = [
            (relation, _cind_relation_hits(relation, tasks, db, witnesses, cache))
            for relation, tasks in plan.cind_scans.items()
        ]
        return assemble_from_hits(plan, db, cfd_hits, cind_hits, mode)
    finally:
        release_scan_memos(db, cache)


def assemble_from_hits(
    plan: DetectionPlan,
    db: DatabaseInstance,
    cfd_hits: list[tuple[CFDScanGroup, list[tuple[Any, tuple[Any, ...], str]]]],
    cind_hits: list[tuple[str, list[tuple[CINDRowTask, Tuple]]]],
    mode: str,
) -> ViolationReport | DetectionSummary:
    """Build the requested result shape from per-scan-unit hit lists.

    Shared by the serial executor and the parallel dispatcher (which feeds
    it worker hit lists rebound to canonical objects), so both produce the
    same bytes. In full mode, CFD group tuple lists come from the
    relation's hash index — insertion-ordered, exactly the scan's group-by
    bucket, maintained incrementally so warm re-checks pay O(1) per
    violating key instead of a group-by pass.
    """
    materialize = mode == "full"
    cfd_buckets: dict[int, list[CFDViolation]] = {}
    cfd_counts: dict[int, int] = {}
    for group, hits in cfd_hits:
        instance = db[group.relation]
        for task, key, kind in hits:
            if materialize:
                cfd_buckets.setdefault(id(task), []).append(
                    CFDViolation(
                        cfd=task.cfd,
                        pattern_index=task.row_index,
                        lhs_values=key,
                        tuples=tuple(instance.lookup(group.lhs, key)),
                        kind=kind,
                    )
                )
            else:
                cfd_counts[task.cfd_index] = (
                    cfd_counts.get(task.cfd_index, 0) + 1
                )

    cind_buckets: dict[int, list[CINDViolation]] = {}
    cind_counts: dict[int, int] = {}
    for __, hits in cind_hits:
        for task, t in hits:
            if materialize:
                cind_buckets.setdefault(id(task), []).append(
                    CINDViolation(
                        cind=task.cind, pattern_index=task.row_index, tuple_=t
                    )
                )
            else:
                cind_counts[task.cind_index] = (
                    cind_counts.get(task.cind_index, 0) + 1
                )

    if materialize:
        return assemble_report(plan, cfd_buckets, cind_buckets)
    return assemble_summary(plan, cfd_counts, cind_counts)


def plan_has_violation(
    plan: DetectionPlan,
    db: DatabaseInstance,
    cache: ScanCache | None = None,
) -> bool:
    """Early-exit check: does *db* violate any constraint of the plan?

    Scans are still shared; the function returns at the first scan unit
    that surfaces a violation. With a cache, warm units answer from their
    memoized hit lists and cold units' full results are stored — so a
    clean verdict leaves the cache fully warmed for the next call.
    """
    _check_cache(plan, cache, db)
    try:
        for group in plan.cfd_groups:
            if cfd_group_hits(group, db[group.relation], cache):
                return True
        witnesses = _all_witnesses(plan, db, cache)
        for relation, tasks in plan.cind_scans.items():
            instance = db[relation]
            if cache is not None:
                deps = cache.cind_deps(tasks, db)
                hits = cache.cind_hits(relation, instance.version, deps)
                if hits is not None:
                    if hits:
                        return True
                    continue
            if _cind_any_hit(tasks, instance, witnesses):
                # Dirty: stop at the first violating pair — don't pay for
                # the full hit list a mutating caller would never reuse.
                return True
            if cache is not None:
                # A clean early-exit scan *proves* the full hit list is
                # empty, so the cache can be warmed at no extra cost.
                cache.store_cind_hits(relation, instance.version, deps, [])
        return False
    finally:
        release_scan_memos(db, cache)
