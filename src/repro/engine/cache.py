"""Versioned scan caches: make the repeated-check read path nearly free.

BRAVO's lesson (PAPERS.md) is to bias a reader/writer protocol toward the
overwhelmingly common read path and push the bookkeeping onto the rare
write path. Detection has the same skew: a ``Session`` re-checks the same
database far more often than it mutates it (monitoring loops, repair
rounds where most relations are untouched, ``check`` followed by
``count``/``is_clean``). Every relation instance already pays the "write
path" cost — a monotonic :attr:`~repro.relational.instance.RelationInstance.version`
bump per mutation — so a scan result tagged with the version it was
computed at can be replayed for free while the version stands still.

:class:`ScanCache` memoizes, per plan scan unit:

* **projection key lists** keyed by ``(relation, positions, version)`` —
  the columnar per-tuple keys that group-bys, witness passes, and CIND
  probes all consume (each distinct projection is computed once per
  version, shared across scan units);
* **CFD group hits** keyed by ``(relation, X-positions, version)`` — the
  evaluated ``(task, group key, kind)`` list of one CFD scan group;
* **witness key sets** keyed by ``(spec, version)`` — one semijoin key
  set per :class:`~repro.engine.planner.WitnessSpec`;
* **CIND hit lists** keyed by ``(relation, version, witness-versions)`` —
  the violating ``(task, tuple)`` pairs of one LHS scan; the extra
  dependency vector invalidates them when any *witness-side* relation
  moved even though the LHS relation did not.

A cache is bound to one :class:`~repro.engine.planner.DetectionPlan`
(entries reference the plan's task/spec objects); the executor refuses a
cache built for a different plan. Stale entries are overwritten in place
on recompute, so the cache never grows beyond one entry per scan unit.

The payoff is measured by ``benchmarks/bench_detection.py``: a warm
re-check of an unchanged database skips every relation scan and only
re-assembles the report from the cached hit lists (cost proportional to
the number of violations, not the number of tuples).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (executor <-> cache)
    from repro.engine.planner import CFDScanGroup, CINDRowTask, DetectionPlan, WitnessSpec
    from repro.relational.instance import DatabaseInstance, RelationInstance, Tuple


def projection_column_keys(
    columns: tuple[tuple[Any, ...], ...], positions: tuple[int, ...], n: int
) -> list[tuple[Any, ...]]:
    """Per-tuple projection key tuples, built column-wise at C speed.

    Equivalent to ``[tuple(t.values[i] for i in positions) for t in rows]``
    but via ``zip`` over the columnar view; ``n`` is the tuple count (needed
    for the empty projection, whose key list is all-``()``).
    """
    if not positions:
        return [()] * n
    if len(positions) == 1:
        return list(zip(columns[positions[0]]))
    return list(zip(*(columns[p] for p in positions)))


class ScanCache:
    """Mutation-versioned memo of one plan's scan results.

    Owned by the session/backend that owns the plan; every getter checks
    the relation's current version (plus, for CIND hits, the witness-side
    versions) and misses on any mismatch, so callers never see stale data
    and mutations need no explicit invalidation hook.
    """

    __slots__ = (
        "plan", "db", "_projections", "_cfd", "_witness", "_cind",
        "hits", "misses",
    )

    def __init__(self, plan: "DetectionPlan"):
        self.plan = plan
        #: The database the cache is valid for — bound on first use by the
        #: executor. Entries are keyed by relation *name* + version, so
        #: serving a different DatabaseInstance (where the same name/version
        #: means different data) must be refused, not silently answered.
        self.db: "DatabaseInstance | None" = None
        #: (relation, positions) -> (version, key list)
        self._projections: dict[tuple[str, tuple[int, ...]], tuple[int, list]] = {}
        #: (relation, X positions) -> (version, [(task, key, kind), ...])
        self._cfd: dict[tuple[str, tuple[int, ...]], tuple[int, list]] = {}
        #: spec -> (version, witness key set)
        self._witness: dict["WitnessSpec", tuple[int, set]] = {}
        #: LHS relation -> (version, witness-version vector, [(task, tuple), ...])
        self._cind: dict[str, tuple[int, tuple[int, ...], list]] = {}
        #: Scan-unit lookup outcomes (projection-key memos not counted).
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        self._projections.clear()
        self._cfd.clear()
        self._witness.clear()
        self._cind.clear()

    def release_projections(self) -> None:
        """Drop the projection-key memo (scan-lifetime, O(tuples) each).

        Projection key lists exist to be shared *within* one plan
        execution; across calls at the same version the hit/witness caches
        short-circuit before reading them, and after a mutation they are
        stale — so the executor releases them when a plan finishes instead
        of holding per-tuple lists for the session lifetime.
        """
        self._projections.clear()

    # -- projection key lists ----------------------------------------------

    def projection_keys(
        self, instance: "RelationInstance", positions: tuple[int, ...]
    ) -> list[tuple[Any, ...]]:
        """The instance's per-tuple keys on *positions* (memoized)."""
        key = (instance.schema.name, positions)
        entry = self._projections.get(key)
        version = instance.version
        if entry is not None and entry[0] == version:
            return entry[1]
        keys = projection_column_keys(instance.columns(), positions, len(instance))
        self._projections[key] = (version, keys)
        return keys

    # -- CFD scan groups ---------------------------------------------------

    def cfd_hits(self, group: "CFDScanGroup", version: int) -> list | None:
        entry = self._cfd.get((group.relation, group.lhs_positions))
        if entry is not None and entry[0] == version:
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def store_cfd_hits(self, group: "CFDScanGroup", version: int, hits: list) -> None:
        self._cfd[(group.relation, group.lhs_positions)] = (version, hits)

    # -- CIND witness sets -------------------------------------------------

    def witness_set(self, spec: "WitnessSpec", version: int) -> set | None:
        entry = self._witness.get(spec)
        if entry is not None and entry[0] == version:
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def store_witness_set(self, spec: "WitnessSpec", version: int, keys: set) -> None:
        self._witness[spec] = (version, keys)

    # -- CIND LHS scans ----------------------------------------------------

    @staticmethod
    def cind_deps(
        tasks: Iterable["CINDRowTask"], db: "DatabaseInstance"
    ) -> tuple[int, ...]:
        """Witness-side version vector a CIND hit list depends on."""
        specs = dict.fromkeys(task.witness for task in tasks)
        return tuple(db[spec.rhs_relation].version for spec in specs)

    def cind_hits(
        self, relation: str, version: int, deps: tuple[int, ...]
    ) -> list | None:
        entry = self._cind.get(relation)
        if entry is not None and entry[0] == version and entry[1] == deps:
            self.hits += 1
            return entry[2]
        self.misses += 1
        return None

    def store_cind_hits(
        self,
        relation: str,
        version: int,
        deps: tuple[int, ...],
        hits: list,
    ) -> None:
        self._cind[relation] = (version, deps, hits)

    def __repr__(self) -> str:
        return (
            f"<ScanCache {len(self._cfd)} CFD, {len(self._witness)} witness, "
            f"{len(self._cind)} CIND entr(ies); {self.hits} hit(s), "
            f"{self.misses} miss(es)>"
        )


class SQLScanCache:
    """Fingerprint-keyed result memo for the out-of-core ``sqlfile`` backend.

    The in-memory :class:`ScanCache` leans on each relation's mutation
    ``version`` counter; a sqlite *file* has no such counter, so this cache
    builds the same read-biased protocol out of what sqlite does offer:

    * ``PRAGMA data_version`` — moves whenever **another** connection
      commits to the file, so an unchanged value makes a warm re-check one
      PRAGMA away from skipping SQL entirely;
    * per-table ``(max rowid, row count)`` fingerprints — consulted only
      after a ``data_version`` bump, to invalidate just the tables that
      actually moved;
    * explicit :meth:`invalidate_table` calls from the owning backend's own
      DML (a connection's own writes never move its own ``data_version``).

    Entries are keyed by scan-unit tuples chosen by the backend; each
    records the set of tables it was computed from. The *fingerprint*
    callable is the backend's choice
    (``ExecutionOptions(fingerprint=...)``): the default ``(max rowid,
    row count)`` pair is heuristic by design — a foreign writer that
    restores both, i.e. delete-the-last-row-then-insert, slips through —
    while the ``"content"`` mode
    (:func:`repro.sql.loader.table_content_fingerprint`, a per-row CRC32
    sum computed inside SQL) closes that hole at the cost of one
    aggregate scan per table per foreign commit. The backend's own
    mutations always invalidate explicitly and exactly either way.
    """

    __slots__ = ("_entries", "_fingerprints", "_data_version", "hits", "misses")

    def __init__(self):
        #: key -> (frozenset of table names, value)
        self._entries: dict[Any, tuple[frozenset, Any]] = {}
        #: table -> (max rowid, count) as of the last sync/record
        self._fingerprints: dict[str, tuple] = {}
        self._data_version: int | None = None
        self.hits = 0
        self.misses = 0

    def begin(
        self,
        version: int,
        tables: Iterable[str],
        fingerprint,
    ) -> None:
        """Synchronize with the file before a read.

        *version* is the connection's current ``PRAGMA data_version``;
        *fingerprint* is a callable ``table -> (max rowid, count)`` invoked
        only when the version moved (i.e. some other connection committed):
        tables whose fingerprint changed lose their entries, the rest stay
        warm.
        """
        if self._data_version is None:
            self._data_version = version
            for table in tables:
                self._fingerprints[table] = fingerprint(table)
            return
        if version == self._data_version:
            return
        self._data_version = version
        for table in tables:
            current = fingerprint(table)
            known = self._fingerprints.get(table)
            if known is None or known != current:
                self.invalidate_table(table)
            self._fingerprints[table] = current

    def get(self, key: Any) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry[1]

    def peek(self, key: Any) -> Any | None:
        """Like :meth:`get` but without touching the hit/miss counters.

        The parallel rowid-window prefetch uses it to decide which scan
        units still need computing; the decision is bookkeeping, not a
        read, and must not skew the cache statistics the benchmarks and
        tests assert on.
        """
        entry = self._entries.get(key)
        return None if entry is None else entry[1]

    def store(self, key: Any, tables: Iterable[str], value: Any) -> None:
        self._entries[key] = (frozenset(tables), value)

    def invalidate_table(self, table: str) -> None:
        """Drop every entry that was computed from *table*."""
        self.invalidate_tables((table,))

    def invalidate_tables(self, tables: Iterable[str]) -> None:
        """Drop every entry computed from *any* of *tables*, in one pass.

        Invalidation rebuilds the entry dict, so a batch mutation that
        touched N relations must not pay N rebuilds — the batch ``apply``
        path hands all touched tables over at once and the filter runs
        exactly once per batch.
        """
        touched = frozenset(tables)
        if not touched:
            return
        self._entries = {
            key: entry
            for key, entry in self._entries.items()
            if not (touched & entry[0])
        }

    def record_fingerprint(self, table: str, fp: tuple) -> None:
        """Refresh *table*'s fingerprint after the backend's own DML (which
        moves the fingerprint but not this connection's data_version)."""
        self._fingerprints[table] = fp

    def forget_fingerprint(self, table: str) -> None:
        """Drop *table*'s stored fingerprint (recorded as "unknown").

        For fingerprint modes whose computation is O(table) — the content
        CRC sum — re-fingerprinting after every own-DML statement would
        make mutations O(table size). Forgetting instead is always safe:
        :meth:`begin` treats a missing fingerprint as changed, so the
        table's entries are (re-)invalidated at the next foreign commit —
        a spurious extra invalidation there, in exchange for O(1) own
        writes (which already invalidated the table exactly).
        """
        self._fingerprints.pop(table, None)

    def clear(self) -> None:
        self._entries.clear()
        self._fingerprints.clear()
        self._data_version = None

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<SQLScanCache {len(self._entries)} entr(ies); "
            f"{self.hits} hit(s), {self.misses} miss(es)>"
        )
