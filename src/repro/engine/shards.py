"""Data sharding *within* a scan unit: row-range shards + mergeable states.

PR 3 made the merge primitives of every scan unit explicit — witness key
sets merge by set union, CFD variant state merges by a first-value /
disagree join, CIND hit lists concatenate per task — but the executor
still computed each unit in one pass, so one giant ``(relation, X)``
group (the common shape on bank/commerce) serialized a whole check even
under the parallel dispatcher. This module turns those primitives into a
shard pipeline:

* :class:`ShardSpec` — a contiguous row-range slice ``[start, stop)`` of
  a relation's columnar views (:func:`plan_shard_ranges` balances them;
  shard 0 holds the first rows, so merging states *in shard order*
  reproduces scan order exactly);
* :class:`CFDGroupState` — per RHS variant, the first observed RHS
  projection per group key plus the keys whose groups disagree. Shard
  states join associatively: a key unseen by ``self`` is adopted with
  ``other``'s first value, a key seen with a *different* first value
  becomes a disagreement (exactly the pairwise-violation condition);
* :class:`WitnessState` — one key set per witness spec; merge is set
  union (associative *and* commutative);
* :class:`CINDScanState` — per-task hit buckets; merge extends each
  bucket in shard order, so tuples stay in scan order within a task.

Every state is built by a ``*_map_shard`` function and consumed by a
``finalize`` step; the serial executor is literally the 1-shard case
(:func:`repro.engine.executor.cfd_group_hits` maps the whole relation as
one shard and finalizes in place), and the parallel dispatcher maps
shards on a pool, merges in shard order, and finalizes parent-side —
both paths share this code, so their outputs are bit-identical.

Merge laws (Hypothesis-tested in ``tests/test_shards.py``): every merge
here is **associative** over an ordered shard sequence — any parenthesized
merge of ``s0..sn`` in order yields the same state. ``WitnessState`` is
fully commutative; ``CFDGroupState`` is *commutative-safe*: permuting the
merge order may permute key insertion order and which value is recorded
as "first" for a disagreeing key, but the disagree set and the first
value of every non-disagreeing key — everything violation detection reads
— are order-invariant. ``CINDScanState`` buckets are lists, so it is
associative only (shard order *is* scan order).

Mapping functions take the shard's *columns* plus a ``key_lists``
callable (positions -> per-row projection key list for the shard) so
that the serial path can plug in its cache-memoized projection lists
while shard workers slice fresh ones; :func:`shard_columns` and
:func:`shard_key_fn` build the worker-side pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.engine.cache import projection_column_keys
from repro.engine.planner import CFDScanGroup, CINDRowTask, WitnessSpec, passes
from repro.relational.instance import RelationInstance

#: positions -> per-row projection key list (for one shard's rows).
KeyLists = Callable[[tuple[int, ...]], list]


@dataclass(frozen=True)
class ShardSpec:
    """A contiguous row-range slice of one relation's columnar views.

    ``index``/``count`` place the shard within its scan unit: states must
    be merged in ``index`` order for hit lists to come out in scan order
    (content-wise the merges tolerate any order; see the module notes).
    """

    relation: str
    start: int
    stop: int
    index: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(
                f"invalid shard range [{self.start}, {self.stop})"
            )

    @property
    def rows(self) -> int:
        return self.stop - self.start

    @property
    def whole(self) -> bool:
        """True when this is the only shard of its scan unit."""
        return self.count == 1

    def __repr__(self) -> str:
        return (
            f"<ShardSpec {self.relation}[{self.start}:{self.stop}] "
            f"{self.index + 1}/{self.count}>"
        )


def resolve_shard_count(
    n_rows: int,
    workers: int,
    min_shard_rows: int,
    shards: int = 0,
    granularity: int = 0,
) -> int:
    """How many shards one scan unit over *n_rows* rows should use.

    An explicit *shards* wins (benchmarks force specific shapes); otherwise
    the unit is split ``min(workers, n_rows // min_shard_rows)`` ways — a
    shard never holds fewer than *min_shard_rows* rows, so small relations
    stay single-shard and per-shard state overhead cannot dominate the
    scan it parallelizes. A *granularity* ``N >= 1`` raises the worker
    bound to ``workers * N``, over-partitioning the unit into finer
    shards that idle workers can steal when group sizes are skewed (the
    ``min_shard_rows`` floor still applies). Always at least 1, never
    more than ``n_rows``.
    """
    if shards > 0:
        wanted = shards
    else:
        target = workers * granularity if granularity > 0 else workers
        wanted = min(target, max(1, n_rows // max(1, min_shard_rows)))
    return max(1, min(wanted, n_rows)) if n_rows > 0 else 1


def plan_shard_ranges(n_rows: int, count: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[start, stop)`` ranges covering ``n_rows``."""
    count = max(1, min(count, n_rows)) if n_rows > 0 else 1
    base, extra = divmod(n_rows, count)
    ranges: list[tuple[int, int]] = []
    start = 0
    for i in range(count):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def make_shards(
    relation: str,
    n_rows: int,
    workers: int,
    min_shard_rows: int,
    shards: int = 0,
    granularity: int = 0,
) -> list[ShardSpec]:
    """The :class:`ShardSpec` list for one scan unit over *relation*."""
    ranges = plan_shard_ranges(
        n_rows,
        resolve_shard_count(
            n_rows, workers, min_shard_rows, shards, granularity
        ),
    )
    count = len(ranges)
    return [
        ShardSpec(relation, start, stop, index=i, count=count)
        for i, (start, stop) in enumerate(ranges)
    ]


def shard_columns(
    columns: tuple[tuple[Any, ...], ...], start: int, stop: int
) -> tuple[tuple[Any, ...], ...]:
    """The ``[start, stop)`` slice of a columnar view.

    The whole-range call passes the (possibly shared/memoized) view
    through unsliced — the serial path and single-shard workers keep the
    relation's own columns instead of copying them.
    """
    if start == 0 and (not columns or stop >= len(columns[0])):
        return columns
    return tuple(col[start:stop] for col in columns)


def shard_key_fn(
    columns: tuple[tuple[Any, ...], ...], n_rows: int
) -> KeyLists:
    """A ``key_lists`` callable over (already sliced) shard columns.

    Memoizes per distinct position tuple, mirroring the executor's
    scan-lifetime projection sharing at shard granularity.
    """
    memo: dict[tuple[int, ...], list] = {}

    def key_lists(positions: tuple[int, ...]) -> list:
        keys = memo.get(positions)
        if keys is None:
            keys = memo[positions] = projection_column_keys(
                columns, positions, n_rows
            )
        return keys

    return key_lists


def instance_key_fn(instance: RelationInstance, cache=None) -> KeyLists:
    """The serial path's ``key_lists``: whole-relation, cache-memoized."""
    if cache is not None:
        return lambda positions: cache.projection_keys(instance, positions)
    columns = instance.columns()
    return shard_key_fn(columns, len(instance))


# -- CFD scan groups -----------------------------------------------------------


class CFDGroupState:
    """Mergeable partial state of one CFD scan group over some row range.

    Per RHS variant: ``first`` maps each group key to the first RHS
    projection observed for it (insertion order = first-occurrence order
    within the covered rows) and ``disagree`` holds the keys whose groups
    saw a second distinct projection. Merging two states joins the maps
    with setdefault semantics and promotes first-value conflicts to
    disagreements — the associative first-value/disagree join.
    """

    __slots__ = ("variants",)

    def __init__(
        self,
        variants: dict[
            tuple[int, ...], tuple[dict[tuple[Any, ...], tuple], set]
        ],
    ):
        #: variant positions -> (first map, disagree set)
        self.variants = variants

    def merge(self, other: "CFDGroupState") -> "CFDGroupState":
        """Fold *other* (a later shard) into this state, in place."""
        for variant, (ofirst, odisagree) in other.variants.items():
            mine = self.variants.get(variant)
            if mine is None:
                self.variants[variant] = (dict(ofirst), set(odisagree))
                continue
            first, disagree = mine
            disagree |= odisagree
            setdefault = first.setdefault
            add = disagree.add
            for key, rkey in ofirst.items():
                if setdefault(key, rkey) != rkey:
                    add(key)
        return self

    def payload(self) -> dict:
        """A plain-data image (value tuples only — safe to pickle)."""
        return self.variants

    @classmethod
    def from_payload(cls, payload: dict) -> "CFDGroupState":
        return cls(payload)

    def __repr__(self) -> str:
        keys = sum(len(first) for first, __ in self.variants.values())
        return f"<CFDGroupState {len(self.variants)} variant(s), {keys} key(s)>"


def cfd_map_shard(group: CFDScanGroup, key_lists: KeyLists) -> CFDGroupState:
    """Build the group's partial state over one shard's rows.

    ``key_lists`` must yield per-row projection lists for exactly the
    shard's row range; the whole-relation call is the serial executor.
    Each distinct projection (the ``X`` key and every distinct RHS
    variant) is computed exactly once for the shard.
    """
    lhs_positions = group.lhs_positions
    keys = key_lists(lhs_positions)
    variants: dict[
        tuple[int, ...], tuple[dict[tuple[Any, ...], tuple], set]
    ] = {}
    for variant in group.rhs_variants():
        first: dict[tuple[Any, ...], tuple] = {}
        disagree: set[tuple[Any, ...]] = set()
        if variant == lhs_positions:
            # RHS projection == group key: groups can never disagree.
            # (dict(zip(..)) keeps first-occurrence insertion order; the
            # value is the key itself either way.)
            first = dict(zip(keys, keys))
        else:
            rkeys = key_lists(variant)
            setdefault = first.setdefault
            add = disagree.add
            for key, rkey in zip(keys, rkeys):
                if setdefault(key, rkey) != rkey:
                    add(key)
        variants[variant] = (first, disagree)
    return CFDGroupState(variants)


def merge_cfd_states(states: Sequence[CFDGroupState]) -> CFDGroupState:
    """Fold shard states in shard order into one group-level state."""
    if not states:
        return CFDGroupState({})
    merged = states[0]
    for state in states[1:]:
        merged.merge(state)
    return merged


def cfd_finalize(
    group: CFDScanGroup, state: CFDGroupState
) -> list[tuple[Any, tuple[Any, ...], str]]:
    """Evaluate every task of *group* against the merged state.

    Returns the violating ``(task, key, kind)`` triples — tasks in group
    order, keys in the state's first-occurrence order (scan order when
    shards were merged in shard order). Each distinct ``key_checks``
    filter runs once per distinct group key, and structurally identical
    tasks are evaluated once and replicated.
    """
    variant_state = state.variants
    # Any variant's first-map lists the distinct group keys in scan order.
    first_variant = next(iter(variant_state), None)
    distinct = (
        variant_state[first_variant][0] if first_variant is not None else {}
    )

    hits: list[tuple[Any, tuple[Any, ...], str]] = []
    filtered: dict[tuple, Any] = {}
    evaluated: dict[tuple, list[tuple[tuple[Any, ...], str]]] = {}
    for task in group.tasks:
        # Tasks sharing (key_checks, rhs_positions, rhs_checks) — distinct
        # CFDs with structurally identical pattern rows — hit the same
        # (key, kind) pairs: evaluate once, replicate per task.
        signature = (task.key_checks, task.rhs_positions, task.rhs_checks)
        pairs = evaluated.get(signature)
        if pairs is None:
            key_checks = task.key_checks
            candidates = filtered.get(key_checks)
            if candidates is None:
                if not key_checks:
                    candidates = distinct
                elif len(key_checks) == 1:
                    (pos, const), = key_checks
                    candidates = [k for k in distinct if k[pos] == const]
                else:
                    candidates = [k for k in distinct if passes(k, key_checks)]
                filtered[key_checks] = candidates
            first, disagree = variant_state[task.rhs_positions]
            rhs_checks = task.rhs_checks
            if rhs_checks:
                pairs = []
                for key in candidates:
                    if key in disagree:
                        pairs.append((key, "pair"))
                    elif not passes(first[key], rhs_checks):
                        # A single shared RHS value only violates when it
                        # misses a constant of the pattern's RHS.
                        pairs.append((key, "single"))
            elif disagree:
                pairs = [(key, "pair") for key in candidates if key in disagree]
            else:
                pairs = []
            evaluated[signature] = pairs
        for key, kind in pairs:
            hits.append((task, key, kind))
    return hits


# -- CIND witness passes -------------------------------------------------------


class WitnessState:
    """Mergeable witness key sets, one per spec, for one RHS relation.

    Sets are kept in a list aligned with the plan's spec order for the
    relation (spec objects don't survive pickling with their identity, so
    positions are the cross-process currency). Merge is per-position set
    union — associative and commutative.
    """

    __slots__ = ("sets",)

    def __init__(self, sets: list[set]):
        self.sets = sets

    def merge(self, other: "WitnessState") -> "WitnessState":
        for mine, theirs in zip(self.sets, other.sets):
            mine |= theirs
        return self

    def as_dict(self, specs: Sequence[WitnessSpec]) -> dict[WitnessSpec, set]:
        return dict(zip(specs, self.sets))

    def __repr__(self) -> str:
        return (
            f"<WitnessState {len(self.sets)} spec(s), "
            f"{sum(len(s) for s in self.sets)} key(s)>"
        )


def witness_map_shard(
    specs: Sequence[WitnessSpec],
    columns: tuple[tuple[Any, ...], ...],
    key_lists: KeyLists,
) -> WitnessState:
    """Witness key sets for every spec over one shard's rows.

    Specs sharing ``Y`` positions share one projection key list (via the
    memoizing ``key_lists``).
    """
    from repro.engine.executor import filter_by_checks  # avoid import cycle

    sets: list[set] = []
    for spec in specs:
        y_keys = key_lists(spec.y_positions)
        sets.append(set(filter_by_checks(columns, spec.yp_checks, y_keys)))
    return WitnessState(sets)


def merge_witness_states(states: Sequence[WitnessState]) -> WitnessState:
    if not states:
        return WitnessState([])
    merged = states[0]
    for state in states[1:]:
        merged.merge(state)
    return merged


# -- CIND LHS probes -----------------------------------------------------------


class CINDScanState:
    """Mergeable per-task hit buckets of one CIND LHS relation scan.

    ``buckets[i]`` holds the violating payload entries of task ``i`` (the
    relation's task-list position) in scan order within the covered rows;
    merge extends each bucket in shard order, so the concatenation is the
    whole relation's scan order. Payload entries are whatever the mapper
    was fed per row — canonical ``Tuple`` objects on the serial path,
    plain value tuples in pool workers.
    """

    __slots__ = ("buckets",)

    def __init__(self, buckets: list[list]):
        self.buckets = buckets

    def merge(self, other: "CINDScanState") -> "CINDScanState":
        for mine, theirs in zip(self.buckets, other.buckets):
            mine.extend(theirs)
        return self

    def __repr__(self) -> str:
        return (
            f"<CINDScanState {len(self.buckets)} task(s), "
            f"{sum(len(b) for b in self.buckets)} hit(s)>"
        )


def cind_map_shard(
    tasks: Sequence[CINDRowTask],
    columns: tuple[tuple[Any, ...], ...],
    payload: Sequence[Any],
    witnesses: dict[WitnessSpec, set],
    key_lists: KeyLists,
) -> CINDScanState:
    """Per-task violation buckets over one shard's rows.

    *payload* is the per-row value carried into the buckets (rows or value
    tuples), aligned with *columns*. Tasks sharing
    ``(lhs_checks, X positions, witness spec)`` — distinct CINDs with
    structurally identical pattern rows — flag the same entries: evaluated
    once, replicated per task.
    """
    from repro.engine.executor import filter_by_checks  # avoid import cycle

    evaluated: dict[tuple, list] = {}
    buckets: list[list] = []
    for task in tasks:
        witness = witnesses[task.witness]
        signature = (task.lhs_checks, task.x_positions, task.witness)
        hit_rows = evaluated.get(signature)
        if hit_rows is None:
            if not task.x_positions:
                # Empty embedded key: every premise-matching tuple shares
                # the key (), so the witness test is one set probe.
                if () in witness:
                    hit_rows = []
                else:
                    hit_rows = list(
                        filter_by_checks(columns, task.lhs_checks, payload)
                    )
            else:
                x_keys = key_lists(task.x_positions)
                hit_rows = [
                    p
                    for key, p in filter_by_checks(
                        columns, task.lhs_checks, zip(x_keys, payload)
                    )
                    if key not in witness
                ]
            evaluated[signature] = hit_rows
        buckets.append(hit_rows)
    return CINDScanState(buckets)


def merge_cind_states(states: Sequence[CINDScanState]) -> CINDScanState:
    if not states:
        return CINDScanState([])
    # Buckets of later shards may alias shared `evaluated` lists; copy the
    # first state's buckets so the in-place extends can't corrupt them.
    merged = CINDScanState([list(b) for b in states[0].buckets])
    for state in states[1:]:
        merged.merge(state)
    return merged


def cind_finalize(
    tasks: Sequence[CINDRowTask], state: CINDScanState
) -> Iterable[tuple[CINDRowTask, Any]]:
    """Flatten per-task buckets into ``(task, payload)`` pairs, task-major."""
    out: list[tuple[CINDRowTask, Any]] = []
    for task, bucket in zip(tasks, state.buckets):
        out.extend((task, p) for p in bucket)
    return out
