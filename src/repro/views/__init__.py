"""Selection-projection views and constraint propagation through them."""

from repro.views.spc import SPView, materialize, propagate_cfds, propagate_cinds

__all__ = ["SPView", "materialize", "propagate_cfds", "propagate_cinds"]
