"""Propagation of CFDs and CINDs through selection-projection views.

Section 8 of the paper lists "propagation of CFDs and CINDs through SQL
views" as future work ("needed when deriving schema mapping from the
constraints"). This module implements the sound core for the
selection-projection fragment — views of the form

    V  =  π_keep ( σ_{A1 = c1 ∧ ... ∧ Ak = ck} (R) )

Propagation rules (each provably sound; the test-suite property-checks
them on random instances):

* **CFD inheritance** — CFD satisfaction is closed under subinstances, and
  a V-tuple agrees with its originating R-tuple on every kept attribute;
  so any CFD of R whose attributes are all kept holds on V. Rows whose LHS
  constants contradict a selection condition are dropped (they are vacuous
  on V), and wildcard LHS entries on selection attributes are specialised
  to the selection constant (an equivalent, tighter pattern on V).
* **Selection constants** — for each condition ``A = c`` with ``A`` kept,
  V satisfies the constant CFD ``(V: ∅ → A, (‖ c))``.
* **CIND source-side propagation** — a CIND ``R[X; Xp] ⊆ S[Y; Yp]`` with
  ``X ∪ Xp`` kept propagates to ``V[X; Xp] ⊆ S[Y; Yp]``: a V-tuple
  matching the premise comes from an R-tuple matching it, whose witness in
  S also serves the V-tuple.

Target-side propagation (CINDs *into* a view) is **not** sound in general
— the view may project away or filter out every witness — and is
deliberately not offered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.errors import SchemaError
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import is_wildcard


@dataclass
class SPView:
    """A named selection-projection view over one base relation."""

    name: str
    base: RelationSchema
    keep: tuple[str, ...]
    conditions: Mapping[str, Any]

    def __post_init__(self):
        self.keep = tuple(self.keep)
        self.conditions = dict(self.conditions)
        self.base.check_attribute_list(self.keep)
        for attr, value in self.conditions.items():
            if attr not in self.base:
                raise SchemaError(
                    f"selection attribute {attr!r} not in {self.base.name!r}"
                )
            if not self.base.domain_of(attr).contains(value):
                raise SchemaError(
                    f"selection constant {value!r} outside "
                    f"dom({self.base.name}.{attr})"
                )
        if not self.keep:
            raise SchemaError("a view must keep at least one attribute")

    @property
    def schema(self) -> RelationSchema:
        """The view's relation schema (kept attributes, base domains)."""
        return RelationSchema(
            self.name,
            [Attribute(a, self.base.domain_of(a)) for a in self.keep],
        )

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        """Materialise the view over *db* (set semantics deduplicates)."""
        out = RelationInstance(self.schema)
        for t in db[self.base.name]:
            if all(t[a] == v for a, v in self.conditions.items()):
                out.add(t.project(self.keep))
        return out


def materialize(db: DatabaseInstance, views: Iterable[SPView]) -> DatabaseInstance:
    """A database over the extended schema (base relations + views)."""
    views = list(views)
    relations = list(db.schema.relations) + [v.schema for v in views]
    extended = DatabaseInstance(DatabaseSchema(relations))
    for inst in db:
        for t in inst:
            extended[inst.schema.name].add(t.values)
    for view in views:
        for t in view.evaluate(db):
            extended[view.name].add(t.values)
    return extended


def propagate_cfds(view: SPView, cfds: Iterable[CFD]) -> list[CFD]:
    """CFDs guaranteed to hold on *view* whenever the inputs hold on base.

    Includes the inherited (specialised) CFDs plus the selection-constant
    CFDs. Constraints mentioning non-kept attributes do not propagate.
    """
    kept = set(view.keep)
    view_schema = view.schema
    out: list[CFD] = []
    for cfd in cfds:
        if cfd.relation.name != view.base.name:
            continue
        if not (set(cfd.lhs) | set(cfd.rhs)) <= kept:
            continue
        rows = []
        for row in cfd.tableau:
            compatible = True
            lhs_values = []
            for attr in cfd.lhs:
                value = row.lhs_value(attr)
                condition = view.conditions.get(attr)
                if condition is not None:
                    if is_wildcard(value):
                        value = condition  # specialise: V only holds A = c
                    elif value != condition:
                        compatible = False  # row vacuous on the view
                        break
                lhs_values.append(value)
            if not compatible:
                continue
            rows.append((lhs_values, row.rhs_projection(cfd.rhs)))
        if rows:
            out.append(
                CFD(view_schema, cfd.lhs, cfd.rhs, rows,
                    name=f"{cfd.name or 'cfd'}@{view.name}")
            )
    for attr, value in view.conditions.items():
        if attr in kept:
            out.append(
                CFD(view_schema, (), (attr,), [((), (value,))],
                    name=f"sel({attr})@{view.name}")
            )
    return out


def propagate_cinds(view: SPView, cinds: Iterable[CIND]) -> list[CIND]:
    """Source-side CIND propagation: ``V[X; Xp] ⊆ S[Y; Yp]`` variants."""
    kept = set(view.keep)
    view_schema = view.schema
    out: list[CIND] = []
    for cind in cinds:
        if cind.lhs_relation.name != view.base.name:
            continue
        if not (set(cind.x) | set(cind.xp)) <= kept:
            continue
        rows = []
        for row in cind.tableau:
            compatible = True
            for attr, condition in view.conditions.items():
                if attr in cind.x or attr in cind.xp:
                    value = row.lhs_value(attr)
                    if not is_wildcard(value) and value != condition:
                        compatible = False  # premise vacuous on the view
                        break
            if compatible:
                rows.append(
                    (
                        row.lhs_projection(cind.x + cind.xp),
                        row.rhs_projection(cind.y + cind.yp),
                    )
                )
        if rows:
            out.append(
                CIND(
                    view_schema, cind.x, cind.xp,
                    cind.rhs_relation, cind.y, cind.yp,
                    rows,
                    name=f"{cind.name or 'cind'}@{view.name}",
                )
            )
    return out
