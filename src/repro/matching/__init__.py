"""Contextual schema matching: CIND-driven data migration."""

from repro.matching.migrate import (
    MigrationResult,
    default_fill,
    migrate,
    verify_migration,
)

__all__ = ["MigrationResult", "default_fill", "migrate", "verify_migration"]
