"""Contextual schema matching: CIND-driven data migration (Example 1.1).

In contextual schema matching [7], CINDs from a source schema to a target
schema say *which* source tuples map *where*: an account tuple goes to
``saving`` only when ``at = 'saving'``, and the target tuple additionally
carries the branch constant (``ab = 'B'``). This module executes such a
mapping: for every source tuple matching a CIND's LHS pattern, it emits the
required target tuple (``Y`` columns copied from ``X``, ``Yp`` columns from
the pattern, remaining columns from a fill policy), then verifies the CINDs
hold on the result.

The database instance holds both source and target relations (as the
paper's bank schema does); migration inserts into the target relations of a
copy, leaving the input untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.cind import CIND
from repro.relational.domains import FiniteDomain
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.schema import RelationSchema
from repro.relational.values import is_wildcard


def default_fill(relation: RelationSchema, attribute: str, source: Tuple) -> Any:
    """Fill policy for target columns no CIND constrains.

    Copies a same-named source column when present (the common case for
    natural matches), else takes the first finite-domain value or a tagged
    unknown.
    """
    if attribute in source.schema:
        return source[attribute]
    attr = relation.attribute(attribute)
    if isinstance(attr.domain, FiniteDomain):
        return attr.domain.values[0]
    return f"unknown:{attribute}"


@dataclass
class MigrationResult:
    """Outcome of a CIND-driven migration."""

    db: DatabaseInstance
    #: Tuples inserted into each target relation.
    inserted: dict[str, int] = field(default_factory=dict)
    #: Per-CIND count of source tuples that matched its LHS pattern.
    matched: dict[str, int] = field(default_factory=dict)
    #: Source tuples that matched no CIND at all (potential mapping gaps).
    unmatched: list[Tuple] = field(default_factory=list)

    @property
    def total_inserted(self) -> int:
        return sum(self.inserted.values())


def migrate(
    db: DatabaseInstance,
    cinds: Iterable[CIND],
    fill: Callable[[RelationSchema, str, Tuple], Any] = default_fill,
) -> MigrationResult:
    """Populate target relations so every CIND obligation is met.

    Works on a copy of *db*. Existing target tuples are reused as
    witnesses; only missing witnesses are inserted.
    """
    cinds = list(cinds)
    work = db.copy()
    inserted: dict[str, int] = {}
    matched: dict[str, int] = {}
    covered: set[tuple[str, Tuple]] = set()
    source_relations = {c.lhs_relation.name for c in cinds}

    for cind in cinds:
        name = cind.name or repr(cind)
        matched.setdefault(name, 0)
        lhs_instance = work[cind.lhs_relation.name]
        for row in cind.tableau:
            for t1 in list(lhs_instance):
                if not cind.lhs_matches(t1, row):
                    continue
                matched[name] += 1
                covered.add((cind.lhs_relation.name, t1))
                if cind.find_witness(work, t1, row) is not None:
                    continue
                template = cind.required_rhs_template(t1, row)
                values = {
                    attr: (
                        fill(cind.rhs_relation, attr, t1)
                        if is_wildcard(value)
                        else value
                    )
                    for attr, value in template.items()
                }
                target = Tuple(cind.rhs_relation, values)
                if work[cind.rhs_relation.name].add(target):
                    inserted[cind.rhs_relation.name] = (
                        inserted.get(cind.rhs_relation.name, 0) + 1
                    )

    unmatched = [
        t
        for relation in sorted(source_relations)
        for t in work[relation]
        if (relation, t) not in covered
    ]
    return MigrationResult(
        db=work, inserted=inserted, matched=matched, unmatched=unmatched
    )


def verify_migration(result: MigrationResult, cinds: Iterable[CIND]) -> bool:
    """Do all the mapping CINDs hold on the migrated database?"""
    return all(cind.satisfied_by(result.db) for cind in cinds)
