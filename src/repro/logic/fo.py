"""First-order logic renderings of CFDs and CINDs.

The paper remarks (Section 1) that CINDs "can be expressed in a form
similar to tuple-generating dependencies". This module makes that
translation concrete: every CFD becomes an equality-generating implication
and every CIND a TGD with constants, rendered as a readable FO sentence.
Useful for documentation, for interop with TGD-based tooling, and for the
tests that sanity-check the quantifier structure.

Conventions: one universally quantified variable per LHS attribute
(``x_an, x_cn, ...``; a second copy ``x2_*`` for CFD pairs), existential
``y_*`` variables for the RHS tuple of a CIND, and constants inlined as
``'...'`` literals.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.relational.values import is_wildcard


def _const(value) -> str:
    return f"'{value}'"


def cfd_to_fo(cfd: CFD) -> list[str]:
    """One FO sentence per pattern row of *cfd*.

    ``(R: X → Y, tp)`` becomes, for each row::

        ∀ x̄, x̄' ( R(x̄) ∧ R(x̄') ∧ ⋀_{B∈X} (x_B = x'_B ∧ [x_B = tp[B]])
                   → ⋀_{A∈Y} (x_A = x'_A ∧ [x_A = tp[A]]) )
    """
    attrs = cfd.relation.attribute_names
    t1 = {a: f"x_{a}" for a in attrs}
    t2 = {a: f"x2_{a}" for a in attrs}
    sentences = []
    for row in cfd.tableau:
        premise = [
            f"{cfd.relation.name}({', '.join(t1[a] for a in attrs)})",
            f"{cfd.relation.name}({', '.join(t2[a] for a in attrs)})",
        ]
        for attr in cfd.lhs:
            premise.append(f"{t1[attr]} = {t2[attr]}")
            value = row.lhs_value(attr)
            if not is_wildcard(value):
                premise.append(f"{t1[attr]} = {_const(value)}")
        conclusion = []
        for attr in cfd.rhs:
            conclusion.append(f"{t1[attr]} = {t2[attr]}")
            value = row.rhs_value(attr)
            if not is_wildcard(value):
                conclusion.append(f"{t1[attr]} = {_const(value)}")
        all_vars = [t1[a] for a in attrs] + [t2[a] for a in attrs]
        sentences.append(
            f"∀ {', '.join(all_vars)} ({' ∧ '.join(premise)} → "
            f"{' ∧ '.join(conclusion)})"
        )
    return sentences


def cind_to_fo(cind: CIND) -> list[str]:
    """One TGD-with-constants per pattern row of *cind*.

    ``(R1[X; Xp] ⊆ R2[Y; Yp], tp)`` becomes, for each row::

        ∀ x̄ ( R1(x̄) ∧ ⋀_{A∈X∪Xp} [x_A = tp[A]]
               → ∃ ȳ ( R2(ȳ) ∧ ⋀_i y_{Bi} = x_{Ai} ∧ ⋀_{B∈Yp} y_B = tp[B] ) )
    """
    lhs_attrs = cind.lhs_relation.attribute_names
    rhs_attrs = cind.rhs_relation.attribute_names
    xs = {a: f"x_{a}" for a in lhs_attrs}
    ys = {b: f"y_{b}" for b in rhs_attrs}
    sentences = []
    for row in cind.tableau:
        premise = [f"{cind.lhs_relation.name}({', '.join(xs[a] for a in lhs_attrs)})"]
        for attr in cind.x + cind.xp:
            value = row.lhs_value(attr)
            if not is_wildcard(value):
                premise.append(f"{xs[attr]} = {_const(value)}")
        body = [f"{cind.rhs_relation.name}({', '.join(ys[b] for b in rhs_attrs)})"]
        for a, b in zip(cind.x, cind.y):
            body.append(f"{ys[b]} = {xs[a]}")
        for attr in cind.yp:
            value = row.rhs_value(attr)
            if not is_wildcard(value):
                body.append(f"{ys[attr]} = {_const(value)}")
        sentences.append(
            f"∀ {', '.join(xs[a] for a in lhs_attrs)} "
            f"({' ∧ '.join(premise)} → ∃ {', '.join(ys[b] for b in rhs_attrs)} "
            f"({' ∧ '.join(body)}))"
        )
    return sentences


def constraint_set_to_fo(cfds: Iterable[CFD] = (), cinds: Iterable[CIND] = ()) -> list[str]:
    """Render a whole constraint set, CFDs first."""
    out: list[str] = []
    for cfd in cfds:
        out.extend(cfd_to_fo(cfd))
    for cind in cinds:
        out.extend(cind_to_fo(cind))
    return out
