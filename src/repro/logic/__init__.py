"""Logical renderings: CFDs/CINDs as first-order sentences (TGD-style)."""

from repro.logic.fo import cfd_to_fo, cind_to_fo, constraint_set_to_fo

__all__ = ["cfd_to_fo", "cind_to_fo", "constraint_set_to_fo"]
