"""Random CFD/CIND generation (the Σ generator of Section 6).

The paper evaluates on two kinds of constraint sets over a random schema:

* **random** sets — unconstrained draws, which may or may not be
  consistent (used for the runtime experiments, Fig. 10b / 11c);
* **consistent** sets — generated "by ensuring that there exists at least
  one possible value for each attribute so as to make a witness database".
  We implement that by fixing a hidden one-tuple-per-relation witness ``W``
  up front and only emitting dependencies that ``W`` satisfies; the
  generator asserts ``W |= Σ`` before returning (used for the accuracy
  experiments, Fig. 10a / 11a / 11b).

Σ follows the paper's mix: 75% CFDs, 25% CINDs, normal form throughout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.violations import ConstraintSet
from repro.errors import GenerationError
from repro.relational.domains import FiniteDomain
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD


@dataclass
class ConstraintConfig:
    """Knobs of the random constraint generator."""

    #: Fraction of CFDs in Σ (paper: 75% CFDs / 25% CINDs).
    cfd_fraction: float = 0.75
    #: LHS sizes for CFDs and Xp/Yp sizes for CINDs.
    max_lhs: int = 3
    max_pattern: int = 2
    max_ind_width: int = 2
    #: Shared constant pool size for infinite-domain attributes.
    constant_pool: int = 5
    #: Probability that a CFD LHS pattern entry is a wildcard.
    wildcard_prob: float = 0.4


def _pool(attribute: Attribute, config: ConstraintConfig) -> list[Any]:
    if isinstance(attribute.domain, FiniteDomain):
        # Cap huge finite domains: patterns only ever mention a few values.
        return list(attribute.domain.values[: max(config.constant_pool, 2)])
    return [f"c{i}" for i in range(config.constant_pool)]


def _compatible_pairs(
    lhs: RelationSchema, rhs: RelationSchema
) -> list[tuple[str, str]]:
    """(Ai, Bi) pairs with dom(Ai) ⊆ dom(Bi) under the generator's domains."""
    pairs = []
    for a in lhs:
        for b in rhs:
            if a.domain is b.domain:
                pairs.append((a.name, b.name))
            elif isinstance(a.domain, FiniteDomain) and not isinstance(
                b.domain, FiniteDomain
            ):
                pairs.append((a.name, b.name))  # finite strings ⊆ string
            elif not isinstance(a.domain, FiniteDomain) and not isinstance(
                b.domain, FiniteDomain
            ):
                pairs.append((a.name, b.name))  # same infinite STRING domain
    return pairs


# -- unconstrained (possibly inconsistent) generation ---------------------------


def random_cfd(
    schema: DatabaseSchema,
    rng: random.Random,
    config: ConstraintConfig | None = None,
    relation: RelationSchema | None = None,
) -> CFD:
    """One random normal-form CFD."""
    config = config or ConstraintConfig()
    relation = relation or rng.choice(schema.relations)
    names = list(relation.attribute_names)
    rng.shuffle(names)
    rhs_attr = names[0]
    lhs_size = rng.randint(0, min(config.max_lhs, len(names) - 1))
    lhs = tuple(sorted(names[1 : 1 + lhs_size]))
    lhs_values = []
    for attr in lhs:
        if rng.random() < config.wildcard_prob:
            lhs_values.append(WILDCARD)
        else:
            lhs_values.append(rng.choice(_pool(relation.attribute(attr), config)))
    rhs_value = (
        WILDCARD
        if rng.random() < 0.3
        else rng.choice(_pool(relation.attribute(rhs_attr), config))
    )
    return CFD(relation, lhs, (rhs_attr,), [(lhs_values, (rhs_value,))])


def random_cind(
    schema: DatabaseSchema,
    rng: random.Random,
    config: ConstraintConfig | None = None,
) -> CIND:
    """One random normal-form CIND."""
    config = config or ConstraintConfig()
    for __ in range(50):
        lhs_rel = rng.choice(schema.relations)
        rhs_rel = rng.choice(schema.relations)
        pairs = _compatible_pairs(lhs_rel, rhs_rel)
        rng.shuffle(pairs)
        x: list[str] = []
        y: list[str] = []
        for a, b in pairs:
            if len(x) >= config.max_ind_width:
                break
            if a not in x and b not in y:
                x.append(a)
                y.append(b)
        lhs_rest = [a.name for a in lhs_rel if a.name not in x]
        rhs_rest = [b.name for b in rhs_rel if b.name not in y]
        rng.shuffle(lhs_rest)
        rng.shuffle(rhs_rest)
        xp = tuple(lhs_rest[: rng.randint(0, min(config.max_pattern, len(lhs_rest)))])
        yp = tuple(rhs_rest[: rng.randint(0, min(config.max_pattern, len(rhs_rest)))])
        if not x and not xp and not yp:
            continue  # degenerate; redraw
        lhs_pattern = {
            a: rng.choice(_pool(lhs_rel.attribute(a), config)) for a in xp
        }
        rhs_pattern = {
            b: rng.choice(_pool(rhs_rel.attribute(b), config)) for b in yp
        }
        return CIND(
            lhs_rel, tuple(x), xp, rhs_rel, tuple(y), yp,
            [(lhs_pattern, rhs_pattern)],
        )
    raise GenerationError("could not draw a CIND after 50 attempts")


def random_constraints(
    schema: DatabaseSchema,
    count: int,
    rng: random.Random | None = None,
    config: ConstraintConfig | None = None,
) -> ConstraintSet:
    """A random Σ with the paper's 75/25 CFD/CIND mix."""
    rng = rng or random.Random(0)
    config = config or ConstraintConfig()
    sigma = ConstraintSet(schema)
    relations = list(schema.relations)
    for i in range(count):
        if rng.random() < config.cfd_fraction:
            # Round-robin over relations so every relation gets CFDs.
            relation = relations[i % len(relations)]
            sigma.add_cfd(random_cfd(schema, rng, config, relation=relation))
        else:
            sigma.add_cind(random_cind(schema, rng, config))
    return sigma


# -- consistent-by-construction generation ----------------------------------------


def _make_witness(
    schema: DatabaseSchema, rng: random.Random, config: ConstraintConfig
) -> dict[str, dict[str, Any]]:
    """A hidden witness tuple per relation, biased towards a shared pool so
    that cross-relation value alignments (needed for CINDs with X ≠ nil)
    occur frequently."""
    witness: dict[str, dict[str, Any]] = {}
    for relation in schema:
        row: dict[str, Any] = {}
        for attr in relation:
            row[attr.name] = rng.choice(_pool(attr, config))
        witness[relation.name] = row
    return witness


def consistent_cfd(
    schema: DatabaseSchema,
    witness: dict[str, dict[str, Any]],
    rng: random.Random,
    config: ConstraintConfig,
    relation: RelationSchema | None = None,
) -> CFD:
    """A random CFD satisfied by the witness database.

    Either the pattern *matches* the witness tuple (then the RHS pattern is
    the witness value or a wildcard), or the LHS contains a constant the
    witness dodges (then everything else is unconstrained). Since the
    witness has one tuple per relation, pair violations cannot arise.
    """
    relation = relation or rng.choice(schema.relations)
    w = witness[relation.name]
    names = list(relation.attribute_names)
    rng.shuffle(names)
    rhs_attr = names[0]
    lhs_size = rng.randint(0, min(config.max_lhs, len(names) - 1))
    lhs = tuple(sorted(names[1 : 1 + lhs_size]))
    matching = rng.random() < 0.5 or not lhs
    lhs_values: list[Any] = []
    if matching:
        for attr in lhs:
            lhs_values.append(
                WILDCARD if rng.random() < config.wildcard_prob else w[attr]
            )
        rhs_value = w[rhs_attr] if rng.random() < 0.7 else WILDCARD
    else:
        dodge_at = rng.randrange(len(lhs))
        for i, attr in enumerate(lhs):
            if i == dodge_at:
                pool = [
                    v for v in _pool(relation.attribute(attr), config)
                    if v != w[attr]
                ]
                if not pool:
                    lhs_values.append(w[attr])  # cannot dodge; fall back
                else:
                    lhs_values.append(rng.choice(pool))
            elif rng.random() < config.wildcard_prob:
                lhs_values.append(WILDCARD)
            else:
                lhs_values.append(rng.choice(_pool(relation.attribute(attr), config)))
        rhs_value = rng.choice(
            _pool(relation.attribute(rhs_attr), config) + [WILDCARD]
        )
        if all(v is WILDCARD or v == w[a] for a, v in zip(lhs, lhs_values)):
            # The dodge degenerated into a match; force a safe RHS.
            rhs_value = w[rhs_attr]
    return CFD(relation, lhs, (rhs_attr,), [(lhs_values, (rhs_value,))])


def consistent_cind(
    schema: DatabaseSchema,
    witness: dict[str, dict[str, Any]],
    rng: random.Random,
    config: ConstraintConfig,
) -> CIND:
    """A random CIND satisfied by the witness database."""
    for __ in range(50):
        lhs_rel = rng.choice(schema.relations)
        rhs_rel = rng.choice(schema.relations)
        w1 = witness[lhs_rel.name]
        w2 = witness[rhs_rel.name]
        matching = rng.random() < 0.5
        if matching:
            # X pairs restricted to positions where the witnesses agree.
            pairs = [
                (a, b)
                for a, b in _compatible_pairs(lhs_rel, rhs_rel)
                if w1[a] == w2[b]
            ]
            rng.shuffle(pairs)
            x: list[str] = []
            y: list[str] = []
            for a, b in pairs:
                if len(x) >= config.max_ind_width:
                    break
                if a not in x and b not in y:
                    x.append(a)
                    y.append(b)
            lhs_rest = [a.name for a in lhs_rel if a.name not in x]
            rhs_rest = [b.name for b in rhs_rel if b.name not in y]
            rng.shuffle(lhs_rest)
            rng.shuffle(rhs_rest)
            xp = tuple(
                lhs_rest[: rng.randint(0, min(config.max_pattern, len(lhs_rest)))]
            )
            yp = tuple(
                rhs_rest[: rng.randint(0, min(config.max_pattern, len(rhs_rest)))]
            )
            if not x and not xp and not yp:
                continue
            lhs_pattern = {a: w1[a] for a in xp}
            rhs_pattern = {b: w2[b] for b in yp}
        else:
            # Non-triggering: some Xp constant dodges the witness.
            lhs_rest = list(lhs_rel.attribute_names)
            rng.shuffle(lhs_rest)
            xp_size = rng.randint(1, min(config.max_pattern, len(lhs_rest)))
            xp = tuple(lhs_rest[:xp_size])
            dodged = False
            lhs_pattern = {}
            for attr in xp:
                pool = [
                    v for v in _pool(lhs_rel.attribute(attr), config)
                    if v != w1[attr]
                ]
                if pool and (not dodged or rng.random() < 0.5):
                    lhs_pattern[attr] = rng.choice(pool)
                    dodged = dodged or lhs_pattern[attr] != w1[attr]
                else:
                    lhs_pattern[attr] = w1[attr]
            if not dodged:
                continue  # redraw: could not dodge
            pairs = [
                (a, b)
                for a, b in _compatible_pairs(lhs_rel, rhs_rel)
                if a not in xp
            ]
            rng.shuffle(pairs)
            x, y = [], []
            for a, b in pairs:
                if len(x) >= config.max_ind_width:
                    break
                if a not in x and b not in y:
                    x.append(a)
                    y.append(b)
            rhs_rest = [b.name for b in rhs_rel if b.name not in y]
            rng.shuffle(rhs_rest)
            yp = tuple(
                rhs_rest[: rng.randint(0, min(config.max_pattern, len(rhs_rest)))]
            )
            rhs_pattern = {
                b: rng.choice(_pool(rhs_rel.attribute(b), config)) for b in yp
            }
        return CIND(
            lhs_rel, tuple(x), xp, rhs_rel, tuple(y), yp,
            [(lhs_pattern, rhs_pattern)],
        )
    raise GenerationError("could not draw a consistent CIND after 50 attempts")


def consistent_constraints(
    schema: DatabaseSchema,
    count: int,
    rng: random.Random | None = None,
    config: ConstraintConfig | None = None,
) -> tuple[ConstraintSet, DatabaseInstance]:
    """A consistent Σ plus the witness database it was built around.

    The witness (one tuple per relation) is verified against Σ before
    returning — the generator is consistent *by construction*, not by hope.
    """
    rng = rng or random.Random(0)
    config = config or ConstraintConfig()
    witness = _make_witness(schema, rng, config)
    sigma = ConstraintSet(schema)
    relations = list(schema.relations)
    for i in range(count):
        if rng.random() < config.cfd_fraction:
            relation = relations[i % len(relations)]
            sigma.add_cfd(
                consistent_cfd(schema, witness, rng, config, relation=relation)
            )
        else:
            sigma.add_cind(consistent_cind(schema, witness, rng, config))
    db = DatabaseInstance(
        schema, {name: [row] for name, row in witness.items()}
    )
    if not sigma.satisfied_by(db):
        raise GenerationError(
            "internal error: generated witness does not satisfy Σ"
        )
    return sigma, db
