"""Random schema generation (the experimental setting of Section 6).

The paper's experiments use schemas of up to 100 relations with up to 15
attributes each, a ratio ``F`` of finite-domain attributes between 0% and
25%, and finite domains of 2–100 elements. :func:`random_schema`
reproduces that generator. Attribute names are globally unique
(``R3_A7``), which keeps chase variable pools and SQL columns unambiguous.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import GenerationError
from repro.relational.domains import numbered_finite_domain
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema


@dataclass
class SchemaConfig:
    """Knobs of the random schema generator (paper defaults)."""

    n_relations: int = 20
    min_arity: int = 2
    max_arity: int = 15
    #: F — fraction of attributes with a finite domain (0.0 – 0.25 in §6).
    finite_ratio: float = 0.25
    #: Finite domains have between these many elements (paper: 2–100).
    finite_domain_size: tuple[int, int] = (2, 100)
    seed: int = 0

    def validate(self) -> None:
        if self.n_relations < 1:
            raise GenerationError("n_relations must be >= 1")
        if not 1 <= self.min_arity <= self.max_arity:
            raise GenerationError("need 1 <= min_arity <= max_arity")
        if not 0.0 <= self.finite_ratio <= 1.0:
            raise GenerationError("finite_ratio must be in [0, 1]")
        lo, hi = self.finite_domain_size
        if not 2 <= lo <= hi:
            raise GenerationError("finite domains need >= 2 elements")


def random_schema(config: SchemaConfig | None = None, **overrides) -> DatabaseSchema:
    """Generate a random database schema per *config*.

    Keyword overrides are applied on top of the (default) config, so
    ``random_schema(n_relations=5, seed=3)`` works without building a
    config object.
    """
    config = config or SchemaConfig()
    if overrides:
        config = SchemaConfig(**{**config.__dict__, **overrides})
    config.validate()
    rng = random.Random(config.seed)
    relations = []
    for i in range(config.n_relations):
        arity = rng.randint(config.min_arity, config.max_arity)
        attrs = []
        for j in range(arity):
            name = f"R{i}_A{j}"
            if rng.random() < config.finite_ratio:
                size = rng.randint(*config.finite_domain_size)
                attrs.append(Attribute(name, numbered_finite_domain(f"dom_{name}", size)))
            else:
                attrs.append(Attribute(name))
        relations.append(RelationSchema(f"R{i}", attrs))
    return DatabaseSchema(relations)
