"""Random schema / constraint / data generation (the Section 6 workloads)."""

from repro.generator.constraint_gen import (
    ConstraintConfig,
    consistent_cfd,
    consistent_cind,
    consistent_constraints,
    random_cfd,
    random_cind,
    random_constraints,
)
from repro.generator.data_gen import (
    InjectionReport,
    inject_cfd_violations,
    inject_cind_violations,
    populate_clean,
)
from repro.generator.schema_gen import SchemaConfig, random_schema

__all__ = [
    "ConstraintConfig",
    "InjectionReport",
    "SchemaConfig",
    "consistent_cfd",
    "consistent_cind",
    "consistent_constraints",
    "inject_cfd_violations",
    "inject_cind_violations",
    "populate_clean",
    "random_cfd",
    "random_cind",
    "random_constraints",
    "random_schema",
]
