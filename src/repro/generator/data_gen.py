"""Synthetic data generation: clean instances and violation injection.

Used by the data-cleaning example and the violation-detection benchmark
(X3). Two pieces:

* :func:`populate_clean` grows a consistent witness database into a larger
  instance that still satisfies Σ, by cloning the witness tuple of each
  relation and re-randomising only the attributes Σ never mentions (a
  change to an unconstrained attribute cannot fire any pattern, break any
  FD group, or lose any CIND witness — the original witness tuple stays in
  place for every CIND probe).
* :func:`inject_cfd_violations` / :func:`inject_cind_violations` plant a
  controlled number of errors: CFD violations by rewriting the RHS of
  tuples matching a pattern, CIND violations by deleting/corrupting the
  witness side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.core.violations import ConstraintSet
from repro.relational.domains import FiniteDomain
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.values import is_wildcard


def _unconstrained_attributes(sigma: ConstraintSet) -> dict[str, set[str]]:
    """Per relation: attributes not mentioned by any constraint of Σ."""
    used: dict[str, set[str]] = {}
    for cfd in sigma.cfds:
        used.setdefault(cfd.relation.name, set()).update(cfd.attributes_used())
    for cind in sigma.cinds:
        used.setdefault(cind.lhs_relation.name, set()).update(
            cind.lhs_attributes_used()
        )
        used.setdefault(cind.rhs_relation.name, set()).update(
            cind.rhs_attributes_used()
        )
    free: dict[str, set[str]] = {}
    for relation in sigma.schema:
        mentioned = used.get(relation.name, set())
        free[relation.name] = {
            a.name for a in relation if a.name not in mentioned
        }
    return free


def populate_clean(
    sigma: ConstraintSet,
    witness: DatabaseInstance,
    tuples_per_relation: int,
    rng: random.Random | None = None,
) -> DatabaseInstance:
    """Grow *witness* to ~tuples_per_relation rows per relation, keeping Σ.

    Requires ``witness |= Σ`` (as produced by
    :func:`~repro.generator.constraint_gen.consistent_constraints`). New
    rows are witness clones with fresh values on Σ-unconstrained
    attributes; when a relation has no unconstrained attribute, it keeps
    just its witness tuples (duplicates collapse under set semantics).
    """
    rng = rng or random.Random(0)
    free = _unconstrained_attributes(sigma)
    db = witness.copy()
    counter = 0
    for relation in sigma.schema:
        base_rows = list(db[relation.name])
        if not base_rows:
            continue
        free_attrs = sorted(free[relation.name])
        if not free_attrs:
            continue
        # Bound the attempts: when every free attribute has a small finite
        # domain, the distinct-clone space can run out below the target
        # (set semantics absorbs duplicates), so blind looping would never
        # terminate.
        attempts = 0
        max_attempts = 10 * tuples_per_relation + 50
        while len(db[relation.name]) < tuples_per_relation and attempts < max_attempts:
            attempts += 1
            base = rng.choice(base_rows)
            updates: dict[str, Any] = {}
            for attr_name in free_attrs:
                attr = relation.attribute(attr_name)
                counter += 1
                if isinstance(attr.domain, FiniteDomain):
                    updates[attr_name] = rng.choice(attr.domain.values)
                else:
                    updates[attr_name] = f"fill#{counter}"
            db[relation.name].add(base.replace(**updates))
    return db


@dataclass
class InjectionReport:
    """What the violation injector actually planted."""

    cfd_edits: list[tuple[str, Tuple, Tuple]] = field(default_factory=list)
    cind_deletions: list[tuple[str, Tuple]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.cfd_edits) + len(self.cind_deletions)


def inject_cfd_violations(
    db: DatabaseInstance,
    sigma: ConstraintSet,
    count: int,
    rng: random.Random | None = None,
) -> InjectionReport:
    """Plant up to *count* CFD violations by corrupting RHS values in place.

    Picks constant-RHS normal-form CFDs whose pattern some tuple matches
    and rewrites that tuple's RHS attribute to a different value.
    """
    rng = rng or random.Random(0)
    report = InjectionReport()
    normal = [c for cfd in sigma.cfds for c in cfd.to_normal_form()]
    candidates = [
        c for c in normal if c.is_constant_cfd and c.rhs_attribute not in c.lhs
    ]
    rng.shuffle(candidates)
    for cfd in candidates:
        if len(report.cfd_edits) >= count:
            break
        instance = db[cfd.relation.name]
        pattern = cfd.pattern
        rhs_attr = cfd.rhs_attribute
        target = pattern.rhs_value(rhs_attr)
        matching = [
            t
            for t in instance
            if all(
                is_wildcard(pattern.lhs_value(a)) or t[a] == pattern.lhs_value(a)
                for a in cfd.lhs
            )
            and t[rhs_attr] == target
        ]
        if not matching:
            continue
        victim = rng.choice(matching)
        corrupted = victim.replace(**{rhs_attr: f"BAD#{len(report.cfd_edits)}"})
        instance.discard(victim)
        instance.add(corrupted)
        report.cfd_edits.append((cfd.relation.name, victim, corrupted))
    return report


def inject_cind_violations(
    db: DatabaseInstance,
    sigma: ConstraintSet,
    count: int,
    rng: random.Random | None = None,
) -> InjectionReport:
    """Plant up to *count* CIND violations by deleting RHS witnesses.

    For a CIND with a triggered LHS tuple, removes every witness of that
    tuple from the RHS relation (when those witnesses are not themselves
    needed as LHS tuples of the same relation's other obligations, removal
    is a pure CIND violation).
    """
    rng = rng or random.Random(0)
    report = InjectionReport()
    normal = sigma.normalized()
    cinds = list(normal.cinds)
    rng.shuffle(cinds)
    for cind in cinds:
        if len(report.cind_deletions) >= count:
            break
        pattern = cind.pattern
        lhs_instance = db[cind.lhs_relation.name]
        for t1 in list(lhs_instance):
            if len(report.cind_deletions) >= count:
                break
            if not cind.lhs_matches(t1, pattern):
                continue
            witness = cind.find_witness(db, t1, pattern)
            if witness is None:
                continue  # already violated
            removed_any = False
            while witness is not None:
                db[cind.rhs_relation.name].discard(witness)
                removed_any = True
                witness = cind.find_witness(db, t1, pattern)
            if removed_any:
                report.cind_deletions.append((cind.rhs_relation.name, t1))
    return report
