"""Command-line interface: check, repair, and analyse CSV data.

Three subcommands, all driven by two small text files plus a directory of
CSVs (one per relation, named ``<relation>.csv``):

* ``check``       — report CFD/CIND violations (any ``repro.api`` backend:
  memory, naive, sql, incremental — all print the same report);
* ``repair``      — write a repaired copy of the data;
* ``consistency`` — run the heuristic Checking algorithm on Σ itself;
* ``lint-sigma``  — static analysis of Σ (no data needed): exact CFD
  consistency, duplicate/implied constraints, CIND chain diagnostics;
* ``serve``       — host the async multi-tenant detection service
  (line-delimited JSON over TCP; see :mod:`repro.serve`).

Schema file syntax (one relation per line, ``#`` comments)::

    relation interest(ab, ct, at: enum[saving|checking], rt)
    relation orders(id: int, country, total: int)

Attribute types: plain (infinite string), ``int`` (infinite integer), or
``enum[v1|v2|...]`` (finite domain). Constraint files use the syntax of
:mod:`repro.core.parser`.

Usage::

    python -m repro check --schema bank.schema --constraints bank.rules \
        --data ./csv_dir
"""

from __future__ import annotations

import argparse
import random
import re
import sys
from pathlib import Path

from repro.api import BACKENDS, ExecutionOptions, connect
from repro.cleaning.repair import repair as run_repair
from repro.consistency.checking import checking
from repro.core.parser import parse_constraints
from repro.errors import ParseError, ReproError
from repro.relational.csvio import read_database_csv, write_database_csv
from repro.relational.domains import INTEGER, FiniteDomain
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema

_RELATION_RE = re.compile(
    r"^\s*relation\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*"
    r"\((?P<body>.*)\)\s*$"
)
_ATTR_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*"
    r"(?::\s*(?P<type>int|enum\[(?P<values>[^\]]*)\]))?\s*$"
)


def parse_schema_text(text: str) -> DatabaseSchema:
    """Parse the schema-file syntax into a :class:`DatabaseSchema`."""
    relations = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _RELATION_RE.match(line)
        if not match:
            raise ParseError(
                f"line {lineno}: expected 'relation Name(attr, ...)'", raw
            )
        attrs = []
        for chunk in match.group("body").split(","):
            attr_match = _ATTR_RE.match(chunk)
            if not attr_match:
                raise ParseError(
                    f"line {lineno}: cannot parse attribute {chunk!r}", raw
                )
            name = attr_match.group("name")
            type_spec = attr_match.group("type")
            if type_spec is None:
                attrs.append(Attribute(name))
            elif type_spec == "int":
                attrs.append(Attribute(name, INTEGER))
            else:
                values = [
                    v.strip()
                    for v in attr_match.group("values").split("|")
                    if v.strip()
                ]
                domain = FiniteDomain(f"{match.group('name')}.{name}", values)
                attrs.append(Attribute(name, domain))
        relations.append(RelationSchema(match.group("name"), attrs))
    return DatabaseSchema(relations)


def _positive_int(text: str) -> int:
    """argparse type for --workers: reject 0/negatives at parse time so a
    usage mistake exits 2 (usage error), never 1 (the 'dirty data' code)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError("workers must be >= 1")
    return value


def _load(args: argparse.Namespace):
    schema = parse_schema_text(Path(args.schema).read_text())
    sigma = parse_constraints(Path(args.constraints).read_text(), schema)
    return schema, sigma


def _load_data(schema: DatabaseSchema, args: argparse.Namespace):
    coercions = {}
    for rel in schema:
        per_attr = {
            a.name: int for a in rel if a.domain is INTEGER
        }
        if per_attr:
            coercions[rel.name] = per_attr
    return read_database_csv(schema, args.data, coercions)


def cmd_check(args: argparse.Namespace) -> int:
    schema, sigma = _load(args)
    # One facade over every engine: identical reports, one printing path,
    # one exit-code rule (1 = dirty), and --verbose works everywhere. The
    # sqlfile engine is out-of-core: --data names a sqlite database file
    # that is checked in place, never loaded into memory.
    if args.engine == "sqlfile":
        source = Path(args.data)
        if source.is_dir():
            raise ReproError(
                "--engine sqlfile expects --data to be a sqlite database "
                "file, not a CSV directory (build one with "
                "repro.relational.csvio.database_csv_to_sqlite)"
            )
        # check never writes: open read-only so write-protected snapshots
        # (chmod 444, ro mounts) are checkable.
        options = ExecutionOptions(workers=args.workers, readonly=True)
    else:
        source = _load_data(schema, args)
        options = ExecutionOptions(workers=args.workers)
    with connect(source, sigma, backend=args.engine, options=options) as session:
        detection = session.detect()
    print(detection.summary() if args.verbose else detection.report.summary())
    return 0 if detection.is_clean else 1


def cmd_repair(args: argparse.Namespace) -> int:
    schema, sigma = _load(args)
    # Mirror cmd_check's source split: the sqlfile engine repairs a sqlite
    # database file out-of-core (the input file is loaded read-only and
    # never mutated; the engine stages its own working copy).
    if args.engine == "sqlfile":
        source = Path(args.data)
        if source.is_dir():
            raise ReproError(
                "--engine sqlfile expects --data to be a sqlite database "
                "file, not a CSV directory (build one with "
                "repro.relational.csvio.database_csv_to_sqlite)"
            )
    else:
        source = _load_data(schema, args)
    result = run_repair(
        source,
        sigma,
        cind_policy=args.cind_policy,
        max_rounds=args.max_rounds,
        workers=args.workers,
        backend=args.engine,
        mode=args.mode,
        tie_break=args.tie_break,
        rng=random.Random(args.seed),
    )
    kinds = result.edits_by_kind()
    kinds_text = (
        " (" + ", ".join(f"{k}={n}" for k, n in sorted(kinds.items())) + ")"
        if kinds
        else ""
    )
    print(
        f"clean: {result.clean}; {result.cost} edit(s){kinds_text} in "
        f"{result.rounds} round(s) [engine={result.backend}, "
        f"mode={result.mode}]"
    )
    if args.verbose:
        for stats in result.round_stats:
            print(
                f"  round {stats.round_no}: worklist={stats.worklist_size} "
                f"({stats.cfd_items} cfd, {stats.cind_items} cind), "
                f"batch={stats.batch_deletes}del/{stats.batch_inserts}ins, "
                f"delta=-{stats.delta_removed}/+{stats.delta_added}, "
                f"cache={stats.cache_hits}h/{stats.cache_misses}m"
            )
        for edit in result.edits:
            print(f"  {edit}")
    write_database_csv(result.db, args.out)
    print(f"repaired data written to {args.out}")
    return 0 if result.clean else 1


def cmd_consistency(args: argparse.Namespace) -> int:
    schema, sigma = _load(args)
    decision = checking(
        schema, sigma, k=args.k, rng=random.Random(args.seed)
    )
    print(f"consistent: {decision.consistent} (method: {decision.method})")
    if decision.consistent and args.verbose and decision.witness is not None:
        print("witness database:")
        for inst in decision.witness:
            for t in inst:
                print(f"  {t!r}")
    if not decision.consistent:
        print(
            "note: the problem is undecidable in general; a negative answer "
            "means no witness was found within budget"
        )
    return 0 if decision.consistent else 1


def cmd_lint_sigma(args: argparse.Namespace) -> int:
    """Static analysis of Σ. Exit codes: 0 clean, 1 errors, 3 warnings-only
    (promoted to 1 under --strict); 2 stays the operational-failure code."""
    from repro.analyze import analyze_sigma

    schema, sigma = _load(args)
    report = analyze_sigma(sigma, implication=not args.no_implication)
    if args.json:
        print(report.to_json_text())
    else:
        print(report.render_text())
    if report.errors:
        return 1
    if report.warnings:
        return 1 if args.strict else 3
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Host the async multi-tenant detection service over TCP.

    The schema/constraint pair is parsed once and shared by every tenant;
    clients create tenants (inline rows, or a sqlite file path for the
    ``sqlfile`` backend), apply batches, read reports, and subscribe to
    violation deltas over line-delimited JSON — see
    :mod:`repro.serve.protocol` for the op reference and
    ``examples/serve_demo.py`` for a complete client.
    """
    import asyncio

    from repro.serve import DetectionServer, DetectionService

    schema, sigma = _load(args)
    service = DetectionService(
        capacity=args.capacity, max_workers=args.workers
    )
    server = DetectionServer(
        service, schema, sigma, host=args.host, port=args.port
    )

    async def run() -> None:
        await server.start()
        host, port = server.address
        print(f"repro serve: listening on {host}:{port} (NDJSON over TCP)")
        sys.stdout.flush()
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conditional dependencies (CINDs + CFDs): check, repair, analyse.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, with_data: bool = True) -> None:
        p.add_argument("--schema", required=True, help="schema file")
        p.add_argument("--constraints", required=True, help="constraint file")
        if with_data:
            p.add_argument(
                "--data", required=True,
                help="directory of <relation>.csv files (or, with "
                "--engine sqlfile, an existing sqlite database file)",
            )
        p.add_argument("-v", "--verbose", action="store_true")

    p_check = sub.add_parser("check", help="detect CFD/CIND violations")
    common(p_check)
    p_check.add_argument(
        "--engine",
        choices=tuple(sorted(BACKENDS)),
        default="memory",
        help="memory = shared-scan engine (default); naive = per-constraint "
        "reference evaluation; sql = sqlite3 backend; sqlfile = out-of-core "
        "detection inside an existing sqlite file (--data names the file); "
        "incremental = live checker (bulk-built here). All engines print "
        "the same report.",
    )
    p_check.add_argument(
        "--workers", type=_positive_int, default=1,
        help="parallel scan-group workers (memory engine only; default 1)",
    )
    p_check.set_defaults(func=cmd_check)

    p_repair = sub.add_parser("repair", help="repair violations and write a copy")
    common(p_repair)
    p_repair.add_argument("--out", required=True, help="output directory")
    p_repair.add_argument("--cind-policy", choices=("insert", "delete"), default="insert")
    p_repair.add_argument("--max-rounds", type=int, default=10)
    p_repair.add_argument(
        "--workers", type=_positive_int, default=1,
        help="parallel scan-group workers for each detection round",
    )
    p_repair.add_argument(
        "--engine",
        choices=tuple(sorted(BACKENDS)),
        default="memory",
        help="detection/apply engine for the repair session (default "
        "memory); sqlfile repairs a sqlite database file out-of-core "
        "(--data names the file, which is never mutated). All engines "
        "produce bit-identical repairs.",
    )
    p_repair.add_argument(
        "--mode",
        choices=("auto", "delta", "full"),
        default="auto",
        help="worklist source per round: delta = maintained violation "
        "state (live incremental checker, or a shadow one on re-scan "
        "engines); full = re-check every round; auto picks delta "
        "everywhere except the memory engine (its versioned cache makes "
        "re-checks the cheap path). Purely a performance choice.",
    )
    p_repair.add_argument(
        "--tie-break",
        choices=("first", "lexicographic", "random"),
        default="first",
        help="CFD majority-vote tie policy: first tied value in scan "
        "order (default, the historical behaviour), smallest under a "
        "type-stable sort, or drawn with the --seed RNG",
    )
    p_repair.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for --tie-break random (default 0)",
    )
    p_repair.set_defaults(func=cmd_repair)

    p_cons = sub.add_parser("consistency", help="check Σ itself for consistency")
    common(p_cons, with_data=False)
    p_cons.add_argument("--k", type=int, default=20, help="RandomChecking attempts")
    p_cons.add_argument("--seed", type=int, default=0)
    p_cons.set_defaults(func=cmd_consistency)

    p_lint = sub.add_parser(
        "lint-sigma",
        help="static analysis of Σ: consistency, redundancy, CIND chains",
    )
    common(p_lint, with_data=False)
    p_lint.add_argument(
        "--json", action="store_true",
        help="machine-readable report on stdout instead of text",
    )
    p_lint.add_argument(
        "--strict", action="store_true",
        help="exit 1 on warnings too (default: warnings-only exits 3)",
    )
    p_lint.add_argument(
        "--no-implication", action="store_true",
        help="skip the implied-constraint tier (bounded chase / two-tuple "
        "SAT) — faster on large Σ",
    )
    p_lint.set_defaults(func=cmd_lint_sigma)

    p_serve = sub.add_parser(
        "serve",
        help="host the async multi-tenant detection service "
        "(line-delimited JSON over TCP)",
    )
    common(p_serve, with_data=False)
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    p_serve.add_argument(
        "--port", type=int, default=7407,
        help="TCP port (default 7407; 0 picks a free port)",
    )
    p_serve.add_argument(
        "--capacity", type=_positive_int, default=64,
        help="max open tenants before LRU eviction (default 64)",
    )
    p_serve.add_argument(
        "--workers", type=_positive_int, default=4,
        help="thread-executor size for detection/DML work (default 4)",
    )
    p_serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
