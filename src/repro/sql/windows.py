"""Rowid-window sharding and window-function SQL for the sqlfile backend.

Two independent accelerations of the pushed-down scan plan, sharing this
module because both reason about *how a sqlite file is scanned* rather
than what the scan means:

* **One-pass window-function CFD detection** (the serial fast path).
  The legacy executor runs one ``GROUP BY X HAVING COUNT(DISTINCT
  rhs) > 1`` query per RHS variant plus one tableau self-join per CFD —
  four to six sorts of the relation per scan group. The one-pass path
  replaces them with two stages:

  1. :func:`cfd_candidate_sql` — a single aggregate prefilter scan per
     group returning a *superset* of the violating group keys (a
     NULL-safe ``QUOTE``-encoding of the whole RHS projection detects any
     disagreement; bare first-row columns detect pattern-constant
     misses). On clean data this one scan replaces every legacy query
     and returns zero rows.
  2. :func:`cfd_refine_sql` — only when candidates exist: one
     window-function scan restricted to the candidate keys, computing the
     exact per-variant disagreements (``MIN(rhs) OVER (PARTITION BY X)
     IS NOT MAX(rhs) OVER ...`` — sqlite rejects ``COUNT(DISTINCT ...)
     OVER``, and min-vs-max over the partition is the same predicate with
     the same NULL treatment) and each key's first-occurrence row in the
     same pass, replacing the per-variant GROUP BYs *and* the tableau
     self-join. Python-side task evaluation then replays the in-memory
     engine's finalize semantics exactly, so hits are bit-identical
     including order.

  The superset argument makes stage 1 safe by construction: any key a
  legacy query would return differs somewhere in its RHS projection (or
  misses a constant on every row), and both conditions survive the
  encoding — sqlite quirks can only add false positives, which stage 2
  discards. :func:`supports_window_functions` probes the library once;
  executors fall back to the legacy SQL wholesale when the build is too
  old (< 3.25) or the caller forces ``window_functions="off"``.

* **Contiguous rowid windows** (the parallel path — the file-side twin
  of :class:`~repro.engine.shards.ShardSpec`). :func:`plan_rowid_windows`
  splits a relation's ``[MIN(rowid), MAX(rowid)]`` span into contiguous
  ``BETWEEN`` ranges; per-window scans (:func:`cfd_window_state`,
  :func:`witness_window_set`, :func:`cind_window_state`) produce exactly
  the engine's mergeable partial states
  (:class:`~repro.engine.shards.CFDGroupState` /
  :class:`~repro.engine.shards.WitnessState` /
  :class:`~repro.engine.shards.CINDScanState`), so the existing merge +
  finalize machinery reassembles bit-identical results no matter how the
  file was partitioned. Windows run concurrently on a
  :class:`ReadonlyConnectionPool` — sqlite releases the GIL inside
  queries, so a thread pool scales on real cores.
"""

from __future__ import annotations

import queue
import sqlite3
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.engine.planner import (
    CFDScanGroup,
    CINDRowTask,
    WitnessSpec,
    passes,
)
from repro.engine.shards import (
    CFDGroupState,
    CINDScanState,
    WitnessState,
    plan_shard_ranges,
    resolve_shard_count,
)
from repro.relational.instance import Tuple
from repro.relational.schema import RelationSchema
from repro.sql.ddl import distinct_count_expr
from repro.sql.ddl import quote_identifier as q
from repro.sql.loader import connect_file, table_rowid_bounds

#: Past this many candidate keys the one-pass path hands the group back to
#: the legacy SQL: the refinement scan's key-restriction list would grow
#: unwieldy, and a group this dirty pays the legacy queries anyway.
MAX_REFINE_CANDIDATES = 64


def supports_window_functions(conn: sqlite3.Connection) -> bool:
    """Does this connection's sqlite library support window functions?

    Probed by running one (sqlite >= 3.25, 2018); version comparison would
    miss builds compiled with ``SQLITE_OMIT_WINDOWFUNC``.
    """
    try:
        conn.execute("SELECT COUNT(*) OVER () FROM (SELECT 1)").fetchall()
    except sqlite3.OperationalError:
        return False
    return True


# -- rowid windows (the file-side ShardSpec) -----------------------------------


@dataclass(frozen=True)
class RowidWindow:
    """One contiguous rowid span of a relation scan (both bounds inclusive).

    The file-side twin of :class:`~repro.engine.shards.ShardSpec`: where a
    shard slices a column view by row index, a window restricts a SQL scan
    with ``rowid BETWEEN lo AND hi``. ``index`` is the window's position in
    scan order — partial states must merge in this order for first-value /
    bucket-order semantics to reproduce the serial scan.
    """

    relation: str
    index: int
    lo: int
    hi: int

    def predicate(self, alias: str = "t") -> str:
        # rowids are integers owned by sqlite — safe to inline, which keeps
        # the parameter list free for pattern constants.
        return f"{alias}.rowid BETWEEN {self.lo} AND {self.hi}"


def plan_rowid_windows(
    conn: sqlite3.Connection,
    relation: str,
    workers: int,
    min_window_rows: int = 8192,
    shards: int = 0,
    granularity: int = 0,
) -> list[RowidWindow]:
    """Contiguous rowid windows covering *relation*, sized like shards.

    Reuses the engine's :func:`~repro.engine.shards.resolve_shard_count`
    policy (explicit *shards* wins; otherwise ``min(workers, rows //
    min_window_rows)``, with *granularity* raising the worker bound to
    ``workers * granularity`` for work stealing), then splits the
    ``[min, max]`` rowid span into equal contiguous ranges. Files written
    by :func:`~repro.sql.loader.create_database_file` have dense
    sequential rowids, so equal spans carry equal row shares; sparse
    files merely skew the split — every rowid is still covered by exactly
    one window, which is all correctness needs.
    """
    lo, hi, n_rows = table_rowid_bounds(conn, relation)
    count = resolve_shard_count(
        n_rows, workers, min_window_rows, shards, granularity
    )
    if n_rows == 0 or count <= 1:
        return [RowidWindow(relation, 0, lo, hi)]
    span = hi - lo + 1
    ranges = plan_shard_ranges(span, min(count, span))
    return [
        RowidWindow(relation, i, lo + start, lo + stop - 1)
        for i, (start, stop) in enumerate(ranges)
    ]


class ReadonlyConnectionPool:
    """A bounded pool of ``readonly=True`` connections to one database file.

    Window tasks borrow a connection for the duration of one query batch
    (:meth:`connection` blocks when all are out), so ``size`` bounds the
    file descriptors and sqlite page caches a parallel scan can hold —
    and each connection is used by one thread at a time, which is all
    sqlite's default thread mode asks of us. Temp tables seeded on a
    pooled connection (CIND witness keys) die with :meth:`close`.
    """

    def __init__(self, path: str | Path, size: int):
        self._conns = [
            connect_file(path, readonly=True) for __ in range(max(1, size))
        ]
        self._queue: queue.Queue[sqlite3.Connection] = queue.Queue()
        for conn in self._conns:
            self._queue.put(conn)

    @contextmanager
    def connection(self) -> Iterator[sqlite3.Connection]:
        conn = self._queue.get()
        try:
            yield conn
        finally:
            self._queue.put(conn)

    def close(self) -> None:
        for conn in self._conns:
            conn.close()
        self._conns = []


# -- one-pass CFD detection (prefilter + window-function refinement) -----------


def _key_columns(rel: RelationSchema, group: CFDScanGroup) -> list[str]:
    return [f't.{q(name)}' for name in group.lhs]


def _rhs_union(group: CFDScanGroup) -> list[int]:
    """Every RHS position any non-trivial variant of *group* projects."""
    return sorted(
        {
            p
            for variant in group.rhs_variants()
            if variant != group.lhs_positions
            for p in variant
        }
    )


def _single_signatures(
    group: CFDScanGroup,
) -> list[tuple[tuple[int, ...], tuple]]:
    """Deduplicated ``(rhs_positions, rhs_checks)`` of constant-bearing tasks."""
    return list(
        dict.fromkeys(
            (task.rhs_positions, task.rhs_checks)
            for task in group.tasks
            if task.rhs_checks
        )
    )


def _quote_encoding(rel: RelationSchema, positions: Sequence[int]) -> str:
    """A NULL-safe, injective text encoding of a row's projection.

    ``QUOTE`` never returns NULL (``QUOTE(NULL)`` is the string
    ``'NULL'``) and embeds both type and content, so two rows encode
    equal iff sqlite stores equal projections — any disagreement a
    per-variant query could detect survives this whole-projection
    encoding, which is what makes the prefilter's candidate set a
    superset of every variant's disagree set.
    """
    names = rel.attribute_names
    return " || ',' || ".join(f"QUOTE(t.{q(names[p])})" for p in positions)


def cfd_candidate_sql(
    rel: RelationSchema, group: CFDScanGroup
) -> tuple[str, list[Any]] | None:
    """Stage 1: the single-scan candidate prefilter for one CFD group.

    Returns ``(sql, params)`` — the query yields one row per *candidate*
    group key (key columns, then the key's first rowid), a superset of
    every key any task of the group can flag:

    * ``COUNT(DISTINCT <quote-encoded RHS union>) > 1`` catches every key
      whose tuples disagree on *any* RHS variant (pair violations);
    * one ``NOT (col IS ? AND ...)`` term per distinct RHS-constant
      signature catches every key whose shared RHS misses a pattern
      constant (single violations). The bare columns are evaluated on
      the ``MIN(rowid)`` row (sqlite's documented min/max quirk), but
      correctness never relies on that: a key whose rows differ is
      already a candidate via the encoding term, and a key whose rows
      all agree fails the check on every row alike.

    ``None`` when the group has no detectable violation shape (no
    non-trivial variant and no constant checks — nothing to scan for).
    Groups with an empty LHS get the aggregate form without ``GROUP BY``
    (one all-rows group); the caller treats the single returned row as
    the candidacy verdict for key ``()``.
    """
    names = rel.attribute_names
    rhs_union = _rhs_union(group)
    signatures = _single_signatures(group)
    having: list[str] = []
    params: list[Any] = []
    if rhs_union:
        having.append(
            f"COUNT(DISTINCT {_quote_encoding(rel, rhs_union)}) > 1"
        )
    for positions, checks in signatures:
        term = " AND ".join(
            f"t.{q(names[positions[i]])} IS ?" for i, __ in checks
        )
        having.append(f"NOT ({term})")
        params.extend(const for __, const in checks)
    if not having:
        return None
    predicate = " OR ".join(having)
    key_cols = _key_columns(rel, group)
    if key_cols:
        key_sel = ", ".join(key_cols)
        sql = (
            f"SELECT {key_sel}, MIN(t.rowid) AS fr "
            f"FROM {q(rel.name)} t "
            f"GROUP BY {key_sel} "
            f"HAVING {predicate}"
        )
        return sql, params
    sql = (
        f"SELECT MIN(t.rowid) AS fr, {predicate} "
        f"FROM {q(rel.name)} t"
    )
    return sql, params


def cfd_refine_sql(
    rel: RelationSchema,
    group: CFDScanGroup,
    candidates: Sequence[tuple[Any, ...]],
) -> tuple[str, list[Any], list[int], list[tuple[int, ...]]]:
    """Stage 2: the one-pass window-function refinement over candidates.

    Returns ``(sql, params, positions, variants)``. The query makes one
    scan of the relation restricted to the candidate keys and emits, per
    key, its first-occurrence row: the key columns, the values at
    ``positions`` (the RHS union, taken from the first row), ``rowid``,
    the partition-wide first rowid, then one disagree flag per
    non-trivial variant — ``MIN(enc) OVER w IS NOT MAX(enc) OVER w`` over
    the same NULL-ignoring encoding the legacy ``COUNT(DISTINCT enc) >
    1`` aggregates, so the flags match the legacy per-variant queries
    bit for bit. ``ORDER BY fr`` delivers keys in first-occurrence scan
    order, the engine's candidate order.

    Key restriction uses ``IN (VALUES ...)`` (sqlite builds an ephemeral
    index over the list) unless a candidate key contains NULL, where
    ``IN`` would silently drop it — those fall back to an ``EXISTS`` join
    with NULL-safe ``IS`` comparisons.
    """
    names = rel.attribute_names
    key_cols = _key_columns(rel, group)
    variants = [
        v for v in group.rhs_variants() if v != group.lhs_positions
    ]
    positions = list(
        dict.fromkeys(
            p
            for source in ([v for v in variants]
                           + [sig[0] for sig in _single_signatures(group)])
            for p in source
        )
    )
    sel_cols = [f"t.{q(names[p])}" for p in positions]
    flags = []
    for i, variant in enumerate(variants):
        enc = distinct_count_expr([names[p] for p in variant])
        flags.append(f"(MIN({enc}) OVER w IS NOT MAX({enc}) OVER w) AS d{i}")
    inner_select = ", ".join(
        key_cols
        + sel_cols
        + ["t.rowid AS rid", "MIN(t.rowid) OVER w AS fr"]
        + flags
    )
    params: list[Any] = []
    where = ""
    if key_cols:
        width = len(key_cols)
        placeholders = ", ".join(
            "(" + ", ".join("?" for __ in range(width)) + ")"
            for __ in candidates
        )
        params = [value for key in candidates for value in key]
        if any(value is None for value in params):
            # IN never matches a NULL component; spell the membership test
            # with NULL-safe IS comparisons instead.
            cte_cols = ", ".join(f"c{i}" for i in range(width))
            match = " AND ".join(
                f"__cand.c{i} IS {key_cols[i]}" for i in range(width)
            )
            where = (
                f" WHERE EXISTS (SELECT 1 FROM __cand WHERE {match})"
            )
            prefix = (
                f"WITH __cand({cte_cols}) AS (VALUES {placeholders}) "
            )
        else:
            key_tuple = (
                key_cols[0] if width == 1 else "(" + ", ".join(key_cols) + ")"
            )
            where = f" WHERE {key_tuple} IN (VALUES {placeholders})"
            prefix = ""
        partition = "PARTITION BY " + ", ".join(key_cols)
    else:
        prefix = ""
        partition = ""
    sql = (
        f"{prefix}"
        f"SELECT * FROM ("
        f"SELECT {inner_select} FROM {q(rel.name)} t{where} "
        f"WINDOW w AS ({partition})"
        f") WHERE rid = fr ORDER BY fr"
    )
    return sql, params, positions, variants


def cfd_onepass_hits(
    conn: sqlite3.Connection,
    rel: RelationSchema,
    group: CFDScanGroup,
    max_candidates: int = MAX_REFINE_CANDIDATES,
) -> list[tuple[Any, tuple[Any, ...], str]] | None:
    """The one-pass CFD scan of one group: prefilter, then refine.

    Returns the violating ``(task, key, kind)`` triples in exactly the
    legacy executor's (= the in-memory engine's) order, or ``None`` when
    the group is too dirty for the bounded refinement (the caller falls
    back to the legacy queries — same answer, different plan).
    """
    staged = cfd_candidate_sql(rel, group)
    if staged is None:
        return []
    sql, params = staged
    if group.lhs:
        candidates = [
            tuple(row[:-1]) for row in conn.execute(sql, params)
        ]
    else:
        [row] = conn.execute(sql, params).fetchall()
        candidates = [()] if row[0] is not None and any(row[1:]) else []
    if not candidates:
        return []
    if len(candidates) > max_candidates:
        return None

    sql, params, positions, variants = cfd_refine_sql(rel, group, candidates)
    position_index = {p: i for i, p in enumerate(positions)}
    nk = len(group.lhs)
    np_ = len(positions)
    disagree: dict[tuple[int, ...], dict[tuple[Any, ...], int]] = {
        variant: {} for variant in group.rhs_variants()
    }
    firsts: dict[tuple[Any, ...], tuple] = {}
    frs: dict[tuple[Any, ...], int] = {}
    for row in conn.execute(sql, params):
        key = tuple(row[:nk])
        values = row[nk:nk + np_]
        fr = row[nk + np_ + 1]
        firsts[key] = values
        frs[key] = fr
        for i, variant in enumerate(variants):
            if row[nk + np_ + 2 + i]:
                disagree[variant][key] = fr

    hits: list[tuple[Any, tuple[Any, ...], str]] = []
    for task in group.tasks:
        variant_disagree = disagree[task.rhs_positions]
        task_hits = [
            (fr, key, "pair")
            for key, fr in variant_disagree.items()
            if passes(key, task.key_checks)
        ]
        if task.rhs_checks:
            indices = [position_index[p] for p in task.rhs_positions]
            for key, values in firsts.items():
                if key in variant_disagree:
                    continue
                if not passes(key, task.key_checks):
                    continue
                projection = tuple(values[i] for i in indices)
                if not passes(projection, task.rhs_checks):
                    task_hits.append((frs[key], key, "single"))
        task_hits.sort(key=lambda hit: hit[0])
        hits.extend((task, key, kind) for __, key, kind in task_hits)
    return hits


# -- per-window mergeable partial states (the parallel path) -------------------


def cfd_window_state(
    conn: sqlite3.Connection,
    rel: RelationSchema,
    group: CFDScanGroup,
    window: RowidWindow,
) -> CFDGroupState:
    """One window's :class:`~repro.engine.shards.CFDGroupState` for *group*.

    One deduplicating ``GROUP BY (key, RHS union)`` over the window's
    rows — sqlite's GROUP BY equality matches the engine's Python value
    equality for everything the loader stores — ordered by first
    occurrence, then folded exactly like
    :func:`~repro.engine.shards.cfd_map_shard`: per variant, a first-value
    map in first-occurrence order plus the disagree set. Bare columns
    ride the ``MIN(rowid)`` quirk, so first values are the actual first
    row's (required for bit-identical report keys when sqlite coalesces
    numerically equal values of different types).
    """
    names = rel.attribute_names
    variants = group.rhs_variants()
    positions = list(
        dict.fromkeys(
            (*group.lhs_positions,
             *(p for v in variants if v != group.lhs_positions for p in v))
        )
    )
    empty: dict = {
        variant: ({}, set()) for variant in variants
    }
    if not positions:
        # No key and no non-trivial RHS: candidacy collapses to "any row".
        [(mr,)] = conn.execute(
            f"SELECT MIN(t.rowid) FROM {q(rel.name)} t "
            f"WHERE {window.predicate()}"
        ).fetchall()
        if mr is None:
            return CFDGroupState(empty)
        return CFDGroupState({variant: ({(): ()}, set()) for variant in variants})
    cols = ", ".join(f"t.{q(names[p])}" for p in positions)
    sql = (
        f"SELECT {cols}, MIN(t.rowid) AS mr "
        f"FROM {q(rel.name)} t "
        f"WHERE {window.predicate()} "
        f"GROUP BY {cols} ORDER BY mr"
    )
    rows = conn.execute(sql).fetchall()
    index = {p: i for i, p in enumerate(positions)}
    key_indices = [index[p] for p in group.lhs_positions]
    state: dict = {}
    for variant in variants:
        first: dict[tuple[Any, ...], tuple] = {}
        disagree: set = set()
        if variant == group.lhs_positions:
            for row in rows:
                key = tuple(row[i] for i in key_indices)
                first.setdefault(key, key)
        else:
            value_indices = [index[p] for p in variant]
            setdefault = first.setdefault
            add = disagree.add
            for row in rows:
                key = tuple(row[i] for i in key_indices)
                rkey = tuple(row[i] for i in value_indices)
                if setdefault(key, rkey) != rkey:
                    add(key)
        state[variant] = (first, disagree)
    return CFDGroupState(state)


def witness_window_set(
    conn: sqlite3.Connection,
    rel: RelationSchema,
    spec: WitnessSpec,
    window: RowidWindow,
) -> set:
    """One window's witness key set for *spec* (RHS relation scan)."""
    names = rel.attribute_names
    conds = [window.predicate("t2")]
    params: list[Any] = []
    for pos, const in spec.yp_checks:
        conds.append(f"t2.{q(names[pos])} = ?")
        params.append(const)
    where = " AND ".join(conds)
    if not spec.y_positions:
        rows = conn.execute(
            f"SELECT 1 FROM {q(rel.name)} t2 WHERE {where} LIMIT 1", params
        ).fetchall()
        return {()} if rows else set()
    select = ", ".join(f"t2.{q(names[p])}" for p in spec.y_positions)
    sql = f"SELECT DISTINCT {select} FROM {q(rel.name)} t2 WHERE {where}"
    return {tuple(row) for row in conn.execute(sql, params)}


def witness_states(
    specs: Sequence[WitnessSpec], sets: dict[WitnessSpec, set]
) -> WitnessState:
    """Bundle merged per-spec sets in plan spec order (engine currency)."""
    return WitnessState([sets[spec] for spec in specs])


class SeededWitnesses:
    """Merged witness key sets, materialized per pooled connection.

    CIND probe windows anti-join against indexed temp witness tables —
    but temp tables are per-connection, and the merged witness sets only
    exist after the witness-window merge barrier. Each probing
    connection therefore seeds its own copies lazily (executemany +
    covering index + ANALYZE, the serial executor's exact recipe) the
    first time it probes; a connection is held by one thread at a time,
    so per-connection state needs no locking.
    """

    def __init__(self):
        #: id(conn) -> {spec: temp table name (non-empty Y) | bool (empty Y)}
        self._tables: dict[int, dict[WitnessSpec, Any]] = {}
        self._counters: dict[int, int] = {}
        #: id(conn) -> the connection itself, so :meth:`drop_all` can
        #: reach every connection this instance seeded (persistent
        #: connection pools outlive one execution; the tables must not).
        self._conns: dict[int, sqlite3.Connection] = {}

    def ensure(
        self,
        conn: sqlite3.Connection,
        merged: dict[WitnessSpec, set],
    ) -> dict[WitnessSpec, Any]:
        self._conns[id(conn)] = conn
        tables = self._tables.setdefault(id(conn), {})
        for spec, keys in merged.items():
            if spec in tables:
                continue
            if not spec.y_positions:
                tables[spec] = bool(keys)
                continue
            count = self._counters.get(id(conn), 0) + 1
            self._counters[id(conn)] = count
            name = f"__winwitness_{count}"
            width = len(spec.y_positions)
            decl = ", ".join(q(f"k{i}") for i in range(width))
            cursor = conn.cursor()
            cursor.execute(f"CREATE TEMP TABLE {q(name)} ({decl})")
            cursor.executemany(
                f"INSERT INTO {q(name)} VALUES "
                f"({', '.join('?' for __ in range(width))})",
                list(keys),
            )
            cursor.execute(
                f"CREATE INDEX {q(name + '_idx')} ON {q(name)} ({decl})"
            )
            cursor.execute(f"ANALYZE {q(name)}")
            tables[spec] = name
        return tables

    def drop_all(self) -> None:
        """Drop every temp table this instance seeded, on every connection.

        Required when the connections come from a session-persistent pool:
        the pool (and its connections) outlive this execution, but the
        witness sets they were seeded with may not survive the next DML —
        and a fresh ``SeededWitnesses`` restarts its per-connection name
        counter, so stale tables would collide with the next execution's
        ``CREATE TEMP TABLE``. Per-call pools skip this: closing the
        connection drops its temp tables wholesale.
        """
        for conn_id, tables in self._tables.items():
            conn = self._conns.get(conn_id)
            if conn is None:
                continue
            for name in tables.values():
                if isinstance(name, str):
                    conn.execute(f"DROP TABLE IF EXISTS {q(name)}")
        self._tables.clear()
        self._counters.clear()
        self._conns.clear()


def cind_window_state(
    conn: sqlite3.Connection,
    rel: RelationSchema,
    tasks: Sequence[CINDRowTask],
    window: RowidWindow,
    witness_tables: dict[WitnessSpec, Any],
) -> CINDScanState:
    """One window's :class:`~repro.engine.shards.CINDScanState` for one
    LHS relation: per-task violation buckets in rowid order, probing the
    connection's seeded witness tables with the serial executor's
    anti-join shape (deduplicated per task signature)."""
    names = rel.attribute_names
    cols = ", ".join(f"t1.{q(n)}" for n in names)
    evaluated: dict[tuple, list[Tuple]] = {}
    buckets: list[list[Tuple]] = []
    for task in tasks:
        signature = (task.lhs_checks, task.x_positions, task.witness)
        rows = evaluated.get(signature)
        if rows is None:
            witness = witness_tables[task.witness]
            conds = [window.predicate("t1")]
            params: list[Any] = []
            for pos, const in task.lhs_checks:
                conds.append(f"t1.{q(names[pos])} = ?")
                params.append(const)
            if not task.x_positions:
                if witness:  # a witness exists for the shared empty key
                    rows = []
                    evaluated[signature] = rows
                    buckets.append(rows)
                    continue
                anti = ""
            else:
                probe = " AND ".join(
                    f"w.{q('k%d' % i)} = t1.{q(names[pos])}"
                    for i, pos in enumerate(task.x_positions)
                )
                anti = (
                    f" AND NOT EXISTS "
                    f"(SELECT 1 FROM {q(witness)} w WHERE {probe})"
                )
            sql = (
                f"SELECT {cols} FROM {q(rel.name)} t1 "
                f"WHERE {' AND '.join(conds)}{anti} "
                f"ORDER BY t1.rowid"
            )
            rows = [Tuple(rel, row) for row in conn.execute(sql, params)]
            evaluated[signature] = rows
        buckets.append(rows)
    return CINDScanState(buckets)
