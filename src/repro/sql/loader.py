"""Loading, attaching, and fingerprinting sqlite3 databases.

Two ways of getting a connection:

* :func:`connect_memory` + :func:`load_database` — serialize an in-memory
  :class:`~repro.relational.instance.DatabaseInstance` into a fresh
  ``:memory:`` database (the classic ``sql`` backend path);
* :func:`connect_file` + :func:`introspect_schema` — attach to an
  *existing* sqlite file and verify its tables match the schema, for the
  out-of-core ``sqlfile`` backend that runs detection where the data
  lives.

:func:`create_database_file` writes an instance out as a sqlite file
(rowid order = tuple insertion order, which is what keeps file-backed
reports bit-identical to the in-memory engine), and
:func:`table_fingerprint` / :func:`data_version` supply the cheap change
detectors that key the ``sqlfile`` backend's result cache.
"""

from __future__ import annotations

import sqlite3
import zlib
from pathlib import Path

from repro.errors import SQLBackendError
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema
from repro.sql.ddl import create_table_sql, insert_sql
from repro.sql.ddl import quote_identifier as q


def connect_memory() -> sqlite3.Connection:
    """A fresh in-memory sqlite connection.

    ``check_same_thread=False``: the serving layer runs detection calls on
    a thread pool, so a session's connection legitimately migrates between
    executor threads (creation in one, queries or ``close()`` in another).
    sqlite itself is compiled in serialized mode — per-connection mutexes
    make cross-thread use safe; the service's per-tenant locks order the
    accesses that must not interleave.
    """
    return sqlite3.connect(":memory:", check_same_thread=False)


def connect_file(
    path: str | Path, readonly: bool = False
) -> sqlite3.Connection:
    """Attach to an *existing* sqlite database file.

    Unlike bare ``sqlite3.connect``, a missing file is an error instead of
    a silently created empty database — attaching to a typo'd path and
    reporting "0 tables" would be a miserable way to discover it.

    The connection is opened in autocommit mode (``isolation_level=None``):
    the ``sqlfile`` backend issues its own explicit commits, and python's
    implicit ``BEGIN`` (triggered even by temp-table writes) would
    otherwise leave a read transaction pinning a shared lock — blocking
    every other writer to the file for the session's lifetime.
    """
    path = Path(path)
    mode = "ro" if readonly else "rw"
    try:
        return sqlite3.connect(
            f"file:{path}?mode={mode}",
            uri=True,
            isolation_level=None,
            # The serving layer moves sessions between executor threads;
            # sqlite's serialized mode makes that safe (see connect_memory).
            check_same_thread=False,
        )
    except sqlite3.OperationalError as exc:
        raise SQLBackendError(
            f"cannot open sqlite database {str(path)!r} ({mode}): {exc}"
        ) from exc


def introspect_schema(
    conn: sqlite3.Connection, schema: DatabaseSchema
) -> None:
    """Verify that *conn* holds one table per relation with matching columns.

    Column *names and order* must equal the relation schema's attribute
    list (detection queries and row→``Tuple`` mapping are positional).
    Raises :class:`SQLBackendError` with a precise complaint on the first
    mismatch; extra unrelated tables in the file are fine.
    """
    cursor = conn.cursor()
    for relation in schema:
        rows = cursor.execute(
            f"PRAGMA table_info({q(relation.name)})"
        ).fetchall()
        if not rows:
            names = [
                r[0]
                for r in cursor.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            ]
            raise SQLBackendError(
                f"sqlite database has no table {relation.name!r}; "
                f"tables are {sorted(names)}"
            )
        columns = tuple(row[1] for row in rows)
        expected = relation.attribute_names
        if columns != expected:
            raise SQLBackendError(
                f"table {relation.name!r} has columns {list(columns)}, "
                f"expected {list(expected)} (names and order must match "
                "the relation schema)"
            )


def data_version(conn: sqlite3.Connection) -> int:
    """sqlite's ``PRAGMA data_version`` counter.

    It moves whenever *another* connection commits a change to the file —
    the signal the ``sqlfile`` cache uses to notice out-of-band writes.
    (A connection's own writes do not move its own counter.)

    ``fetchall`` (here and in every other single-row helper) matters: it
    exhausts the statement, releasing sqlite's read lock — a half-stepped
    statement would block concurrent writers until garbage collection.
    """
    [(value,)] = conn.execute("PRAGMA data_version").fetchall()
    return value


def table_fingerprint(
    conn: sqlite3.Connection, table: str
) -> tuple[int, int]:
    """A cheap ``(max rowid, row count)`` change detector for one table.

    Any insert/delete moves at least one component in practice (appends
    grow both, deletes shrink the count), so comparing fingerprints after
    a ``data_version`` bump tells the cache *which* tables to invalidate
    without hashing their contents.
    """
    [row] = conn.execute(
        f"SELECT COALESCE(MAX(rowid), 0), COUNT(*) FROM {q(table)}"
    ).fetchall()
    return (row[0], row[1])


def table_rowid_bounds(
    conn: sqlite3.Connection, table: str
) -> tuple[int, int, int]:
    """``(min rowid, max rowid, row count)`` of one table, in one scan.

    The rowid-window planner (:func:`repro.sql.windows.plan_rowid_windows`)
    partitions ``[min, max]`` into contiguous spans; files written by
    :func:`create_database_file` have dense sequential rowids, so equal
    spans are equal row shares. An empty table reports ``(1, 0, 0)`` —
    an empty ``BETWEEN`` range, so callers need no special case.
    """
    [row] = conn.execute(
        f"SELECT MIN(rowid), MAX(rowid), COUNT(*) FROM {q(table)}"
    ).fetchall()
    if row[2] == 0:
        return (1, 0, 0)
    return (row[0], row[1], row[2])


def _row_crc(*values) -> int:
    """Order-insensitive-summable CRC32 of one row's values.

    ``repr`` keeps types apart (``1`` vs ``'1'`` vs ``1.0`` hash
    differently) and CRC32 is stable across processes and Python runs —
    unlike ``hash()``, whose string salting would make fingerprints
    incomparable across sessions reading the same file.
    """
    return zlib.crc32(repr(values).encode("utf-8", "surrogatepass"))


def ensure_content_hash_function(conn: sqlite3.Connection) -> None:
    """Register the ``repro_row_crc`` SQL function on *conn* (idempotent)."""
    conn.create_function("repro_row_crc", -1, _row_crc, deterministic=True)


def table_content_fingerprint(
    conn: sqlite3.Connection, table: str
) -> tuple[str, int, int]:
    """A content-sensitive change detector: ``(COUNT(*), SUM(row CRC32))``.

    The rowid heuristic of :func:`table_fingerprint` misses a foreign
    writer that deletes the newest row and re-inserts a different one —
    sqlite reuses the vacated max rowid, so both components come back
    unchanged. Summing a per-row CRC32 over the *values* (computed inside
    one SQL aggregate via a registered deterministic function) closes
    that hole: any change to any row's content moves the sum with
    overwhelming probability, and the sum is insertion-order-independent,
    matching the instance's set semantics. One full-table aggregate scan
    per call — consulted only after a ``data_version`` bump, i.e. per
    foreign commit, never on the warm path. Tagged ``"content"`` so a
    fingerprint from one mode can never compare equal to the other's.
    """
    ensure_content_hash_function(conn)
    cols = ", ".join(
        q(row[1])
        for row in conn.execute(f"PRAGMA table_info({q(table)})").fetchall()
    )
    [row] = conn.execute(
        f"SELECT COUNT(*), COALESCE(SUM(repro_row_crc({cols})), 0) "
        f"FROM {q(table)}"
    ).fetchall()
    return ("content", row[0], row[1])


def read_database_file(
    path: str | Path, schema: DatabaseSchema
) -> DatabaseInstance:
    """Load a sqlite database file into an in-memory instance.

    The inverse of :func:`create_database_file`: rows are read in rowid
    order, so tuple insertion order — and therefore every order-sensitive
    detection report over the loaded instance — matches what the
    file-backed ``sqlfile`` backend produces over the file itself. The
    serving layer uses this to build the in-memory shadow that computes
    violation deltas for file-backed tenants.
    """
    conn = connect_file(path, readonly=True)
    try:
        introspect_schema(conn, schema)
        db = DatabaseInstance(schema)
        for relation in schema:
            instance = db[relation.name]
            for row in conn.execute(
                f"SELECT * FROM {q(relation.name)} ORDER BY rowid"
            ):
                instance.add(tuple(row))
    finally:
        conn.close()
    return db


def create_database_file(
    path: str | Path, db: DatabaseInstance, overwrite: bool = False
) -> Path:
    """Write *db* out as a sqlite database file and return its path.

    Tuples are inserted in instance iteration order, so rowid order equals
    insertion order and file-backed detection reports come out in the same
    order as the in-memory engine's. Refuses to clobber an existing file
    unless ``overwrite=True``.
    """
    path = Path(path)
    if path.exists():
        if not overwrite:
            raise SQLBackendError(
                f"refusing to overwrite existing file {str(path)!r}; "
                "pass overwrite=True to replace it"
            )
        path.unlink()
    conn = sqlite3.connect(path)
    try:
        load_database(conn, db)
    finally:
        conn.close()
    return path


def load_database(conn: sqlite3.Connection, db: DatabaseInstance) -> None:
    """Create one table per relation and bulk-insert every tuple.

    Templates (instances containing chase variables) are rejected: SQL
    violation detection operates on ground data only.
    """
    if not db.is_ground():
        raise SQLBackendError(
            "cannot load a template with chase variables into SQL"
        )
    cursor = conn.cursor()
    for relation in db.schema:
        cursor.execute(create_table_sql(relation))
        rows = [t.values for t in db[relation.name]]
        if rows:
            cursor.executemany(insert_sql(relation), rows)
    conn.commit()
