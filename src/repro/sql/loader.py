"""Loading in-memory instances into sqlite3."""

from __future__ import annotations

import sqlite3

from repro.errors import SQLBackendError
from repro.relational.instance import DatabaseInstance
from repro.sql.ddl import create_table_sql, insert_sql


def connect_memory() -> sqlite3.Connection:
    """A fresh in-memory sqlite connection."""
    return sqlite3.connect(":memory:")


def load_database(conn: sqlite3.Connection, db: DatabaseInstance) -> None:
    """Create one table per relation and bulk-insert every tuple.

    Templates (instances containing chase variables) are rejected: SQL
    violation detection operates on ground data only.
    """
    if not db.is_ground():
        raise SQLBackendError(
            "cannot load a template with chase variables into SQL"
        )
    cursor = conn.cursor()
    for relation in db.schema:
        cursor.execute(create_table_sql(relation))
        rows = [t.values for t in db[relation.name]]
        if rows:
            cursor.executemany(insert_sql(relation), rows)
    conn.commit()
