"""SQL backend: DDL, loading, and violation detection on sqlite3."""

from repro.sql.ddl import (
    create_schema_sql,
    create_table_sql,
    insert_sql,
    quote_identifier,
    sql_type,
)
from repro.sql.loader import (
    connect_memory,
    create_database_file,
    load_database,
    read_database_file,
)
from repro.sql.violations import SQLViolationDetector, sql_check_database

__all__ = [
    "SQLViolationDetector",
    "connect_memory",
    "create_database_file",
    "create_schema_sql",
    "create_table_sql",
    "insert_sql",
    "load_database",
    "quote_identifier",
    "read_database_file",
    "sql_check_database",
    "sql_type",
]
