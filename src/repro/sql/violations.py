"""SQL-based violation detection for CFDs and CINDs.

For CFDs this follows the technique of [9] (as the paper recommends in
Section 7/8): the pattern tableau is loaded as a *data table* (wildcards
as NULL) and two queries per CFD find

* ``Q1`` — single-tuple violations: tuples matching some pattern row's LHS
  whose RHS value differs from the row's RHS constant;
* ``Q2`` — pair violations: LHS groups matching a row that disagree on the
  RHS attribute (all tuples of such a group are reported, mirroring the
  in-memory engine).

For CINDs (Section 8 flags this as the paper's planned follow-up, so we
build it) each normal-form row becomes one anti-join::

    SELECT t1.* FROM Ra t1
    WHERE t1.xp = :consts...
      AND NOT EXISTS (SELECT 1 FROM Rb t2
                      WHERE t2.B1 = t1.A1 AND ... AND t2.yp = :consts...)

All constants travel as bound parameters — nothing is interpolated into
SQL text except quoted identifiers.

:class:`SQLPlanExecutor` is the out-of-core counterpart: it pushes a
:class:`~repro.engine.planner.DetectionPlan`'s *shared* scan units down as
SQL — one ``GROUP BY`` pass per CFD ``(relation, X)`` scan group (reusing
one tableau temp table per CFD across every constraint in the group) and
one witness anti-join per deduplicated CIND signature — instead of the
per-constraint full-table rescans above, with count-only and
``EXISTS``-based early-exit variants mirroring the in-memory engine's
scan modes.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.violations import ConstraintSet, constraint_labels
from repro.engine.planner import (
    CFDScanGroup,
    CINDRowTask,
    DetectionPlan,
    passes,
)
from repro.errors import SQLBackendError
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.schema import RelationSchema
from repro.relational.values import is_wildcard
from repro.sql.ddl import distinct_count_expr, row_predicate, select_columns
from repro.sql.ddl import quote_identifier as q
from repro.sql.loader import connect_memory, load_database
from repro.sql.windows import cfd_onepass_hits, supports_window_functions


class TableauCache:
    """Pattern tableaux as TEMP data tables, one per distinct CFD content.

    Keying by *content* ``(relation, X, Y, pattern rows)`` rather than by
    object identity means repeated ``check()`` calls — and distinct CFD
    objects with equal tableaux — reuse one table instead of leaking a new
    ``__tableau_N`` per call onto a long-lived connection (the historical
    behaviour this class replaces). ``drop_all()`` removes every table the
    cache created, so detectors attached to a caller's connection can
    clean up after themselves without closing it.
    """

    def __init__(self, conn: sqlite3.Connection):
        self.conn = conn
        self._by_content: dict[tuple, str] = {}
        self._count = 0

    def __len__(self) -> int:
        return len(self._by_content)

    @staticmethod
    def _content_key(cfd: CFD) -> tuple:
        def norm(value: Any) -> Any:
            return None if is_wildcard(value) else value

        rows = tuple(
            (
                tuple(norm(row.lhs_value(a)) for a in cfd.lhs),
                tuple(norm(row.rhs_value(a)) for a in cfd.rhs),
            )
            for row in cfd.tableau
        )
        return (cfd.relation.name, cfd.lhs, cfd.rhs, rows)

    def get(self, cfd: CFD) -> str:
        """The temp-table name for *cfd*'s tableau, creating it on first use.

        Layout: one ``lhs_A``/``rhs_B`` TEXT column per LHS/RHS attribute,
        wildcards encoded as NULL; one row per pattern row, in tableau
        order (so ``rowid - 1`` is the pattern row index).
        """
        key = self._content_key(cfd)
        name = self._by_content.get(key)
        if name is not None:
            return name
        self._count += 1
        name = f"__tableau_{self._count}"
        columns = [f"lhs_{a}" for a in cfd.lhs] + [f"rhs_{a}" for a in cfd.rhs]
        decl = ", ".join(f"{q(c)} TEXT" for c in columns) or "__empty INTEGER"
        cursor = self.conn.cursor()
        cursor.execute(f"CREATE TEMP TABLE {q(name)} ({decl})")
        if columns:
            placeholders = ", ".join("?" for __ in columns)
            cursor.executemany(
                f"INSERT INTO {q(name)} VALUES ({placeholders})",
                [lhs + rhs for lhs, rhs in key[3]],
            )
        else:
            cursor.executemany(
                f"INSERT INTO {q(name)} VALUES (?)",
                [(1,) for __ in cfd.tableau],
            )
        self._by_content[key] = name
        return name

    def drop_all(self) -> None:
        cursor = self.conn.cursor()
        for name in self._by_content.values():
            cursor.execute(f"DROP TABLE IF EXISTS temp.{q(name)}")
        self._by_content.clear()


class SQLViolationDetector:
    """Runs violation queries for a constraint set over sqlite3.

    Construct from an in-memory :class:`DatabaseInstance` (loaded into a
    fresh ``:memory:`` connection the detector owns) or attach to an
    existing connection that already holds the tables — in which case the
    connection stays the caller's: :meth:`close` drops the detector's temp
    tables but leaves the connection open.
    """

    def __init__(
        self,
        db: DatabaseInstance | None = None,
        conn: sqlite3.Connection | None = None,
    ):
        if (db is None) == (conn is None):
            raise SQLBackendError("provide exactly one of db= or conn=")
        self._owns_conn = db is not None
        if db is not None:
            conn = connect_memory()
            load_database(conn, db)
        self.conn = conn
        self._tableaux = TableauCache(conn)

    # -- CFDs ----------------------------------------------------------------

    def _load_tableau(self, cfd: CFD) -> str:
        """The CFD's tableau as a (cached) temp data table; returns its name."""
        return self._tableaux.get(cfd)

    def cfd_violating_rows(self, cfd: CFD) -> set[tuple[Any, ...]]:
        """All rows of the relation involved in some violation of *cfd*.

        Matches :meth:`repro.core.cfd.CFD.violating_tuples` exactly (the
        cross-validation tests rely on it).
        """
        rel = cfd.relation
        tableau = self._load_tableau(cfd)
        all_cols = ", ".join(f"t.{q(a.name)}" for a in rel)
        match_lhs = " AND ".join(
            f"(tp.{q('lhs_' + a)} IS NULL OR t.{q(a)} = tp.{q('lhs_' + a)})"
            for a in cfd.lhs
        ) or "1=1"

        out: set[tuple[Any, ...]] = set()
        cursor = self.conn.cursor()

        # Q1: single-tuple violations against constant RHS patterns.
        rhs_mismatch = " OR ".join(
            f"(tp.{q('rhs_' + a)} IS NOT NULL AND t.{q(a)} <> tp.{q('rhs_' + a)})"
            for a in cfd.rhs
        )
        q1 = (
            f"SELECT DISTINCT {all_cols} FROM {q(rel.name)} t, {q(tableau)} tp "
            f"WHERE {match_lhs} AND ({rhs_mismatch})"
        )
        out.update(cursor.execute(q1).fetchall())

        # Q2: groups matching a pattern row that disagree on the RHS.
        # sqlite has no multi-column COUNT(DISTINCT ...); concatenate the
        # quote()d values (injective) when the RHS has several attributes.
        if len(cfd.rhs) == 1:
            distinct_rhs = f"t.{q(cfd.rhs[0])}"
        else:
            distinct_rhs = " || ',' || ".join(
                f"quote(t.{q(a)})" for a in cfd.rhs
            )
        if cfd.lhs:
            group_cols = ", ".join(f"t.{q(a)}" for a in cfd.lhs)
            q2_groups = (
                f"SELECT {group_cols}, tp.rowid AS prow "
                f"FROM {q(rel.name)} t, {q(tableau)} tp "
                f"WHERE {match_lhs} "
                f"GROUP BY tp.rowid, {group_cols} "
                f"HAVING COUNT(DISTINCT {distinct_rhs}) > 1"
            )
            join_cond = " AND ".join(
                f"t.{q(a)} = g.{q(a)}" for a in cfd.lhs
            )
            q2 = (
                f"SELECT DISTINCT {all_cols} FROM {q(rel.name)} t "
                f"JOIN ({q2_groups}) g ON {join_cond}"
            )
            out.update(cursor.execute(q2).fetchall())
        else:
            # Empty LHS: the whole relation is one group per pattern row.
            q2_check = (
                f"SELECT COUNT(DISTINCT {distinct_rhs}) FROM {q(rel.name)} t"
            )
            (distinct,) = cursor.execute(q2_check).fetchone()
            if distinct is not None and distinct > 1 and len(cfd.tableau) > 0:
                q2_all = f"SELECT DISTINCT {all_cols} FROM {q(rel.name)} t"
                out.update(cursor.execute(q2_all).fetchall())
        return out

    # -- CINDs -----------------------------------------------------------------------

    def cind_violating_rows_by_pattern(
        self, cind: CIND
    ) -> list[set[tuple[Any, ...]]]:
        """Violating LHS rows per pattern row, in tableau order.

        One anti-join per row; the per-row split is what lets the
        :class:`~repro.api.backends.SQLBackend` adapter rebuild
        engine-identical ``CINDViolation`` objects (which carry the
        pattern index).
        """
        ra = cind.lhs_relation
        rb = cind.rhs_relation
        all_cols = ", ".join(f"t1.{q(a.name)}" for a in ra)
        out: list[set[tuple[Any, ...]]] = []
        cursor = self.conn.cursor()
        for row in cind.tableau:
            premise: list[str] = []
            params: list[Any] = []
            for a in cind.x + cind.xp:
                value = row.lhs_value(a)
                if not is_wildcard(value):
                    premise.append(f"t1.{q(a)} = ?")
                    params.append(value)
            witness: list[str] = []
            for a, b in zip(cind.x, cind.y):
                witness.append(f"t2.{q(b)} = t1.{q(a)}")
            for b in cind.yp:
                value = row.rhs_value(b)
                if not is_wildcard(value):
                    witness.append(f"t2.{q(b)} = ?")
                    params.append(value)
            where = " AND ".join(premise) or "1=1"
            exists_cond = " AND ".join(witness) or "1=1"
            sql = (
                f"SELECT DISTINCT {all_cols} FROM {q(ra.name)} t1 "
                f"WHERE {where} AND NOT EXISTS ("
                f"SELECT 1 FROM {q(rb.name)} t2 WHERE {exists_cond})"
            )
            out.append(set(cursor.execute(sql, params).fetchall()))
        return out

    def cind_violating_rows(self, cind: CIND) -> set[tuple[Any, ...]]:
        """LHS rows matching some pattern row with no RHS witness.

        Matches :meth:`repro.core.cind.CIND.violating_tuples`.
        """
        out: set[tuple[Any, ...]] = set()
        for rows in self.cind_violating_rows_by_pattern(cind):
            out |= rows
        return out

    # -- whole constraint sets ----------------------------------------------------------

    def check(self, sigma: ConstraintSet) -> dict[str, set[tuple[Any, ...]]]:
        """Violating rows per constraint label.

        Labels come from :func:`repro.core.violations.constraint_labels`, so
        two distinct constraints with equal names/reprs get separate entries
        (matching the in-memory engine's ``by_constraint`` keys) instead of
        silently overwriting each other.

        Constraints with **zero** violations are omitted (historical
        behaviour, kept for compatibility). The facade-level
        :meth:`repro.api.backends.SQLBackend.violating_rows` normalizes
        this: it keys every constraint of Σ, empty set when clean.
        """
        labels = constraint_labels(sigma)
        out: dict[str, set[tuple[Any, ...]]] = {}
        for cfd in sigma.cfds:
            rows = self.cfd_violating_rows(cfd)
            if rows:
                out[labels[id(cfd)]] = rows
        for cind in sigma.cinds:
            rows = self.cind_violating_rows(cind)
            if rows:
                out[labels[id(cind)]] = rows
        return out

    def is_clean(self, sigma: ConstraintSet) -> bool:
        return not self.check(sigma)

    def close(self) -> None:
        """Release resources.

        Owned connections (constructed with ``db=``) are closed; attached
        connections (constructed with ``conn=``) belong to the caller and
        stay open — only the detector's tableau temp tables are dropped.
        """
        if self._owns_conn:
            self.conn.close()
        else:
            self._tableaux.drop_all()

    def __enter__(self) -> "SQLViolationDetector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def sql_check_database(
    db: DatabaseInstance, sigma: ConstraintSet
) -> dict[str, set[tuple[Any, ...]]]:
    """One-shot convenience wrapper around :class:`SQLViolationDetector`."""
    with SQLViolationDetector(db=db) as detector:
        return detector.check(sigma)


# -- pushed-down shared scans (the out-of-core ``sqlfile`` path) ---------------


class SQLPlanExecutor:
    """Execute a :class:`~repro.engine.planner.DetectionPlan` *inside* sqlite.

    Where :class:`SQLViolationDetector` issues per-constraint queries, this
    executor pushes the plan's shared scan units down whole:

    * **CFD scan groups** — by default (``window_functions="auto"`` on a
      sqlite with window functions) each group runs the *one-pass* path of
      :func:`repro.sql.windows.cfd_onepass_hits`: one aggregate prefilter
      scan yields a candidate-key superset, and one window-function scan
      over the (typically empty) candidates derives the exact violations —
      replacing the legacy per-variant ``GROUP BY`` queries and per-CFD
      tableau self-joins with one scan on clean data. The legacy path —
      one ``GROUP BY X`` query per distinct RHS variant for the keys whose
      groups *disagree*, plus one tableau-join query per CFD (reusing the
      group's cached tableau temp tables) for the keys whose shared RHS
      misses a pattern constant — remains the automatic fallback when the
      sqlite build predates window functions (< 3.25), when the caller
      forces ``window_functions="off"``, or when a group is dirty past the
      bounded refinement. Both paths return only *candidate* keys plus
      their first-occurrence rowid, so the Python side touches
      O(violations) rows, not O(tuples), and both replay the in-memory
      engine's semantics exactly — reports are bit-identical either way.
    * **CIND buckets** — one witness anti-join per deduplicated task
      signature ``(premise checks, X positions, witness spec)``; rows come
      back in rowid order (= the engine's scan order for files written by
      :func:`~repro.sql.loader.create_database_file`).

    Hit lists have the same shape as the in-memory executor's
    (``(task, key, kind)`` / ``(task, tuple)``), so the standard
    :func:`~repro.engine.executor.assemble_report` /
    :func:`~repro.engine.executor.assemble_summary` path produces reports
    bit-identical — including violation-list order — to every other
    backend. Count-only callers use the same hits without fetching group
    tuples; :meth:`cind_relation_clean` is the ``EXISTS``-based early-exit
    variant for ``is_clean``.
    """

    def __init__(
        self,
        conn: sqlite3.Connection,
        plan: DetectionPlan,
        window_functions: str = "auto",
    ):
        self.conn = conn
        self.plan = plan
        self.schema = plan.sigma.schema
        if window_functions == "off":
            self.use_window_functions = False
        else:
            self.use_window_functions = supports_window_functions(conn)
            if window_functions == "require" and not self.use_window_functions:
                raise SQLBackendError(
                    "window_functions='require' but this sqlite library "
                    f"(version {sqlite3.sqlite_version}) does not support "
                    "window functions (needs >= 3.25)"
                )
        self._tableaux = TableauCache(conn)
        #: Per-execution witness materializations (see _witness_table):
        #: spec -> temp table name (non-empty Y) or spec -> bool (empty Y).
        self._witness_tables: dict[Any, str] = {}
        self._witness_nonempty: dict[Any, bool] = {}
        self._witness_count = 0

    # -- CFD scan groups ---------------------------------------------------

    def _disagree_keys(
        self, rel: RelationSchema, group: CFDScanGroup, variant: tuple[int, ...]
    ) -> dict[tuple[Any, ...], int]:
        """Group keys whose *variant* RHS projection disagrees, with the
        key's first-occurrence rowid (the engine's candidate order)."""
        if variant == group.lhs_positions:
            # RHS projection == group key: groups can never disagree.
            return {}
        names = rel.attribute_names
        rhs_cols = [names[p] for p in variant]
        distinct = distinct_count_expr(rhs_cols)
        if group.lhs:
            x_sel = select_columns_named(rel, group.lhs)
            sql = (
                f"SELECT {x_sel}, MIN(t.rowid) AS fr "
                f"FROM {q(rel.name)} t GROUP BY {x_sel} "
                f"HAVING COUNT(DISTINCT {distinct}) > 1"
            )
            return {
                tuple(row[:-1]): row[-1]
                for row in self.conn.execute(sql)
            }
        sql = (
            f"SELECT MIN(t.rowid), COUNT(DISTINCT {distinct}) "
            f"FROM {q(rel.name)} t"
        )
        [(fr, n)] = self.conn.execute(sql).fetchall()
        return {(): fr} if fr is not None and n > 1 else {}

    def _single_candidates(
        self, rel: RelationSchema, group: CFDScanGroup, cfd: CFD
    ) -> dict[int, dict[tuple[Any, ...], int]]:
        """Per pattern-row index: keys where some matching tuple misses an
        RHS constant, with the key's first rowid.

        One query per CFD of the group, joining the relation against the
        CFD's cached tableau temp table (LHS constants via the NULL-encoded
        tableau columns, RHS mismatch via ``IS NOT NULL AND <>``). For a
        non-disagreeing group every tuple shares the RHS projection, so
        "some tuple misses the constant" equals the engine's "the group's
        single shared RHS misses it"; disagreeing keys are filtered out by
        the caller (they are pair violations instead).
        """
        tableau = self._tableaux.get(cfd)
        match_lhs = " AND ".join(
            f"(tp.{q('lhs_' + a)} IS NULL OR t.{q(a)} = tp.{q('lhs_' + a)})"
            for a in cfd.lhs
        ) or "1=1"
        rhs_mismatch = " OR ".join(
            f"(tp.{q('rhs_' + a)} IS NOT NULL AND t.{q(a)} <> tp.{q('rhs_' + a)})"
            for a in cfd.rhs
        )
        if not rhs_mismatch:
            return {}
        x_sel = select_columns_named(rel, group.lhs)
        group_by = f"tp.rowid{', ' + x_sel if group.lhs else ''}"
        select = f"tp.rowid{', ' + x_sel if group.lhs else ''}"
        sql = (
            f"SELECT {select}, MIN(t.rowid) AS fr "
            f"FROM {q(rel.name)} t, {q(tableau)} tp "
            f"WHERE {match_lhs} AND ({rhs_mismatch}) "
            f"GROUP BY {group_by}"
        )
        out: dict[int, dict[tuple[Any, ...], int]] = {}
        for row in self.conn.execute(sql):
            row_index = row[0] - 1  # tableau rowids are 1-based, in order
            out.setdefault(row_index, {})[tuple(row[1:-1])] = row[-1]
        return out

    def cfd_group_hits(
        self, group: CFDScanGroup
    ) -> list[tuple[Any, tuple[Any, ...], str]]:
        """One pushed-down scan of *group*: every violating
        ``(task, key, kind)``, tasks in group order, keys in
        first-occurrence rowid order — the in-memory executor's order.

        Dispatches to the one-pass prefilter + window-function path when
        the connection supports it (``None`` from the one-pass scan means
        the group exceeded the bounded refinement — rare, and the legacy
        queries below answer it identically)."""
        rel = self.schema.relation(group.relation)
        if self.use_window_functions:
            hits = cfd_onepass_hits(self.conn, rel, group)
            if hits is not None:
                return hits
        disagree = {
            variant: self._disagree_keys(rel, group, variant)
            for variant in group.rhs_variants()
        }
        singles: dict[tuple, dict[int, dict[tuple[Any, ...], int]]] = {}
        for task in group.tasks:
            content = TableauCache._content_key(task.cfd)
            if task.rhs_checks and content not in singles:
                singles[content] = self._single_candidates(
                    rel, group, task.cfd
                )

        hits: list[tuple[Any, tuple[Any, ...], str]] = []
        for task in group.tasks:
            variant_disagree = disagree[task.rhs_positions]
            task_hits = [
                (fr, key, "pair")
                for key, fr in variant_disagree.items()
                if passes(key, task.key_checks)
            ]
            if task.rhs_checks:
                content = TableauCache._content_key(task.cfd)
                candidates = singles[content].get(task.row_index, {})
                task_hits.extend(
                    (fr, key, "single")
                    for key, fr in candidates.items()
                    if key not in variant_disagree
                )
            task_hits.sort(key=lambda hit: hit[0])
            hits.extend((task, key, kind) for __, key, kind in task_hits)
        return hits

    def cfd_group_tuples(
        self, group: CFDScanGroup, keys: Iterable[tuple[Any, ...]]
    ) -> dict[tuple[Any, ...], tuple[Tuple, ...]]:
        """The full tuple group per violating key, in rowid (scan) order.

        One scan of the relation buckets every violating key's group (the
        base tables carry no indexes, so a per-key ``WHERE X = ?`` query
        would cost a full scan *each* — O(violations · tuples) instead of
        this single pass).
        """
        rel = self.schema.relation(group.relation)
        wanted: dict[tuple[Any, ...], list[Tuple]] = {
            key: [] for key in keys
        }
        if not wanted:
            return {}
        cols = select_columns(rel)
        positions = group.lhs_positions
        sql = f"SELECT {cols} FROM {q(rel.name)} t ORDER BY t.rowid"
        for row in self.conn.execute(sql):
            bucket = wanted.get(tuple(row[p] for p in positions))
            if bucket is not None:
                bucket.append(Tuple(rel, row))
        return {key: tuple(rows) for key, rows in wanted.items()}

    # -- CIND buckets ------------------------------------------------------
    #
    # Witness sets are materialized exactly like the engine's
    # witness_sets(): one pass over R2 per deduplicated spec, shared by
    # every pattern row in the bucket. The DISTINCT Y-projection goes into
    # an *indexed* temp table, so the per-LHS-row probe is an index seek —
    # a naive correlated NOT EXISTS against a large unindexed R2 would be
    # O(|R1|·|R2|) and dominates everything past ~10k tuples.

    def _witness_ready(self, spec) -> None:
        """Materialize the spec's witness key set (once per execution)."""
        rhs_rel = self.schema.relation(spec.rhs_relation)
        names = rhs_rel.attribute_names
        conds: list[str] = []
        params: list[Any] = []
        for pos, const in spec.yp_checks:
            conds.append(f"t2.{q(names[pos])} = ?")
            params.append(const)
        where = " AND ".join(conds) or "1=1"
        if not spec.y_positions:
            # Empty embedded key: the witness set is {()} or {} — a boolean.
            if spec not in self._witness_nonempty:
                rows = self.conn.execute(
                    f"SELECT 1 FROM {q(rhs_rel.name)} t2 WHERE {where} "
                    "LIMIT 1",
                    params,
                ).fetchall()
                self._witness_nonempty[spec] = bool(rows)
            return
        if spec in self._witness_tables:
            return
        self._witness_count += 1
        name = f"__witness_{self._witness_count}"
        y_cols = [names[p] for p in spec.y_positions]
        decl = ", ".join(f"{q('k%d' % i)}" for i in range(len(y_cols)))
        select = ", ".join(f"t2.{q(c)}" for c in y_cols)
        cursor = self.conn.cursor()
        cursor.execute(f"CREATE TEMP TABLE {q(name)} ({decl})")
        cursor.execute(
            f"INSERT INTO {q(name)} SELECT DISTINCT {select} "
            f"FROM {q(rhs_rel.name)} t2 WHERE {where}",
            params,
        )
        # Bulk-build the covering index after the INSERT (cheaper than
        # per-row maintenance), then ANALYZE: without a sqlite_stat1 row
        # sqlite has no idea how big the witness table is, and on large
        # files it can pick a scan-based anti-join over the index seek
        # this table exists for. Both run before _witness_ready returns,
        # so every probe compiles with index and stats in place (asserted
        # via EXPLAIN QUERY PLAN in the test suite).
        key_list = ", ".join(q(f"k{i}") for i in range(len(y_cols)))
        cursor.execute(
            f"CREATE INDEX {q(name + '_idx')} ON {q(name)} ({key_list})"
        )
        cursor.execute(f"ANALYZE {q(name)}")
        self._witness_tables[spec] = name

    def release_witnesses(self) -> None:
        """Drop the per-execution witness tables (scan-lifetime artifacts,
        the analogue of the engine's release_scan_memos)."""
        cursor = self.conn.cursor()
        for name in self._witness_tables.values():
            cursor.execute(f"DROP TABLE IF EXISTS temp.{q(name)}")
        self._witness_tables.clear()
        self._witness_nonempty.clear()

    def _cind_sql(
        self, task: CINDRowTask, select_clause: str, suffix: str = ""
    ) -> tuple[str | None, list[Any]]:
        """The probe query for one task signature (None = provably clean)."""
        lhs_rel = task.cind.lhs_relation
        spec = task.witness
        self._witness_ready(spec)
        lhs_names = lhs_rel.attribute_names
        conds: list[str] = []
        params: list[Any] = []
        for pos, const in task.lhs_checks:
            conds.append(f"t1.{q(lhs_names[pos])} = ?")
            params.append(const)
        where = " AND ".join(conds) or "1=1"
        if not task.x_positions:
            if self._witness_nonempty[spec]:
                return None, []  # every premise-matching tuple has a witness
            sql = (
                f"SELECT {select_clause} FROM {q(lhs_rel.name)} t1 "
                f"WHERE {where}{suffix}"
            )
            return sql, params
        witness = self._witness_tables[spec]
        probe = " AND ".join(
            f"w.{q('k%d' % i)} = t1.{q(lhs_names[xpos])}"
            for i, xpos in enumerate(task.x_positions)
        )
        sql = (
            f"SELECT {select_clause} FROM {q(lhs_rel.name)} t1 "
            f"WHERE {where} AND NOT EXISTS ("
            f"SELECT 1 FROM {q(witness)} w WHERE {probe})"
            f"{suffix}"
        )
        return sql, params

    def cind_relation_hits(
        self, relation: str, tasks: list[CINDRowTask]
    ) -> list[tuple[CINDRowTask, Tuple]]:
        """Every violating ``(task, tuple)`` of one LHS relation.

        One anti-join per deduplicated signature (structurally identical
        pattern rows share it, like the engine's ``cind_scan_hits``);
        tuples come back in rowid order within each task.
        """
        rel = self.schema.relation(relation)
        cols = select_columns(rel, "t1")
        evaluated: dict[tuple, list[Tuple]] = {}
        out: list[tuple[CINDRowTask, Tuple]] = []
        for task in tasks:
            signature = (task.lhs_checks, task.x_positions, task.witness)
            rows = evaluated.get(signature)
            if rows is None:
                sql, params = self._cind_sql(
                    task, cols, suffix=" ORDER BY t1.rowid"
                )
                if sql is None:
                    rows = []
                else:
                    rows = [
                        Tuple(rel, row)
                        for row in self.conn.execute(sql, params)
                    ]
                evaluated[signature] = rows
            out.extend((task, t) for t in rows)
        return out

    def cind_relation_clean(
        self, relation: str, tasks: list[CINDRowTask]
    ) -> bool:
        """``EXISTS``-based early exit: False at the first violating pair."""
        seen: set[tuple] = set()
        for task in tasks:
            signature = (task.lhs_checks, task.x_positions, task.witness)
            if signature in seen:
                continue
            seen.add(signature)
            sql, params = self._cind_sql(task, "1", suffix=" LIMIT 1")
            if sql is not None and self.conn.execute(sql, params).fetchall():
                return False
        return True

    def close(self) -> None:
        """Drop the executor's temp tables (the connection is the caller's)."""
        self.release_witnesses()
        self._tableaux.drop_all()


def select_columns_named(rel: RelationSchema, names: Iterable[str]) -> str:
    """``t."A", t."B", ...`` for the given attribute names."""
    return ", ".join(f"t.{q(n)}" for n in names)
