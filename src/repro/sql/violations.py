"""SQL-based violation detection for CFDs and CINDs.

For CFDs this follows the technique of [9] (as the paper recommends in
Section 7/8): the pattern tableau is loaded as a *data table* (wildcards
as NULL) and two queries per CFD find

* ``Q1`` — single-tuple violations: tuples matching some pattern row's LHS
  whose RHS value differs from the row's RHS constant;
* ``Q2`` — pair violations: LHS groups matching a row that disagree on the
  RHS attribute (all tuples of such a group are reported, mirroring the
  in-memory engine).

For CINDs (Section 8 flags this as the paper's planned follow-up, so we
build it) each normal-form row becomes one anti-join::

    SELECT t1.* FROM Ra t1
    WHERE t1.xp = :consts...
      AND NOT EXISTS (SELECT 1 FROM Rb t2
                      WHERE t2.B1 = t1.A1 AND ... AND t2.yp = :consts...)

All constants travel as bound parameters — nothing is interpolated into
SQL text except quoted identifiers.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.violations import ConstraintSet, constraint_labels
from repro.errors import SQLBackendError
from repro.relational.instance import DatabaseInstance
from repro.relational.values import is_wildcard
from repro.sql.ddl import quote_identifier as q
from repro.sql.loader import connect_memory, load_database


class SQLViolationDetector:
    """Runs violation queries for a constraint set over sqlite3.

    Construct from an in-memory :class:`DatabaseInstance` (loaded into a
    fresh ``:memory:`` connection) or attach to an existing connection that
    already holds the tables.
    """

    def __init__(
        self,
        db: DatabaseInstance | None = None,
        conn: sqlite3.Connection | None = None,
    ):
        if (db is None) == (conn is None):
            raise SQLBackendError("provide exactly one of db= or conn=")
        if db is not None:
            conn = connect_memory()
            load_database(conn, db)
        self.conn = conn
        self._tableau_count = 0

    # -- CFDs ----------------------------------------------------------------

    def _load_tableau(self, cfd: CFD) -> str:
        """Ship the CFD's pattern tableau as a data table; returns its name."""
        self._tableau_count += 1
        name = f"__tableau_{self._tableau_count}"
        columns = [f"lhs_{a}" for a in cfd.lhs] + [f"rhs_{a}" for a in cfd.rhs]
        decl = ", ".join(f"{q(c)} TEXT" for c in columns) or "__empty INTEGER"
        cursor = self.conn.cursor()
        cursor.execute(f"CREATE TEMP TABLE {q(name)} ({decl})")
        if columns:
            placeholders = ", ".join("?" for __ in columns)
            rows = []
            for row in cfd.tableau:
                values = [
                    None if is_wildcard(row.lhs_value(a)) else row.lhs_value(a)
                    for a in cfd.lhs
                ] + [
                    None if is_wildcard(row.rhs_value(a)) else row.rhs_value(a)
                    for a in cfd.rhs
                ]
                rows.append(values)
            cursor.executemany(
                f"INSERT INTO {q(name)} VALUES ({placeholders})", rows
            )
        else:
            cursor.executemany(
                f"INSERT INTO {q(name)} VALUES (?)",
                [(1,) for __ in cfd.tableau],
            )
        return name

    def cfd_violating_rows(self, cfd: CFD) -> set[tuple[Any, ...]]:
        """All rows of the relation involved in some violation of *cfd*.

        Matches :meth:`repro.core.cfd.CFD.violating_tuples` exactly (the
        cross-validation tests rely on it).
        """
        rel = cfd.relation
        tableau = self._load_tableau(cfd)
        all_cols = ", ".join(f"t.{q(a.name)}" for a in rel)
        match_lhs = " AND ".join(
            f"(tp.{q('lhs_' + a)} IS NULL OR t.{q(a)} = tp.{q('lhs_' + a)})"
            for a in cfd.lhs
        ) or "1=1"

        out: set[tuple[Any, ...]] = set()
        cursor = self.conn.cursor()

        # Q1: single-tuple violations against constant RHS patterns.
        rhs_mismatch = " OR ".join(
            f"(tp.{q('rhs_' + a)} IS NOT NULL AND t.{q(a)} <> tp.{q('rhs_' + a)})"
            for a in cfd.rhs
        )
        q1 = (
            f"SELECT DISTINCT {all_cols} FROM {q(rel.name)} t, {q(tableau)} tp "
            f"WHERE {match_lhs} AND ({rhs_mismatch})"
        )
        out.update(cursor.execute(q1).fetchall())

        # Q2: groups matching a pattern row that disagree on the RHS.
        # sqlite has no multi-column COUNT(DISTINCT ...); concatenate the
        # quote()d values (injective) when the RHS has several attributes.
        if len(cfd.rhs) == 1:
            distinct_rhs = f"t.{q(cfd.rhs[0])}"
        else:
            distinct_rhs = " || ',' || ".join(
                f"quote(t.{q(a)})" for a in cfd.rhs
            )
        if cfd.lhs:
            group_cols = ", ".join(f"t.{q(a)}" for a in cfd.lhs)
            q2_groups = (
                f"SELECT {group_cols}, tp.rowid AS prow "
                f"FROM {q(rel.name)} t, {q(tableau)} tp "
                f"WHERE {match_lhs} "
                f"GROUP BY tp.rowid, {group_cols} "
                f"HAVING COUNT(DISTINCT {distinct_rhs}) > 1"
            )
            join_cond = " AND ".join(
                f"t.{q(a)} = g.{q(a)}" for a in cfd.lhs
            )
            q2 = (
                f"SELECT DISTINCT {all_cols} FROM {q(rel.name)} t "
                f"JOIN ({q2_groups}) g ON {join_cond}"
            )
            out.update(cursor.execute(q2).fetchall())
        else:
            # Empty LHS: the whole relation is one group per pattern row.
            q2_check = (
                f"SELECT COUNT(DISTINCT {distinct_rhs}) FROM {q(rel.name)} t"
            )
            (distinct,) = cursor.execute(q2_check).fetchone()
            if distinct is not None and distinct > 1 and len(cfd.tableau) > 0:
                q2_all = f"SELECT DISTINCT {all_cols} FROM {q(rel.name)} t"
                out.update(cursor.execute(q2_all).fetchall())
        return out

    # -- CINDs -----------------------------------------------------------------------

    def cind_violating_rows_by_pattern(
        self, cind: CIND
    ) -> list[set[tuple[Any, ...]]]:
        """Violating LHS rows per pattern row, in tableau order.

        One anti-join per row; the per-row split is what lets the
        :class:`~repro.api.backends.SQLBackend` adapter rebuild
        engine-identical ``CINDViolation`` objects (which carry the
        pattern index).
        """
        ra = cind.lhs_relation
        rb = cind.rhs_relation
        all_cols = ", ".join(f"t1.{q(a.name)}" for a in ra)
        out: list[set[tuple[Any, ...]]] = []
        cursor = self.conn.cursor()
        for row in cind.tableau:
            premise: list[str] = []
            params: list[Any] = []
            for a in cind.x + cind.xp:
                value = row.lhs_value(a)
                if not is_wildcard(value):
                    premise.append(f"t1.{q(a)} = ?")
                    params.append(value)
            witness: list[str] = []
            for a, b in zip(cind.x, cind.y):
                witness.append(f"t2.{q(b)} = t1.{q(a)}")
            for b in cind.yp:
                value = row.rhs_value(b)
                if not is_wildcard(value):
                    witness.append(f"t2.{q(b)} = ?")
                    params.append(value)
            where = " AND ".join(premise) or "1=1"
            exists_cond = " AND ".join(witness) or "1=1"
            sql = (
                f"SELECT DISTINCT {all_cols} FROM {q(ra.name)} t1 "
                f"WHERE {where} AND NOT EXISTS ("
                f"SELECT 1 FROM {q(rb.name)} t2 WHERE {exists_cond})"
            )
            out.append(set(cursor.execute(sql, params).fetchall()))
        return out

    def cind_violating_rows(self, cind: CIND) -> set[tuple[Any, ...]]:
        """LHS rows matching some pattern row with no RHS witness.

        Matches :meth:`repro.core.cind.CIND.violating_tuples`.
        """
        out: set[tuple[Any, ...]] = set()
        for rows in self.cind_violating_rows_by_pattern(cind):
            out |= rows
        return out

    # -- whole constraint sets ----------------------------------------------------------

    def check(self, sigma: ConstraintSet) -> dict[str, set[tuple[Any, ...]]]:
        """Violating rows per constraint label.

        Labels come from :func:`repro.core.violations.constraint_labels`, so
        two distinct constraints with equal names/reprs get separate entries
        (matching the in-memory engine's ``by_constraint`` keys) instead of
        silently overwriting each other.

        Constraints with **zero** violations are omitted (historical
        behaviour, kept for compatibility). The facade-level
        :meth:`repro.api.backends.SQLBackend.violating_rows` normalizes
        this: it keys every constraint of Σ, empty set when clean.
        """
        labels = constraint_labels(sigma)
        out: dict[str, set[tuple[Any, ...]]] = {}
        for cfd in sigma.cfds:
            rows = self.cfd_violating_rows(cfd)
            if rows:
                out[labels[id(cfd)]] = rows
        for cind in sigma.cinds:
            rows = self.cind_violating_rows(cind)
            if rows:
                out[labels[id(cind)]] = rows
        return out

    def is_clean(self, sigma: ConstraintSet) -> bool:
        return not self.check(sigma)

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "SQLViolationDetector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def sql_check_database(
    db: DatabaseInstance, sigma: ConstraintSet
) -> dict[str, set[tuple[Any, ...]]]:
    """One-shot convenience wrapper around :class:`SQLViolationDetector`."""
    with SQLViolationDetector(db=db) as detector:
        return detector.check(sigma)
