"""SQL DDL generation for relational schemas (sqlite3 dialect).

Identifiers are double-quoted; the INTEGER domain maps to sqlite INTEGER
affinity, everything else to TEXT. Pattern tableaux are shipped as data
tables (the [9] technique), with the wildcard ``_`` encoded as NULL.
"""

from __future__ import annotations

from repro.relational.domains import INTEGER, Domain, FiniteDomain
from repro.relational.schema import DatabaseSchema, RelationSchema


def quote_identifier(name: str) -> str:
    """Double-quote an identifier, escaping embedded quotes."""
    return '"' + name.replace('"', '""') + '"'


def sql_type(domain: Domain) -> str:
    """sqlite column affinity for a domain.

    Integer-valued domains (the INTEGER singleton, and finite domains
    whose every value is an int — booleans included, ``1 == True``) get
    INTEGER affinity so values round-trip the file by equality; anything
    else is TEXT. A non-string value in a TEXT column would come back as
    its string image and break the backends' bit-identical-report
    contract, which is why the file-backed paths depend on this mapping.
    """
    if domain is INTEGER:
        return "INTEGER"
    if isinstance(domain, FiniteDomain) and all(
        isinstance(v, int) for v in domain.values
    ):
        return "INTEGER"
    return "TEXT"


def create_table_sql(relation: RelationSchema) -> str:
    columns = ", ".join(
        f"{quote_identifier(a.name)} {sql_type(a.domain)}" for a in relation
    )
    return f"CREATE TABLE {quote_identifier(relation.name)} ({columns})"


def create_schema_sql(schema: DatabaseSchema) -> list[str]:
    return [create_table_sql(rel) for rel in schema]


def insert_sql(relation: RelationSchema) -> str:
    placeholders = ", ".join("?" for __ in range(relation.arity))
    return (
        f"INSERT INTO {quote_identifier(relation.name)} VALUES ({placeholders})"
    )


def select_columns(relation: RelationSchema, alias: str = "t") -> str:
    """``alias."A1", alias."A2", ...`` — every column, schema order."""
    return ", ".join(
        f"{alias}.{quote_identifier(a.name)}" for a in relation
    )


def distinct_count_expr(columns: list[str], alias: str = "t") -> str:
    """An expression whose ``COUNT(DISTINCT ...)`` counts distinct rows
    over *columns*.

    sqlite has no multi-column ``COUNT(DISTINCT a, b)``; concatenating the
    ``quote()``d values (injective per value) is the standard workaround.
    """
    if len(columns) == 1:
        return f"{alias}.{quote_identifier(columns[0])}"
    return " || ',' || ".join(
        f"quote({alias}.{quote_identifier(c)})" for c in columns
    )


def row_predicate(columns: list[str], alias: str = "t") -> str:
    """``alias."A1" = ? AND ...`` equality over *columns* (``1=1`` if none)."""
    conds = " AND ".join(
        f"{alias}.{quote_identifier(c)} = ?" for c in columns
    )
    return conds or "1=1"
