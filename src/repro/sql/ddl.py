"""SQL DDL generation for relational schemas (sqlite3 dialect).

Identifiers are double-quoted; the INTEGER domain maps to sqlite INTEGER
affinity, everything else to TEXT. Pattern tableaux are shipped as data
tables (the [9] technique), with the wildcard ``_`` encoded as NULL.
"""

from __future__ import annotations

from repro.relational.domains import INTEGER, Domain
from repro.relational.schema import DatabaseSchema, RelationSchema


def quote_identifier(name: str) -> str:
    """Double-quote an identifier, escaping embedded quotes."""
    return '"' + name.replace('"', '""') + '"'


def sql_type(domain: Domain) -> str:
    if domain is INTEGER:
        return "INTEGER"
    return "TEXT"


def create_table_sql(relation: RelationSchema) -> str:
    columns = ", ".join(
        f"{quote_identifier(a.name)} {sql_type(a.domain)}" for a in relation
    )
    return f"CREATE TABLE {quote_identifier(relation.name)} ({columns})"


def create_schema_sql(schema: DatabaseSchema) -> list[str]:
    return [create_table_sql(rel) for rel in schema]


def insert_sql(relation: RelationSchema) -> str:
    placeholders = ", ".join("?" for __ in range(relation.arity))
    return (
        f"INSERT INTO {quote_identifier(relation.name)} VALUES ({placeholders})"
    )
