"""Conditional functional dependencies (CFDs).

A CFD ``φ = (R: X → Y, Tp)`` (Section 4 of the paper, after [9]) consists of

* a standard FD ``R: X → Y`` *embedded* in ``φ``, and
* a pattern tableau ``Tp`` over ``X ∪ Y`` whose entries are constants or the
  wildcard ``_``.

An instance ``D`` of ``R`` satisfies ``φ`` iff for each pair of tuples
``t1, t2`` (possibly identical) and each pattern tuple ``tp``: whenever
``t1[X] = t2[X] ≍ tp[X]``, also ``t1[Y] = t2[Y] ≍ tp[Y]``. A standard FD is
the special case of a single all-wildcard pattern tuple; unlike standard
FDs, a *single* tuple can violate a CFD whose RHS pattern carries a constant
(tuple ``t12`` vs ϕ3 in Example 4.1).

Normal form (Section 4): a single pattern tuple and a single RHS attribute;
:meth:`CFD.to_normal_form` performs the rewriting.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.core.patterns import PatternTableau, PatternTuple, matches, matches_all
from repro.errors import ConstraintError
from repro.relational.instance import DatabaseInstance, RelationInstance, Tuple
from repro.relational.schema import RelationSchema
from repro.relational.values import WILDCARD, is_constant, is_wildcard


class CFD:
    """A conditional functional dependency ``(R: X → Y, Tp)``.

    Parameters
    ----------
    relation:
        Schema of the relation the CFD is defined on.
    lhs:
        The attribute list ``X`` of the embedded FD.
    rhs:
        The attribute list ``Y`` of the embedded FD. ``X`` and ``Y`` may
        overlap (as for FDs in general); normal form requires ``|Y| = 1``.
    tableau:
        A :class:`~repro.core.patterns.PatternTableau` over (X ‖ Y), or an
        iterable of rows coercible by :class:`PatternTableau`.
    name:
        Optional label used in reprs and violation reports.
    """

    def __init__(
        self,
        relation: RelationSchema,
        lhs: Sequence[str],
        rhs: Sequence[str],
        tableau: PatternTableau | Iterable[Any],
        name: str | None = None,
    ):
        self.relation = relation
        self.lhs = relation.check_attribute_list(lhs)
        self.rhs = relation.check_attribute_list(rhs)
        if not self.rhs:
            raise ConstraintError("CFD RHS must contain at least one attribute")
        if isinstance(tableau, PatternTableau):
            if (
                tableau.lhs_attributes != self.lhs
                or tableau.rhs_attributes != self.rhs
            ):
                raise ConstraintError(
                    f"tableau attributes {tableau.lhs_attributes} || "
                    f"{tableau.rhs_attributes} do not match the embedded FD "
                    f"{self.lhs} -> {self.rhs}"
                )
            self.tableau = tableau
        else:
            self.tableau = PatternTableau(self.lhs, self.rhs, tableau)
        if len(self.tableau) == 0:
            raise ConstraintError("CFD pattern tableau must be nonempty")
        for row in self.tableau:
            for attr, value in list(row.lhs.items()) + list(row.rhs.items()):
                if is_constant(value) and not relation.domain_of(attr).contains(value):
                    raise ConstraintError(
                        f"pattern constant {value!r} is outside "
                        f"dom({relation.name}.{attr})"
                    )
        self.name = name

    # -- structural properties ---------------------------------------------

    @property
    def is_normal_form(self) -> bool:
        """Single pattern tuple and a single RHS attribute."""
        return len(self.tableau) == 1 and len(self.rhs) == 1

    @property
    def is_standard_fd(self) -> bool:
        """True iff the tableau is a single all-wildcard row (a plain FD)."""
        if len(self.tableau) != 1:
            return False
        row = self.tableau[0]
        return all(is_wildcard(v) for v in row.lhs.values()) and all(
            is_wildcard(v) for v in row.rhs.values()
        )

    @property
    def is_constant_cfd(self) -> bool:
        """True iff every pattern tuple binds every RHS attribute to a constant.

        Constant CFDs can be violated by a single tuple; variable CFDs need a
        pair. The distinction matters for the single-tuple consistency check.
        """
        return all(
            all(is_constant(v) for v in row.rhs.values()) for row in self.tableau
        )

    def constants(self) -> set[Any]:
        return self.tableau.constants()

    def attributes_used(self) -> set[str]:
        return set(self.lhs) | set(self.rhs)

    def to_normal_form(self) -> list["CFD"]:
        """Equivalent list of normal-form CFDs (one row, one RHS attribute)."""
        out: list[CFD] = []
        for i, row in enumerate(self.tableau):
            for attr in self.rhs:
                label = self.name or "cfd"
                suffix = f"#{i}.{attr}" if (len(self.tableau) > 1 or len(self.rhs) > 1) else ""
                out.append(
                    CFD(
                        self.relation,
                        self.lhs,
                        (attr,),
                        [(row.lhs_projection(self.lhs), (row.rhs_value(attr),))],
                        name=f"{label}{suffix}",
                    )
                )
        return out

    # -- normal-form accessors ----------------------------------------------

    @property
    def pattern(self) -> PatternTuple:
        """The single pattern tuple of a normal-form CFD."""
        if len(self.tableau) != 1:
            raise ConstraintError(
                f"{self} is not in normal form (tableau has {len(self.tableau)} rows)"
            )
        return self.tableau[0]

    @property
    def rhs_attribute(self) -> str:
        """The single RHS attribute ``A`` of a normal-form CFD."""
        if len(self.rhs) != 1:
            raise ConstraintError(
                f"{self} is not in normal form (RHS has {len(self.rhs)} attributes)"
            )
        return self.rhs[0]

    # -- semantics -----------------------------------------------------------

    def _matching_groups(
        self, instance: RelationInstance, row: PatternTuple
    ) -> Iterator[tuple[tuple[Any, ...], list[Tuple]]]:
        """Group tuples matching ``tp[X]`` by their X-projection."""
        groups: dict[tuple[Any, ...], list[Tuple]] = {}
        lhs_pattern = row.lhs_projection(self.lhs)
        for t in instance:
            key = t.project(self.lhs)
            if matches_all(key, lhs_pattern):
                groups.setdefault(key, []).append(t)
        yield from groups.items()

    def satisfied_by(self, data: DatabaseInstance | RelationInstance) -> bool:
        """Check ``D |= φ``."""
        for _ in self.iter_violations(data):
            return False
        return True

    def iter_violations(
        self, data: DatabaseInstance | RelationInstance
    ) -> Iterator["CFDViolation"]:
        """Yield one violation per (pattern row, X-group) that breaks ``φ``.

        A group violates row ``tp`` when its tuples disagree on some RHS
        attribute, or agree on a value that does not match ``tp[Y]``.
        """
        instance = data[self.relation.name] if isinstance(data, DatabaseInstance) else data
        if instance.schema.name != self.relation.name:
            raise ConstraintError(
                f"CFD on {self.relation.name!r} checked against instance of "
                f"{instance.schema.name!r}"
            )
        for row_index, row in enumerate(self.tableau):
            rhs_pattern = row.rhs_projection(self.rhs)
            for key, group in self._matching_groups(instance, row):
                rhs_values = {t.project(self.rhs) for t in group}
                disagree = len(rhs_values) > 1
                mismatched = [
                    vals for vals in rhs_values if not matches_all(vals, rhs_pattern)
                ]
                if disagree or mismatched:
                    yield CFDViolation(
                        cfd=self,
                        pattern_index=row_index,
                        lhs_values=key,
                        tuples=tuple(group),
                        kind="pair" if disagree else "single",
                    )

    def violating_tuples(self, data: DatabaseInstance | RelationInstance) -> set[Tuple]:
        """The set of tuples involved in at least one violation."""
        out: set[Tuple] = set()
        for violation in self.iter_violations(data):
            out |= set(violation.tuples)
        return out

    def tuple_violates(self, t: Tuple) -> bool:
        """Single-tuple check: does ``{t}`` violate ``φ``?

        Only constant-RHS pattern rows can be violated by a lone tuple.
        """
        for row in self.tableau:
            if not matches_all(t.project(self.lhs), row.lhs_projection(self.lhs)):
                continue
            if not matches_all(t.project(self.rhs), row.rhs_projection(self.rhs)):
                return True
        return False

    # -- identity ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CFD)
            and self.relation.name == other.relation.name
            and self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.tableau == other.tableau
        )

    def __hash__(self) -> int:
        return hash(
            (self.relation.name, self.lhs, self.rhs, self.tableau.rows)
        )

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return (
            f"CFD({label}{self.relation.name}: "
            f"{', '.join(self.lhs)} -> {', '.join(self.rhs)}, "
            f"{len(self.tableau)} pattern(s))"
        )


class CFDViolation:
    """One violated (pattern row, X-group) pair of a CFD.

    Attributes
    ----------
    cfd:
        The violated dependency.
    pattern_index:
        Index of the violated row in the CFD's tableau.
    lhs_values:
        The shared ``t[X]`` projection of the offending group.
    tuples:
        The tuples in the group.
    kind:
        ``"single"`` — the group agrees on the RHS but mismatches a constant
        pattern (one tuple suffices to violate); ``"pair"`` — the group
        disagrees on the RHS (classic FD-style violation).
    """

    __slots__ = ("cfd", "pattern_index", "lhs_values", "tuples", "kind")

    def __init__(self, cfd, pattern_index, lhs_values, tuples, kind):
        self.cfd = cfd
        self.pattern_index = pattern_index
        self.lhs_values = lhs_values
        self.tuples = tuples
        self.kind = kind

    def __repr__(self) -> str:
        label = self.cfd.name or f"CFD on {self.cfd.relation.name}"
        return (
            f"<CFDViolation {label} row={self.pattern_index} "
            f"X={self.lhs_values!r} kind={self.kind} tuples={len(self.tuples)}>"
        )


def standard_fd(relation: RelationSchema, lhs: Sequence[str], rhs: Sequence[str], name: str | None = None) -> CFD:
    """A traditional FD as a CFD with one all-wildcard pattern tuple."""
    row = ([WILDCARD] * len(tuple(lhs)), [WILDCARD] * len(tuple(rhs)))
    return CFD(relation, lhs, rhs, [row], name=name)
