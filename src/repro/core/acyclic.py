"""Acyclicity analysis for CIND sets (Section 8 future work).

The paper closes by asking whether better complexity bounds hold "by
considering extra assumptions, such as acyclicity of CINDs". The practical
payoff is immediate: for an **acyclic** set (the graph with an edge
``R1 → R2`` per CIND ``R1[...] ⊆ R2[...]`` has no directed cycle), every
chase sequence terminates — each insertion moves strictly down the
topological order, so the chase depth is bounded by the longest path and
the bounded implication checker of :mod:`repro.core.implication` becomes a
*decision procedure* (no UNKNOWN) once its budget covers the worst case.

This module provides the graph construction, the acyclicity test, the
worst-case chase-size bound, and :func:`implies_acyclic` — implication with
budgets derived from the bound, raising instead of answering UNKNOWN.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.cind import CIND
from repro.core.implication import ImplicationResult, ImplicationStatus, implies
from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.relational.domains import FiniteDomain
from repro.relational.schema import DatabaseSchema


def cind_graph(cinds: Iterable[CIND]) -> DiGraph:
    """The relation-level graph with one edge per CIND (LHS → RHS)."""
    graph: DiGraph = DiGraph()
    for cind in cinds:
        graph.add_edge(cind.lhs_relation.name, cind.rhs_relation.name)
    return graph


def is_acyclic(cinds: Iterable[CIND]) -> bool:
    """True iff the CIND graph has no directed cycle (self-loops count)."""
    graph = cind_graph(cinds)
    for component in graph.strongly_connected_components():
        if len(component) > 1:
            return False
        (node,) = component
        if graph.has_edge(node, node):
            return False
    return True


def longest_path_length(graph: DiGraph) -> int:
    """Longest directed path (edge count) in an acyclic graph."""
    depth: dict = {}
    # SCC order is reverse-topological; process sinks first.
    for component in graph.strongly_connected_components():
        (node,) = component
        succs = graph.successors(node)
        depth[node] = 1 + max((depth[s] for s in succs), default=-1)
    return max(depth.values(), default=0)


def chase_size_bound(schema: DatabaseSchema, cinds: Iterable[CIND]) -> int:
    """An upper bound on tuples any acyclic chase from one tuple can create.

    Each tuple at depth ``d`` can trigger at most one insertion per
    (CIND, pattern row); finite-domain gaps of an insertion fan out over
    their domains. The bound is deliberately coarse — it exists to size the
    implication budget, not to be tight — and is capped to stay usable.
    """
    cinds = list(cinds)
    if not is_acyclic(cinds):
        raise ReproError("chase_size_bound requires an acyclic CIND set")
    triggers = sum(len(c.tableau) for c in cinds)
    max_fanout = 1
    for cind in cinds:
        fanout = 1
        constrained = set(cind.y) | set(cind.yp)
        for attr in cind.rhs_relation:
            if attr.name not in constrained and isinstance(attr.domain, FiniteDomain):
                fanout *= len(attr.domain)
        max_fanout = max(max_fanout, fanout)
    depth = longest_path_length(cind_graph(cinds)) + 1
    bound = 1
    per_level = 1
    for __ in range(depth):
        per_level = per_level * max(triggers, 1)
        bound += per_level
        if bound > 1_000_000:
            return 1_000_000
    return min(bound * max_fanout, 1_000_000)


def implies_acyclic(
    schema: DatabaseSchema,
    sigma: Iterable[CIND],
    psi: CIND,
    budget_cap: int = 50_000,
) -> ImplicationResult:
    """Exact implication for acyclic Σ (within *budget_cap*).

    Sizes the chase budgets from :func:`chase_size_bound`; if the derived
    bound exceeds *budget_cap* the call still runs but an UNKNOWN outcome
    raises (the caller asked for a decision the cap cannot guarantee).
    """
    sigma = list(sigma)
    if not is_acyclic(sigma):
        raise ReproError(
            "implies_acyclic requires an acyclic CIND set; use "
            "repro.core.implication.implies for the general (bounded) case"
        )
    bound = min(chase_size_bound(schema, sigma), budget_cap)
    result = implies(
        schema, sigma, psi, max_tuples=bound, max_branches=max(bound, 256)
    )
    if result.status is ImplicationStatus.UNKNOWN:
        raise ReproError(
            f"budget cap {budget_cap} too small for the acyclic chase bound; "
            f"raise budget_cap"
        )
    return result
