"""Pattern tuples, pattern tableaux, and the match order ``≍``.

Section 2 of the paper defines an order ``≍`` on data values and the
unnamed variable ``_``: ``η1 ≍ η2`` iff ``η1 = η2``, or ``η1`` is a data
value and ``η2`` is ``_``. Section 5.1 extends the picture with chase
variables ``v``, for which ``v ≭ a`` for every constant ``a`` but
``v ≍ _``. :func:`matches` implements exactly this order.

A :class:`PatternTuple` carries *two* ordered attribute→value mappings, one
for the LHS attribute list and one for the RHS list, mirroring the paper's
``tp[X, Xp ‖ Y, Yp]`` notation. CFDs use both sides over the same relation
(X on the left, Y on the right); CINDs use them over two different relations
(so the same attribute name may appear on both sides with different values,
as in ψ5 of Fig. 2). A :class:`PatternTableau` is an ordered list of pattern
tuples over fixed LHS/RHS attribute lists.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import ConstraintError
from repro.relational.values import WILDCARD, is_constant, is_wildcard


def matches(value: Any, pattern: Any) -> bool:
    """The paper's ``≍`` order: does *value* match *pattern*?

    * ``a ≍ a`` for every value (constants and chase variables alike);
    * ``a ≍ _`` for every value;
    * a chase variable never matches a constant (``v ≭ a``), and two
      distinct variables do not match each other.
    """
    if is_wildcard(pattern):
        return True
    return value == pattern


def matches_all(values: Sequence[Any], patterns: Sequence[Any]) -> bool:
    """Pointwise ``≍`` over two equal-length sequences."""
    if len(values) != len(patterns):
        raise ConstraintError(
            f"cannot match {len(values)} values against {len(patterns)} patterns"
        )
    return all(matches(v, p) for v, p in zip(values, patterns))


def pattern_is_constant(pattern: Any) -> bool:
    """True if *pattern* is a constant (not the wildcard)."""
    return is_constant(pattern)


class PatternTuple:
    """One row of a pattern tableau: ``tp[lhs ‖ rhs]``.

    Parameters
    ----------
    lhs:
        Ordered mapping from LHS attribute names to constants or
        :data:`~repro.relational.values.WILDCARD`.
    rhs:
        Ordered mapping for the RHS attribute names.
    """

    __slots__ = ("_lhs", "_rhs", "_hash")

    def __init__(self, lhs: Mapping[str, Any], rhs: Mapping[str, Any]):
        self._lhs = dict(lhs)
        self._rhs = dict(rhs)
        for side in (self._lhs, self._rhs):
            for attr, value in side.items():
                if not is_constant(value) and not is_wildcard(value):
                    raise ConstraintError(
                        f"pattern value for {attr!r} must be a constant or '_', "
                        f"got {value!r}"
                    )
        self._hash = hash(
            (tuple(self._lhs.items()), tuple(self._rhs.items()))
        )

    @property
    def lhs(self) -> dict[str, Any]:
        return dict(self._lhs)

    @property
    def rhs(self) -> dict[str, Any]:
        return dict(self._rhs)

    @property
    def lhs_attributes(self) -> tuple[str, ...]:
        return tuple(self._lhs)

    @property
    def rhs_attributes(self) -> tuple[str, ...]:
        return tuple(self._rhs)

    def lhs_value(self, attribute: str) -> Any:
        try:
            return self._lhs[attribute]
        except KeyError:
            raise ConstraintError(
                f"pattern tuple has no LHS attribute {attribute!r}"
            ) from None

    def rhs_value(self, attribute: str) -> Any:
        try:
            return self._rhs[attribute]
        except KeyError:
            raise ConstraintError(
                f"pattern tuple has no RHS attribute {attribute!r}"
            ) from None

    def lhs_projection(self, attributes: Iterable[str]) -> tuple[Any, ...]:
        return tuple(self.lhs_value(a) for a in attributes)

    def rhs_projection(self, attributes: Iterable[str]) -> tuple[Any, ...]:
        return tuple(self.rhs_value(a) for a in attributes)

    def lhs_constants(self) -> dict[str, Any]:
        """LHS attributes bound to constants (drops wildcards)."""
        return {a: v for a, v in self._lhs.items() if is_constant(v)}

    def rhs_constants(self) -> dict[str, Any]:
        return {a: v for a, v in self._rhs.items() if is_constant(v)}

    def constants(self) -> set[Any]:
        """Every constant mentioned anywhere in this pattern tuple."""
        out = {v for v in self._lhs.values() if is_constant(v)}
        out |= {v for v in self._rhs.values() if is_constant(v)}
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PatternTuple)
            and self._lhs == other._lhs
            and self._rhs == other._rhs
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        def fmt(side: dict[str, Any]) -> str:
            return ", ".join(
                "_" if is_wildcard(v) else repr(v) for v in side.values()
            )

        return f"({fmt(self._lhs)} || {fmt(self._rhs)})"


class PatternTableau:
    """An ordered pattern tableau ``Tp`` over fixed LHS/RHS attribute lists.

    All rows must bind exactly the tableau's LHS and RHS attributes. The
    constructor accepts rows as :class:`PatternTuple` objects, as
    ``(lhs_values, rhs_values)`` sequences aligned with the attribute lists,
    or as ``(lhs_mapping, rhs_mapping)`` pairs.
    """

    def __init__(
        self,
        lhs_attributes: Sequence[str],
        rhs_attributes: Sequence[str],
        rows: Iterable[Any] = (),
    ):
        self.lhs_attributes = tuple(lhs_attributes)
        self.rhs_attributes = tuple(rhs_attributes)
        if len(set(self.lhs_attributes)) != len(self.lhs_attributes):
            raise ConstraintError(
                f"duplicate attributes in tableau LHS {self.lhs_attributes}"
            )
        if len(set(self.rhs_attributes)) != len(self.rhs_attributes):
            raise ConstraintError(
                f"duplicate attributes in tableau RHS {self.rhs_attributes}"
            )
        self._rows: list[PatternTuple] = []
        for row in rows:
            self.add_row(row)

    def add_row(self, row: Any) -> PatternTuple:
        """Append a row, coercing sequences/mappings to :class:`PatternTuple`."""
        pt = self._coerce(row)
        if tuple(pt.lhs_attributes) != self.lhs_attributes:
            raise ConstraintError(
                f"row LHS attributes {pt.lhs_attributes} do not match tableau "
                f"LHS {self.lhs_attributes}"
            )
        if tuple(pt.rhs_attributes) != self.rhs_attributes:
            raise ConstraintError(
                f"row RHS attributes {pt.rhs_attributes} do not match tableau "
                f"RHS {self.rhs_attributes}"
            )
        self._rows.append(pt)
        return pt

    def _coerce(self, row: Any) -> PatternTuple:
        if isinstance(row, PatternTuple):
            return row
        try:
            lhs_part, rhs_part = row
        except (TypeError, ValueError):
            raise ConstraintError(
                f"tableau row must be a PatternTuple or an (lhs, rhs) pair, "
                f"got {row!r}"
            ) from None
        if isinstance(lhs_part, Mapping):
            lhs = {a: lhs_part.get(a, WILDCARD) for a in self.lhs_attributes}
        else:
            lhs_values = tuple(lhs_part)
            if len(lhs_values) != len(self.lhs_attributes):
                raise ConstraintError(
                    f"row LHS has {len(lhs_values)} values for "
                    f"{len(self.lhs_attributes)} attributes"
                )
            lhs = dict(zip(self.lhs_attributes, lhs_values))
        if isinstance(rhs_part, Mapping):
            rhs = {a: rhs_part.get(a, WILDCARD) for a in self.rhs_attributes}
        else:
            rhs_values = tuple(rhs_part)
            if len(rhs_values) != len(self.rhs_attributes):
                raise ConstraintError(
                    f"row RHS has {len(rhs_values)} values for "
                    f"{len(self.rhs_attributes)} attributes"
                )
            rhs = dict(zip(self.rhs_attributes, rhs_values))
        return PatternTuple(lhs, rhs)

    @property
    def rows(self) -> tuple[PatternTuple, ...]:
        return tuple(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[PatternTuple]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> PatternTuple:
        return self._rows[index]

    def constants(self) -> set[Any]:
        out: set[Any] = set()
        for row in self._rows:
            out |= row.constants()
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PatternTableau)
            and self.lhs_attributes == other.lhs_attributes
            and self.rhs_attributes == other.rhs_attributes
            and self._rows == other._rows
        )

    def __repr__(self) -> str:
        header = (
            f"[{', '.join(self.lhs_attributes)} || "
            f"{', '.join(self.rhs_attributes)}]"
        )
        body = "; ".join(map(repr, self._rows))
        return f"Tableau{header}{{{body}}}"
