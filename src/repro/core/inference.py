"""The inference system ``I`` for CIND implication (Fig. 3, Theorem 3.3).

Eight rules, each implemented as a function that *validates its side
conditions* and constructs the conclusion CIND. All rules operate on CINDs
in normal form (Prop. 3.1 lets us assume this w.l.o.g.):

* **CIND1** (reflexivity): ``(R[X; nil] ⊆ R[X; nil])`` with wildcards.
* **CIND2** (projection & permutation): project the embedded IND onto a
  subsequence of index pairs and permute the pattern lists.
* **CIND3** (transitivity): compose ``Ra → Rb`` and ``Rb → Rc`` when the
  middle lists *and their pattern values* agree (``t1[Yp] = t2[Yp]``).
* **CIND4** (instantiation): move a matched pair ``(Aj, Bj)`` from the
  embedded IND into the patterns, bound to a constant.
* **CIND5** (LHS augmentation): add an unused attribute to ``Xp`` with any
  constant — if ψ holds for every value, it holds for a specific one.
* **CIND6** (RHS reduction): drop attributes from ``Yp``.
* **CIND7** (finite-domain merge): CINDs identical but for ``tp[A]`` whose
  values jointly cover the finite ``dom(A)`` collapse to one CIND without
  ``A``.
* **CIND8** (finite-domain un-instantiation): the inverse of CIND4 over a
  full finite domain — premises with ``ti[A] = ti[B]`` covering ``dom(A)``
  merge into a CIND with ``(A, B)`` back in the embedded IND.

:class:`Derivation` chains rule applications into an auditable proof object;
``tests/test_inference.py`` replays the seven-step proof of Example 3.4
verbatim. Rules CIND1–CIND6 alone are sound and complete when no
finite-domain attributes occur (Theorem 3.5); CIND7/CIND8 handle the
finite-domain cases that push implication to EXPTIME (Theorem 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.cind import CIND
from repro.errors import InferenceError
from repro.relational.domains import FiniteDomain
from repro.relational.schema import RelationSchema
from repro.relational.values import WILDCARD, is_constant


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InferenceError(message)


def _require_normal(psi: CIND, role: str) -> None:
    _require(
        psi.is_normal_form,
        f"{role} must be in normal form (Prop. 3.1); got {psi!r}",
    )


def _pattern_rows(
    x: Sequence[str], xp_values: dict[str, Any], y: Sequence[str], yp_values: dict[str, Any]
):
    lhs = {a: WILDCARD for a in x}
    lhs.update(xp_values)
    rhs = {b: WILDCARD for b in y}
    rhs.update(yp_values)
    return [(lhs, rhs)]


def cind1(relation: RelationSchema, x: Sequence[str], name: str | None = None) -> CIND:
    """Reflexivity: ``(R[X; nil] ⊆ R[X; nil], tp)`` with ``tp`` all ``_``."""
    x = tuple(x)
    _require(len(x) >= 1, "CIND1 needs a nonempty attribute sequence")
    return CIND(
        relation, x, (), relation, x, (),
        _pattern_rows(x, {}, x, {}),
        name=name,
    )


def cind2(
    psi: CIND,
    indices: Sequence[int],
    xp_order: Sequence[str] | None = None,
    yp_order: Sequence[str] | None = None,
    name: str | None = None,
) -> CIND:
    """Projection & permutation.

    *indices* selects a sequence of distinct positions into the embedded
    IND's lists (0-based); *xp_order* / *yp_order* permute the pattern
    attribute lists (defaults: unchanged).
    """
    _require_normal(psi, "CIND2 premise")
    m = len(psi.x)
    indices = tuple(indices)
    _require(
        len(set(indices)) == len(indices)
        and all(0 <= i < m for i in indices),
        f"indices must be distinct positions in [0, {m}), got {indices}",
    )
    xp_order = tuple(xp_order) if xp_order is not None else psi.xp
    yp_order = tuple(yp_order) if yp_order is not None else psi.yp
    _require(
        sorted(xp_order) == sorted(psi.xp),
        f"xp_order {xp_order} is not a permutation of Xp {psi.xp}",
    )
    _require(
        sorted(yp_order) == sorted(psi.yp),
        f"yp_order {yp_order} is not a permutation of Yp {psi.yp}",
    )
    pattern = psi.pattern
    new_x = tuple(psi.x[i] for i in indices)
    new_y = tuple(psi.y[i] for i in indices)
    xp_values = {a: pattern.lhs_value(a) for a in xp_order}
    yp_values = {b: pattern.rhs_value(b) for b in yp_order}
    return CIND(
        psi.lhs_relation, new_x, xp_order,
        psi.rhs_relation, new_y, yp_order,
        _pattern_rows(new_x, xp_values, new_y, yp_values),
        name=name,
    )


def cind3(psi1: CIND, psi2: CIND, name: str | None = None) -> CIND:
    """Transitivity: requires ``RHS(ψ1) = LHS(ψ2)`` lists *and* patterns."""
    _require_normal(psi1, "CIND3 first premise")
    _require_normal(psi2, "CIND3 second premise")
    _require(
        psi1.rhs_relation.name == psi2.lhs_relation.name,
        f"middle relation mismatch: {psi1.rhs_relation.name} vs "
        f"{psi2.lhs_relation.name}",
    )
    _require(
        psi1.y == psi2.x,
        f"ψ2's X {psi2.x} must equal ψ1's Y {psi1.y} (same order)",
    )
    _require(
        psi1.yp == psi2.xp,
        f"ψ2's Xp {psi2.xp} must equal ψ1's Yp {psi1.yp} (same order)",
    )
    t1, t2 = psi1.pattern, psi2.pattern
    for attr in psi1.yp:
        _require(
            t1.rhs_value(attr) == t2.lhs_value(attr),
            f"pattern mismatch on middle attribute {attr!r}: "
            f"{t1.rhs_value(attr)!r} vs {t2.lhs_value(attr)!r}",
        )
    xp_values = {a: t1.lhs_value(a) for a in psi1.xp}
    zp_values = {c: t2.rhs_value(c) for c in psi2.yp}
    return CIND(
        psi1.lhs_relation, psi1.x, psi1.xp,
        psi2.rhs_relation, psi2.y, psi2.yp,
        _pattern_rows(psi1.x, xp_values, psi2.y, zp_values),
        name=name,
    )


def cind4(psi: CIND, attribute: str, constant: Any, name: str | None = None) -> CIND:
    """Instantiation: move ``(Aj, Bj)`` into the patterns bound to *constant*."""
    _require_normal(psi, "CIND4 premise")
    _require(
        attribute in psi.x,
        f"{attribute!r} is not in the embedded IND's X {psi.x}",
    )
    j = psi.x.index(attribute)
    b_attr = psi.y[j]
    _require(
        psi.lhs_relation.domain_of(attribute).contains(constant),
        f"{constant!r} is outside dom({psi.lhs_relation.name}.{attribute})",
    )
    pattern = psi.pattern
    new_x = psi.x[:j] + psi.x[j + 1:]
    new_y = psi.y[:j] + psi.y[j + 1:]
    xp_values = {a: pattern.lhs_value(a) for a in psi.xp}
    xp_values[attribute] = constant
    yp_values = {b: pattern.rhs_value(b) for b in psi.yp}
    yp_values[b_attr] = constant
    return CIND(
        psi.lhs_relation, new_x, psi.xp + (attribute,),
        psi.rhs_relation, new_y, psi.yp + (b_attr,),
        _pattern_rows(new_x, xp_values, new_y, yp_values),
        name=name,
    )


def cind5(psi: CIND, attribute: str, constant: Any, name: str | None = None) -> CIND:
    """LHS augmentation: add an unused attribute to ``Xp`` with *constant*."""
    _require_normal(psi, "CIND5 premise")
    _require(
        attribute in psi.lhs_relation,
        f"{psi.lhs_relation.name!r} has no attribute {attribute!r}",
    )
    _require(
        attribute not in psi.x and attribute not in psi.xp,
        f"{attribute!r} already occurs in X ∪ Xp",
    )
    _require(
        psi.lhs_relation.domain_of(attribute).contains(constant),
        f"{constant!r} is outside dom({psi.lhs_relation.name}.{attribute})",
    )
    pattern = psi.pattern
    xp_values = {a: pattern.lhs_value(a) for a in psi.xp}
    xp_values[attribute] = constant
    yp_values = {b: pattern.rhs_value(b) for b in psi.yp}
    return CIND(
        psi.lhs_relation, psi.x, psi.xp + (attribute,),
        psi.rhs_relation, psi.y, psi.yp,
        _pattern_rows(psi.x, xp_values, psi.y, yp_values),
        name=name,
    )


def cind6(psi: CIND, keep_yp: Sequence[str], name: str | None = None) -> CIND:
    """RHS reduction: restrict ``Yp`` to the sublist *keep_yp*."""
    _require_normal(psi, "CIND6 premise")
    keep = tuple(keep_yp)
    _require(
        all(b in psi.yp for b in keep) and len(set(keep)) == len(keep),
        f"keep_yp {keep} must be distinct attributes of Yp {psi.yp}",
    )
    pattern = psi.pattern
    xp_values = {a: pattern.lhs_value(a) for a in psi.xp}
    yp_values = {b: pattern.rhs_value(b) for b in keep}
    return CIND(
        psi.lhs_relation, psi.x, psi.xp,
        psi.rhs_relation, psi.y, keep,
        _pattern_rows(psi.x, xp_values, psi.y, yp_values),
        name=name,
    )


def _check_uniform_premises(
    premises: Sequence[CIND], skip_lhs: set[str], skip_rhs: set[str]
) -> None:
    """All premises must agree except on the attributes being merged."""
    first = premises[0]
    for psi in premises[1:]:
        _require(
            psi.lhs_relation.name == first.lhs_relation.name
            and psi.rhs_relation.name == first.rhs_relation.name
            and psi.x == first.x
            and psi.y == first.y
            and set(psi.xp) == set(first.xp)
            and set(psi.yp) == set(first.yp),
            "premises must share relations, embedded IND and pattern "
            "attribute sets",
        )
        for a in first.xp:
            if a in skip_lhs:
                continue
            _require(
                psi.pattern.lhs_value(a) == first.pattern.lhs_value(a),
                f"premises disagree on tp[{a}]",
            )
        for b in first.yp:
            if b in skip_rhs:
                continue
            _require(
                psi.pattern.rhs_value(b) == first.pattern.rhs_value(b),
                f"premises disagree on tp[{b}]",
            )


def _covered_domain(premises: Sequence[CIND], relation: RelationSchema, attribute: str, values: Iterable[Any]) -> None:
    domain = relation.domain_of(attribute)
    _require(
        isinstance(domain, FiniteDomain),
        f"{relation.name}.{attribute} must have a finite domain",
    )
    _require(
        set(values) == set(domain.values),
        f"premise values for {attribute!r} must cover dom = "
        f"{set(domain.values)!r}",
    )


def cind7(premises: Sequence[CIND], attribute: str, name: str | None = None) -> CIND:
    """Finite-domain merge: drop ``A ∈ Xp`` once its values cover ``dom(A)``."""
    premises = list(premises)
    _require(len(premises) >= 1, "CIND7 needs at least one premise")
    for psi in premises:
        _require_normal(psi, "CIND7 premise")
        _require(attribute in psi.xp, f"{attribute!r} must be in every Xp")
    _check_uniform_premises(premises, skip_lhs={attribute}, skip_rhs=set())
    first = premises[0]
    _covered_domain(
        premises,
        first.lhs_relation,
        attribute,
        (psi.pattern.lhs_value(attribute) for psi in premises),
    )
    new_xp = tuple(a for a in first.xp if a != attribute)
    pattern = first.pattern
    xp_values = {a: pattern.lhs_value(a) for a in new_xp}
    yp_values = {b: pattern.rhs_value(b) for b in first.yp}
    return CIND(
        first.lhs_relation, first.x, new_xp,
        first.rhs_relation, first.y, first.yp,
        _pattern_rows(first.x, xp_values, first.y, yp_values),
        name=name,
    )


def cind8(
    premises: Sequence[CIND],
    lhs_attribute: str,
    rhs_attribute: str,
    name: str | None = None,
) -> CIND:
    """Finite-domain un-instantiation (inverse of CIND4 over a full domain).

    Premises ``(Ra[X; A Xp] ⊆ Rb[Y; B Yp], ti)`` with ``ti[A] = ti[B]``
    whose ``ti[A]`` values cover the finite ``dom(A)`` merge into
    ``(Ra[X A; Xp] ⊆ Rb[Y B; Yp], tp)``.
    """
    premises = list(premises)
    _require(len(premises) >= 1, "CIND8 needs at least one premise")
    for psi in premises:
        _require_normal(psi, "CIND8 premise")
        _require(lhs_attribute in psi.xp, f"{lhs_attribute!r} must be in every Xp")
        _require(rhs_attribute in psi.yp, f"{rhs_attribute!r} must be in every Yp")
        _require(
            psi.pattern.lhs_value(lhs_attribute)
            == psi.pattern.rhs_value(rhs_attribute),
            f"ti[{lhs_attribute}] must equal ti[{rhs_attribute}] in every premise",
        )
    _check_uniform_premises(
        premises, skip_lhs={lhs_attribute}, skip_rhs={rhs_attribute}
    )
    first = premises[0]
    _covered_domain(
        premises,
        first.lhs_relation,
        lhs_attribute,
        (psi.pattern.lhs_value(lhs_attribute) for psi in premises),
    )
    new_x = first.x + (lhs_attribute,)
    new_y = first.y + (rhs_attribute,)
    new_xp = tuple(a for a in first.xp if a != lhs_attribute)
    new_yp = tuple(b for b in first.yp if b != rhs_attribute)
    pattern = first.pattern
    xp_values = {a: pattern.lhs_value(a) for a in new_xp}
    yp_values = {b: pattern.rhs_value(b) for b in new_yp}
    return CIND(
        first.lhs_relation, new_x, new_xp,
        first.rhs_relation, new_y, new_yp,
        _pattern_rows(new_x, xp_values, new_y, yp_values),
        name=name,
    )


#: Rule registry used by Derivation.apply.
RULES = {
    "CIND1": cind1,
    "CIND2": cind2,
    "CIND3": cind3,
    "CIND4": cind4,
    "CIND5": cind5,
    "CIND6": cind6,
    "CIND7": cind7,
    "CIND8": cind8,
}


@dataclass
class DerivationStep:
    """One line of an I-proof."""

    index: int
    cind: CIND
    rule: str                       # "premise" or a RULES key
    premises: tuple[int, ...] = ()  # indexes of earlier steps
    params: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        src = f" from {self.premises}" if self.premises else ""
        return f"({self.index}) {self.cind!r}   [{self.rule}{src}]"


class Derivation:
    """An auditable I-proof: Σ ⊢_I ψ as an explicit step list.

    Usage (Example 3.4's shape)::

        proof = Derivation()
        p1 = proof.premise(psi1)
        s1 = proof.apply("CIND2", [p1], indices=[], ...)
        ...
        proof.check()          # re-validates every rule application
        proof.conclusion       # the last derived CIND
    """

    def __init__(self) -> None:
        self.steps: list[DerivationStep] = []

    def premise(self, cind: CIND) -> int:
        """Introduce a given CIND of Σ (must be in normal form)."""
        _require_normal(cind, "premise")
        step = DerivationStep(len(self.steps), cind, "premise")
        self.steps.append(step)
        return step.index

    def axiom_cind1(self, relation: RelationSchema, x: Sequence[str]) -> int:
        """Introduce a reflexivity axiom (CIND1 has no premises)."""
        step = DerivationStep(
            len(self.steps),
            cind1(relation, x),
            "CIND1",
            params={"relation": relation, "x": tuple(x)},
        )
        self.steps.append(step)
        return step.index

    def apply(self, rule: str, premises: Sequence[int], **params: Any) -> int:
        """Apply *rule* to earlier steps; validates side conditions now."""
        if rule not in RULES or rule == "CIND1":
            raise InferenceError(
                f"unknown derivation rule {rule!r} (CIND1 via axiom_cind1)"
            )
        cinds = [self._step(i).cind for i in premises]
        conclusion = self._invoke(rule, cinds, params)
        step = DerivationStep(
            len(self.steps), conclusion, rule, tuple(premises), dict(params)
        )
        self.steps.append(step)
        return step.index

    def _step(self, index: int) -> DerivationStep:
        try:
            return self.steps[index]
        except IndexError:
            raise InferenceError(f"no derivation step {index}") from None

    @staticmethod
    def _invoke(rule: str, cinds: list[CIND], params: dict[str, Any]) -> CIND:
        fn = RULES[rule]
        if rule in ("CIND7", "CIND8"):
            return fn(cinds, **params)
        if rule == "CIND3":
            if len(cinds) != 2:
                raise InferenceError("CIND3 takes exactly two premises")
            return fn(cinds[0], cinds[1], **params)
        if len(cinds) != 1:
            raise InferenceError(f"{rule} takes exactly one premise")
        return fn(cinds[0], **params)

    @property
    def conclusion(self) -> CIND:
        if not self.steps:
            raise InferenceError("empty derivation")
        return self.steps[-1].cind

    def check(self) -> bool:
        """Re-validate every step (rules recompute their conclusions)."""
        for step in self.steps:
            if step.rule == "premise":
                continue
            if step.rule == "CIND1":
                expected = cind1(step.params["relation"], step.params["x"])
            else:
                cinds = [self._step(i).cind for i in step.premises]
                expected = self._invoke(step.rule, cinds, step.params)
            if not _same_cind(expected, step.cind):
                raise InferenceError(
                    f"step {step.index} does not follow from its premises "
                    f"by {step.rule}"
                )
        return True

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        return "\n".join(repr(s) for s in self.steps)


def _same_cind(a: CIND, b: CIND) -> bool:
    """Structural equality ignoring names."""
    return (
        a.lhs_relation.name == b.lhs_relation.name
        and a.rhs_relation.name == b.rhs_relation.name
        and a.x == b.x
        and a.xp == b.xp
        and a.y == b.y
        and a.yp == b.yp
        and a.tableau == b.tableau
    )


def derives(derivation: Derivation, goal: CIND) -> bool:
    """Does the (checked) derivation end in *goal* (up to naming)?"""
    derivation.check()
    return _same_cind(derivation.conclusion, goal)
