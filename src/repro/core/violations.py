"""Constraint sets and whole-database violation checking.

:class:`ConstraintSet` is the container the reasoning algorithms share: it
keeps CFDs and CINDs (normalising lazily on demand), indexes them by
relation — ``CFD(R)`` and ``CIND(Ri, Rj)`` in the paper's notation — and
collects the constants each attribute is compared against (needed by the
SAT encoding, witness constructions and chase).

:func:`check_database` produces a :class:`ViolationReport` covering every
constraint, which the data-cleaning layer builds on.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.core.cfd import CFD, CFDViolation
from repro.core.cind import CIND, CINDViolation
from repro.core.normalize import normalize_cfds, normalize_cinds
from repro.errors import ConstraintError
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema


class ConstraintSet:
    """A set ``Σ`` of CFDs and CINDs over one database schema."""

    def __init__(
        self,
        schema: DatabaseSchema,
        cfds: Iterable[CFD] = (),
        cinds: Iterable[CIND] = (),
    ):
        self.schema = schema
        self.cfds: list[CFD] = []
        self.cinds: list[CIND] = []
        for cfd in cfds:
            self.add_cfd(cfd)
        for cind in cinds:
            self.add_cind(cind)

    # -- construction ----------------------------------------------------------

    def _check_relation(self, name: str) -> None:
        if name not in self.schema:
            raise ConstraintError(
                f"constraint mentions relation {name!r} not in the schema"
            )

    def add_cfd(self, cfd: CFD) -> None:
        self._check_relation(cfd.relation.name)
        self.cfds.append(cfd)

    def add_cind(self, cind: CIND) -> None:
        self._check_relation(cind.lhs_relation.name)
        self._check_relation(cind.rhs_relation.name)
        self.cinds.append(cind)

    def __len__(self) -> int:
        return len(self.cfds) + len(self.cinds)

    def __iter__(self) -> Iterator[CFD | CIND]:
        yield from self.cfds
        yield from self.cinds

    # -- normalisation -----------------------------------------------------------

    def normalized(self) -> "ConstraintSet":
        """An equivalent constraint set in normal form (Prop. 3.1)."""
        return ConstraintSet(
            self.schema,
            cfds=normalize_cfds(self.cfds),
            cinds=normalize_cinds(self.cinds),
        )

    # -- indexes -------------------------------------------------------------------

    def cfds_on(self, relation: str) -> list[CFD]:
        """``CFD(R)``: the CFDs defined on *relation*."""
        return [c for c in self.cfds if c.relation.name == relation]

    def cinds_from(self, relation: str) -> list[CIND]:
        """The CINDs whose LHS relation is *relation*."""
        return [c for c in self.cinds if c.lhs_relation.name == relation]

    def cinds_into(self, relation: str) -> list[CIND]:
        """The CINDs whose RHS relation is *relation*."""
        return [c for c in self.cinds if c.rhs_relation.name == relation]

    def cinds_between(self, src: str, dst: str) -> list[CIND]:
        """``CIND(Ri, Rj)``: CINDs from *src* to *dst*."""
        return [
            c
            for c in self.cinds
            if c.lhs_relation.name == src and c.rhs_relation.name == dst
        ]

    def relations_used(self) -> set[str]:
        out = {c.relation.name for c in self.cfds}
        for c in self.cinds:
            out.add(c.lhs_relation.name)
            out.add(c.rhs_relation.name)
        return out

    def restricted_to(self, relations: Iterable[str]) -> "ConstraintSet":
        """The constraints mentioning only the given relations."""
        keep = set(relations)
        return ConstraintSet(
            self.schema,
            cfds=[c for c in self.cfds if c.relation.name in keep],
            cinds=[
                c
                for c in self.cinds
                if c.lhs_relation.name in keep and c.rhs_relation.name in keep
            ],
        )

    # -- constants ---------------------------------------------------------------

    def constants_for(self, relation: str, attribute: str) -> set[Any]:
        """Constants compared against ``relation.attribute`` anywhere in Σ.

        For CINDs the membership test is per side: LHS rows are consulted
        only for ``X ∪ Xp`` attributes, RHS rows only for ``Y ∪ Yp``
        (``lhs_value``/``rhs_value`` raise on the wrong side rather than
        returning ``None``, so no ``None`` guard is needed anywhere).
        """
        out: set[Any] = set()
        for cfd in self.cfds_on(relation):
            for row in cfd.tableau:
                if attribute in cfd.lhs:
                    v = row.lhs_value(attribute)
                    if not _is_wild(v):
                        out.add(v)
                if attribute in cfd.rhs:
                    v = row.rhs_value(attribute)
                    if not _is_wild(v):
                        out.add(v)
        for cind in self.cinds:
            if cind.lhs_relation.name == relation and (
                attribute in cind.x or attribute in cind.xp
            ):
                for row in cind.tableau:
                    v = row.lhs_value(attribute)
                    if not _is_wild(v):
                        out.add(v)
            if cind.rhs_relation.name == relation and (
                attribute in cind.y or attribute in cind.yp
            ):
                for row in cind.tableau:
                    v = row.rhs_value(attribute)
                    if not _is_wild(v):
                        out.add(v)
        return out

    def all_constants(self) -> set[Any]:
        """Every constant appearing in any pattern tableau of Σ."""
        out: set[Any] = set()
        for c in self:
            out |= c.constants()
        return out

    # -- satisfaction ---------------------------------------------------------------

    def satisfied_by(self, db: DatabaseInstance) -> bool:
        """``D |= Σ``: the conjunction over every constraint."""
        return all(cfd.satisfied_by(db) for cfd in self.cfds) and all(
            cind.satisfied_by(db) for cind in self.cinds
        )

    def __repr__(self) -> str:
        return f"<ConstraintSet {len(self.cfds)} CFDs, {len(self.cinds)} CINDs>"


def _is_wild(value: Any) -> bool:
    from repro.relational.values import is_wildcard

    return is_wildcard(value)


def constraint_labels(
    constraints: Iterable[CFD | CIND],
    bases: "Sequence[str] | None" = None,
) -> dict[int, str]:
    """Stable display labels for constraints, keyed by object identity.

    The base label is ``name or repr``. When several *distinct* constraint
    objects share a base label (the same structure added twice, a CFD and
    its normalized clone, unnamed constraints with equal reprs), each gets
    an index-qualified suffix ``@k`` in iteration order, so counts keyed by
    label never silently merge across constraints.

    ``bases`` lets an incremental caller (the static analyzer) supply the
    per-constraint base labels it already computed — ``repr`` over a large
    unnamed Σ is the expensive part of this function.
    """
    items = list(constraints)
    base = (
        list(bases) if bases is not None
        else [c.name or repr(c) for c in items]
    )
    if len(base) != len(items):
        raise ValueError(
            f"{len(base)} base label(s) for {len(items)} constraint(s)"
        )
    multiplicity: dict[str, int] = {}
    for b in base:
        multiplicity[b] = multiplicity.get(b, 0) + 1
    labels: dict[int, str] = {}
    seen: dict[str, int] = {}
    for c, b in zip(items, base):
        if id(c) in labels:
            continue  # same object listed twice keeps one label
        if multiplicity[b] > 1:
            k = seen.get(b, 0)
            seen[b] = k + 1
            labels[id(c)] = f"{b}@{k}"
        else:
            labels[id(c)] = b
    return labels


class ViolationReport:
    """All violations of a constraint set on a database instance.

    When the originating :class:`ConstraintSet` is supplied, per-constraint
    keys come from :func:`constraint_labels` over Σ, so two distinct
    constraints with equal names/reprs keep separate entries. Without it,
    labels are derived from the distinct constraint objects appearing in
    the violation lists, in order of first appearance.
    """

    def __init__(
        self,
        cfd_violations: list[CFDViolation],
        cind_violations: list[CINDViolation],
        constraints: Iterable[CFD | CIND] | None = None,
    ):
        self.cfd_violations = cfd_violations
        self.cind_violations = cind_violations
        # Keep the constraint objects alive: the label map is keyed by id().
        self._constraints = list(constraints) if constraints is not None else None
        self._labels: dict[int, str] | None = (
            constraint_labels(self._constraints)
            if self._constraints is not None
            else None
        )

    @property
    def total(self) -> int:
        return len(self.cfd_violations) + len(self.cind_violations)

    @property
    def is_clean(self) -> bool:
        return self.total == 0

    def _label_map(self) -> dict[int, str]:
        if self._labels is None:
            appeared: dict[int, CFD | CIND] = {}
            for v in self.cfd_violations:
                appeared.setdefault(id(v.cfd), v.cfd)
            for v in self.cind_violations:
                appeared.setdefault(id(v.cind), v.cind)
            self._labels = constraint_labels(appeared.values())
        return self._labels

    def label_for(self, constraint: CFD | CIND) -> str:
        """The stable display label of *constraint* within this report."""
        label = self._label_map().get(id(constraint))
        if label is not None:
            return label
        return constraint.name or repr(constraint)

    def by_constraint(self) -> dict[str, int]:
        """Violation counts keyed by stable per-constraint labels."""
        labels = self._label_map()
        counts: dict[str, int] = {}
        for v in self.cfd_violations:
            key = labels.get(id(v.cfd)) or v.cfd.name or repr(v.cfd)
            counts[key] = counts.get(key, 0) + 1
        for v in self.cind_violations:
            key = labels.get(id(v.cind)) or v.cind.name or repr(v.cind)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def summary(self) -> str:
        lines = [
            f"{self.total} violation(s): {len(self.cfd_violations)} CFD, "
            f"{len(self.cind_violations)} CIND"
        ]
        for name, count in sorted(self.by_constraint().items()):
            lines.append(f"  {name}: {count}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<ViolationReport {self.total} violations>"


def check_database(db: DatabaseInstance, constraints: ConstraintSet) -> ViolationReport:
    """Find every CFD and CIND violation of *constraints* in *db*.

    Routed through the shared-scan engine (:mod:`repro.engine`): one scan
    per ``(relation, X)`` CFD group and per CIND witness bucket instead of
    one scan per pattern row. The report — including violation-list order —
    is identical to :func:`check_database_naive`, which the property tests
    keep as the reference oracle.
    """
    from repro.engine import detect  # local import: engine builds on this module

    return detect(db, constraints)


def check_database_naive(
    db: DatabaseInstance, constraints: ConstraintSet
) -> ViolationReport:
    """Reference oracle: evaluate each constraint independently.

    Kept (and cross-validated against the engine) because the
    per-constraint iterators are the executable transcription of the
    paper's satisfaction definitions.
    """
    cfd_violations: list[CFDViolation] = []
    for cfd in constraints.cfds:
        cfd_violations.extend(cfd.iter_violations(db))
    cind_violations: list[CINDViolation] = []
    for cind in constraints.cinds:
        cind_violations.extend(cind.iter_violations(db))
    return ViolationReport(cfd_violations, cind_violations, constraints=constraints)
