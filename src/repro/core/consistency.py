"""Consistency of CINDs alone (Theorem 3.2).

Any set of CINDs is consistent: the proof constructs, for each attribute, an
*active domain* — the constants appearing in Σ plus at most one extra value
of the attribute's domain — and takes each relation instance to be the cross
product of the active domains of its attributes. Every existential demand of
every CIND is then met because the RHS relation contains *every* combination
of active-domain values.

:func:`build_cind_witness` implements that construction (with a closure pass
propagating active domains along the embedded INDs so that ``t1[X]`` values
are guaranteed to exist on the RHS even when matched attributes draw their
fresh values from different domain objects), and :func:`is_consistent_cinds`
wraps it as the O(1) decision procedure of Table 1.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.core.cind import CIND
from repro.errors import ReproError
from repro.relational.domains import FiniteDomain
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema
from repro.relational.values import is_constant as is_constant_value


class WitnessTooLarge(ReproError):
    """The cross-product witness would exceed the configured size bound."""


def active_domains(
    schema: DatabaseSchema, cinds: Iterable[CIND]
) -> dict[tuple[str, str], list]:
    """Active domain per (relation, attribute) for the Theorem 3.2 witness.

    Starts from the constants of Σ filtered by domain membership, adds one
    fresh value per attribute where the domain still has room, then closes
    under the embedded INDs: for each CIND and each matched pair
    ``(Ai, Bi)``, every active value of ``R1.Ai`` that belongs to
    ``dom(Bi)`` is added to the active domain of ``R2.Bi``. The closure
    terminates because values are only ever copied, never invented, after
    the initial seeding.
    """
    cinds = list(cinds)
    constants = set()
    for cind in cinds:
        constants |= cind.constants()

    # Seed each attribute with the constants Σ actually compares it against
    # (not every constant of Σ — the full pool is also correct but blows the
    # cross product up by |constants| per attribute for no benefit).
    per_attribute: dict[tuple[str, str], set] = {}
    for cind in cinds:
        for row in cind.tableau:
            for attr, value in row.lhs.items():
                if is_constant_value(value):
                    per_attribute.setdefault(
                        (cind.lhs_relation.name, attr), set()
                    ).add(value)
            for attr, value in row.rhs.items():
                if is_constant_value(value):
                    per_attribute.setdefault(
                        (cind.rhs_relation.name, attr), set()
                    ).add(value)

    adom: dict[tuple[str, str], list] = {}
    fresh_by_domain: dict[int, object] = {}
    for rel in schema:
        for attr in rel:
            seeds = per_attribute.get((rel.name, attr.name), set())
            values = [c for c in sorted(seeds, key=repr) if attr.domain.contains(c)]
            key = id(attr.domain)
            if key not in fresh_by_domain:
                fresh_by_domain[key] = attr.domain.fresh_value(exclude=constants)
            fresh = fresh_by_domain[key]
            if fresh is not None and fresh not in values:
                values.append(fresh)
            if not values and isinstance(attr.domain, FiniteDomain):
                # Every domain value is a Σ-constant; use them all.
                values = list(attr.domain.values)
            adom[(rel.name, attr.name)] = values

    changed = True
    while changed:
        changed = False
        for cind in cinds:
            src = cind.lhs_relation.name
            dst = cind.rhs_relation.name
            for a, b in zip(cind.x, cind.y):
                dom_b = cind.rhs_relation.domain_of(b)
                target = adom[(dst, b)]
                present = set(map(repr, target))
                for v in adom[(src, a)]:
                    if repr(v) not in present and dom_b.contains(v):
                        target.append(v)
                        present.add(repr(v))
                        changed = True
    return adom


def build_cind_witness(
    schema: DatabaseSchema,
    cinds: Iterable[CIND],
    max_tuples_per_relation: int = 100_000,
) -> DatabaseInstance:
    """Construct a nonempty instance satisfying every CIND (Theorem 3.2).

    Each relation becomes the cross product of its attributes' active
    domains. Raises :class:`WitnessTooLarge` if any relation would exceed
    *max_tuples_per_relation* — the construction is exponential in relation
    arity, which is fine for the schema sizes the theorem is used on but
    should not silently eat memory.
    """
    cinds = list(cinds)
    adom = active_domains(schema, cinds)
    db = DatabaseInstance(schema)
    for rel in schema:
        pools = [adom[(rel.name, a.name)] for a in rel]
        size = 1
        for pool in pools:
            size *= max(len(pool), 1)
        if size > max_tuples_per_relation:
            raise WitnessTooLarge(
                f"witness for relation {rel.name!r} would have {size} tuples "
                f"(> {max_tuples_per_relation}); raise max_tuples_per_relation "
                f"or reduce the constant count"
            )
        for combo in itertools.product(*pools):
            db[rel.name].add(combo)
    return db


def is_consistent_cinds(
    schema: DatabaseSchema,
    cinds: Iterable[CIND],
    verify: bool = False,
) -> bool:
    """Decide consistency of a set of CINDs — always ``True`` (Theorem 3.2).

    With ``verify=True``, actually build the witness and check
    ``D |= Σ``, turning the theorem into an executable assertion (used by
    the test suite and the Table 1 benchmark).
    """
    if not verify:
        return True
    db = build_cind_witness(schema, cinds)
    if db.is_empty():
        raise AssertionError("witness construction produced an empty instance")
    for cind in cinds:
        if not cind.satisfied_by(db):
            raise AssertionError(f"witness does not satisfy {cind!r}")
    return True
