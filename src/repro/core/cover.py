"""Minimal covers of CIND and CFD sets (Section 8, "future work").

A minimal cover ``Σmc`` of Σ is an equivalent subset with no redundant
member: no ``ψ ∈ Σmc`` with ``Σmc − {ψ} |= ψ``. Computing one exactly
requires implication tests — undecidable for CFDs + CINDs and EXPTIME for
CINDs — so, as the paper suggests, the CIND cover uses the *heuristic*
(bounded, three-valued) implication checker: a dependency is dropped only
when the checker answers ``IMPLIED``, so the output is always equivalent to
the input; it merely may keep a redundant member whose redundancy the
bounded chase could not establish. The CFD cover uses the **exact**
two-tuple SAT test of :mod:`repro.consistency.cfd_implication` (implication
of CFDs alone is coNP-complete, hence decidable), so it has no
``undecided`` bucket.

Both covers are greedy single-pass eliminations: each candidate is tested
against the *current* survivor set, so the scan order decides which member
of a mutually-redundant clique survives. The order is an explicit,
documented parameter (``"reverse"``, the historical default, tries later —
typically more specific — dependencies for removal first; ``"forward"``
scans in insertion order). Each removal records which survivors justified
it (a :class:`Removal`), which the static analyzer surfaces as the
implicants of an ``implied-*`` finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Iterable, Sequence, TypeVar

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.implication import ImplicationStatus, implies
from repro.errors import ConstraintError
from repro.relational.schema import DatabaseSchema, RelationSchema

C = TypeVar("C", CFD, CIND)

#: Valid scan orders for the greedy elimination.
COVER_ORDERS = ("reverse", "forward")


@dataclass(frozen=True)
class Removal(Generic[C]):
    """One eliminated dependency plus the survivors that entail it.

    ``implicants`` is a single structurally-identical or single implying
    survivor when one suffices (probed first — the cheap, actionable
    case), otherwise the full survivor set at removal time.
    """

    candidate: C
    implicants: tuple[C, ...]

    @property
    def singleton(self) -> bool:
        """True when one survivor alone entails the candidate."""
        return len(self.implicants) == 1


@dataclass
class CoverResult(Generic[C]):
    cover: list[C]
    removed: list[C] = field(default_factory=list)
    #: Members whose redundancy test returned UNKNOWN (kept conservatively).
    undecided: list[C] = field(default_factory=list)
    #: Per-removal justification, parallel to ``removed``.
    removals: list[Removal[C]] = field(default_factory=list)


def _scan_indexes(count: int, order: str) -> Iterable[int]:
    if order not in COVER_ORDERS:
        raise ConstraintError(
            f"cover order must be one of {COVER_ORDERS}, got {order!r}"
        )
    return range(count - 1, -1, -1) if order == "reverse" else range(count)


def _structural_implicant(
    items: Sequence[C], alive: Sequence[bool], candidate: C
) -> C | None:
    """A surviving structural duplicate of *candidate*, if any (free)."""
    for index, other in enumerate(items):
        if alive[index] and other == candidate:
            return other
    return None


def minimal_cover_cinds(
    schema: DatabaseSchema,
    cinds: Iterable[CIND],
    max_tuples: int = 200,
    max_branches: int = 128,
    order: str = "reverse",
    justify: bool = True,
) -> CoverResult[CIND]:
    """Greedily remove CINDs entailed by the rest.

    ``order`` decides which member of a mutually-redundant group survives:
    ``"reverse"`` (default) tries later, typically more specific,
    dependencies for removal first; ``"forward"`` scans in insertion
    order. Either way the result is sound (``cover ≡ input``) — only the
    choice of surviving representative changes.

    Candidates are tested against the live survivor set via a generator
    (no per-step list slicing); with ``justify=True`` each removal's
    :class:`Removal` names an implicant — a surviving structural duplicate
    or a single implying survivor when one exists, else the survivor set.
    """
    items: list[CIND] = list(cinds)
    alive = [True] * len(items)
    result: CoverResult[CIND] = CoverResult(cover=[])

    def survivors() -> Iterable[CIND]:
        return (item for index, item in enumerate(items) if alive[index])

    for position in _scan_indexes(len(items), order):
        candidate = items[position]
        alive[position] = False
        verdict = implies(
            schema, survivors(), candidate,
            max_tuples=max_tuples, max_branches=max_branches,
        )
        if verdict.status is ImplicationStatus.IMPLIED:
            result.removed.append(candidate)
            if justify:
                result.removals.append(
                    Removal(candidate, _justify_cind(
                        schema, items, alive, candidate,
                        max_tuples=max_tuples, max_branches=max_branches,
                    ))
                )
            continue
        alive[position] = True
        if verdict.status is ImplicationStatus.UNKNOWN:
            result.undecided.append(candidate)
    result.cover = [item for index, item in enumerate(items) if alive[index]]
    return result


def _justify_cind(
    schema: DatabaseSchema,
    items: Sequence[CIND],
    alive: Sequence[bool],
    candidate: CIND,
    max_tuples: int,
    max_branches: int,
) -> tuple[CIND, ...]:
    duplicate = _structural_implicant(items, alive, candidate)
    if duplicate is not None:
        return (duplicate,)
    for index, other in enumerate(items):
        if not alive[index]:
            continue
        single = implies(
            schema, [other], candidate,
            max_tuples=max_tuples, max_branches=max_branches,
        )
        if single.status is ImplicationStatus.IMPLIED:
            return (other,)
    return tuple(item for index, item in enumerate(items) if alive[index])


def minimal_cover_cfds(
    relation: RelationSchema,
    cfds: Iterable[CFD],
    order: str = "reverse",
    justify: bool = True,
) -> CoverResult[CFD]:
    """Greedily remove CFDs (one relation) entailed by the rest — exactly.

    Same greedy scheme and ``order`` semantics as
    :func:`minimal_cover_cinds`, but the redundancy test is the exact
    two-tuple SAT procedure :func:`repro.consistency.cfd_implication.cfd_implies`,
    so ``undecided`` is always empty and the cover is a true local minimum:
    no surviving CFD is entailed by the others.
    """
    from repro.consistency.cfd_implication import cfd_implies

    items: list[CFD] = list(cfds)
    for cfd in items:
        if cfd.relation.name != relation.name:
            raise ConstraintError(
                f"minimal_cover_cfds got a CFD on {cfd.relation.name!r}, "
                f"expected {relation.name!r}"
            )
    alive = [True] * len(items)
    result: CoverResult[CFD] = CoverResult(cover=[])

    def survivors() -> list[CFD]:
        return [item for index, item in enumerate(items) if alive[index]]

    for position in _scan_indexes(len(items), order):
        candidate = items[position]
        alive[position] = False
        rest = survivors()
        if cfd_implies(relation, rest, candidate).implied:
            result.removed.append(candidate)
            if justify:
                implicants = _justify_cfd(relation, items, alive, candidate)
                result.removals.append(Removal(candidate, implicants))
            continue
        alive[position] = True
    result.cover = survivors()
    return result


def _justify_cfd(
    relation: RelationSchema,
    items: Sequence[CFD],
    alive: Sequence[bool],
    candidate: CFD,
) -> tuple[CFD, ...]:
    from repro.consistency.cfd_implication import cfd_implies

    duplicate = _structural_implicant(items, alive, candidate)
    if duplicate is not None:
        return (duplicate,)
    for index, other in enumerate(items):
        if alive[index] and cfd_implies(relation, [other], candidate).implied:
            return (other,)
    return tuple(item for index, item in enumerate(items) if alive[index])
