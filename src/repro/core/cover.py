"""Minimal covers of CIND sets (Section 8, "future work").

A minimal cover ``Σmc`` of Σ is an equivalent subset with no redundant
member: no ``ψ ∈ Σmc`` with ``Σmc − {ψ} |= ψ``. Computing one exactly
requires implication tests — undecidable for CFDs + CINDs and EXPTIME for
CINDs — so, as the paper suggests, we use the *heuristic* (bounded,
three-valued) implication checker: a dependency is dropped only when the
checker answers ``IMPLIED``, so the output is always equivalent to the
input; it merely may keep a redundant member whose redundancy the bounded
chase could not establish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.cind import CIND
from repro.core.implication import ImplicationStatus, implies
from repro.relational.schema import DatabaseSchema


@dataclass
class CoverResult:
    cover: list[CIND]
    removed: list[CIND] = field(default_factory=list)
    #: Members whose redundancy test returned UNKNOWN (kept conservatively).
    undecided: list[CIND] = field(default_factory=list)


def minimal_cover_cinds(
    schema: DatabaseSchema,
    cinds: Iterable[CIND],
    max_tuples: int = 200,
    max_branches: int = 128,
) -> CoverResult:
    """Greedily remove CINDs entailed by the rest.

    Scans in reverse insertion order (later, more specific dependencies are
    tried for removal first), re-testing against the current survivor set so
    the result is order-dependent but always sound: ``cover ≡ input``.
    """
    survivors: list[CIND] = list(cinds)
    removed: list[CIND] = []
    undecided: list[CIND] = []
    index = len(survivors) - 1
    while index >= 0:
        candidate = survivors[index]
        rest = survivors[:index] + survivors[index + 1:]
        result = implies(
            schema, rest, candidate,
            max_tuples=max_tuples, max_branches=max_branches,
        )
        if result.status is ImplicationStatus.IMPLIED:
            removed.append(candidate)
            survivors.pop(index)
        elif result.status is ImplicationStatus.UNKNOWN:
            undecided.append(candidate)
        index -= 1
    return CoverResult(cover=survivors, removed=removed, undecided=undecided)
