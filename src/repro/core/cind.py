"""Conditional inclusion dependencies (CINDs) — the paper's core contribution.

A CIND ``ψ = (R1[X; Xp] ⊆ R2[Y; Yp], Tp)`` (Section 2) consists of

* disjoint attribute lists ``X, Xp`` of ``R1`` and ``Y, Yp`` of ``R2`` with
  ``|X| = |Y|``;
* the standard IND ``R1[X] ⊆ R2[Y]`` *embedded* in ``ψ``; and
* a pattern tableau ``Tp`` over ``(X, Xp ‖ Y, Yp)`` with ``tp[X] = tp[Y]``
  for every row.

``(I1, I2) |= ψ`` iff for each ``t1 ∈ I1`` and each row ``tp``: whenever
``t1[X, Xp] ≍ tp[X, Xp]`` there exists ``t2 ∈ I2`` with
``t1[X] = t2[Y] ≍ tp[Y]`` and ``t2[Yp] ≍ tp[Yp]``.

``Xp`` selects which ``R1`` tuples the embedded IND applies to; ``Yp``
constrains the shape of the matching ``R2`` tuples. A standard IND is the
special case ``Xp = Yp = nil`` with a single all-wildcard row.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.core.patterns import PatternTableau, PatternTuple, matches, matches_all
from repro.errors import ConstraintError
from repro.relational.domains import FiniteDomain
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.schema import RelationSchema
from repro.relational.values import WILDCARD, is_constant, is_wildcard


def _check_domain_compatibility(
    lhs_relation: RelationSchema,
    x: Sequence[str],
    rhs_relation: RelationSchema,
    y: Sequence[str],
) -> None:
    """Best-effort check of the paper's ``dom(Ai) ⊆ dom(Bi)`` assumption.

    Finite ⊆ finite is checked exactly; finite ⊆ infinite is checked
    value-by-value; infinite ⊆ finite is rejected; two infinite domains must
    be the same domain object (we cannot decide containment otherwise).
    """
    for a_name, b_name in zip(x, y):
        dom_a = lhs_relation.domain_of(a_name)
        dom_b = rhs_relation.domain_of(b_name)
        if dom_a is dom_b:
            continue
        if isinstance(dom_a, FiniteDomain) and isinstance(dom_b, FiniteDomain):
            if not all(dom_b.contains(v) for v in dom_a.values):
                raise ConstraintError(
                    f"dom({lhs_relation.name}.{a_name}) is not contained in "
                    f"dom({rhs_relation.name}.{b_name})"
                )
        elif isinstance(dom_a, FiniteDomain):
            bad = [v for v in dom_a.values if not dom_b.contains(v)]
            if bad:
                raise ConstraintError(
                    f"values {bad!r} of dom({lhs_relation.name}.{a_name}) are "
                    f"outside dom({rhs_relation.name}.{b_name})"
                )
        elif isinstance(dom_b, FiniteDomain):
            raise ConstraintError(
                f"infinite dom({lhs_relation.name}.{a_name}) cannot be "
                f"contained in finite dom({rhs_relation.name}.{b_name})"
            )
        else:
            raise ConstraintError(
                f"cannot verify dom({lhs_relation.name}.{a_name}) ⊆ "
                f"dom({rhs_relation.name}.{b_name}) for distinct infinite "
                f"domains {dom_a.name!r} and {dom_b.name!r}"
            )


class CIND:
    """A conditional inclusion dependency ``(R1[X; Xp] ⊆ R2[Y; Yp], Tp)``.

    Parameters
    ----------
    lhs_relation, rhs_relation:
        Schemas of ``R1`` and ``R2`` (they may be the same relation).
    x, xp:
        Disjoint attribute lists of ``R1``; ``x`` is the LHS of the embedded
        IND, ``xp`` the LHS pattern attributes.
    y, yp:
        Disjoint attribute lists of ``R2``; ``|y| = |x|``.
    tableau:
        Tableau over LHS attributes ``x + xp`` and RHS attributes ``y + yp``;
        each row must satisfy ``tp[X] = tp[Y]`` positionwise.
    name:
        Optional label for reprs and reports.
    """

    def __init__(
        self,
        lhs_relation: RelationSchema,
        x: Sequence[str],
        xp: Sequence[str],
        rhs_relation: RelationSchema,
        y: Sequence[str],
        yp: Sequence[str],
        tableau: PatternTableau | Iterable[Any],
        name: str | None = None,
    ):
        self.lhs_relation = lhs_relation
        self.rhs_relation = rhs_relation
        self.x = lhs_relation.check_attribute_list(x)
        self.xp = lhs_relation.check_attribute_list(xp)
        self.y = rhs_relation.check_attribute_list(y)
        self.yp = rhs_relation.check_attribute_list(yp)
        if set(self.x) & set(self.xp):
            raise ConstraintError(
                f"X and Xp must be disjoint, both contain "
                f"{sorted(set(self.x) & set(self.xp))}"
            )
        if set(self.y) & set(self.yp):
            raise ConstraintError(
                f"Y and Yp must be disjoint, both contain "
                f"{sorted(set(self.y) & set(self.yp))}"
            )
        if len(self.x) != len(self.y):
            raise ConstraintError(
                f"embedded IND is malformed: |X| = {len(self.x)} but "
                f"|Y| = {len(self.y)}"
            )
        _check_domain_compatibility(lhs_relation, self.x, rhs_relation, self.y)
        lhs_attrs = self.x + self.xp
        rhs_attrs = self.y + self.yp
        if isinstance(tableau, PatternTableau):
            if tableau.lhs_attributes != lhs_attrs or tableau.rhs_attributes != rhs_attrs:
                raise ConstraintError(
                    f"tableau attributes {tableau.lhs_attributes} || "
                    f"{tableau.rhs_attributes} do not match ({lhs_attrs} || "
                    f"{rhs_attrs})"
                )
            self.tableau = tableau
        else:
            self.tableau = PatternTableau(lhs_attrs, rhs_attrs, tableau)
        if len(self.tableau) == 0:
            raise ConstraintError("CIND pattern tableau must be nonempty")
        for row in self.tableau:
            for attr, value in row.lhs.items():
                if is_constant(value) and not lhs_relation.domain_of(attr).contains(value):
                    raise ConstraintError(
                        f"pattern constant {value!r} is outside "
                        f"dom({lhs_relation.name}.{attr})"
                    )
            for attr, value in row.rhs.items():
                if is_constant(value) and not rhs_relation.domain_of(attr).contains(value):
                    raise ConstraintError(
                        f"pattern constant {value!r} is outside "
                        f"dom({rhs_relation.name}.{attr})"
                    )
            tp_x = row.lhs_projection(self.x)
            tp_y = row.rhs_projection(self.y)
            for a, b, va, vb in zip(self.x, self.y, tp_x, tp_y):
                same = (va == vb) or (is_wildcard(va) and is_wildcard(vb))
                if not same:
                    raise ConstraintError(
                        f"pattern tuple must satisfy tp[X] = tp[Y]; "
                        f"tp[{a}] = {va!r} but tp[{b}] = {vb!r}"
                    )
        self.name = name

    # -- structural properties ------------------------------------------------

    @property
    def is_standard_ind(self) -> bool:
        """True iff ``Xp = Yp = nil`` and the tableau is one all-wildcard row."""
        if self.xp or self.yp or len(self.tableau) != 1:
            return False
        row = self.tableau[0]
        return all(is_wildcard(v) for v in row.lhs.values()) and all(
            is_wildcard(v) for v in row.rhs.values()
        )

    @property
    def is_normal_form(self) -> bool:
        """Single row whose constants are exactly the ``Xp ∪ Yp`` entries."""
        if len(self.tableau) != 1:
            return False
        row = self.tableau[0]
        for attr in self.x:
            if not is_wildcard(row.lhs_value(attr)):
                return False
        for attr in self.xp:
            if not is_constant(row.lhs_value(attr)):
                return False
        for attr in self.y:
            if not is_wildcard(row.rhs_value(attr)):
                return False
        for attr in self.yp:
            if not is_constant(row.rhs_value(attr)):
                return False
        return True

    @property
    def pattern(self) -> PatternTuple:
        """The single pattern tuple of a normal-form (or single-row) CIND."""
        if len(self.tableau) != 1:
            raise ConstraintError(
                f"{self} has {len(self.tableau)} pattern tuples; use .tableau"
            )
        return self.tableau[0]

    def constants(self) -> set[Any]:
        return self.tableau.constants()

    def lhs_attributes_used(self) -> set[str]:
        return set(self.x) | set(self.xp)

    def rhs_attributes_used(self) -> set[str]:
        return set(self.y) | set(self.yp)

    # -- semantics --------------------------------------------------------------

    def lhs_matches(self, t1: Tuple, row: PatternTuple) -> bool:
        """Does ``t1[X, Xp] ≍ tp[X, Xp]`` hold?"""
        lhs_attrs = self.x + self.xp
        return matches_all(t1.project(lhs_attrs), row.lhs_projection(lhs_attrs))

    def find_witness(
        self, db: DatabaseInstance, t1: Tuple, row: PatternTuple
    ) -> Tuple | None:
        """Find ``t2`` with ``t2[Y] = t1[X]``, ``t2[Yp] ≍ tp[Yp]``, or ``None``."""
        rhs_instance = db[self.rhs_relation.name]
        candidates = rhs_instance.lookup(self.y, t1.project(self.x))
        yp_pattern = row.rhs_projection(self.yp)
        for t2 in candidates:
            if matches_all(t2.project(self.yp), yp_pattern):
                return t2
        return None

    def satisfied_by(self, db: DatabaseInstance) -> bool:
        """Check ``D |= ψ``."""
        for _ in self.iter_violations(db):
            return False
        return True

    def iter_violations(self, db: DatabaseInstance) -> Iterator["CINDViolation"]:
        """Yield one violation per (t1, pattern row) lacking a witness."""
        lhs_instance = db[self.lhs_relation.name]
        for row_index, row in enumerate(self.tableau):
            for t1 in lhs_instance:
                if not self.lhs_matches(t1, row):
                    continue
                if self.find_witness(db, t1, row) is None:
                    yield CINDViolation(
                        cind=self, pattern_index=row_index, tuple_=t1
                    )

    def violating_tuples(self, db: DatabaseInstance) -> set[Tuple]:
        return {v.tuple_ for v in self.iter_violations(db)}

    def required_rhs_template(self, t1: Tuple, row: PatternTuple) -> dict[str, Any]:
        """The constraints a witness tuple must satisfy, as attr → value/``_``.

        Used by the chase's IND step and by the schema-matching migrator:
        ``Y`` attributes get ``t1[X]`` values, ``Yp`` attributes get the
        pattern constants, everything else is unconstrained (wildcard).
        """
        template: dict[str, Any] = {
            a: WILDCARD for a in self.rhs_relation.attribute_names
        }
        for a, b in zip(self.x, self.y):
            template[b] = t1[a]
        for b in self.yp:
            template[b] = row.rhs_value(b)
        return template

    # -- identity -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CIND)
            and self.lhs_relation.name == other.lhs_relation.name
            and self.rhs_relation.name == other.rhs_relation.name
            and self.x == other.x
            and self.xp == other.xp
            and self.y == other.y
            and self.yp == other.yp
            and self.tableau == other.tableau
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.lhs_relation.name,
                self.rhs_relation.name,
                self.x,
                self.xp,
                self.y,
                self.yp,
                self.tableau.rows,
            )
        )

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""

        def side(attrs: Sequence[str], pattern_attrs: Sequence[str]) -> str:
            x_part = ", ".join(attrs) if attrs else "nil"
            p_part = ", ".join(pattern_attrs) if pattern_attrs else "nil"
            return f"{x_part}; {p_part}"

        return (
            f"CIND({label}{self.lhs_relation.name}[{side(self.x, self.xp)}] ⊆ "
            f"{self.rhs_relation.name}[{side(self.y, self.yp)}], "
            f"{len(self.tableau)} pattern(s))"
        )


class CINDViolation:
    """A tuple ``t1`` that matches ``tp[X, Xp]`` but has no witness in ``R2``."""

    __slots__ = ("cind", "pattern_index", "tuple_")

    def __init__(self, cind: CIND, pattern_index: int, tuple_: Tuple):
        self.cind = cind
        self.pattern_index = pattern_index
        self.tuple_ = tuple_

    def __repr__(self) -> str:
        label = self.cind.name or (
            f"{self.cind.lhs_relation.name} ⊆ {self.cind.rhs_relation.name}"
        )
        return f"<CINDViolation {label} row={self.pattern_index} t1={self.tuple_!r}>"


def standard_ind(
    lhs_relation: RelationSchema,
    x: Sequence[str],
    rhs_relation: RelationSchema,
    y: Sequence[str],
    name: str | None = None,
) -> CIND:
    """A traditional IND ``R1[X] ⊆ R2[Y]`` as a CIND with empty patterns."""
    x = tuple(x)
    y = tuple(y)
    row = ([WILDCARD] * len(x), [WILDCARD] * len(y))
    return CIND(lhs_relation, x, (), rhs_relation, y, (), [row], name=name)
