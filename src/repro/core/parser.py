"""A textual syntax for CFDs and CINDs, for config files and the examples.

Syntax (one constraint per line; ``#`` starts a comment)::

    # CIND: embedded-IND attributes before ';', pattern attributes after.
    [psi6] checking[nil ; ab='EDI'] <= interest[nil ; ab='EDI', at='checking', ct='UK', rt='1.5%']
    [ind3] saving[ab ; nil] <= interest[ab ; nil]

    # CFD: LHS -> RHS, constants attached with ='value'.
    [phi3] interest: ct='UK', at='checking' -> rt='1.5%'
    [fd1]  saving: an, ab -> cn, ca, cp

Rules:

* a bare attribute stands for the wildcard ``_``; ``attr='value'`` binds a
  pattern constant (single- or double-quoted, or a bare token without
  spaces/punctuation);
* ``nil`` denotes the empty attribute list (``X``/``Xp``/``Y``/``Yp``);
* for CINDs, a constant on the i-th ``X`` item and the i-th ``Y`` item must
  agree (``tp[X] = tp[Y]``); giving it on one side only is allowed and is
  mirrored automatically;
* the optional ``[name]`` prefix names the constraint.

Each parsed constraint carries a single pattern tuple; multi-row tableaux
are expressed as several lines (equivalent by Prop. 3.1) or built via the
:class:`~repro.core.patterns.PatternTableau` API directly.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.core.violations import ConstraintSet
from repro.errors import ParseError
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import WILDCARD, is_wildcard

# The [name] prefix; names may themselves contain one level of [...]
# (the bank dataset uses names like "psi1[NYC]").
_NAME_RE = re.compile(
    r"^\s*\[(?P<name>[^\[\]]*(?:\[[^\[\]]*\][^\[\]]*)*)\]\s*(?P<rest>.+)$"
)
_ITEM_RE = re.compile(
    r"^\s*(?P<attr>[A-Za-z_][A-Za-z_0-9.]*)\s*"
    r"(?:=\s*(?P<value>'[^']*'|\"[^\"]*\"|[^,\s\]]+))?\s*$"
)
_CIND_RE = re.compile(
    r"^\s*(?P<lrel>[A-Za-z_][A-Za-z_0-9]*)\s*\[(?P<lbody>[^\]]*)\]\s*"
    r"(?:<=|⊆)\s*"
    r"(?P<rrel>[A-Za-z_][A-Za-z_0-9]*)\s*\[(?P<rbody>[^\]]*)\]\s*$"
)
_CFD_HEAD_RE = re.compile(r"^\s*(?P<rel>[A-Za-z_][A-Za-z_0-9]*)\s*:\s*(?P<rest>.*)$")


def _split_arrow(body: str) -> tuple[str, str] | None:
    """Split on the first '->' outside quotes."""
    quote: str | None = None
    i = 0
    while i < len(body) - 1:
        ch = body[i]
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "-" and body[i + 1] == ">":
            return body[:i], body[i + 2:]
        i += 1
    return None


def _unquote(token: str) -> str:
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return token[1:-1]
    return token


def _parse_items(body: str, text: str) -> list[tuple[str, Any]]:
    """Parse ``A, B='b', C`` into (attr, value-or-WILDCARD) pairs."""
    body = body.strip()
    if not body or body == "nil":
        return []
    items: list[tuple[str, Any]] = []
    for chunk in _split_commas(body):
        match = _ITEM_RE.match(chunk)
        if not match:
            raise ParseError(f"cannot parse item {chunk!r}", text)
        value = match.group("value")
        items.append(
            (match.group("attr"), _unquote(value) if value is not None else WILDCARD)
        )
    return items


def _split_commas(body: str) -> list[str]:
    """Split on commas outside quotes."""
    parts: list[str] = []
    current: list[str] = []
    quote: str | None = None
    for ch in body:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch == ",":
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


def _split_semicolon(body: str, text: str) -> tuple[str, str]:
    depth_quote: str | None = None
    for i, ch in enumerate(body):
        if depth_quote:
            if ch == depth_quote:
                depth_quote = None
        elif ch in "'\"":
            depth_quote = ch
        elif ch == ";":
            return body[:i], body[i + 1:]
    raise ParseError(
        "CIND attribute list needs a ';' separating X from Xp "
        "(use 'nil' for an empty part)", text
    )


def parse_cind(text: str, schema: DatabaseSchema, name: str | None = None) -> CIND:
    """Parse one CIND line (see module docstring for the grammar)."""
    named = _NAME_RE.match(text)
    body = text
    if named:
        name = name or named.group("name").strip()
        body = named.group("rest")
    match = _CIND_RE.match(body)
    if not match:
        raise ParseError("not a CIND (expected R[..;..] <= S[..;..])", text)
    lhs_relation = _relation(schema, match.group("lrel"), text)
    rhs_relation = _relation(schema, match.group("rrel"), text)
    lx_body, lxp_body = _split_semicolon(match.group("lbody"), text)
    rx_body, ryp_body = _split_semicolon(match.group("rbody"), text)
    x_items = _parse_items(lx_body, text)
    xp_items = _parse_items(lxp_body, text)
    y_items = _parse_items(rx_body, text)
    yp_items = _parse_items(ryp_body, text)
    if len(x_items) != len(y_items):
        raise ParseError(
            f"|X| = {len(x_items)} does not match |Y| = {len(y_items)}", text
        )
    # Mirror tp[X] = tp[Y] constants given on one side only.
    x_values: list[Any] = []
    y_values: list[Any] = []
    for (xa, xv), (ya, yv) in zip(x_items, y_items):
        if is_wildcard(xv) and not is_wildcard(yv):
            xv = yv
        elif is_wildcard(yv) and not is_wildcard(xv):
            yv = xv
        elif not is_wildcard(xv) and xv != yv:
            raise ParseError(
                f"tp[{xa}] = {xv!r} conflicts with tp[{ya}] = {yv!r} "
                f"(tp[X] must equal tp[Y])", text
            )
        x_values.append(xv)
        y_values.append(yv)
    row = (
        x_values + [v for __, v in xp_items],
        y_values + [v for __, v in yp_items],
    )
    return CIND(
        lhs_relation,
        tuple(a for a, __ in x_items),
        tuple(a for a, __ in xp_items),
        rhs_relation,
        tuple(a for a, __ in y_items),
        tuple(a for a, __ in yp_items),
        [row],
        name=name,
    )


def parse_cfd(text: str, schema: DatabaseSchema, name: str | None = None) -> CFD:
    """Parse one CFD line (see module docstring for the grammar)."""
    named = _NAME_RE.match(text)
    body = text
    if named:
        name = name or named.group("name").strip()
        body = named.group("rest")
    head = _CFD_HEAD_RE.match(body)
    if not head:
        raise ParseError("not a CFD (expected R: X -> Y)", text)
    split = _split_arrow(head.group("rest"))
    if split is None:
        raise ParseError("not a CFD (missing '->')", text)
    relation = _relation(schema, head.group("rel"), text)
    lhs_items = _parse_items(split[0], text)
    rhs_items = _parse_items(split[1], text)
    if not rhs_items:
        raise ParseError("CFD RHS must not be empty", text)
    row = ([v for __, v in lhs_items], [v for __, v in rhs_items])
    return CFD(
        relation,
        tuple(a for a, __ in lhs_items),
        tuple(a for a, __ in rhs_items),
        [row],
        name=name,
    )


def parse_constraint(text: str, schema: DatabaseSchema) -> CFD | CIND:
    """Parse a line as a CIND (if it contains ``<=``/``⊆``) or a CFD."""
    stripped = text.strip()
    if "<=" in stripped or "⊆" in stripped:
        return parse_cind(stripped, schema)
    return parse_cfd(stripped, schema)


def parse_constraints(text: str, schema: DatabaseSchema) -> ConstraintSet:
    """Parse a multi-line constraint file into a :class:`ConstraintSet`."""
    sigma = ConstraintSet(schema)
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        constraint = parse_constraint(line, schema)
        if isinstance(constraint, CIND):
            sigma.add_cind(constraint)
        else:
            sigma.add_cfd(constraint)
    return sigma


def _relation(schema: DatabaseSchema, name: str, text: str) -> RelationSchema:
    if name not in schema:
        raise ParseError(f"unknown relation {name!r}", text)
    return schema.relation(name)


# -- formatting (round-trip support) ------------------------------------------


def _format_value(value: Any) -> str:
    return f"'{value}'"


def _format_items(attrs: Iterable[str], values: dict[str, Any]) -> str:
    attrs = list(attrs)
    if not attrs:
        return "nil"
    parts = []
    for attr in attrs:
        value = values.get(attr, WILDCARD)
        if is_wildcard(value):
            parts.append(attr)
        else:
            parts.append(f"{attr}={_format_value(value)}")
    return ", ".join(parts)


def format_cind(cind: CIND) -> list[str]:
    """Render a CIND as parser-compatible lines (one per pattern row)."""
    lines = []
    for row in cind.tableau:
        lhs = (
            f"{_format_items(cind.x, row.lhs)} ; "
            f"{_format_items(cind.xp, row.lhs)}"
        )
        rhs = (
            f"{_format_items(cind.y, row.rhs)} ; "
            f"{_format_items(cind.yp, row.rhs)}"
        )
        prefix = f"[{cind.name}] " if cind.name else ""
        lines.append(
            f"{prefix}{cind.lhs_relation.name}[{lhs}] <= "
            f"{cind.rhs_relation.name}[{rhs}]"
        )
    return lines


def format_cfd(cfd: CFD) -> list[str]:
    """Render a CFD as parser-compatible lines (one per pattern row)."""
    lines = []
    for row in cfd.tableau:
        lhs = _format_items(cfd.lhs, row.lhs) if cfd.lhs else "nil"
        rhs = _format_items(cfd.rhs, row.rhs)
        prefix = f"[{cfd.name}] " if cfd.name else ""
        lines.append(f"{prefix}{cfd.relation.name}: {lhs} -> {rhs}")
    return lines
