"""Normal forms for CINDs (Proposition 3.1) and CFDs (Section 4).

A CIND is in **normal form** when its tableau has a single pattern tuple
``tp`` and ``tp[A]`` is a constant *iff* ``A ∈ Xp ∪ Yp``. Proposition 3.1
shows every set of CINDs has a linear-size equivalent normal-form set,
obtained by

1. splitting multi-row tableaux into one CIND per row;
2. dropping pattern attributes whose entry is ``_`` (they pose no
   constraint); and
3. moving each pair ``(Ai, Bi)`` with a constant entry from ``X/Y`` into
   ``Xp/Yp`` (Example 3.1 rewrites ``(R[A,B;C,D] ⊆ S[E,F;G], (_,h; i,_ ‖
   _,h; o))`` into ``(R[A;B,C] ⊆ S[E;F,G], (_; h,i ‖ _; h,o))``).

A CFD is in normal form when its tableau has a single row and its RHS is a
single attribute. Both rewritings preserve semantics exactly; the property
tests in ``tests/test_normalize.py`` verify equivalence on random instances.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.cfd import CFD
from repro.core.cind import CIND
from repro.relational.values import is_constant, is_wildcard


def normalize_cind(cind: CIND) -> list[CIND]:
    """Rewrite *cind* into an equivalent list of normal-form CINDs.

    The output has one CIND per pattern tuple of the input; its size is
    linear in the size of the input (Prop. 3.1).
    """
    out: list[CIND] = []
    multi = len(cind.tableau) > 1
    for i, row in enumerate(cind.tableau):
        x: list[str] = []
        y: list[str] = []
        xp: list[str] = []
        yp: list[str] = []
        lhs_pattern: dict[str, object] = {}
        rhs_pattern: dict[str, object] = {}

        # Step 3: split (Ai, Bi) pairs by whether the pattern entry is a
        # constant. tp[X] = tp[Y] is enforced by the CIND constructor, so
        # looking at the LHS entry suffices.
        for a, b in zip(cind.x, cind.y):
            value = row.lhs_value(a)
            if is_constant(value):
                xp.append(a)
                yp.append(b)
                lhs_pattern[a] = value
                rhs_pattern[b] = value
            else:
                x.append(a)
                y.append(b)

        # Step 2: keep only constant-valued pattern attributes.
        for a in cind.xp:
            value = row.lhs_value(a)
            if is_constant(value):
                xp.append(a)
                lhs_pattern[a] = value
        for b in cind.yp:
            value = row.rhs_value(b)
            if is_constant(value):
                yp.append(b)
                rhs_pattern[b] = value

        name = cind.name
        if name and multi:
            name = f"{name}#{i}"
        out.append(
            CIND(
                cind.lhs_relation,
                x,
                xp,
                cind.rhs_relation,
                y,
                yp,
                [(lhs_pattern, rhs_pattern)],
                name=name,
            )
        )
    return out


def normalize_cinds(cinds: Iterable[CIND]) -> list[CIND]:
    """Normalize a whole set, concatenating the per-CIND rewritings."""
    out: list[CIND] = []
    for cind in cinds:
        out.extend(normalize_cind(cind))
    return out


def normalize_cfd(cfd: CFD) -> list[CFD]:
    """Rewrite *cfd* into an equivalent list of normal-form CFDs.

    One output CFD per (pattern row, RHS attribute) pair. For a row whose
    ``X`` part is unchanged, ``(X → Y, tp)`` is equivalent to the family
    ``(X → A, tp[X ‖ A])`` for ``A ∈ Y``.
    """
    return cfd.to_normal_form()


def normalize_cfds(cfds: Iterable[CFD]) -> list[CFD]:
    out: list[CFD] = []
    for cfd in cfds:
        out.extend(normalize_cfd(cfd))
    return out


def is_normalized_cind_set(cinds: Iterable[CIND]) -> bool:
    return all(c.is_normal_form for c in cinds)


def is_normalized_cfd_set(cfds: Iterable[CFD]) -> bool:
    return all(c.is_normal_form for c in cfds)
