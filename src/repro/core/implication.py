"""Implication analysis for CINDs (Section 3.2) via a bounded chase.

``Σ |= ψ`` asks whether every instance satisfying Σ satisfies ψ. The
decision problem is PSPACE-complete without finite-domain attributes and
EXPTIME-complete with them (Theorems 3.5/3.4), so this module implements a
*bounded* canonical-database procedure with three-valued answers:

1. Build a canonical tuple ``t1`` for ψ's premise: pattern constants on
   ``Xp``, distinct fresh constants on the infinite-domain attributes. Each
   finite-domain attribute of ``t1`` that the pattern leaves free becomes a
   *branch point* — one branch per domain value (the disjunctive chase).
2. Chase each branch with Σ: whenever a CIND premise is matched without a
   witness, insert the witness (fresh constants for unconstrained infinite
   columns, a branch per value for finite columns).
3. A branch **closes** when ψ's conclusion holds for ``t1`` (a matching
   tuple with ``t2[Y] = t1[X]`` and ``t2[Yp] ≍ tp[Yp]`` exists). A branch
   that reaches a Σ-terminal state while ψ's conclusion fails is a
   **countermodel**.

Answers:

* ``NOT_IMPLIED`` — some branch terminated as a countermodel (exact: the
  branch is a finite instance with ``D |= Σ`` and ``D ⊭ ψ``).
* ``IMPLIED`` — *every* branch closed (sound: chase steps are logical
  consequences of Σ, and the finite-domain branching is exhaustive). For
  CINDs without finite-domain attributes this matches the classical IND
  chase and is also complete when the chase terminates within budget.
* ``UNKNOWN`` — some branch exhausted the tuple/branch budget first.

Completeness caveat (documented, deliberate): the canonical ``t1`` is
*generic* — its ``X`` values are fresh and pairwise distinct. Premises that
only fire for coincident values are therefore not explored; for the
standard CIND fragment this matches the textbook IND chase construction.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.core.cind import CIND
from repro.core.normalize import normalize_cinds
from repro.core.patterns import matches_all
from repro.errors import ReproError
from repro.relational.domains import FiniteDomain
from repro.relational.instance import DatabaseInstance, Tuple
from repro.relational.schema import DatabaseSchema, RelationSchema


class ImplicationStatus(enum.Enum):
    IMPLIED = "implied"
    NOT_IMPLIED = "not-implied"
    UNKNOWN = "unknown"


@dataclass
class ImplicationResult:
    status: ImplicationStatus
    #: For NOT_IMPLIED: a finite instance with D |= Σ and D ⊭ ψ.
    counterexample: DatabaseInstance | None = None
    branches_explored: int = 0

    def __bool__(self) -> bool:
        return self.status is ImplicationStatus.IMPLIED


class _FreshSupply:
    """Distinct fresh constants per infinite domain, avoiding Σ's constants."""

    def __init__(self, exclude: set):
        self._taken = set(exclude)
        self._counters: dict[int, int] = {}

    def take(self, domain) -> Any:
        value = domain.fresh_value(exclude=self._taken)
        if value is None:
            raise ReproError(f"domain {domain.name!r} exhausted")
        self._taken.add(value)
        return value


def _conclusion_holds(db: DatabaseInstance, psi: CIND, t1: Tuple) -> bool:
    return psi.find_witness(db, t1, psi.pattern) is not None


def _branch_insertions(
    relation: RelationSchema,
    fixed: dict[str, Any],
    fresh: _FreshSupply,
) -> Iterator[dict[str, Any]]:
    """All ways to complete *fixed* into a full tuple over *relation*.

    Infinite-domain gaps take one (shared) fresh constant; finite-domain
    gaps fan out over the whole domain (the disjunctive chase). Lazy on
    purpose: the fan-out is the *product* of the free finite domains,
    which can dwarf any branch budget — callers stop consuming once their
    budget is spent, and completions past that point are never built.
    """
    base = dict(fixed)
    finite_attrs = []
    for attr in relation:
        if attr.name in base:
            continue
        if isinstance(attr.domain, FiniteDomain):
            finite_attrs.append(attr)
        else:
            base[attr.name] = fresh.take(attr.domain)
    if not finite_attrs:
        yield base
        return
    for values in itertools.product(
        *(attr.domain.values for attr in finite_attrs)
    ):
        completion = dict(base)
        for attr, value in zip(finite_attrs, values):
            completion[attr.name] = value
        yield completion


def _find_unmet(
    db: DatabaseInstance, sigma: list[CIND]
) -> tuple[CIND, Tuple] | None:
    for cind in sigma:
        pattern = cind.pattern
        lhs_attrs = cind.x + cind.xp
        lhs_pattern = pattern.lhs_projection(lhs_attrs)
        for ta in db[cind.lhs_relation.name]:
            if not matches_all(ta.project(lhs_attrs), lhs_pattern):
                continue
            if cind.find_witness(db, ta, pattern) is None:
                return cind, ta
    return None


def implies(
    schema: DatabaseSchema,
    sigma: Iterable[CIND],
    psi: CIND,
    max_tuples: int = 200,
    max_branches: int = 256,
) -> ImplicationResult:
    """Decide (boundedly) whether the CINDs of Σ entail ψ.

    ψ with a multi-row tableau is entailed iff each normalised row is; the
    result aggregates accordingly (UNKNOWN dominates NOT_IMPLIED only when
    no countermodel was found).
    """
    sigma_normal = normalize_cinds(sigma)
    rows = normalize_cinds([psi])
    overall = ImplicationStatus.IMPLIED
    branches_total = 0
    for row in rows:
        result = _implies_normal(
            schema, sigma_normal, row, max_tuples, max_branches
        )
        branches_total += result.branches_explored
        if result.status is ImplicationStatus.NOT_IMPLIED:
            result.branches_explored = branches_total
            return result
        if result.status is ImplicationStatus.UNKNOWN:
            overall = ImplicationStatus.UNKNOWN
    return ImplicationResult(overall, branches_explored=branches_total)


def _implies_normal(
    schema: DatabaseSchema,
    sigma: list[CIND],
    psi: CIND,
    max_tuples: int,
    max_branches: int,
) -> ImplicationResult:
    constants: set = set()
    for cind in sigma + [psi]:
        constants |= cind.constants()
    fresh = _FreshSupply(constants)

    ra = psi.lhs_relation
    pattern = psi.pattern
    seed: dict[str, Any] = {a: pattern.lhs_value(a) for a in psi.xp}
    # ψ's X attributes take distinct fresh constants; all remaining
    # attributes are completed like a chase insertion (branching on finite
    # domains the pattern leaves free).
    for a in psi.x:
        domain = ra.domain_of(a)
        if not isinstance(domain, FiniteDomain):
            seed[a] = fresh.take(domain)
    # Each branch is (db, canonical_t1). t1 is never rewritten (the
    # CIND-only chase has no FD steps), so its identity persists.
    # Branch *creation* is capped at max_branches, not just exploration:
    # a fan-out wider than the budget stops without materializing the
    # rest (each branch carries a full DatabaseInstance copy). `overflow`
    # forbids IMPLIED but does not stop the search — a countermodel in
    # any materialized branch still yields exact NOT_IMPLIED;
    # `budget_hit` (per-branch tuple budget) aborts the run as before.
    pending: list[tuple[DatabaseInstance, Tuple]] = []
    overflow = False
    for completion in _branch_insertions(ra, seed, fresh):
        if len(pending) >= max_branches:
            overflow = True
            break
        db = DatabaseInstance(schema)
        t1 = Tuple(ra, completion)
        db[ra.name].add(t1)
        pending.append((db, t1))

    explored = 0
    budget_hit = False
    while pending:
        db, t1 = pending.pop()
        explored += 1
        if explored > max_branches:
            budget_hit = True
            break
        # Chase this branch to closure / terminal / budget.
        while True:
            if _conclusion_holds(db, psi, t1):
                break  # branch closed: ψ's conclusion derived for t1
            unmet = _find_unmet(db, sigma)
            if unmet is None:
                return ImplicationResult(
                    ImplicationStatus.NOT_IMPLIED,
                    counterexample=db,
                    branches_explored=explored,
                )
            if db.total_tuples() >= max_tuples:
                budget_hit = True
                break
            cind, ta = unmet
            fixed: dict[str, Any] = {}
            for a, b in zip(cind.x, cind.y):
                fixed[b] = ta[a]
            for b in cind.yp:
                fixed[b] = cind.pattern.rhs_value(b)
            completions = _branch_insertions(cind.rhs_relation, fixed, fresh)
            first = next(completions)
            for completion in completions:
                if explored + len(pending) >= max_branches:
                    overflow = True
                    break
                forked = db.copy()
                forked[cind.rhs_relation.name].add(completion)
                pending.append((forked, t1))
            db[cind.rhs_relation.name].add(first)
        if budget_hit:
            break
    if budget_hit or overflow:
        return ImplicationResult(
            ImplicationStatus.UNKNOWN, branches_explored=explored
        )
    return ImplicationResult(
        ImplicationStatus.IMPLIED, branches_explored=explored
    )
