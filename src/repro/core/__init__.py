"""Core constraint classes and static analyses (CFDs, CINDs, reasoning)."""

from repro.core.acyclic import (
    chase_size_bound,
    cind_graph,
    implies_acyclic,
    is_acyclic,
)
from repro.core.cfd import CFD, CFDViolation, standard_fd
from repro.core.cind import CIND, CINDViolation, standard_ind
from repro.core.consistency import (
    WitnessTooLarge,
    active_domains,
    build_cind_witness,
    is_consistent_cinds,
)
from repro.core.cover import (
    CoverResult,
    Removal,
    minimal_cover_cfds,
    minimal_cover_cinds,
)
from repro.core.implication import (
    ImplicationResult,
    ImplicationStatus,
    implies,
)
from repro.core.inference import (
    RULES,
    Derivation,
    DerivationStep,
    cind1,
    cind2,
    cind3,
    cind4,
    cind5,
    cind6,
    cind7,
    cind8,
    derives,
)
from repro.core.normalize import (
    is_normalized_cfd_set,
    is_normalized_cind_set,
    normalize_cfd,
    normalize_cfds,
    normalize_cind,
    normalize_cinds,
)
from repro.core.parser import (
    format_cfd,
    format_cind,
    parse_cfd,
    parse_cind,
    parse_constraint,
    parse_constraints,
)
from repro.core.patterns import PatternTableau, PatternTuple, matches, matches_all
from repro.core.violations import (
    ConstraintSet,
    ViolationReport,
    check_database,
    check_database_naive,
    constraint_labels,
)

__all__ = [
    "CFD",
    "CFDViolation",
    "CIND",
    "CINDViolation",
    "ConstraintSet",
    "CoverResult",
    "Removal",
    "Derivation",
    "DerivationStep",
    "ImplicationResult",
    "ImplicationStatus",
    "PatternTableau",
    "PatternTuple",
    "RULES",
    "ViolationReport",
    "WitnessTooLarge",
    "active_domains",
    "build_cind_witness",
    "chase_size_bound",
    "check_database",
    "check_database_naive",
    "cind1",
    "cind2",
    "cind3",
    "cind4",
    "cind5",
    "cind6",
    "cind7",
    "cind8",
    "cind_graph",
    "constraint_labels",
    "derives",
    "format_cfd",
    "format_cind",
    "implies",
    "implies_acyclic",
    "is_acyclic",
    "is_consistent_cinds",
    "is_normalized_cfd_set",
    "is_normalized_cind_set",
    "matches",
    "matches_all",
    "minimal_cover_cfds",
    "minimal_cover_cinds",
    "normalize_cfd",
    "normalize_cfds",
    "normalize_cind",
    "normalize_cinds",
    "parse_cfd",
    "parse_cind",
    "parse_constraint",
    "parse_constraints",
    "standard_fd",
    "standard_ind",
]
