"""CSV import/export for relation and database instances.

The quickstart and the cleaning examples load small datasets from CSV.
Values are read back as strings unless a coercion map is supplied; chase
variables are never serialised (templates are in-memory artefacts only).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import SchemaError
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.schema import DatabaseSchema, RelationSchema


def write_relation_csv(instance: RelationInstance, path: str | Path) -> None:
    """Write *instance* to *path* with a header row of attribute names."""
    if not instance.is_ground():
        raise SchemaError("cannot serialise a template containing variables")
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(instance.schema.attribute_names)
        for t in instance:
            writer.writerow(t.values)


def read_relation_csv(
    schema: RelationSchema,
    path: str | Path,
    coercions: Mapping[str, Callable[[str], Any]] | None = None,
) -> RelationInstance:
    """Read a relation instance from *path*.

    The CSV header must list exactly the schema's attributes (any order).
    *coercions* optionally maps attribute names to parsers (e.g. ``int``).
    """
    coercions = dict(coercions or {})
    path = Path(path)
    instance = RelationInstance(schema)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty (missing header)") from None
        if sorted(header) != sorted(schema.attribute_names):
            raise SchemaError(
                f"CSV header {header} does not match attributes "
                f"{list(schema.attribute_names)} of relation {schema.name!r}"
            )
        for row in reader:
            if not row:
                continue
            record = dict(zip(header, row))
            for name, parse in coercions.items():
                if name in record:
                    record[name] = parse(record[name])
            instance.add(record)
    return instance


def write_database_csv(db: DatabaseInstance, directory: str | Path) -> None:
    """Write every relation of *db* to ``directory/<relation>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for inst in db:
        write_relation_csv(inst, directory / f"{inst.schema.name}.csv")


def read_database_csv(
    schema: DatabaseSchema,
    directory: str | Path,
    coercions: Mapping[str, Mapping[str, Callable[[str], Any]]] | None = None,
) -> DatabaseInstance:
    """Read ``directory/<relation>.csv`` for every relation of *schema*.

    Missing files are treated as empty relations. *coercions* maps relation
    name to a per-attribute parser map.
    """
    directory = Path(directory)
    coercions = dict(coercions or {})
    db = DatabaseInstance(schema)
    for rel in schema:
        path = directory / f"{rel.name}.csv"
        if not path.exists():
            continue
        loaded = read_relation_csv(rel, path, coercions.get(rel.name))
        for t in loaded:
            db[rel.name].add(t)
    return db


def database_csv_to_sqlite(
    schema: DatabaseSchema,
    directory: str | Path,
    db_path: str | Path,
    coercions: Mapping[str, Mapping[str, Callable[[str], Any]]] | None = None,
    overwrite: bool = False,
) -> Path:
    """Ingest ``directory/<relation>.csv`` into a sqlite file at *db_path*.

    The bridge from CSV data to the out-of-core ``sqlfile`` backend (and
    to file-backed test/bench fixtures): rows are inserted in CSV order,
    so the file's rowid order matches the in-memory instance the same
    CSVs would produce — which is what keeps ``sqlfile`` reports
    bit-identical to the memory backend's. Returns the file's path.
    """
    # Local import: repro.sql sits above the relational layer.
    from repro.sql.loader import create_database_file

    db = read_database_csv(schema, directory, coercions)
    return create_database_file(db_path, db, overwrite=overwrite)
