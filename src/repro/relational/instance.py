"""Relation and database instances (possibly containing chase variables).

Instances follow the paper's set semantics: a relation instance is a *set*
of tuples. We keep insertion order for deterministic iteration, and we
maintain per-attribute-list hash indexes so that CIND satisfaction checks
(``exists t2 with t2[Y] = t1[X]``) run in expected constant time per probe
instead of scanning the relation.

A *database template* (Section 5.1) is just a database instance whose tuples
may contain :class:`~repro.relational.values.Variable` objects; the chase
engine manipulates templates through the same API plus
:meth:`RelationInstance.replace_value`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import DomainError, SchemaError
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import is_constant, is_variable


class Tuple:
    """An immutable row over a relation schema.

    Values may be constants or chase variables. Equality and hashing are by
    (relation name, values), so tuples behave as the paper's set elements.
    """

    __slots__ = ("schema", "_values", "_hash")

    def __init__(self, schema: RelationSchema, values: Mapping[str, Any] | Sequence[Any]):
        self.schema = schema
        names = schema.attribute_names
        if isinstance(values, Mapping):
            missing = [n for n in names if n not in values]
            if missing:
                raise SchemaError(
                    f"tuple for {schema.name!r} is missing attributes {missing}"
                )
            extra = [n for n in values if n not in schema]
            if extra:
                raise SchemaError(
                    f"tuple for {schema.name!r} has unknown attributes {extra}"
                )
            vals = tuple(values[n] for n in names)
        else:
            vals = tuple(values)
            if len(vals) != len(names):
                raise SchemaError(
                    f"tuple for {schema.name!r} needs {len(names)} values, "
                    f"got {len(vals)}"
                )
        self._values = vals
        self._hash = hash((schema.name, vals))

    def __getitem__(self, attribute: str) -> Any:
        try:
            return self._values[self.schema.positions[attribute]]
        except KeyError:
            raise SchemaError(
                f"relation {self.schema.name!r} has no attribute {attribute!r}"
            ) from None

    def project(self, attributes: Iterable[str]) -> tuple[Any, ...]:
        """``t[A1, ..., Ak]`` as a value tuple, in the order given."""
        positions = self.schema.positions
        values = self._values
        try:
            return tuple(values[positions[a]] for a in attributes)
        except KeyError as exc:
            raise SchemaError(
                f"relation {self.schema.name!r} has no attribute {exc.args[0]!r}"
            ) from None

    def as_dict(self) -> dict[str, Any]:
        return dict(zip(self.schema.attribute_names, self._values))

    @property
    def values(self) -> tuple[Any, ...]:
        return self._values

    def has_variables(self) -> bool:
        return any(is_variable(v) for v in self._values)

    def variables(self) -> set[Any]:
        return {v for v in self._values if is_variable(v)}

    def is_ground(self) -> bool:
        """True if every value is a constant (no chase variables)."""
        return all(is_constant(v) for v in self._values)

    def substitute(self, mapping: Mapping[Any, Any]) -> "Tuple":
        """Return a copy with every value replaced via *mapping* (if present)."""
        return Tuple(self.schema, tuple(mapping.get(v, v) for v in self._values))

    def replace(self, **updates: Any) -> "Tuple":
        """Return a copy with named attributes replaced."""
        d = self.as_dict()
        for k, v in updates.items():
            if k not in self.schema:
                raise SchemaError(
                    f"relation {self.schema.name!r} has no attribute {k!r}"
                )
            d[k] = v
        return Tuple(self.schema, d)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Tuple)
            and self.schema.name == other.schema.name
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v!r}" for n, v in zip(self.schema.attribute_names, self._values))
        return f"{self.schema.name}({inner})"


class RelationInstance:
    """A set of tuples over one relation schema, with projection indexes.

    ``index_on(attrs)`` builds (and caches) a hash index from projections on
    *attrs* to the matching tuples; CIND checking uses it for its existential
    probes. Indexes are maintained incrementally on insert/discard and
    invalidated on value replacement (which rewrites tuples wholesale).

    Every mutation bumps the monotonic :attr:`version` counter, which keys
    the lazily materialized columnar view (:meth:`columns` / :meth:`rows`)
    and the detection engine's :class:`~repro.engine.cache.ScanCache`: a
    scan result tagged with the version it was computed at stays valid
    exactly as long as the version is unchanged.
    """

    def __init__(self, schema: RelationSchema, tuples: Iterable[Tuple | Sequence[Any] | Mapping[str, Any]] = ()):
        self.schema = schema
        self._tuples: dict[Tuple, None] = {}
        #: projection attrs -> key -> insertion-ordered tuple set. Buckets
        #: are dicts so removal is O(1) by hash instead of an O(bucket)
        #: equality sweep; iteration order stays insertion order.
        self._indexes: dict[tuple[str, ...], dict[tuple[Any, ...], dict[Tuple, None]]] = {}
        #: Monotonic mutation counter (never decreases, bumps on every
        #: successful add/discard/replace_value).
        self.version: int = 0
        self._columns: tuple[tuple[Any, ...], ...] | None = None
        self._rows: list[Tuple] | None = None
        self._view_version: int = -1
        for t in tuples:
            self.add(t)

    def _coerce(self, row: Tuple | Sequence[Any] | Mapping[str, Any]) -> Tuple:
        if isinstance(row, Tuple):
            if row.schema.name != self.schema.name:
                raise SchemaError(
                    f"tuple of {row.schema.name!r} inserted into {self.schema.name!r}"
                )
            return row
        return Tuple(self.schema, row)

    def add(self, row: Tuple | Sequence[Any] | Mapping[str, Any]) -> Tuple | None:
        """Insert a tuple (set semantics).

        Returns the canonical stored :class:`Tuple` when the row was new —
        callers that passed a Mapping/Sequence get the coerced object back
        without guessing where it landed — and ``None`` for a duplicate.
        (``Tuple`` is always truthy, so boolean uses keep working.)
        """
        t = self._coerce(row)
        if t in self._tuples:
            return None
        self._tuples[t] = None
        self.version += 1
        for attrs, index in self._indexes.items():
            index.setdefault(t.project(attrs), {})[t] = None
        return t

    def discard(self, row: Tuple) -> bool:
        """Remove a tuple if present; return ``True`` if it was removed."""
        if row not in self._tuples:
            return False
        del self._tuples[row]
        self.version += 1
        for attrs, index in self._indexes.items():
            bucket = index.get(row.project(attrs))
            if bucket is not None:
                bucket.pop(row, None)
        return True

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __contains__(self, row: Tuple) -> bool:
        return row in self._tuples

    @property
    def tuples(self) -> tuple[Tuple, ...]:
        return tuple(self._tuples)

    def _refresh_views(self) -> None:
        rows = list(self._tuples)
        if rows:
            columns = tuple(zip(*[t.values for t in rows]))
        else:
            columns = tuple(() for __ in range(self.schema.arity))
        self._rows = rows
        self._columns = columns
        self._view_version = self.version

    def rows(self) -> list[Tuple]:
        """The tuples as a cached insertion-ordered list (do not mutate).

        Rebuilt lazily when :attr:`version` moved since the last call.
        """
        if self._view_version != self.version:
            self._refresh_views()
        return self._rows

    def columns(self) -> tuple[tuple[Any, ...], ...]:
        """Columnar view: one value tuple per attribute, in tuple-insertion
        order (``columns()[schema.positions[A]][i]`` is ``rows()[i][A]``).

        Materialized lazily and memoized against :attr:`version`, so
        every scan unit of one plan execution shares one transpose; any
        ``add``/``discard``/``replace_value`` invalidates it.
        """
        if self._view_version != self.version:
            self._refresh_views()
        return self._columns

    def release_views(self) -> None:
        """Drop the memoized columnar views (they rebuild lazily on demand).

        The detection engine treats the views as scan-lifetime artifacts —
        within one plan execution every scan unit shares them, but across
        executions either the version moved (stale) or the engine's hit
        caches answer without scanning — so it releases them when a plan
        finishes rather than leaving an O(tuples · arity) transpose parked
        on a long-lived database.
        """
        self._columns = None
        self._rows = None
        self._view_version = -1

    def index_on(self, attributes: Sequence[str]) -> dict[tuple[Any, ...], dict[Tuple, None]]:
        """Hash index mapping projections on *attributes* to tuple buckets.

        Buckets are insertion-ordered dicts keyed by tuple (treat as
        read-only sets); use :meth:`lookup` for list-shaped results.
        """
        key = tuple(attributes)
        index = self._indexes.get(key)
        if index is None:
            for name in key:
                if name not in self.schema:
                    raise SchemaError(
                        f"relation {self.schema.name!r} has no attribute {name!r}"
                    )
            index = {}
            for t in self._tuples:
                index.setdefault(t.project(key), {})[t] = None
            self._indexes[key] = index
        return index

    def lookup(self, attributes: Sequence[str], values: Sequence[Any]) -> list[Tuple]:
        """All tuples ``t`` with ``t[attributes] == values``."""
        if not attributes:
            return list(self._tuples)
        return list(self.index_on(attributes).get(tuple(values), ()))

    def replace_value(self, old: Any, new: Any) -> int:
        """Replace every occurrence of *old* by *new* across the relation.

        This is the chase's FD-step primitive (variable unification). Returns
        the number of tuples rewritten. Rewriting may merge tuples (set
        semantics), shrinking the relation.
        """
        return len(self.replace_value_tracked(old, new))

    def replace_value_tracked(self, old: Any, new: Any) -> list[Tuple]:
        """Like :meth:`replace_value`, returning the rewritten tuples.

        The chase worklist uses the returned (new) tuples to re-enqueue
        dependency obligations without rescanning the relation.
        """
        affected = [t for t in self._tuples if old in t.values]
        if not affected:
            return []
        mapping = {old: new}
        for t in affected:
            del self._tuples[t]
        self.version += 1
        self._indexes.clear()
        rewritten = []
        for t in affected:
            replacement = t.substitute(mapping)
            self._tuples[replacement] = None
            rewritten.append(replacement)
        return rewritten

    def variables(self) -> set[Any]:
        out: set[Any] = set()
        for t in self._tuples:
            out |= t.variables()
        return out

    def is_ground(self) -> bool:
        return all(t.is_ground() for t in self._tuples)

    def validate_domains(self) -> None:
        """Check every constant against its attribute domain."""
        for t in self._tuples:
            for attr, value in zip(self.schema.attributes, t.values):
                if is_constant(value) and not attr.domain.contains(value):
                    raise DomainError(
                        f"value {value!r} for {self.schema.name}.{attr.name} "
                        f"is outside domain {attr.domain.name}"
                    )

    def copy(self) -> "RelationInstance":
        return RelationInstance(self.schema, self._tuples)

    def __repr__(self) -> str:
        return f"<RelationInstance {self.schema.name}: {len(self)} tuples>"


class DatabaseInstance:
    """A database instance ``D = (I1, ..., In)`` over a database schema.

    Every relation of the schema is always present (possibly empty), so
    ``db[name]`` never fails for a valid relation name.
    """

    def __init__(self, schema: DatabaseSchema, relations: Mapping[str, Iterable[Any]] | None = None):
        self.schema = schema
        self._relations: dict[str, RelationInstance] = {
            rel.name: RelationInstance(rel) for rel in schema
        }
        if relations:
            for name, rows in relations.items():
                inst = self[name]
                for row in rows:
                    inst.add(row)

    def __getitem__(self, name: str) -> RelationInstance:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"database has no relation {name!r}; relations are "
                f"{list(self._relations)}"
            ) from None

    def __iter__(self) -> Iterator[RelationInstance]:
        return iter(self._relations.values())

    def relations(self) -> dict[str, RelationInstance]:
        return dict(self._relations)

    def add(self, relation: str, row: Tuple | Sequence[Any] | Mapping[str, Any]) -> Tuple | None:
        """Insert into *relation*; returns the stored Tuple or ``None`` on duplicate."""
        return self[relation].add(row)

    def total_tuples(self) -> int:
        return sum(len(inst) for inst in self._relations.values())

    def is_empty(self) -> bool:
        return self.total_tuples() == 0

    def is_ground(self) -> bool:
        return all(inst.is_ground() for inst in self._relations.values())

    def variables(self) -> set[Any]:
        out: set[Any] = set()
        for inst in self._relations.values():
            out |= inst.variables()
        return out

    def replace_value(self, old: Any, new: Any) -> int:
        """Replace *old* by *new* in every relation (chase unification step)."""
        return sum(inst.replace_value(old, new) for inst in self._relations.values())

    def release_views(self) -> None:
        """Release every relation's memoized columnar view."""
        for inst in self._relations.values():
            inst.release_views()

    def replace_value_tracked(self, old: Any, new: Any) -> dict[str, list[Tuple]]:
        """Global replacement returning the rewritten tuples per relation."""
        out: dict[str, list[Tuple]] = {}
        for name, inst in self._relations.items():
            rewritten = inst.replace_value_tracked(old, new)
            if rewritten:
                out[name] = rewritten
        return out

    def substitute(self, mapping: Mapping[Any, Any]) -> "DatabaseInstance":
        """A copy of the database with values rewritten through *mapping*."""
        out = DatabaseInstance(self.schema)
        for name, inst in self._relations.items():
            target = out[name]
            for t in inst:
                target.add(t.substitute(mapping))
        return out

    def copy(self) -> "DatabaseInstance":
        out = DatabaseInstance(self.schema)
        for name, inst in self._relations.items():
            target = out[name]
            for t in inst:
                target.add(t)
        return out

    def validate_domains(self) -> None:
        for inst in self._relations.values():
            inst.validate_domains()

    def map_values(self, fn: Callable[[str, str, Any], Any]) -> "DatabaseInstance":
        """A copy with every value passed through ``fn(relation, attribute, value)``."""
        out = DatabaseInstance(self.schema)
        for name, inst in self._relations.items():
            target = out[name]
            for t in inst:
                target.add(
                    [fn(name, a, v) for a, v in zip(inst.schema.attribute_names, t.values)]
                )
        return out

    def __repr__(self) -> str:
        sizes = ", ".join(f"{n}:{len(i)}" for n, i in self._relations.items())
        return f"<DatabaseInstance {sizes}>"
