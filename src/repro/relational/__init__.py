"""Relational substrate: domains, schemas, instances, values, CSV I/O."""

from repro.relational.domains import (
    BOOL,
    INTEGER,
    STRING,
    Domain,
    FiniteDomain,
    InfiniteDomain,
    enum_domain,
    numbered_finite_domain,
)
from repro.relational.instance import DatabaseInstance, RelationInstance, Tuple
from repro.relational.schema import (
    Attribute,
    DatabaseSchema,
    RelationSchema,
    database,
    schema,
)
from repro.relational.values import (
    WILDCARD,
    Variable,
    fresh_variables,
    is_constant,
    is_variable,
    is_wildcard,
    value_order_key,
)

__all__ = [
    "BOOL",
    "INTEGER",
    "STRING",
    "WILDCARD",
    "Attribute",
    "DatabaseInstance",
    "DatabaseSchema",
    "Domain",
    "FiniteDomain",
    "InfiniteDomain",
    "RelationInstance",
    "RelationSchema",
    "Tuple",
    "Variable",
    "database",
    "enum_domain",
    "fresh_variables",
    "is_constant",
    "is_variable",
    "is_wildcard",
    "numbered_finite_domain",
    "schema",
    "value_order_key",
]
