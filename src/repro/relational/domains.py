"""Attribute domains, finite and infinite.

The paper's static analyses hinge on whether an attribute has a finite or an
infinite domain (``finattr(R)``): finite domains can be exhausted by the
constants mentioned in a set of dependencies, which is what makes CFD
consistency NP-hard and pushes CIND implication from PSPACE to EXPTIME.

A :class:`Domain` therefore knows

* whether it is finite, and if so its full value set;
* how to test membership;
* how to produce *fresh* values — values not in a given exclusion set — which
  the witness constructions (Theorem 3.2) and the heuristic checkers need.

Infinite domains generate fresh values lazily and can always produce one;
finite domains may legitimately fail (return ``None``) once exhausted.
"""

from __future__ import annotations

import itertools
from typing import Any, Collection, Iterable, Iterator

from repro.errors import DomainError


class Domain:
    """Base class for attribute domains.

    Subclasses must implement :meth:`contains` and :meth:`fresh_value`;
    finite subclasses also expose :attr:`values`.
    """

    #: Human-readable name, used in reprs and error messages.
    name: str = "domain"

    @property
    def is_finite(self) -> bool:
        return False

    def contains(self, value: Any) -> bool:
        raise NotImplementedError

    def fresh_value(self, exclude: Collection[Any] = ()) -> Any | None:
        """Return a value of this domain not in *exclude*, or ``None``.

        Infinite domains never return ``None``. Finite domains return
        ``None`` when every domain value is excluded — the situation that
        makes CFDs inconsistent (Example 3.2 of the paper).
        """
        raise NotImplementedError

    def validate(self, value: Any) -> Any:
        """Return *value* if it belongs to the domain, else raise DomainError."""
        if not self.contains(value):
            raise DomainError(f"value {value!r} is not in domain {self.name}")
        return value

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class InfiniteDomain(Domain):
    """An infinite domain with a deterministic fresh-value stream.

    Parameters
    ----------
    name:
        Domain name (``string``, ``integer``, ...).
    factory:
        Callable mapping a non-negative integer *i* to the *i*-th candidate
        fresh value. The stream must be injective.
    predicate:
        Membership test for the domain.
    """

    def __init__(self, name, factory, predicate):
        self.name = name
        self._factory = factory
        self._predicate = predicate

    def contains(self, value: Any) -> bool:
        return self._predicate(value)

    def fresh_value(self, exclude: Collection[Any] = ()) -> Any:
        excluded = exclude if isinstance(exclude, (set, frozenset, dict)) else set(exclude)
        for i in itertools.count():
            candidate = self._factory(i)
            if candidate not in excluded:
                return candidate
        raise AssertionError("unreachable: infinite stream exhausted")

    def fresh_values(self, count: int, exclude: Collection[Any] = ()) -> list[Any]:
        """Return *count* distinct fresh values not in *exclude*."""
        excluded = set(exclude)
        out: list[Any] = []
        for i in itertools.count():
            if len(out) == count:
                break
            candidate = self._factory(i)
            if candidate not in excluded:
                out.append(candidate)
                excluded.add(candidate)
        return out


class FiniteDomain(Domain):
    """A finite domain with an explicit, ordered value set.

    The iteration order of :attr:`values` is the insertion order of the
    constructor argument; it is deterministic, which the valuation
    enumeration of :mod:`repro.chase.valuation` relies on.
    """

    def __init__(self, name: str, values: Iterable[Any]):
        self.name = name
        self._values: tuple[Any, ...] = tuple(dict.fromkeys(values))
        if not self._values:
            raise DomainError(f"finite domain {name!r} must be nonempty")
        self._value_set = frozenset(self._values)

    @property
    def is_finite(self) -> bool:
        return True

    @property
    def values(self) -> tuple[Any, ...]:
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def contains(self, value: Any) -> bool:
        return value in self._value_set

    def fresh_value(self, exclude: Collection[Any] = ()) -> Any | None:
        excluded = exclude if isinstance(exclude, (set, frozenset, dict)) else set(exclude)
        for candidate in self._values:
            if candidate not in excluded:
                return candidate
        return None

    def __repr__(self) -> str:
        shown = ", ".join(map(repr, self._values[:4]))
        if len(self._values) > 4:
            shown += ", ..."
        return f"<FiniteDomain {self.name} {{{shown}}}>"


def _string_factory(i: int) -> str:
    return f"v{i}"


def _int_factory(i: int) -> int:
    return i


# Named predicates (not lambdas) keep the singleton domains — and with them
# schemas and tuples — picklable, which the process-parallel detection path
# relies on when shipping violation payloads between workers.
def _is_string(v: Any) -> bool:
    return isinstance(v, str)


def _is_integer(v: Any) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


#: The default infinite string domain.
STRING = InfiniteDomain("string", _string_factory, _is_string)

#: The default infinite integer domain.
INTEGER = InfiniteDomain("integer", _int_factory, _is_integer)

#: The two-valued boolean domain of Example 3.2.
BOOL = FiniteDomain("bool", (True, False))


def enum_domain(name: str, values: Iterable[Any]) -> FiniteDomain:
    """Convenience constructor for a finite enumeration domain."""
    return FiniteDomain(name, values)


def numbered_finite_domain(name: str, size: int) -> FiniteDomain:
    """A finite domain ``{name#0, ..., name#size-1}`` as used by the generator.

    The paper's experiments use finite domains with 2–100 elements; the
    random generator creates them through this helper so element names never
    collide across domains.
    """
    if size < 1:
        raise DomainError(f"finite domain size must be >= 1, got {size}")
    return FiniteDomain(name, tuple(f"{name}#{i}" for i in range(size)))
