"""Relation schemas and database schemas.

A :class:`RelationSchema` is a named, ordered list of typed attributes; a
:class:`DatabaseSchema` is a named collection of relation schemas (the
paper's ``R = (R1, ..., Rn)``). ``finattr(R)`` — the set of attributes with
finite domains — is exposed on both, because the complexity results and all
of Section 5's algorithms branch on it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.domains import STRING, Domain


class Attribute:
    """A typed attribute of a relation schema.

    Attributes are value objects: equal iff name and domain object are equal.
    The domain defaults to the infinite string domain, which matches the
    paper's convention that attributes are infinite unless stated otherwise.
    """

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: Domain = STRING):
        if not name:
            raise SchemaError("attribute name must be nonempty")
        self.name = name
        self.domain = domain

    @property
    def is_finite(self) -> bool:
        return self.domain.is_finite

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and self.name == other.name
            and self.domain is other.domain
        )

    def __hash__(self) -> int:
        return hash((self.name, id(self.domain)))

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.domain.name})"


class RelationSchema:
    """A relation schema ``R(A1, ..., Ak)``.

    Parameters
    ----------
    name:
        Relation name, unique within a database schema.
    attributes:
        Either :class:`Attribute` objects or bare strings (which get the
        default infinite string domain). Order matters — attribute lists in
        dependencies are positional.
    """

    def __init__(self, name: str, attributes: Iterable[Attribute | str]):
        if not name:
            raise SchemaError("relation name must be nonempty")
        self.name = name
        attrs: dict[str, Attribute] = {}
        for spec in attributes:
            attr = Attribute(spec) if isinstance(spec, str) else spec
            if attr.name in attrs:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in relation {name!r}"
                )
            attrs[attr.name] = attr
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        self._attributes = attrs
        self._attribute_tuple = tuple(attrs.values())
        self._name_tuple = tuple(attrs)
        #: attribute name -> value-tuple position; the hot-path lookup used
        #: by ``Tuple.__getitem__``/``project`` and the detection planner
        #: instead of a linear ``attribute_names.index()`` per access.
        self._positions: dict[str, int] = {
            name_: i for i, name_ in enumerate(attrs)
        }

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attributes, in declaration order (``attr(R)``)."""
        return self._attribute_tuple

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self._name_tuple

    @property
    def positions(self) -> Mapping[str, int]:
        """Attribute name -> position map (treat as read-only)."""
        return self._positions

    def position_of(self, name: str) -> int:
        """Value-tuple position of *name*, raising SchemaError if absent."""
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {name!r}; "
                f"attributes are {list(self._attributes)}"
            ) from None

    def positions_of(self, names: Iterable[str]) -> tuple[int, ...]:
        """Positions of *names*, in the order given."""
        return tuple(self.position_of(n) for n in names)

    @property
    def arity(self) -> int:
        return len(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes.values())

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name, raising SchemaError if absent."""
        try:
            return self._attributes[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {name!r}; "
                f"attributes are {list(self._attributes)}"
            ) from None

    def domain_of(self, name: str) -> Domain:
        return self.attribute(name).domain

    def finite_attributes(self) -> tuple[Attribute, ...]:
        """``finattr(R)``: the attributes of this relation with finite domains."""
        return tuple(a for a in self._attributes.values() if a.is_finite)

    def check_attribute_list(self, names: Iterable[str]) -> tuple[str, ...]:
        """Validate that *names* are distinct attributes of this relation.

        Returns the names as a tuple. Used by the dependency constructors.
        """
        names = tuple(names)
        seen: set[str] = set()
        for n in names:
            if n not in self._attributes:
                raise SchemaError(
                    f"relation {self.name!r} has no attribute {n!r}"
                )
            if n in seen:
                raise SchemaError(
                    f"attribute {n!r} listed twice for relation {self.name!r}"
                )
            seen.add(n)
        return names

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and self.name == other.name
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        inner = ", ".join(self.attribute_names)
        return f"RelationSchema({self.name}({inner}))"


class DatabaseSchema:
    """A database schema ``R = (R1, ..., Rn)``."""

    def __init__(self, relations: Iterable[RelationSchema]):
        rels: dict[str, RelationSchema] = {}
        for rel in relations:
            if rel.name in rels:
                raise SchemaError(f"duplicate relation name {rel.name!r}")
            rels[rel.name] = rel
        self._relations = rels

    @property
    def relations(self) -> tuple[RelationSchema, ...]:
        return tuple(self._relations.values())

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name, raising SchemaError if absent."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"schema has no relation {name!r}; relations are "
                f"{list(self._relations)}"
            ) from None

    def finite_attributes(self) -> dict[str, tuple[Attribute, ...]]:
        """``finattr(R)`` per relation name (only nonempty entries)."""
        out: dict[str, tuple[Attribute, ...]] = {}
        for rel in self._relations.values():
            finite = rel.finite_attributes()
            if finite:
                out[rel.name] = finite
        return out

    def has_finite_attributes(self) -> bool:
        """True if any relation has an attribute with a finite domain."""
        return any(rel.finite_attributes() for rel in self._relations.values())

    def __repr__(self) -> str:
        return f"DatabaseSchema({', '.join(self._relations)})"


def schema(name: str, *attributes: Attribute | str) -> RelationSchema:
    """Terse constructor: ``schema('R', 'A', Attribute('B', BOOL))``."""
    return RelationSchema(name, attributes)


def database(*relations: RelationSchema | Mapping[str, Iterable[str]]) -> DatabaseSchema:
    """Terse constructor for a database schema.

    Accepts :class:`RelationSchema` objects and/or mappings of the form
    ``{'R': ['A', 'B']}`` (all-string-domain relations).
    """
    rels: list[RelationSchema] = []
    for item in relations:
        if isinstance(item, RelationSchema):
            rels.append(item)
        else:
            for rel_name, attr_names in item.items():
                rels.append(RelationSchema(rel_name, attr_names))
    return DatabaseSchema(rels)
